// Shared harness for the Fig. 6 reproduction benchmarks.
//
// Every bench binary reproduces one pair of panels from the paper's Fig. 6:
// it sweeps the panel's x-axis, runs the panel's algorithm set on freshly
// generated workloads, and prints two tables — response time (PT, the
// paper's y-axis in seconds) and data shipment (DS, in KB) — one column per
// algorithm, one row per x value, averaged over several extracted queries.
//
// Besides the ASCII tables every binary writes a machine-readable
// BENCH_<name>.json next to its working directory, so successive PRs can
// track the performance trajectory (see BenchJson below).
//
// Environment knobs:
//   DGS_SCALE    multiplies graph sizes (default 1.0; the defaults are the
//                paper's setups scaled ~60-100x down to laptop size)
//   DGS_QUERIES  queries averaged per data point (default 3; paper used 20)
//   DGS_SEED     RNG seed (default 2014)
//   DGS_THREADS  cluster-runtime executor width (default 1 = the
//                sequential reference; 0 = all hardware threads). Results
//                and message accounting are identical for every value.
//   DGS_WIRE     wire format: "v2" (default, delta-encoded) or "v1"
//                (fixed 6-byte records). Simulation results and message
//                counts are identical; only the shipped bytes differ.
//   DGS_TRANSPORT  round-execution backend: "loopback" (default), "tcp",
//                or "tcp:<procs>" (see runtime/transport.h). Results and
//                charged accounting are backend-invariant; tcp adds the
//                measured socket accounting to DistOutcome::transport.
//   DGS_COALESCE "0" reverts to charging one message header per message;
//                "1" (the default, matching TransportOptions) charges one
//                header per (src,dst) flush per round. Results and message
//                counts are unchanged either way, only charged bytes move.
//   DGS_WIRE_RATIO  measured wire/charged byte ratio (the
//                "wire_ratio_overall" meta of BENCH_transport.json). When
//                set (> 0), the fig6 DS tables fold it in: each charged DS
//                cell also shows charged × ratio — the projected bytes on
//                a real socket — and JSON rows gain "wire_ds_kb".

#ifndef DGS_BENCH_BENCH_COMMON_H_
#define DGS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dgs.h"

namespace dgs::bench {

struct Env {
  double scale = 1.0;
  int queries = 3;
  uint64_t seed = 2014;
  uint32_t threads = 1;
  WireFormat wire = WireFormat::kV2Delta;
  TransportOptions transport;
  // Measured wire/charged ratio from bench_transport; 0 = not provided.
  double wire_ratio = 0;

  static Env FromEnv() {
    Env env;
    if (const char* s = std::getenv("DGS_SCALE")) env.scale = std::atof(s);
    if (const char* s = std::getenv("DGS_QUERIES")) env.queries = std::atoi(s);
    if (const char* s = std::getenv("DGS_SEED")) env.seed = std::strtoull(s, nullptr, 10);
    if (const char* s = std::getenv("DGS_THREADS")) {
      // Strict parse: a malformed value keeps the sequential default
      // rather than silently becoming 0 = "all hardware threads".
      char* end = nullptr;
      long threads = std::strtol(s, &end, 10);
      if (end != s && *end == '\0' && threads >= 0) {
        env.threads = static_cast<uint32_t>(threads);
      } else {
        std::cerr << "warning: ignoring malformed DGS_THREADS='" << s
                  << "' (using 1)\n";
      }
    }
    if (const char* s = std::getenv("DGS_WIRE")) {
      std::string w(s);
      if (w == "v1") {
        env.wire = WireFormat::kV1Fixed;
      } else if (w == "v2") {
        env.wire = WireFormat::kV2Delta;
      } else {
        std::cerr << "warning: ignoring malformed DGS_WIRE='" << s
                  << "' (using v2)\n";
      }
    }
    if (const char* s = std::getenv("DGS_TRANSPORT")) {
      auto parsed = ParseTransportSpec(s);
      if (parsed.ok()) {
        env.transport = std::move(parsed).value();
      } else {
        std::cerr << "warning: ignoring malformed DGS_TRANSPORT='" << s
                  << "' (using loopback)\n";
      }
    }
    if (const char* s = std::getenv("DGS_COALESCE")) {
      env.transport.coalesce = std::string(s) == "1";
    }
    if (const char* s = std::getenv("DGS_WIRE_RATIO")) {
      char* end = nullptr;
      double ratio = std::strtod(s, &end);
      if (end != s && *end == '\0' && ratio > 0) {
        env.wire_ratio = ratio;
      } else {
        std::cerr << "warning: ignoring malformed DGS_WIRE_RATIO='" << s
                  << "' (wire projection off)\n";
      }
    }
    if (env.scale <= 0) env.scale = 1.0;
    if (env.queries <= 0) env.queries = 1;
    return env;
  }

  size_t Scaled(size_t base) const {
    size_t v = static_cast<size_t>(static_cast<double>(base) * scale);
    return v < 16 ? 16 : v;
  }
};

// --- Machine-readable output -----------------------------------------------

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One flat JSON object assembled key by key (insertion order preserved).
class JsonObject {
 public:
  JsonObject& Str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
    return *this;
  }
  JsonObject& Num(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    fields_.emplace_back(key, os.str());
    return *this;
  }
  JsonObject& Int(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(fields_[i].first) + "\": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

// Collects benchmark rows and writes BENCH_<name>.json:
//   {"bench": <name>, "meta": {...}, "rows": [{...}, ...]}
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  JsonObject& meta() { return meta_; }
  JsonObject& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  void Write(std::ostream& os) const {
    os << "{\"bench\": \"" << JsonEscape(name_) << "\",\n  \"meta\": "
       << meta_.ToString() << ",\n  \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      os << (i == 0 ? "\n    " : ",\n    ") << rows_[i].ToString();
    }
    os << "\n  ]}\n";
  }

  // Writes BENCH_<name>.json into the current working directory.
  bool WriteFile() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return false;
    }
    Write(out);
    std::cout << "\n[json] wrote " << path << "\n";
    return true;
  }

 private:
  std::string name_;
  JsonObject meta_;
  std::vector<JsonObject> rows_;
};

// Mirrors an arbitrary TablePrinter into JSON rows keyed by header.
inline void AppendTableJson(BenchJson& json, const std::string& table_name,
                            const TablePrinter& table) {
  for (const auto& row : table.rows()) {
    JsonObject& obj = json.AddRow();
    obj.Str("table", table_name);
    for (size_t c = 0; c < row.size() && c < table.headers().size(); ++c) {
      obj.Str(table.headers()[c], row[c]);
    }
  }
}

// Stamps the environment's round-execution backend into a bench's meta
// block, so every BENCH_*.json records which transport produced it.
inline void MetaTransport(BenchJson& json, const Env& env) {
  json.meta()
      .Str("transport", TransportSpecString(env.transport))
      .Int("coalesce", env.transport.coalesce ? 1 : 0);
}

// Accumulates per-algorithm metrics for one x value.
struct PointStats {
  double pt_seconds = 0;
  double ds_bytes = 0;
  double ds_saved_bytes = 0;  // payload bytes the V2 wire format avoided
  double runs = 0;

  void Add(const DistOutcome& outcome) {
    pt_seconds += outcome.response_seconds();
    ds_bytes += static_cast<double>(outcome.data_shipment_bytes());
    ds_saved_bytes +=
        static_cast<double>(outcome.counters.wire_saved_data_bytes);
    runs += 1;
  }
  double AvgPtMs() const { return runs > 0 ? pt_seconds / runs * 1e3 : 0; }
  double AvgDsKb() const { return runs > 0 ? ds_bytes / runs / 1024.0 : 0; }
  double AvgDsSavedKb() const {
    return runs > 0 ? ds_saved_bytes / runs / 1024.0 : 0;
  }
};

// One figure pair: rows indexed by x label, columns by algorithm.
class FigureTable {
 public:
  FigureTable(std::string title_pt, std::string title_ds,
              std::string x_label, std::vector<Algorithm> algorithms)
      : title_pt_(std::move(title_pt)),
        title_ds_(std::move(title_ds)),
        x_label_(std::move(x_label)),
        algorithms_(std::move(algorithms)) {}

  void Add(const std::string& x, Algorithm algorithm,
           const DistOutcome& outcome) {
    cells_[x][algorithm].Add(outcome);
    if (order_.empty() || order_.back() != x) {
      bool seen = false;
      for (const auto& o : order_) seen = seen || o == x;
      if (!seen) order_.push_back(x);
    }
  }

  // wire_ratio > 0 folds bench_transport's measured wire/charged ratio
  // into the DS panel: each charged cell gains a "(wire …)" projection.
  void Print(std::ostream& os, double wire_ratio = 0) const {
    PrintOne(os, title_pt_, /*pt=*/true, /*wire_ratio=*/0);
    os << "\n";
    PrintOne(os, title_ds_, /*pt=*/false, wire_ratio);
  }

  // One JSON row per (x value, algorithm) cell with both panel metrics.
  void AppendJson(BenchJson& json, double wire_ratio = 0) const {
    for (const auto& x : order_) {
      auto it = cells_.find(x);
      if (it == cells_.end()) continue;
      for (Algorithm a : algorithms_) {
        auto jt = it->second.find(a);
        if (jt == it->second.end() || jt->second.runs == 0) continue;
        JsonObject& row = json.AddRow();
        row.Str(x_label_, x)
            .Str("algorithm", AlgorithmName(a))
            .Num("pt_ms", jt->second.AvgPtMs())
            .Num("ds_kb", jt->second.AvgDsKb())
            .Num("ds_saved_kb", jt->second.AvgDsSavedKb())
            .Num("runs", jt->second.runs);
        if (wire_ratio > 0) {
          row.Num("wire_ds_kb", jt->second.AvgDsKb() * wire_ratio);
        }
      }
    }
  }

  // Prints the ASCII tables and writes BENCH_<bench_name>.json.
  void Report(const std::string& bench_name, const Env& env,
              std::ostream& os = std::cout) const {
    Print(os, env.wire_ratio);
    BenchJson json(bench_name);
    json.meta()
        .Str("title_pt", title_pt_)
        .Str("title_ds", title_ds_)
        .Num("scale", env.scale)
        .Int("queries", static_cast<uint64_t>(env.queries))
        .Int("seed", env.seed)
        .Int("threads", env.threads)
        .Str("wire", WireFormatName(env.wire))
        .Str("transport", TransportSpecString(env.transport))
        .Int("coalesce", env.transport.coalesce ? 1 : 0);
    if (env.wire_ratio > 0) json.meta().Num("wire_ratio", env.wire_ratio);
    AppendJson(json, env.wire_ratio);
    json.WriteFile();
  }

 private:
  void PrintOne(std::ostream& os, const std::string& title, bool pt,
                double wire_ratio) const {
    os << "== " << title << " ==\n";
    std::vector<std::string> headers = {x_label_};
    for (Algorithm a : algorithms_) {
      headers.push_back(std::string(AlgorithmName(a)) +
                        (pt ? " PT(ms)" : " DS(KB)"));
    }
    TablePrinter table(headers);
    for (const auto& x : order_) {
      std::vector<std::string> row = {x};
      auto it = cells_.find(x);
      for (Algorithm a : algorithms_) {
        const PointStats* stats = nullptr;
        if (it != cells_.end()) {
          auto jt = it->second.find(a);
          if (jt != it->second.end()) stats = &jt->second;
        }
        if (stats == nullptr || stats->runs == 0) {
          row.push_back("-");
        } else if (pt || wire_ratio <= 0) {
          row.push_back(FormatDouble(pt ? stats->AvgPtMs() : stats->AvgDsKb(),
                                     pt ? 2 : 3));
        } else {
          // Charged DS plus the projected socket bytes at the measured
          // wire/charged ratio (bench_transport).
          row.push_back(FormatDouble(stats->AvgDsKb(), 3) + " (wire " +
                        FormatDouble(stats->AvgDsKb() * wire_ratio, 3) + ")");
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print(os);
    if (!pt && wire_ratio > 0) {
      os << "(wire …) = charged DS × " << FormatDouble(wire_ratio, 3)
         << ", the measured wire/charged ratio from BENCH_transport.json\n";
    }
  }

  std::string title_pt_;
  std::string title_ds_;
  std::string x_label_;
  std::vector<Algorithm> algorithms_;
  std::vector<std::string> order_;
  std::map<std::string, std::map<Algorithm, PointStats>> cells_;
};

// Network model used by all experiment binaries: 1 ms per synchronized
// delivery round (LAN RTT + barrier cost) and 1 Gbps ingress bandwidth.
// Mirrors the EC2 deployment of Section 6; response time = max per-site
// compute per round + these charges (DESIGN.md §4).
inline NetworkModel BenchNetwork() {
  NetworkModel model;
  model.latency_per_round_seconds = 1e-3;
  model.seconds_per_byte = 8e-9;  // 1 Gbps
  return model;
}

// Runs one algorithm, returning false when it is inapplicable or fails.
// The Env supplies the cluster executor width (DGS_THREADS) and the wire
// format (DGS_WIRE).
inline bool RunOne(const Graph& g, const Fragmentation& frag,
                   const Pattern& q, Algorithm algorithm,
                   DistOutcome* outcome, const Env& env = {}) {
  DistOptions options;
  options.algorithm = algorithm;
  options.network = BenchNetwork();
  options.num_threads = env.threads;
  options.wire_format = env.wire;
  options.transport = env.transport;
  auto result = DistributedMatch(g, frag, q, options);
  if (!result.ok()) {
    std::cerr << "  [skip] " << AlgorithmName(algorithm) << ": "
              << result.status().ToString() << "\n";
    return false;
  }
  *outcome = std::move(result).value();
  return true;
}

}  // namespace dgs::bench

#endif  // DGS_BENCH_BENCH_COMMON_H_
