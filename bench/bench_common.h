// Shared harness for the Fig. 6 reproduction benchmarks.
//
// Every bench binary reproduces one pair of panels from the paper's Fig. 6:
// it sweeps the panel's x-axis, runs the panel's algorithm set on freshly
// generated workloads, and prints two tables — response time (PT, the
// paper's y-axis in seconds) and data shipment (DS, in KB) — one column per
// algorithm, one row per x value, averaged over several extracted queries.
//
// Environment knobs:
//   DGS_SCALE    multiplies graph sizes (default 1.0; the defaults are the
//                paper's setups scaled ~60-100x down to laptop size)
//   DGS_QUERIES  queries averaged per data point (default 3; paper used 20)
//   DGS_SEED     RNG seed (default 2014)

#ifndef DGS_BENCH_BENCH_COMMON_H_
#define DGS_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "dgs.h"

namespace dgs::bench {

struct Env {
  double scale = 1.0;
  int queries = 3;
  uint64_t seed = 2014;

  static Env FromEnv() {
    Env env;
    if (const char* s = std::getenv("DGS_SCALE")) env.scale = std::atof(s);
    if (const char* s = std::getenv("DGS_QUERIES")) env.queries = std::atoi(s);
    if (const char* s = std::getenv("DGS_SEED")) env.seed = std::strtoull(s, nullptr, 10);
    if (env.scale <= 0) env.scale = 1.0;
    if (env.queries <= 0) env.queries = 1;
    return env;
  }

  size_t Scaled(size_t base) const {
    size_t v = static_cast<size_t>(static_cast<double>(base) * scale);
    return v < 16 ? 16 : v;
  }
};

// Accumulates per-algorithm metrics for one x value.
struct PointStats {
  double pt_seconds = 0;
  double ds_bytes = 0;
  double runs = 0;

  void Add(const DistOutcome& outcome) {
    pt_seconds += outcome.response_seconds();
    ds_bytes += static_cast<double>(outcome.data_shipment_bytes());
    runs += 1;
  }
  double AvgPtMs() const { return runs > 0 ? pt_seconds / runs * 1e3 : 0; }
  double AvgDsKb() const { return runs > 0 ? ds_bytes / runs / 1024.0 : 0; }
};

// One figure pair: rows indexed by x label, columns by algorithm.
class FigureTable {
 public:
  FigureTable(std::string title_pt, std::string title_ds,
              std::string x_label, std::vector<Algorithm> algorithms)
      : title_pt_(std::move(title_pt)),
        title_ds_(std::move(title_ds)),
        x_label_(std::move(x_label)),
        algorithms_(std::move(algorithms)) {}

  void Add(const std::string& x, Algorithm algorithm,
           const DistOutcome& outcome) {
    cells_[x][algorithm].Add(outcome);
    if (order_.empty() || order_.back() != x) {
      bool seen = false;
      for (const auto& o : order_) seen = seen || o == x;
      if (!seen) order_.push_back(x);
    }
  }

  void Print(std::ostream& os) const {
    PrintOne(os, title_pt_, /*pt=*/true);
    os << "\n";
    PrintOne(os, title_ds_, /*pt=*/false);
  }

 private:
  void PrintOne(std::ostream& os, const std::string& title, bool pt) const {
    os << "== " << title << " ==\n";
    std::vector<std::string> headers = {x_label_};
    for (Algorithm a : algorithms_) {
      headers.push_back(std::string(AlgorithmName(a)) +
                        (pt ? " PT(ms)" : " DS(KB)"));
    }
    TablePrinter table(headers);
    for (const auto& x : order_) {
      std::vector<std::string> row = {x};
      auto it = cells_.find(x);
      for (Algorithm a : algorithms_) {
        const PointStats* stats = nullptr;
        if (it != cells_.end()) {
          auto jt = it->second.find(a);
          if (jt != it->second.end()) stats = &jt->second;
        }
        if (stats == nullptr || stats->runs == 0) {
          row.push_back("-");
        } else {
          row.push_back(FormatDouble(pt ? stats->AvgPtMs() : stats->AvgDsKb(),
                                     pt ? 2 : 3));
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print(os);
  }

  std::string title_pt_;
  std::string title_ds_;
  std::string x_label_;
  std::vector<Algorithm> algorithms_;
  std::vector<std::string> order_;
  std::map<std::string, std::map<Algorithm, PointStats>> cells_;
};

// Network model used by all experiment binaries: 1 ms per synchronized
// delivery round (LAN RTT + barrier cost) and 1 Gbps ingress bandwidth.
// Mirrors the EC2 deployment of Section 6; response time = max per-site
// compute per round + these charges (DESIGN.md §4).
inline NetworkModel BenchNetwork() {
  NetworkModel model;
  model.latency_per_round_seconds = 1e-3;
  model.seconds_per_byte = 8e-9;  // 1 Gbps
  return model;
}

// Runs one algorithm, returning false when it is inapplicable or fails.
inline bool RunOne(const Graph& g, const Fragmentation& frag,
                   const Pattern& q, Algorithm algorithm,
                   DistOutcome* outcome) {
  DistOptions options;
  options.algorithm = algorithm;
  options.network = BenchNetwork();
  auto result = DistributedMatch(g, frag, q, options);
  if (!result.ok()) {
    std::cerr << "  [skip] " << AlgorithmName(algorithm) << ": "
              << result.status().ToString() << "\n";
    return false;
  }
  *outcome = std::move(result).value();
  return true;
}

}  // namespace dgs::bench

#endif  // DGS_BENCH_BENCH_COMMON_H_
