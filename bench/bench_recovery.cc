// Recovery benchmark: what the supervised persistent worker pool
// (runtime/supervisor.h) buys, and what it costs.
//
// Workload: the Fig. 6(a)/(b) default shape scaled down (web graph,
// |Q| = (5, 10) cyclic, 4 sites over 2 worker processes), DGS_QUERIES
// patterns served as a stream on resident Engines.
//
// Sections and CI gates (the process exits nonzero on any violation):
//   launch       the same query stream on a persistent fleet vs a
//                refork-per-query fleet. Gates: the persistent engine
//                forks only on its first query (processes == 0 and
//                launch_seconds == 0 at steady state), the refork engine
//                forks every query, the persistent stream's total fork +
//                handshake wall time is strictly lower, and both streams
//                are bit-identical to loopback.
//   overhead     supervision off must cost nothing. Gates: loopback runs
//                carry a zero TransportStats ledger (no pool, no
//                heartbeats — nothing was even built), and a
//                persistent_workers=false tcp engine never sends a
//                heartbeat or respawns.
//   recovery     chaos_exit_at_round kills a generation-0 worker
//                mid-query. Gates: the poisoned query classifies
//                Unavailable, the NEXT query on the same resident Engine
//                succeeds bit-identically to loopback after >= 1 respawn,
//                and BENCH_recovery.json records the poisoned-to-healed
//                wall latency (detect + respawn + COW re-ship + re-run).
//
// BENCH_recovery.json tracks launch amortization, supervision overhead,
// and recovery latency across PRs.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace dgs;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool SameAnswerAndShipment(const DistOutcome& a, const DistOutcome& b,
                           const std::string& what) {
  bool same = true;
  if (!(a.result == b.result)) {
    std::cerr << "MISMATCH [" << what << "]: simulation results differ\n";
    same = false;
  }
  auto check = [&](uint64_t x, uint64_t y, const char* field) {
    if (x != y) {
      std::cerr << "MISMATCH [" << what << "]: " << field << " " << x
                << " vs " << y << "\n";
      same = false;
    }
  };
  check(a.stats.data_bytes, b.stats.data_bytes, "data_bytes");
  check(a.stats.control_bytes, b.stats.control_bytes, "control_bytes");
  check(a.stats.result_bytes, b.stats.result_bytes, "result_bytes");
  check(a.stats.data_messages, b.stats.data_messages, "data_messages");
  check(a.stats.rounds, b.stats.rounds, "rounds");
  return same;
}

}  // namespace

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(20000), m = env.Scaled(100000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 4, 0.25, rng);
  std::cout << "Recovery: web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), 4 sites over 2 worker processes, "
            << env.queries << " queries, seed " << env.seed << "\n\n";

  std::vector<Pattern> queries;
  for (int tries = 0; tries < 4 * env.queries &&
                      queries.size() < static_cast<size_t>(env.queries);
       ++tries) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(std::move(*q));
  }
  if (queries.empty()) {
    std::cerr << "no queries extracted\n";
    return 1;
  }

  EngineOptions loop_options;
  loop_options.network = bench::BenchNetwork();
  loop_options.num_threads = env.threads;
  loop_options.wire_format = env.wire;

  EngineOptions tcp_options = loop_options;
  tcp_options.transport.kind = TransportKind::kTcp;
  tcp_options.transport.num_processes = 2;

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;

  bool ok = true;
  bench::BenchJson json("recovery");
  json.meta()
      .Num("scale", env.scale)
      .Int("queries", static_cast<uint64_t>(queries.size()))
      .Int("seed", env.seed)
      .Int("threads", env.threads)
      .Str("wire", WireFormatName(env.wire));

  // Loopback reference outcomes: the bit-identity yardstick for both
  // fleets, and the overhead section's zero-ledger witness.
  auto loop_engine = Engine::Create(g, assignment, 4, loop_options);
  if (!loop_engine.ok()) {
    std::cerr << "loopback engine: " << loop_engine.status().ToString()
              << "\n";
    return 1;
  }
  std::vector<DistOutcome> baseline;
  for (const Pattern& q : queries) {
    auto outcome = (*loop_engine)->Match(q, query);
    if (!outcome.ok()) {
      std::cerr << "baseline query failed: " << outcome.status().ToString()
                << "\n";
      return 1;
    }
    const TransportStats& t = outcome->transport;
    if (t.processes != 0 || t.frames_sent != 0 || t.heartbeats_sent != 0 ||
        t.respawns != 0 || t.bytes_sent != 0) {
      std::cerr << "GATE [overhead]: loopback run carries a transport "
                   "ledger\n";
      ok = false;
    }
    baseline.push_back(std::move(outcome).value());
  }

  TablePrinter table({"fleet", "queries", "forked", "respawns",
                      "launch_ms", "wall_ms", "identical"});

  // --- launch: persistent fleet vs refork-per-query fleet.
  double persistent_launch_s = 0, refork_launch_s = 0;
  {
    struct FleetCase {
      const char* name;
      bool persistent;
    };
    const FleetCase cases[] = {{"persistent", true}, {"refork", false}};
    for (const FleetCase& c : cases) {
      EngineOptions options = tcp_options;
      options.transport.persistent_workers = c.persistent;
      auto engine = Engine::Create(g, assignment, 4, options);
      if (!engine.ok()) {
        std::cerr << c.name << ": " << engine.status().ToString() << "\n";
        return 1;
      }
      uint64_t forked = 0;
      double launch_s = 0, wall_ms = 0;
      size_t identical = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        auto outcome = (*engine)->Match(queries[i], query);
        wall_ms += MsSince(t0);
        if (!outcome.ok()) {
          std::cerr << "GATE [" << c.name << "]: q" << i << " failed: "
                    << outcome.status().ToString() << "\n";
          ok = false;
          continue;
        }
        forked += outcome->transport.processes;
        launch_s += outcome->transport.launch_seconds;
        if (c.persistent && i > 0 && (outcome->transport.processes != 0 ||
                                      outcome->transport.launch_seconds != 0)) {
          std::cerr << "GATE [persistent]: q" << i
                    << " paid a fork at steady state (processes="
                    << outcome->transport.processes << ")\n";
          ok = false;
        }
        if (!c.persistent && outcome->transport.processes != 2) {
          std::cerr << "GATE [refork]: q" << i << " forked "
                    << outcome->transport.processes << " processes, want 2\n";
          ok = false;
        }
        if (SameAnswerAndShipment(*outcome, baseline[i],
                                  std::string(c.name) + " q" +
                                      std::to_string(i))) {
          ++identical;
        } else {
          ok = false;
        }
      }
      (c.persistent ? persistent_launch_s : refork_launch_s) = launch_s;
      const TransportStats& total = (*engine)->serving_stats().transport;
      table.AddRow({c.name, std::to_string(queries.size()),
                    std::to_string(forked), std::to_string(total.respawns),
                    FormatDouble(launch_s * 1e3, 2),
                    FormatDouble(wall_ms, 2), std::to_string(identical)});
      json.AddRow()
          .Str("section", "launch")
          .Str("fleet", c.name)
          .Int("queries", queries.size())
          .Int("forked", forked)
          .Int("respawns", total.respawns)
          .Int("heartbeats", total.heartbeats_sent)
          .Num("launch_ms", launch_s * 1e3)
          .Num("wall_ms", wall_ms)
          .Int("identical", identical);
      if (!c.persistent &&
          (total.heartbeats_sent != 0 || total.respawns != 0)) {
        std::cerr << "GATE [overhead]: supervision-off fleet sent "
                  << total.heartbeats_sent << " heartbeats / "
                  << total.respawns << " respawns (want 0 / 0)\n";
        ok = false;
      }
    }
    if (queries.size() > 1 && persistent_launch_s >= refork_launch_s) {
      std::cerr << "GATE [launch]: persistent fleet spent "
                << persistent_launch_s * 1e3 << " ms forking vs "
                << refork_launch_s * 1e3
                << " ms reforking — amortization failed\n";
      ok = false;
    }
  }

  // --- recovery: kill a generation-0 worker mid-query, time the heal.
  {
    EngineOptions options = tcp_options;
    options.transport.chaos_exit_at_round = 1;  // generation 0 dies once
    auto engine = Engine::Create(g, assignment, 4, options);
    if (!engine.ok()) {
      std::cerr << "recovery engine: " << engine.status().ToString() << "\n";
      return 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto poisoned = (*engine)->Match(queries[0], query);
    const double poisoned_ms = MsSince(t0);
    if (poisoned.ok()) {
      std::cerr << "GATE [recovery]: chaos kill did not poison the query\n";
      ok = false;
    } else if (poisoned.status().code() != StatusCode::kUnavailable) {
      std::cerr << "GATE [recovery]: poisoned query classified "
                << poisoned.status().ToString() << ", want Unavailable\n";
      ok = false;
    }

    const auto t1 = std::chrono::steady_clock::now();
    auto healed = (*engine)->Match(queries[0], query);
    const double recovery_ms = MsSince(t1);
    uint64_t respawns = 0;
    if (!healed.ok()) {
      std::cerr << "GATE [recovery]: healed query failed: "
                << healed.status().ToString() << "\n";
      ok = false;
    } else {
      respawns = healed->transport.respawns;
      if (respawns < 1) {
        std::cerr << "GATE [recovery]: healed query respawned nothing\n";
        ok = false;
      }
      if (!SameAnswerAndShipment(*healed, baseline[0], "healed q0")) {
        ok = false;
      }
    }
    table.AddRow({"kill+respawn", "2", "-", std::to_string(respawns),
                  "-", FormatDouble(poisoned_ms + recovery_ms, 2),
                  healed.ok() ? "1" : "0"});
    json.AddRow()
        .Str("section", "recovery")
        .Str("fleet", "kill+respawn")
        .Int("respawns", respawns)
        .Num("poisoned_ms", poisoned_ms)
        .Num("recovery_ms", recovery_ms);
    std::cout << "recovery latency (detect + respawn + re-ship + re-run): "
              << FormatDouble(recovery_ms, 2) << " ms\n\n";
  }

  std::cout << "== Persistent fleet vs refork-per-query ==\n";
  table.Print(std::cout);
  json.WriteFile();

  if (!ok) {
    std::cerr << "\nRECOVERY GATE FAILED\n";
    return 1;
  }
  std::cout << "\nall recovery gates passed\n";
  return 0;
}
