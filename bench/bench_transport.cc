// Charged model vs measured wire: the loopback backend charges the BSP
// cost model (RunStats — the paper's DS/PT metrics), the TCP backend runs
// the same rounds across real processes and measures real socket traffic
// (DistOutcome::transport). This bench runs every algorithm family over
// both backends, asserts the answers and the charged accounting are
// bit-identical (the transport contract of runtime/transport.h), and
// reports the two accountings side by side: charged DS next to measured
// socket bytes, charged PT next to fork/handshake and socket-I/O wall
// time.
//
// BENCH_transport.json rows: one per (family, query) with charged
// ds_kb/total_kb, measured wire_tx_kb/wire_rx_kb, the wire/charged ratio,
// frame counts, and launch/io wall milliseconds, plus one "total" row per
// family. The process exits nonzero if any backend fingerprint diverges,
// so CI catches transport regressions, not just drift.
//
// DGS_TRANSPORT=tcp:<procs> sets the process grouping measured (default
// one process per site); the loopback reference ignores it.

#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace dgs;

struct FamilySpec {
  const char* name;
  Algorithm algorithm;
  Graph g;
  std::vector<uint32_t> assignment;
  uint32_t sites;
  std::vector<Pattern> queries;
};

bool SameOutcome(const DistOutcome& a, const DistOutcome& b,
                 const std::string& what) {
  bool same = true;
  auto check = [&](uint64_t x, uint64_t y, const char* field) {
    if (x != y) {
      std::cerr << "MISMATCH [" << what << "]: " << field << " " << x
                << " vs " << y << "\n";
      same = false;
    }
  };
  if (!(a.result == b.result)) {
    std::cerr << "MISMATCH [" << what << "]: simulation results differ\n";
    same = false;
  }
  check(a.stats.data_bytes, b.stats.data_bytes, "data_bytes");
  check(a.stats.control_bytes, b.stats.control_bytes, "control_bytes");
  check(a.stats.result_bytes, b.stats.result_bytes, "result_bytes");
  check(a.stats.data_messages, b.stats.data_messages, "data_messages");
  check(a.stats.rounds, b.stats.rounds, "rounds");
  check(a.counters.vars_shipped, b.counters.vars_shipped, "vars_shipped");
  check(a.counters.recomputations, b.counters.recomputations,
        "recomputations");
  check(a.counters.supersteps, b.counters.supersteps, "supersteps");
  return same;
}

}  // namespace

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  // The grouping to measure: DGS_TRANSPORT=tcp:<procs> if given, else one
  // process per worker site.
  TransportOptions tcp = env.transport;
  tcp.kind = TransportKind::kTcp;

  std::vector<FamilySpec> families;
  auto add = [&](const char* name, Algorithm algorithm, const Graph* g,
                 uint32_t sites, PatternKind kind) {
    FamilySpec f;
    f.name = name;
    f.algorithm = algorithm;
    f.g = *g;
    f.assignment = PartitionWithBoundaryRatio(f.g, sites, 0.25, rng);
    f.sites = sites;
    for (int i = 0; i < env.queries; ++i) {
      PatternSpec spec;
      spec.num_nodes = 4;
      spec.num_edges = kind == PatternKind::kCyclic ? 6 : 5;
      spec.kind = kind;
      auto q = ExtractPattern(f.g, spec, rng);
      if (q.ok()) f.queries.push_back(*q);
    }
    families.push_back(std::move(f));
  };
  {
    Graph web = WebGraph(env.Scaled(20000), env.Scaled(90000),
                         kDefaultAlphabet, rng);
    add("dGPM", Algorithm::kDgpm, &web, 8, PatternKind::kCyclic);
    add("dGPMNOpt", Algorithm::kDgpmNoOpt, &web, 8, PatternKind::kCyclic);
    add("dMes", Algorithm::kDMes, &web, 8, PatternKind::kCyclic);
    add("Match", Algorithm::kMatch, &web, 8, PatternKind::kCyclic);
    add("disHHK", Algorithm::kDisHhk, &web, 8, PatternKind::kCyclic);
  }
  {
    // CitationDag keeps dGPMd applicable (acyclic G).
    Graph citation = CitationDag(env.Scaled(20000), env.Scaled(76000),
                                 kDefaultAlphabet, rng);
    add("dGPMd", Algorithm::kDgpmDag, &citation, 8, PatternKind::kDag);
  }
  {
    Graph tree = RandomTree(env.Scaled(15000), kDefaultAlphabet, rng);
    add("dGPMt", Algorithm::kDgpmTree, &tree, 6, PatternKind::kDag);
  }

  bench::BenchJson json("transport");
  json.meta()
      .Num("scale", env.scale)
      .Int("queries", static_cast<uint64_t>(env.queries))
      .Int("seed", env.seed)
      .Int("threads", env.threads)
      .Str("wire", WireFormatName(env.wire))
      .Str("tcp_spec", TransportSpecString(tcp));

  TablePrinter table({"family", "procs", "charged DS(KB)", "charged PT(ms)",
                      "wire TX(KB)", "wire RX(KB)", "wire/charged",
                      "frames", "launch(ms)", "io(ms)"});

  bool all_identical = true;
  double grand_charged = 0, grand_wire = 0;
  for (FamilySpec& family : families) {
    auto frag = Fragmentation::Create(family.g, family.assignment,
                                      family.sites);
    if (!frag.ok() || family.queries.empty()) {
      std::cerr << "[skip] " << family.name << ": workload setup failed\n";
      continue;
    }
    double total_ds = 0, total_charged = 0, total_pt = 0;
    double total_tx = 0, total_rx = 0;
    double total_launch = 0, total_io = 0;
    uint64_t total_frames = 0, total_retransmits = 0, procs = 0;
    size_t runs = 0;
    for (size_t qi = 0; qi < family.queries.size(); ++qi) {
      const Pattern& q = family.queries[qi];
      DistOptions options;
      options.algorithm = family.algorithm;
      options.network = bench::BenchNetwork();
      options.num_threads = env.threads;
      options.wire_format = env.wire;
      options.transport = env.transport;
      options.transport.kind = TransportKind::kLoopback;
      auto loop = DistributedMatch(family.g, *frag, q, options);
      if (!loop.ok()) {
        std::cerr << "  [skip] " << family.name << " q" << qi << ": "
                  << loop.status().ToString() << "\n";
        continue;
      }
      options.transport = tcp;
      auto remote = DistributedMatch(family.g, *frag, q, options);
      const std::string what =
          std::string(family.name) + " q" + std::to_string(qi);
      if (!remote.ok()) {
        std::cerr << "FAILED [" << what
                  << "]: " << remote.status().ToString() << "\n";
        all_identical = false;
        continue;
      }
      if (!SameOutcome(*loop, *remote, what)) all_identical = false;
      if (remote->transport.retransmits > 0 ||
          remote->transport.checksum_rejects > 0) {
        std::cerr << "UNEXPECTED [" << what
                  << "]: recovery machinery fired on a clean wire\n";
        all_identical = false;
      }

      const TransportStats& wire = remote->transport;
      const double ds = static_cast<double>(loop->data_shipment_bytes());
      const double charged = static_cast<double>(loop->stats.TotalBytes());
      const double tx = static_cast<double>(wire.bytes_sent);
      const double rx = static_cast<double>(wire.bytes_received);
      total_ds += ds;
      total_charged += charged;
      total_pt += loop->response_seconds();
      total_tx += tx;
      total_rx += rx;
      total_launch += wire.launch_seconds;
      total_io += wire.io_seconds;
      total_frames += wire.frames_sent + wire.frames_received;
      total_retransmits += wire.retransmits;
      procs = wire.processes;
      ++runs;
      json.AddRow()
          .Str("family", family.name)
          .Int("query", qi)
          .Int("processes", wire.processes)
          .Num("ds_kb", ds / 1024.0)
          .Num("charged_total_kb", charged / 1024.0)
          .Num("charged_pt_ms", loop->response_seconds() * 1e3)
          .Num("wire_tx_kb", tx / 1024.0)
          .Num("wire_rx_kb", rx / 1024.0)
          .Num("wire_ratio", charged > 0 ? (tx + rx) / charged : 0.0)
          .Int("frames_sent", wire.frames_sent)
          .Int("frames_received", wire.frames_received)
          .Int("retransmits", wire.retransmits)
          .Num("launch_ms", wire.launch_seconds * 1e3)
          .Num("io_ms", wire.io_seconds * 1e3);
    }
    if (runs == 0) continue;
    grand_charged += total_charged;
    grand_wire += total_tx + total_rx;
    table.AddRow(
        {std::string(family.name), std::to_string(procs),
         FormatDouble(total_ds / 1024.0, 3),
         FormatDouble(total_pt / static_cast<double>(runs) * 1e3, 2),
         FormatDouble(total_tx / 1024.0, 3),
         FormatDouble(total_rx / 1024.0, 3),
         FormatDouble(total_charged > 0
                          ? (total_tx + total_rx) / total_charged
                          : 0.0,
                      3),
         std::to_string(total_frames),
         FormatDouble(total_launch / static_cast<double>(runs) * 1e3, 2),
         FormatDouble(total_io / static_cast<double>(runs) * 1e3, 2)});
    json.AddRow()
        .Str("family", family.name)
        .Str("query", "total")
        .Int("processes", procs)
        .Num("ds_kb", total_ds / 1024.0)
        .Num("charged_total_kb", total_charged / 1024.0)
        .Num("wire_tx_kb", total_tx / 1024.0)
        .Num("wire_rx_kb", total_rx / 1024.0)
        .Num("wire_ratio", total_charged > 0
                               ? (total_tx + total_rx) / total_charged
                               : 0.0)
        .Int("retransmits", total_retransmits)
        .Num("avg_launch_ms",
             total_launch / static_cast<double>(runs) * 1e3)
        .Num("avg_io_ms", total_io / static_cast<double>(runs) * 1e3);
  }

  std::cout << "== Charged BSP model (loopback) vs measured wire (tcp) — "
               "identical answers & accounting ==\n";
  table.Print(std::cout);
  const double wire_ratio_overall =
      grand_charged > 0 ? grand_wire / grand_charged : 0.0;
  std::cout << "\nworkload wire/charged ratio: "
            << FormatDouble(wire_ratio_overall, 3)
            << "  (export DGS_WIRE_RATIO=" << FormatDouble(wire_ratio_overall, 3)
            << " to fold it into the fig6 DS tables)"
            << "\nbackend fingerprints: "
            << (all_identical ? "IDENTICAL" : "MISMATCH") << "\n";
  json.meta()
      .Num("wire_ratio_overall", wire_ratio_overall)
      .Str("identical", all_identical ? "true" : "false");
  json.WriteFile();
  return all_identical ? 0 : 1;
}
