// Fig. 6(o)/6(p): PT and DS vs graph size |G| on synthetic graphs. Paper
// setup: |F| = 20, |Q| = (5, 10), |Vf| = 20%, |G| from (20M, 80M) to
// (80M, 320M); here scaled down (x-axis labels keep the paper's shape:
// |V| grows linearly at |E| = 4|V|).
//
// Expected shape: dGPM's PT grows only with |Fm| = |G|/|F| and its DS stays
// nearly flat (it depends on |Ef| and |Q|, not |G|); disHHK's and dMes's PT
// and DS are functions of |G| and climb steadily.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpm, Algorithm::kDisHhk, Algorithm::kDgpmNoOpt,
      Algorithm::kDMes};
  bench::FigureTable fig("Fig 6(o): PT vs |G|", "Fig 6(p): DS vs |G|",
                         "|G|=(V,E)", algorithms);
  std::cout << "Fig 6(o)/(p): synthetic graphs, |F| = 20, |Q| = (5,10), "
               "|Vf| ~ 20%\n\n";

  for (size_t base = 20; base <= 80; base += 10) {
    Rng rng(env.seed + base);  // fresh graph per size, deterministic
    const size_t n = env.Scaled(base * 5000);
    const size_t m = 4 * n;
    Graph g = ClusteredGraph(n, m, kDefaultAlphabet, rng);
    auto assignment = PartitionWithBoundaryRatio(g, 20, 0.20, rng);
    auto frag = Fragmentation::Create(g, assignment, 20);
    if (!frag.ok()) continue;
    std::string x = "(" + std::to_string(n / 1000) + "K," +
                    std::to_string(m / 1000) + "K)";
    for (int i = 0; i < env.queries; ++i) {
      PatternSpec spec;
      spec.num_nodes = 5;
      spec.num_edges = 10;
      spec.kind = PatternKind::kCyclic;
      auto q = ExtractPattern(g, spec, rng);
      if (!q.ok()) continue;
      for (Algorithm a : algorithms) {
        DistOutcome outcome;
        if (bench::RunOne(g, *frag, *q, a, &outcome, env)) fig.Add(x, a, outcome);
      }
    }
  }
  fig.Report("fig6_op", env);
  return 0;
}
