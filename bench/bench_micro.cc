// Substrate micro-benchmarks (google-benchmark): centralized simulation
// throughput, equation-system propagation, generators, fragmentation and
// bitset kernels. These are the building blocks whose constants determine
// the absolute numbers in the Fig. 6 reproductions.

#include <benchmark/benchmark.h>

#include "dgs.h"

namespace {

using namespace dgs;

void BM_CentralizedSimulation(benchmark::State& state) {
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g = WebGraph(n, 5 * n, kDefaultAlphabet, rng);
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  if (!q.ok()) {
    state.SkipWithError("pattern extraction failed");
    return;
  }
  for (auto _ : state) {
    auto result = ComputeSimulation(*q, g);
    benchmark::DoNotOptimize(result.GraphMatches());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.Size()));
}
BENCHMARK(BM_CentralizedSimulation)->Arg(10000)->Arg(40000)->Arg(160000);

void BM_BooleanOnlySimulation(benchmark::State& state) {
  Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g = WebGraph(n, 5 * n, kDefaultAlphabet, rng);
  PatternSpec spec;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  if (!q.ok()) {
    state.SkipWithError("pattern extraction failed");
    return;
  }
  SimulationOptions options;
  options.boolean_only = true;
  for (auto _ : state) {
    auto result = ComputeSimulation(*q, g, options);
    benchmark::DoNotOptimize(result.GraphMatches());
  }
}
BENCHMARK(BM_BooleanOnlySimulation)->Arg(40000);

void BM_EquationPropagation(benchmark::State& state) {
  // Chain of length N: worst-case full propagation.
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    EquationSystem s;
    VarId prev = s.NewVar();
    VarId first = prev;
    for (size_t i = 1; i < n; ++i) {
      VarId x = s.NewVar();
      s.SetEquation(x, {{prev}});
      prev = x;
    }
    state.ResumeTiming();
    s.AssertFalse(first);
    size_t count = 0;
    s.Propagate([&](VarId) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EquationPropagation)->Arg(1000)->Arg(100000);

void BM_WebGraphGeneration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  uint64_t seed = 3;
  for (auto _ : state) {
    Rng rng(seed++);
    Graph g = WebGraph(n, 5 * n, kDefaultAlphabet, rng);
    benchmark::DoNotOptimize(g.NumEdges());
  }
}
BENCHMARK(BM_WebGraphGeneration)->Arg(100000);

void BM_Fragmentation(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g = WebGraph(n, 5 * n, kDefaultAlphabet, rng);
  auto assignment = RandomPartition(g, 16, rng);
  for (auto _ : state) {
    auto f = Fragmentation::Create(g, assignment, 16);
    benchmark::DoNotOptimize(f.ok());
  }
}
BENCHMARK(BM_Fragmentation)->Arg(50000);

void BM_PartitionRefinement(benchmark::State& state) {
  Rng rng(5);
  Graph g = WebGraph(50000, 250000, kDefaultAlphabet, rng);
  for (auto _ : state) {
    auto a = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
    benchmark::DoNotOptimize(a.size());
  }
}
BENCHMARK(BM_PartitionRefinement);

void BM_BitsetForEach(benchmark::State& state) {
  DynamicBitset bits(1 << 20);
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) {
    bits.Set(rng.UniformInt(1 << 20));
  }
  for (auto _ : state) {
    size_t sum = 0;
    bits.ForEachSet([&](size_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitsetForEach);

void BM_DgpmEndToEnd(benchmark::State& state) {
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g = WebGraph(n, 5 * n, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  auto frag = Fragmentation::Create(g, assignment, 8);
  PatternSpec spec;
  spec.num_nodes = 5;
  spec.num_edges = 10;
  spec.kind = PatternKind::kCyclic;
  auto q = ExtractPattern(g, spec, rng);
  if (!frag.ok() || !q.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto outcome = RunDgpm(*frag, *q, DgpmConfig{});
    benchmark::DoNotOptimize(outcome.result.GraphMatches());
  }
}
BENCHMARK(BM_DgpmEndToEnd)->Arg(20000);

}  // namespace

BENCHMARK_MAIN();
