// Corollary 4 / Section 5.2: dGPMt on distributed trees with connected
// fragments — parallel scalable in data shipment, and in response time at
// fixed |F|. Sweeps |F| and |G| and compares with dGPM on the same trees.
//
// Expected shape: dGPMt's DS tracks |Q||F| (flat in |G|), its PT tracks
// |Fm| = |G|/|F|; dGPM remains correct but pays boundary-driven shipment.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  bench::BenchJson json("tree");
  json.meta().Num("scale", env.scale).Int("seed", env.seed)
      .Int("threads", env.threads);
  bench::MetaTransport(json, env);

  Pattern q(MakeGraph({0, 1, 2, 1}, {{0, 1}, {0, 3}, {1, 2}}));
  std::cout << "dGPMt benchmark, |Q| = (" << q.NumNodes() << ","
            << q.NumEdges() << ")\n\n";

  {
    std::cout << "Sweep |F| at fixed |G|:\n";
    Graph tree = RandomTree(env.Scaled(100000), 3, rng);
    TablePrinter table({"|F|", "dGPMt PT(ms)", "dGPMt DS(KB)", "dGPM PT(ms)",
                        "dGPM DS(KB)"});
    for (uint32_t sites : {4u, 8u, 16u, 32u}) {
      auto assignment = TreePartition(tree, sites);
      if (!assignment.ok()) continue;
      auto frag = Fragmentation::Create(tree, *assignment, sites);
      if (!frag.ok()) continue;
      DistOutcome t_out, g_out;
      if (!bench::RunOne(tree, *frag, q, Algorithm::kDgpmTree, &t_out, env)) continue;
      if (!bench::RunOne(tree, *frag, q, Algorithm::kDgpm, &g_out, env)) continue;
      table.AddRow({std::to_string(sites),
                    FormatDouble(t_out.response_seconds() * 1e3, 2),
                    FormatDouble(t_out.stats.data_bytes / 1024.0, 3),
                    FormatDouble(g_out.response_seconds() * 1e3, 2),
                    FormatDouble(g_out.stats.data_bytes / 1024.0, 3)});
    }
    table.Print(std::cout);
    bench::AppendTableJson(json, "sweep_F", table);
    std::cout << "\n";
  }

  {
    std::cout << "Sweep |G| at fixed |F| = 8 (DS should stay flat for "
                 "dGPMt):\n";
    TablePrinter table({"tree |V|", "dGPMt PT(ms)", "dGPMt DS(KB)",
                        "equation units"});
    for (size_t n : {env.Scaled(20000), env.Scaled(40000), env.Scaled(80000),
                     env.Scaled(160000)}) {
      Graph tree = RandomTree(n, 3, rng);
      auto assignment = TreePartition(tree, 8);
      if (!assignment.ok()) continue;
      auto frag = Fragmentation::Create(tree, *assignment, 8);
      if (!frag.ok()) continue;
      DistOutcome outcome;
      if (!bench::RunOne(tree, *frag, q, Algorithm::kDgpmTree, &outcome, env)) {
        continue;
      }
      table.AddRow({std::to_string(tree.NumNodes()),
                    FormatDouble(outcome.response_seconds() * 1e3, 2),
                    FormatDouble(outcome.stats.data_bytes / 1024.0, 3),
                    std::to_string(outcome.counters.equation_units.load())});
    }
    table.Print(std::cout);
    bench::AppendTableJson(json, "sweep_G", table);
  }
  json.WriteFile();
  return 0;
}
