// Fig. 6(a)/6(b): PT and DS vs the number of fragments |F| on the Yahoo-like
// web graph. Paper setup: |G| = (3M, 15M), |Q| = (5, 10), |Vf| = 25%,
// |F| in 4..20; here scaled down (see bench_common.h).
//
// Expected shape: dGPM's PT falls as |F| grows (parallelism) while Match is
// flat and large; dGPM ships orders of magnitude less data than disHHK and
// dMes; dGPMNOpt tracks dGPM's DS but is far slower.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(150000), m = env.Scaled(750000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  std::cout << "Fig 6(a)/(b): web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |Q| = (5,10), |Vf| ~ 25%\n\n";

  std::vector<Pattern> queries;
  for (int i = 0; i < env.queries; ++i) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpm, Algorithm::kDisHhk, Algorithm::kDgpmNoOpt,
      Algorithm::kDMes, Algorithm::kMatch};
  bench::FigureTable fig("Fig 6(a): PT vs |F|", "Fig 6(b): DS vs |F|", "|F|",
                         algorithms);

  for (uint32_t sites : {4u, 8u, 12u, 16u, 20u}) {
    auto assignment = PartitionWithBoundaryRatio(g, sites, 0.25, rng);
    auto frag = Fragmentation::Create(g, assignment, sites);
    if (!frag.ok()) continue;
    for (const Pattern& q : queries) {
      for (Algorithm a : algorithms) {
        DistOutcome outcome;
        if (bench::RunOne(g, *frag, q, a, &outcome, env)) {
          fig.Add(std::to_string(sites), a, outcome);
        }
      }
    }
  }
  fig.Report("fig6_ab", env);
  return 0;
}
