// Fig. 6(e)/6(f): PT and DS vs the boundary-node ratio |Vf|/|V| on the
// Yahoo-like web graph. Paper setup: |F| = 8, |G| = (3M, 15M),
// |Q| = (5, 10), |Vf| from 25% to 50%; here scaled down.
//
// Expected shape: dGPM's PT and DS grow with |Vf| (its bounds are stated in
// the partition parameters) yet stay well below disHHK and dMes throughout.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(150000), m = env.Scaled(750000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  std::cout << "Fig 6(e)/(f): web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |F| = 8, |Q| = (5,10)\n\n";

  std::vector<Pattern> queries;
  for (int i = 0; i < env.queries; ++i) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpm, Algorithm::kDisHhk, Algorithm::kDgpmNoOpt,
      Algorithm::kDMes, Algorithm::kMatch};
  bench::FigureTable fig("Fig 6(e): PT vs |Vf|/|V|", "Fig 6(f): DS vs |Vf|/|V|",
                         "|Vf|/|V|", algorithms);

  for (int pct = 25; pct <= 50; pct += 5) {
    auto assignment =
        PartitionWithBoundaryRatio(g, 8, pct / 100.0, rng);
    auto frag = Fragmentation::Create(g, assignment, 8);
    if (!frag.ok()) continue;
    std::string x = FormatDouble(BoundaryNodeRatio(g, assignment), 2);
    for (const Pattern& q : queries) {
      for (Algorithm a : algorithms) {
        DistOutcome outcome;
        if (bench::RunOne(g, *frag, q, a, &outcome, env)) fig.Add(x, a, outcome);
      }
    }
  }
  fig.Report("fig6_ef", env);
  return 0;
}
