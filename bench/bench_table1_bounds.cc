// Table 1 ("this work" rows): empirical validation of the analytic bounds.
//
//   dGPM   PT = O((|Vq|+|Vm|)(|Eq|+|Em|) |Vq||Vf|),  DS = O(|Ef||Vq|)
//   dGPMd  PT = O(d(|Vq|+|Vm|)(|Eq|+|Em|) + |Q||F|), DS = O(|Ef||Vq|)
//   dGPMt  PT = O(|Q||Fm| + |Q||F|),                 DS = O(|Q||F|)
//
// For each algorithm the harness measures the bound's two key independence
// claims: (1) shipped truth values never exceed the |Ef||Vq| budget (for
// dGPMt: |Q||F| equation units), and (2) DS does not scale with |G| when
// the partition parameters are held fixed.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  std::cout << "Table 1 bound validation\n\n";

  bench::BenchJson json("table1_bounds");
  json.meta().Num("scale", env.scale).Int("seed", env.seed)
      .Int("threads", env.threads);
  bench::MetaTransport(json, env);

  // --- dGPM and dGPMd: vars shipped vs the |Ef||Vq| budget --------------
  {
    TablePrinter table({"algo", "|G|", "|Ef|", "|Vq|", "budget |Ef||Vq|",
                        "shipped", "used %"});
    for (size_t n : {env.Scaled(10000), env.Scaled(20000), env.Scaled(40000)}) {
      Graph g = WebGraph(n, 5 * n, kDefaultAlphabet, rng);
      auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
      auto frag = Fragmentation::Create(g, assignment, 8);
      if (!frag.ok()) continue;
      PatternSpec spec;
      spec.num_nodes = 5;
      spec.num_edges = 10;
      spec.kind = PatternKind::kCyclic;
      auto q = ExtractPattern(g, spec, rng);
      if (!q.ok()) continue;
      DistOutcome outcome;
      if (!bench::RunOne(g, *frag, *q, Algorithm::kDgpm, &outcome, env)) continue;
      uint64_t budget = frag->NumCrossingEdges() * q->NumNodes();
      table.AddRow({"dGPM",
                    "(" + std::to_string(g.NumNodes()) + "," +
                        std::to_string(g.NumEdges()) + ")",
                    std::to_string(frag->NumCrossingEdges()),
                    std::to_string(q->NumNodes()), std::to_string(budget),
                    std::to_string(outcome.counters.vars_shipped),
                    FormatDouble(100.0 *
                                     static_cast<double>(
                                         outcome.counters.vars_shipped) /
                                     static_cast<double>(budget),
                                 2)});
    }
    for (size_t n : {env.Scaled(10000), env.Scaled(30000)}) {
      Graph g = CitationDag(n, 2 * n, kDefaultAlphabet, rng);
      auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
      auto frag = Fragmentation::Create(g, assignment, 8);
      if (!frag.ok()) continue;
      PatternSpec spec;
      spec.num_nodes = 8;
      spec.num_edges = 12;
      spec.kind = PatternKind::kDag;
      spec.dag_depth = 4;
      auto q = ExtractPattern(g, spec, rng);
      if (!q.ok()) continue;
      DistOutcome outcome;
      if (!bench::RunOne(g, *frag, *q, Algorithm::kDgpmDag, &outcome, env)) continue;
      uint64_t budget = frag->NumCrossingEdges() * q->NumNodes();
      table.AddRow({"dGPMd",
                    "(" + std::to_string(g.NumNodes()) + "," +
                        std::to_string(g.NumEdges()) + ")",
                    std::to_string(frag->NumCrossingEdges()),
                    std::to_string(q->NumNodes()), std::to_string(budget),
                    std::to_string(outcome.counters.vars_shipped),
                    FormatDouble(100.0 *
                                     static_cast<double>(
                                         outcome.counters.vars_shipped) /
                                     static_cast<double>(budget),
                                 2)});
    }
    table.Print(std::cout);
    bench::AppendTableJson(json, "vars_shipped_budget", table);
    std::cout << "\n";
  }

  // --- dGPMt: DS tracks |Q||F|, not |G| ----------------------------------
  {
    TablePrinter table(
        {"algo", "tree |V|", "|F|", "equation units", "kData bytes"});
    Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}}));
    for (size_t n : {env.Scaled(5000), env.Scaled(20000), env.Scaled(80000)}) {
      Graph tree = RandomTree(n, 3, rng);
      auto assignment = TreePartition(tree, 8);
      if (!assignment.ok()) continue;
      auto frag = Fragmentation::Create(tree, *assignment, 8);
      if (!frag.ok()) continue;
      DistOutcome outcome;
      if (!bench::RunOne(tree, *frag, q, Algorithm::kDgpmTree, &outcome, env)) {
        continue;
      }
      table.AddRow({"dGPMt", std::to_string(tree.NumNodes()), "8",
                    std::to_string(outcome.counters.equation_units),
                    std::to_string(outcome.stats.data_bytes)});
    }
    table.Print(std::cout);
    bench::AppendTableJson(json, "tree_ds_flat", table);
    std::cout << "\n(16x the tree at fixed |F|: kData bytes should stay "
                 "nearly flat — DS = O(|Q||F|).)\n\n";
  }

  // --- dGPM: DS independence from |G| at fixed partition stats ----------
  {
    TablePrinter table({"|G|", "|Ef|", "dGPM DS (KB)", "disHHK DS (KB)"});
    for (size_t half : {env.Scaled(5000), env.Scaled(20000),
                        env.Scaled(80000)}) {
      // Two internally-acyclic halves (intra-half edges only increase the
      // id) joined by a fixed 64-edge crossing band whose labels align
      // with the query cycle: boundary refutations genuinely cross sites,
      // yet their number is bounded by the (fixed) band, not by |G|.
      GraphBuilder b;
      for (size_t i = 0; i < 2 * half; ++i) {
        b.AddNode(static_cast<Label>((i < half ? i : i - half) % 3));
      }
      for (size_t i = 0; i < 8 * half; ++i) {
        NodeId u = static_cast<NodeId>(rng.UniformInt(half));
        NodeId v = static_cast<NodeId>(rng.UniformInt(half));
        if (u != v) b.AddEdge(std::min(u, v), std::max(u, v));
        u = static_cast<NodeId>(half + rng.UniformInt(half));
        v = static_cast<NodeId>(half + rng.UniformInt(half));
        if (u != v) b.AddEdge(std::min(u, v), std::max(u, v));
      }
      // 32 crossing edges each way, id offset +1 so labels follow the query
      // chain 0 -> 1 -> 2 -> 0 while the union graph stays acyclic.
      for (size_t i = 0; i < 32; ++i) {
        b.AddEdge(static_cast<NodeId>(3 * i),
                  static_cast<NodeId>(half + 3 * i + 1));
        b.AddEdge(static_cast<NodeId>(half + 3 * i),
                  static_cast<NodeId>(3 * i + 1));
      }
      Graph g = std::move(b).Build();
      std::vector<uint32_t> assignment(g.NumNodes());
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        assignment[v] = v < half ? 0 : 1;
      }
      auto frag = Fragmentation::Create(g, assignment, 2);
      if (!frag.ok()) continue;
      Pattern q(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}}));
      DistOutcome dgpm, dishhk;
      if (!bench::RunOne(g, *frag, q, Algorithm::kDgpm, &dgpm, env)) continue;
      if (!bench::RunOne(g, *frag, q, Algorithm::kDisHhk, &dishhk, env)) continue;
      table.AddRow({"(" + std::to_string(g.NumNodes()) + "," +
                        std::to_string(g.NumEdges()) + ")",
                    std::to_string(frag->NumCrossingEdges()),
                    FormatDouble(dgpm.stats.data_bytes / 1024.0, 3),
                    FormatDouble(dishhk.stats.data_bytes / 1024.0, 3)});
    }
    table.Print(std::cout);
    bench::AppendTableJson(json, "ds_independence", table);
    std::cout << "\n(|Ef| fixed while |G| grows 16x: dGPM's DS is flat, "
                 "disHHK's scales with |G|.)\n";
  }
  json.WriteFile();
  return 0;
}
