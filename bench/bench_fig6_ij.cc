// Fig. 6(i)/6(j): PT and DS vs the number of fragments |F| on the
// Citation-like DAG. Paper setup: |G| = (1.4M, 3M), |Q| = (9, 13), d = 4,
// |F| in 4..20; here scaled down.
//
// Expected shape: dGPMd's PT falls as |F| grows and it ships orders of
// magnitude less data than disHHK, dMes and Match.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(140000), m = env.Scaled(300000);
  Graph g = CitationDag(n, m, kDefaultAlphabet, rng);
  std::cout << "Fig 6(i)/(j): citation DAG |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |Q| = (9,13), d = 4\n\n";

  std::vector<Pattern> queries;
  for (int i = 0; i < env.queries; ++i) {
    PatternSpec spec;
    spec.num_nodes = 9;
    spec.num_edges = 13;
    spec.kind = PatternKind::kDag;
    spec.dag_depth = 4;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpmDag, Algorithm::kDisHhk, Algorithm::kDMes,
      Algorithm::kMatch};
  bench::FigureTable fig("Fig 6(i): PT vs |F|", "Fig 6(j): DS vs |F|", "|F|",
                         algorithms);

  for (uint32_t sites : {4u, 8u, 12u, 16u, 20u}) {
    auto assignment = PartitionWithBoundaryRatio(g, sites, 0.25, rng);
    auto frag = Fragmentation::Create(g, assignment, sites);
    if (!frag.ok()) continue;
    for (const Pattern& q : queries) {
      for (Algorithm a : algorithms) {
        DistOutcome outcome;
        if (bench::RunOne(g, *frag, q, a, &outcome, env)) {
          fig.Add(std::to_string(sites), a, outcome);
        }
      }
    }
  }
  fig.Report("fig6_ij", env);
  return 0;
}
