// Fig. 6(k)/6(l): PT and DS vs the boundary ratio |Vf|/|V| on the
// Citation-like DAG. Paper setup: |F| = 8, |Q| = (9, 13), d = 4, |Vf| from
// 25% to 50%; here scaled down.
//
// Expected shape: dGPMd's PT is insensitive to |Vf| (contrast Fig. 6(e)
// where dGPM's PT grew ~81%); its DS grows with |Vf| but stays orders of
// magnitude below disHHK and dMes.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(140000), m = env.Scaled(300000);
  Graph g = CitationDag(n, m, kDefaultAlphabet, rng);
  std::cout << "Fig 6(k)/(l): citation DAG |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |F| = 8, |Q| = (9,13), d = 4\n\n";

  std::vector<Pattern> queries;
  for (int i = 0; i < env.queries; ++i) {
    PatternSpec spec;
    spec.num_nodes = 9;
    spec.num_edges = 13;
    spec.kind = PatternKind::kDag;
    spec.dag_depth = 4;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpmDag, Algorithm::kDisHhk, Algorithm::kDMes,
      Algorithm::kMatch};
  bench::FigureTable fig("Fig 6(k): PT vs |Vf|/|V|", "Fig 6(l): DS vs |Vf|/|V|",
                         "|Vf|/|V|", algorithms);

  for (int pct = 25; pct <= 50; pct += 5) {
    auto assignment = PartitionWithBoundaryRatio(g, 8, pct / 100.0, rng);
    auto frag = Fragmentation::Create(g, assignment, 8);
    if (!frag.ok()) continue;
    std::string x = FormatDouble(BoundaryNodeRatio(g, assignment), 2);
    for (const Pattern& q : queries) {
      for (Algorithm a : algorithms) {
        DistOutcome outcome;
        if (bench::RunOne(g, *frag, q, a, &outcome, env)) fig.Add(x, a, outcome);
      }
    }
  }
  fig.Report("fig6_kl", env);
  return 0;
}
