// Fig. 6(m)/6(n): PT and DS vs |F| on larger synthetic graphs. Paper setup:
// |G| = (30M, 120M), |Q| = (5, 10), |Vf| = 20%, |F| in 8..20; Match is
// omitted (it cannot hold G on one site); here scaled down.
//
// Expected shape: more processors => lower dGPM PT; dGPM ships orders of
// magnitude less data than disHHK and dMes.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(200000), m = env.Scaled(800000);
  Graph g = ClusteredGraph(n, m, kDefaultAlphabet, rng);
  std::cout << "Fig 6(m)/(n): synthetic |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |Q| = (5,10), |Vf| ~ 20%\n\n";

  std::vector<Pattern> queries;
  for (int i = 0; i < env.queries; ++i) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpm, Algorithm::kDisHhk, Algorithm::kDgpmNoOpt,
      Algorithm::kDMes};
  bench::FigureTable fig("Fig 6(m): PT vs |F|", "Fig 6(n): DS vs |F|", "|F|",
                         algorithms);

  for (uint32_t sites : {8u, 12u, 16u, 20u}) {
    auto assignment = PartitionWithBoundaryRatio(g, sites, 0.20, rng);
    auto frag = Fragmentation::Create(g, assignment, sites);
    if (!frag.ok()) continue;
    for (const Pattern& q : queries) {
      for (Algorithm a : algorithms) {
        DistOutcome outcome;
        if (bench::RunOne(g, *frag, q, a, &outcome, env)) {
          fig.Add(std::to_string(sites), a, outcome);
        }
      }
    }
  }
  fig.Report("fig6_mn", env);
  return 0;
}
