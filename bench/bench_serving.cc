// Serving benchmark: resident Engine (deploy once, query many) vs the
// one-shot DistributedMatch path that rebuilds the fragmentation, the
// cluster runtime, and the per-site actors for every pattern.
//
// Workload: the Fig. 6(a)/(b) default (web graph, |Q| = (5, 10) cyclic,
// |Vf| ~ 25%, 8 sites), served with dGPM, dMes, and Match.
//
// For each algorithm the same query stream runs three ways:
//   one-shot     DistributedMatch(g, assignment, ...) per query — pays
//                fragmentation + deployment + query every time.
//   engine 1st   the first pass over a fresh Engine — pays the lazy
//                per-family deployment build once, then queries.
//   engine 2..N  the steady-state pass — queries against fully resident
//                state (the amortized serving cost).
//
// The results and the DS/message accounting must be bit-identical across
// the paths, and the steady-state per-query wall time must be strictly
// below the one-shot wall time; the process exits nonzero otherwise, so
// CI guards the deploy-once contract, not just the trend. BENCH_serving.json
// records the setup-vs-query cost split (deploy_ms vs per-query ms) and
// the amortized queries/sec per algorithm.
//
// Three dgs::Server sections follow (PR 5):
//   concurrent   aggregate throughput of 1/2/4 client threads multiplexed
//                onto matching Engine replicas (cache off, so the numbers
//                measure concurrency, not memoization). Outcomes must stay
//                bit-identical to the sequential Engine. The >1x-at-4-
//                clients gate is asserted on runners with >= 4 hardware
//                threads and recorded (meta concurrency_assert) elsewhere.
//   cache        cold pass vs warm repeat pass over the resident Server
//                with the full cache: CI gate cached repeats >= 5x cheaper.
//   mixed        a realistic stream interleaving repeated and fresh
//                patterns (shared labels): measured result/label hit rates
//                and throughput; gate: every planned repeat hits.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

using namespace dgs;

bool SameAnswerAndShipment(const DistOutcome& a, const DistOutcome& b,
                           const std::string& what) {
  bool same = true;
  if (!(a.result == b.result)) {
    std::cerr << "MISMATCH [" << what << "]: simulation results differ\n";
    same = false;
  }
  auto check = [&](uint64_t x, uint64_t y, const char* field) {
    if (x != y) {
      std::cerr << "MISMATCH [" << what << "]: " << field << " " << x
                << " vs " << y << "\n";
      same = false;
    }
  };
  check(a.stats.data_bytes, b.stats.data_bytes, "data_bytes");
  check(a.stats.result_bytes, b.stats.result_bytes, "result_bytes");
  check(a.stats.data_messages, b.stats.data_messages, "data_messages");
  check(a.stats.result_messages, b.stats.result_messages, "result_messages");
  check(a.stats.rounds, b.stats.rounds, "rounds");
  check(a.counters.vars_shipped, b.counters.vars_shipped, "vars_shipped");
  return same;
}

}  // namespace

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(150000), m = env.Scaled(750000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  std::cout << "Serving: web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |Q| = (5,10), |Vf| ~ 25%, 8 sites, "
            << "threads " << env.threads << ", wire "
            << WireFormatName(env.wire) << "\n\n";

  std::vector<Pattern> queries;
  for (int i = 0; i < env.queries; ++i) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }
  const uint32_t sites = 8;
  auto assignment = PartitionWithBoundaryRatio(g, sites, 0.25, rng);
  if (queries.empty()) {
    std::cerr << "workload setup failed\n";
    return 1;
  }

  EngineOptions engine_options;
  engine_options.network = bench::BenchNetwork();
  engine_options.num_threads = env.threads;
  engine_options.wire_format = env.wire;
  engine_options.transport = env.transport;

  DistOptions oneshot_options;
  oneshot_options.network = bench::BenchNetwork();
  oneshot_options.num_threads = env.threads;
  oneshot_options.wire_format = env.wire;
  oneshot_options.transport = env.transport;

  bench::BenchJson json("serving");
  json.meta()
      .Num("scale", env.scale)
      .Int("queries", static_cast<uint64_t>(queries.size()))
      .Int("seed", env.seed)
      .Int("sites", sites)
      .Int("threads", env.threads)
      .Str("wire", WireFormatName(env.wire))
      .Str("workload", "fig6_ab_default");
  bench::MetaTransport(json, env);

  TablePrinter table({"algorithm", "deploy(ms)", "one-shot(ms/q)",
                      "engine 1st(ms/q)", "engine 2..N(ms/q)", "speedup",
                      "queries/s"});

  bool all_identical = true;
  bool all_faster = true;
  for (Algorithm algorithm :
       {Algorithm::kDgpm, Algorithm::kDMes, Algorithm::kMatch}) {
    QueryOptions query_options;
    query_options.algorithm = algorithm;
    DistOptions oneshot = oneshot_options;
    oneshot.algorithm = algorithm;

    // Resident path: deploy once...
    WallTimer deploy_timer;
    auto engine = Engine::Create(g, assignment, sites, engine_options);
    if (!engine.ok()) {
      std::cerr << "engine deploy failed: "
                << engine.status().ToString() << "\n";
      return 1;
    }
    const double deploy_ms = deploy_timer.ElapsedMillis();

    // ...then serve the stream three times: pass 0 is the engine's first
    // touch (builds the family's resident actors lazily); passes 1 and 2
    // are the 2nd..Nth-query steady state the serving model amortizes
    // toward. The faster steady pass is reported, so a scheduler hiccup
    // on a shared CI runner cannot flip the strictly-cheaper gate.
    double first_pass_ms = 0;
    double steady_ms = 0;
    std::vector<DistOutcome> served;
    for (int pass = 0; pass < 3; ++pass) {
      double pass_ms = 0;
      std::vector<DistOutcome> pass_outcomes;
      pass_outcomes.reserve(queries.size());
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        WallTimer timer;
        auto outcome = (*engine)->Match(queries[qi], query_options);
        pass_ms += timer.ElapsedMillis();
        if (!outcome.ok()) {
          std::cerr << "engine query failed: "
                    << outcome.status().ToString() << "\n";
          return 1;
        }
        pass_outcomes.push_back(std::move(outcome).value());
      }
      if (pass == 0) {
        first_pass_ms = pass_ms;
      } else if (pass == 1 || pass_ms < steady_ms) {
        steady_ms = pass_ms;
      }
      served = std::move(pass_outcomes);
    }

    // One-shot path: everything rebuilt per query.
    double oneshot_ms = 0;
    double ds_kb = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      WallTimer timer;
      auto outcome =
          DistributedMatch(g, assignment, sites, queries[qi], oneshot);
      const double query_ms = timer.ElapsedMillis();
      oneshot_ms += query_ms;
      if (!outcome.ok()) {
        std::cerr << "one-shot query failed: "
                  << outcome.status().ToString() << "\n";
        return 1;
      }
      const std::string what = std::string(AlgorithmName(algorithm)) + " q" +
                               std::to_string(qi);
      if (!SameAnswerAndShipment(served[qi], *outcome, what)) {
        all_identical = false;
      }
      ds_kb += static_cast<double>(outcome->stats.data_bytes) / 1024.0;
      json.AddRow()
          .Str("algorithm", AlgorithmName(algorithm))
          .Int("query", qi)
          .Num("oneshot_ms", query_ms)
          .Num("ds_kb",
               static_cast<double>(outcome->stats.data_bytes) / 1024.0);
    }

    const double q = static_cast<double>(queries.size());
    const double steady_per_query = steady_ms / q;
    const double oneshot_per_query = oneshot_ms / q;
    const double speedup =
        steady_per_query > 0 ? oneshot_per_query / steady_per_query : 0;
    const double qps =
        steady_per_query > 0 ? 1000.0 / steady_per_query : 0;
    if (steady_per_query >= oneshot_per_query) {
      std::cerr << "NOT FASTER [" << AlgorithmName(algorithm)
                << "]: resident " << steady_per_query << " ms/q vs one-shot "
                << oneshot_per_query << " ms/q\n";
      all_faster = false;
    }

    table.AddRow({std::string(AlgorithmName(algorithm)),
                  FormatDouble(deploy_ms, 2),
                  FormatDouble(oneshot_per_query, 2),
                  FormatDouble(first_pass_ms / q, 2),
                  FormatDouble(steady_per_query, 2),
                  FormatDouble(speedup, 2), FormatDouble(qps, 1)});
    json.AddRow()
        .Str("algorithm", AlgorithmName(algorithm))
        .Str("query", "total")
        .Num("deploy_ms", deploy_ms)
        .Num("oneshot_ms_per_query", oneshot_per_query)
        .Num("engine_first_ms_per_query", first_pass_ms / q)
        .Num("engine_steady_ms_per_query", steady_per_query)
        .Num("speedup_steady", speedup)
        .Num("queries_per_second", qps)
        .Num("ds_kb_per_query", ds_kb / q)
        .Num("deploy_seconds_engine",
             (*engine)->serving_stats().deploy_seconds);
  }

  std::cout << "== Amortized serving cost: one-shot vs resident Engine ==\n";
  table.Print(std::cout);
  std::cout << "\ncross-path results/DS accounting: "
            << (all_identical ? "IDENTICAL" : "MISMATCH")
            << "\nresident 2..N strictly below one-shot: "
            << (all_faster ? "YES" : "NO") << "\n";

  // ---------------------------------------------------------------------
  // Concurrent serving: 1/2/4 client threads, one Engine replica each,
  // cache OFF (pure concurrency). Every outcome must equal the sequential
  // reference; throughput at 4 clients must beat 1 client on multi-core
  // runners.
  // ---------------------------------------------------------------------
  QueryOptions dgpm_query;
  dgpm_query.algorithm = Algorithm::kDgpm;
  const int kRepsPerClient = 3;  // each client serves the stream 3x

  std::vector<DistOutcome> reference;
  {
    auto engine = Engine::Create(g, assignment, sites, engine_options);
    if (!engine.ok()) {
      std::cerr << "reference engine deploy failed\n";
      return 1;
    }
    for (const Pattern& q : queries) {
      auto outcome = (*engine)->Match(q, dgpm_query);
      if (!outcome.ok()) {
        std::cerr << "reference query failed\n";
        return 1;
      }
      reference.push_back(std::move(outcome).value());
    }
  }

  TablePrinter concurrent_table(
      {"clients", "replicas", "queries", "wall(ms)", "queries/s", "speedup"});
  const uint32_t hw_threads = ThreadPool::HardwareThreads();
  double qps_at_1 = 0, speedup_at_4 = 0;
  for (uint32_t clients : {1u, 2u, 4u}) {
    ServerOptions server_options;
    server_options.engine = engine_options;
    server_options.engine.num_threads = 1;  // scale across, not within
    server_options.num_replicas = clients;
    server_options.cache = CacheMode::kOff;
    server_options.max_queue = 4 * clients * queries.size() * kRepsPerClient;
    auto server = Server::Create(g, assignment, sites, server_options);
    if (!server.ok()) {
      std::cerr << "server deploy failed: " << server.status().ToString()
                << "\n";
      return 1;
    }
    // Warm every replica's lazily-built resident actors before timing: a
    // sequential warmup would leave replicas cold (one worker can drain a
    // one-at-a-time stream alone), so submit a burst that keeps all of
    // them busy.
    std::vector<ServerTicket> warmup;
    for (uint32_t c = 0; c < 2 * clients; ++c) {
      for (const Pattern& q : queries) {
        warmup.push_back((*server)->Submit(q, dgpm_query));
      }
    }
    for (auto& ticket : warmup) {
      if (!ticket.Wait().ok()) {
        std::cerr << "warmup query failed\n";
        return 1;
      }
    }

    // Two timed passes, keeping the faster one (as in the engine 2..N
    // pass above): any residual cold start or scheduler hiccup cannot
    // flip the CI gate.
    double wall_ms = 0;
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::thread> workers;
      std::vector<int> mismatches(clients, 0);
      WallTimer wall;
      for (uint32_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (int rep = 0; rep < kRepsPerClient; ++rep) {
            for (size_t qi = 0; qi < queries.size(); ++qi) {
              auto outcome = (*server)->Match(queries[qi], dgpm_query);
              if (!outcome.ok() ||
                  !SameAnswerAndShipment(
                      *outcome, reference[qi],
                      "concurrent c" + std::to_string(c) + " q" +
                          std::to_string(qi))) {
                ++mismatches[c];
              }
            }
          }
        });
      }
      for (auto& worker : workers) worker.join();
      const double pass_ms = wall.ElapsedMillis();
      if (pass == 0 || pass_ms < wall_ms) wall_ms = pass_ms;
      for (uint32_t c = 0; c < clients; ++c) {
        if (mismatches[c] != 0) all_identical = false;
      }
    }
    const double total = static_cast<double>(clients) * kRepsPerClient *
                         static_cast<double>(queries.size());
    const double qps = wall_ms > 0 ? total / (wall_ms / 1000.0) : 0;
    if (clients == 1) qps_at_1 = qps;
    const double speedup = qps_at_1 > 0 ? qps / qps_at_1 : 0;
    if (clients == 4) speedup_at_4 = speedup;
    concurrent_table.AddRow(
        {std::to_string(clients), std::to_string((*server)->num_replicas()),
         FormatDouble(total, 0), FormatDouble(wall_ms, 2),
         FormatDouble(qps, 1), FormatDouble(speedup, 2)});
    json.AddRow()
        .Str("mode", "concurrent")
        .Int("client_threads", clients)
        .Num("wall_ms", wall_ms)
        .Num("queries_per_second", qps)
        .Num("speedup_vs_1_client", speedup);
  }
  // The >1x gate needs real cores; smaller runners record the measurement.
  const bool assert_concurrency = hw_threads >= 4;
  const bool concurrency_ok = !assert_concurrency || speedup_at_4 > 1.0;
  if (!concurrency_ok) {
    std::cerr << "NOT CONCURRENT: aggregate speedup at 4 clients = "
              << speedup_at_4 << " (<= 1) on a " << hw_threads
              << "-thread machine\n";
  }
  std::cout << "\n== Concurrent serving (cache off, engine threads 1) ==\n";
  concurrent_table.Print(std::cout);
  std::cout << "aggregate >1x at 4 clients: "
            << (assert_concurrency ? (concurrency_ok ? "YES" : "NO")
                                   : "skipped (needs >= 4 hw threads)")
            << "\n";

  // ---------------------------------------------------------------------
  // Cache: cold pass vs warm repeat pass (full cache, 1 replica). The CI
  // gate: a cached repeat query is >= 5x cheaper than its cold run.
  // ---------------------------------------------------------------------
  double cold_ms = 0, warm_ms = 0;
  bool cache_identical = true;
  {
    ServerOptions server_options;
    server_options.engine = engine_options;
    server_options.num_replicas = 1;
    server_options.cache = CacheMode::kFull;
    auto server = Server::Create(g, assignment, sites, server_options);
    if (!server.ok()) {
      std::cerr << "cache server deploy failed\n";
      return 1;
    }
    std::vector<DistOutcome> cold;
    WallTimer cold_timer;
    for (const Pattern& q : queries) {
      auto outcome = (*server)->Match(q, dgpm_query);
      if (!outcome.ok()) {
        std::cerr << "cold query failed\n";
        return 1;
      }
      cold.push_back(std::move(outcome).value());
    }
    cold_ms = cold_timer.ElapsedMillis();
    WallTimer warm_timer;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto outcome = (*server)->Match(queries[qi], dgpm_query);
      if (!outcome.ok() ||
          !SameAnswerAndShipment(*outcome, cold[qi],
                                 "cached q" + std::to_string(qi))) {
        cache_identical = false;
      }
    }
    warm_ms = warm_timer.ElapsedMillis();
    const ServerStats stats = (*server)->stats();
    if (stats.cache_result_hits < queries.size()) {
      std::cerr << "cache MISSED repeats: " << stats.cache_result_hits
                << " hits for " << queries.size() << " repeated queries\n";
      cache_identical = false;
    }
  }
  const double q_count = static_cast<double>(queries.size());
  const double cached_speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
  const bool cache_fast = warm_ms * 5.0 <= cold_ms;
  if (!cache_fast) {
    std::cerr << "CACHE NOT >=5x: cold " << cold_ms / q_count
              << " ms/q vs cached " << warm_ms / q_count << " ms/q\n";
  }
  std::cout << "\n== Result cache: cold vs cached repeat (ms/query) ==\n"
            << "cold " << FormatDouble(cold_ms / q_count, 3) << ", cached "
            << FormatDouble(warm_ms / q_count, 4) << ", speedup "
            << FormatDouble(cached_speedup, 1) << "x ("
            << (cache_fast ? "PASS" : "FAIL") << " >= 5x gate)\n";
  json.AddRow()
      .Str("mode", "cache")
      .Num("cold_ms_per_query", cold_ms / q_count)
      .Num("cached_ms_per_query", warm_ms / q_count)
      .Num("cached_speedup", cached_speedup);

  // ---------------------------------------------------------------------
  // Mixed stream: fresh and repeated patterns interleaved (2:1), sharing
  // the workload's label alphabet — cache effectiveness on a realistic
  // stream rather than identical repeats. Every planned repeat must hit.
  // ---------------------------------------------------------------------
  std::vector<Pattern> fresh = queries;
  for (int i = 0; fresh.size() < 8 && i < 32; ++i) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) fresh.push_back(*q);
  }
  // Positions 0, 1 of each triple serve the next fresh pattern in round
  // robin; position 2 repeats an earlier stream entry, so ~1/3 of the
  // stream is known-repeated (plus wrap-around repeats once the fresh pool
  // is exhausted).
  std::vector<size_t> stream;  // indexes into fresh
  std::set<size_t> seen;
  size_t next_fresh = 0;
  size_t planned_repeats = 0;
  for (size_t i = 0; i < 3 * fresh.size(); ++i) {
    const size_t index =
        i % 3 == 2 ? stream[i / 3] : (next_fresh++) % fresh.size();
    if (seen.count(index) > 0) ++planned_repeats;
    seen.insert(index);
    stream.push_back(index);
  }
  uint64_t mixed_hits = 0, mixed_misses = 0;
  uint64_t label_hits = 0, label_misses = 0;
  double mixed_qps = 0;
  bool mixed_ok = true;
  {
    ServerOptions server_options;
    server_options.engine = engine_options;
    server_options.num_replicas = 1;
    server_options.cache = CacheMode::kFull;
    auto server = Server::Create(g, assignment, sites, server_options);
    if (!server.ok()) {
      std::cerr << "mixed server deploy failed\n";
      return 1;
    }
    WallTimer wall;
    for (size_t index : stream) {
      if (!(*server)->Match(fresh[index], dgpm_query).ok()) mixed_ok = false;
    }
    const double wall_ms = wall.ElapsedMillis();
    mixed_qps = wall_ms > 0
                    ? static_cast<double>(stream.size()) / (wall_ms / 1000.0)
                    : 0;
    const ServerStats stats = (*server)->stats();
    mixed_hits = stats.cache_result_hits;
    mixed_misses = stats.cache_result_misses;
    label_hits = stats.cache_label_hits;
    label_misses = stats.cache_label_misses;
    // Structurally identical "fresh" extractions can only add hits, so the
    // planned repeats are a lower bound.
    if (mixed_hits < planned_repeats) {
      std::cerr << "MIXED STREAM under-hit: " << mixed_hits << " hits for "
                << planned_repeats << " planned repeats\n";
      mixed_ok = false;
    }
  }
  const double mixed_total = static_cast<double>(mixed_hits + mixed_misses);
  const double result_hit_rate =
      mixed_total > 0 ? static_cast<double>(mixed_hits) / mixed_total : 0;
  const double label_total = static_cast<double>(label_hits + label_misses);
  const double label_hit_rate =
      label_total > 0 ? static_cast<double>(label_hits) / label_total : 0;
  std::cout << "\n== Mixed stream (fresh + repeats, shared labels) ==\n"
            << stream.size() << " queries over " << fresh.size()
            << " patterns: result hit rate "
            << FormatDouble(result_hit_rate * 100, 1) << "% (planned repeats "
            << planned_repeats << "), label hit rate "
            << FormatDouble(label_hit_rate * 100, 1) << "%, "
            << FormatDouble(mixed_qps, 1) << " queries/s\n";
  json.AddRow()
      .Str("mode", "mixed")
      .Int("queries", static_cast<uint64_t>(stream.size()))
      .Int("planned_repeats", static_cast<uint64_t>(planned_repeats))
      .Int("result_hits", mixed_hits)
      .Int("result_misses", mixed_misses)
      .Num("result_hit_rate", result_hit_rate)
      .Num("label_hit_rate", label_hit_rate)
      .Num("queries_per_second", mixed_qps);

  // ---------------------------------------------------------------------
  // Open-loop arrivals: a Poisson stream fired at the server WITHOUT
  // waiting for completions (open loop: arrival times never adapt to
  // service time, unlike the closed loops above), per admission policy
  // over a deliberately small queue so overload rejection engages. The
  // latency percentiles come from the server's own HDR histograms
  // (ServerStats::latency), which is also what `stats`, the Prometheus
  // exposition, and this JSON report — one source of truth.
  //
  // Gates: (1) the completion classes partition `submitted` EXACTLY —
  // every open-loop arrival is accounted served, failed, expired, or
  // rejected; (2) whenever anything was served, the served-e2e histogram
  // holds exactly `served` samples and its p99 is finite and positive.
  // ---------------------------------------------------------------------
  // Calibrate the arrival rate off the measured steady-state service
  // rate: ~2x the (cache-off, 2-replica) capacity, so the queue saturates
  // and sheds without the bench wall time exploding.
  double openloop_service_ms = 1.0;
  {
    ServerOptions server_options;
    server_options.engine = engine_options;
    server_options.engine.num_threads = 1;
    server_options.num_replicas = 1;
    server_options.cache = CacheMode::kOff;
    auto server = Server::Create(g, assignment, sites, server_options);
    if (!server.ok()) {
      std::cerr << "open-loop calibration deploy failed\n";
      return 1;
    }
    for (const Pattern& q : queries) (void)(*server)->Match(q, dgpm_query);
    WallTimer timer;
    for (const Pattern& q : queries) (void)(*server)->Match(q, dgpm_query);
    openloop_service_ms =
        std::max(0.05, timer.ElapsedMillis() /
                           static_cast<double>(queries.size()));
  }

  TablePrinter openloop_table({"policy", "arrivals", "served", "rejected",
                               "p50(ms)", "p95(ms)", "p99(ms)",
                               "queue p50(ms)"});
  bool openloop_ok = true;
  const size_t openloop_arrivals =
      std::max<size_t>(40, 8 * queries.size());
  for (AdmissionPolicy policy :
       {AdmissionPolicy::kFifo, AdmissionPolicy::kPriority}) {
    ServerOptions server_options;
    server_options.engine = engine_options;
    server_options.engine.num_threads = 1;
    server_options.num_replicas = 2;
    server_options.cache = CacheMode::kOff;
    server_options.max_queue = 4;  // small door: overload must shed
    server_options.policy = policy;
    auto server = Server::Create(g, assignment, sites, server_options);
    if (!server.ok()) {
      std::cerr << "open-loop server deploy failed\n";
      return 1;
    }
    // Deterministic Poisson process: exponential interarrival gaps from
    // the bench seed, mean = service_ms / (2 * replicas) => ~2x capacity.
    Rng arrival_rng(env.seed + static_cast<uint64_t>(policy));
    const double mean_gap_ms = openloop_service_ms / 4.0;
    std::vector<ServerTicket> tickets;
    tickets.reserve(openloop_arrivals);
    const auto t0 = std::chrono::steady_clock::now();
    double next_arrival_ms = 0;
    for (size_t a = 0; a < openloop_arrivals; ++a) {
      next_arrival_ms +=
          -mean_gap_ms * std::log(1.0 - arrival_rng.UniformDouble());
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       next_arrival_ms)));
      tickets.push_back(
          (*server)->Submit(queries[a % queries.size()], dgpm_query));
    }
    for (auto& ticket : tickets) (void)ticket.Wait();

    const ServerStats stats = (*server)->StatsSnapshot();
    const uint64_t completed = stats.served + stats.failed + stats.expired +
                               stats.rejected_overload +
                               stats.rejected_shutdown;
    if (stats.submitted != openloop_arrivals || completed != stats.submitted) {
      std::cerr << "OPEN-LOOP ACCOUNTING [" << AdmissionPolicyName(policy)
                << "]: submitted " << stats.submitted << " (want "
                << openloop_arrivals << "), completion classes sum to "
                << completed << "\n";
      openloop_ok = false;
    }
    const obs::HistogramSnapshot& e2e = stats.latency.e2e_served;
    if (e2e.count() != stats.served) {
      std::cerr << "OPEN-LOOP HISTOGRAM [" << AdmissionPolicyName(policy)
                << "]: e2e_served holds " << e2e.count() << " samples for "
                << stats.served << " served queries\n";
      openloop_ok = false;
    }
    const double p50 = e2e.QuantileMillis(0.5);
    const double p95 = e2e.QuantileMillis(0.95);
    const double p99 = e2e.QuantileMillis(0.99);
    if (stats.served > 0 && (!std::isfinite(p99) || p99 <= 0)) {
      std::cerr << "OPEN-LOOP P99 [" << AdmissionPolicyName(policy)
                << "]: not finite/positive: " << p99 << "\n";
      openloop_ok = false;
    }
    const double rejection_rate =
        static_cast<double>(stats.rejected_overload) /
        static_cast<double>(openloop_arrivals);
    openloop_table.AddRow(
        {AdmissionPolicyName(policy), std::to_string(openloop_arrivals),
         std::to_string(stats.served), std::to_string(stats.rejected_overload),
         FormatDouble(p50, 2), FormatDouble(p95, 2), FormatDouble(p99, 2),
         FormatDouble(stats.latency.queue_wait.QuantileMillis(0.5), 3)});
    json.AddRow()
        .Str("mode", "openloop")
        .Str("policy", AdmissionPolicyName(policy))
        .Int("arrivals", openloop_arrivals)
        .Int("served", stats.served)
        .Int("rejected_overload", stats.rejected_overload)
        .Int("expired", stats.expired)
        .Num("mean_gap_ms", mean_gap_ms)
        .Num("e2e_p50_ms", p50)
        .Num("e2e_p95_ms", p95)
        .Num("e2e_p99_ms", p99)
        .Num("queue_wait_p50_ms",
             stats.latency.queue_wait.QuantileMillis(0.5))
        .Num("queue_wait_p99_ms",
             stats.latency.queue_wait.QuantileMillis(0.99))
        .Num("rejection_rate", rejection_rate);
  }
  std::cout << "\n== Open-loop Poisson arrivals (~2x capacity, queue=4) ==\n";
  openloop_table.Print(std::cout);
  std::cout << "accounting exact + p99 finite: "
            << (openloop_ok ? "PASS" : "FAIL") << "\n";

  // ---------------------------------------------------------------------
  // Tracing cost gates. (1) Micro: a disabled instrument site (TraceSpan
  // ctor+dtor behind a null Active()) must cost nanoseconds — no
  // allocation, no timestamp. (2) Macro: a serving pass after tracing was
  // enabled and disabled again must stay within 2% of the passes before
  // (min-of-3 both sides: the instrument discipline leaves no residual
  // cost behind). Both land in the JSON; both gate the exit status.
  // ---------------------------------------------------------------------
  const int kOverheadPasses = 3;
  double traced_ms = 0, off_before_ms = 0, off_after_ms = 0;
  {
    ServerOptions server_options;
    server_options.engine = engine_options;
    server_options.num_replicas = 1;
    server_options.cache = CacheMode::kOff;
    auto server = Server::Create(g, assignment, sites, server_options);
    if (!server.ok()) {
      std::cerr << "overhead server deploy failed\n";
      return 1;
    }
    auto pass_ms = [&]() {
      WallTimer timer;
      for (const Pattern& q : queries) {
        if (!(*server)->Match(q, dgpm_query).ok()) return -1.0;
      }
      return timer.ElapsedMillis();
    };
    (void)pass_ms();  // warm the resident actors
    for (int p = 0; p < kOverheadPasses; ++p) {
      const double ms = pass_ms();
      if (ms < 0) return 1;
      if (p == 0 || ms < off_before_ms) off_before_ms = ms;
    }
    obs::TraceRecorder recorder;
    obs::TraceRecorder::Install(&recorder);
    traced_ms = pass_ms();
    obs::TraceRecorder::Uninstall();
    if (traced_ms < 0 || recorder.recorded() == 0) {
      std::cerr << "TRACING captured no events in the traced pass\n";
      return 1;
    }
    for (int p = 0; p < kOverheadPasses; ++p) {
      const double ms = pass_ms();
      if (ms < 0) return 1;
      if (p == 0 || ms < off_after_ms) off_after_ms = ms;
    }
  }
  // 2% + a 0.2 ms absolute floor so a near-zero baseline cannot flake.
  const bool overhead_ok =
      off_after_ms <= off_before_ms * 1.02 + 0.2;
  if (!overhead_ok) {
    std::cerr << "TRACING-OFF OVERHEAD: " << off_after_ms
              << " ms/pass after enable+disable vs " << off_before_ms
              << " ms/pass before (> 2%)\n";
  }

  // Micro: average cost of one disabled span + one disabled instant.
  uint64_t disabled_ns = 0;
  {
    constexpr int kSites = 200000;
    obs::TraceRecorder::Uninstall();
    WallTimer timer;
    for (int i = 0; i < kSites; ++i) {
      obs::TraceSpan span("bench", "bench.disabled");
      span.Arg("i", static_cast<uint64_t>(i));
      obs::TraceInstant("bench", "bench.disabled_instant");
    }
    disabled_ns = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9 /
                                        kSites);
  }
  // A null-check pair plus arg skip: single-digit ns on anything modern;
  // 200 ns rejects an accidental allocation or clock read, not noise.
  const bool disabled_cheap = disabled_ns <= 200;
  if (!disabled_cheap) {
    std::cerr << "DISABLED INSTRUMENT SITE costs " << disabled_ns
              << " ns (> 200 ns: something beyond the null check runs)\n";
  }
  std::cout << "\n== Tracing cost ==\n"
            << "serving pass: off " << FormatDouble(off_before_ms, 2)
            << " ms -> traced " << FormatDouble(traced_ms, 2)
            << " ms -> off again " << FormatDouble(off_after_ms, 2)
            << " ms (" << (overhead_ok ? "PASS" : "FAIL")
            << " <= 2% gate)\ndisabled site: " << disabled_ns
            << " ns/span+instant (" << (disabled_cheap ? "PASS" : "FAIL")
            << " <= 200 ns gate)\n";
  json.AddRow()
      .Str("mode", "tracing_overhead")
      .Num("off_before_ms_per_pass", off_before_ms)
      .Num("traced_ms_per_pass", traced_ms)
      .Num("off_after_ms_per_pass", off_after_ms)
      .Int("disabled_site_ns", disabled_ns);

  json.meta()
      .Str("identical", all_identical ? "true" : "false")
      .Str("resident_faster", all_faster ? "true" : "false")
      .Int("hw_threads", hw_threads)
      .Str("concurrency_assert", assert_concurrency ? "enforced" : "skipped")
      .Num("concurrent_speedup_at_4", speedup_at_4)
      .Str("cache_5x", cache_fast ? "true" : "false")
      .Num("mixed_result_hit_rate", result_hit_rate)
      .Str("openloop_gates", openloop_ok ? "pass" : "fail")
      .Str("tracing_overhead_gate", overhead_ok ? "pass" : "fail")
      .Int("disabled_site_ns", disabled_ns);
  json.WriteFile();
  const bool ok = all_identical && all_faster && concurrency_ok &&
                  cache_identical && cache_fast && mixed_ok && openloop_ok &&
                  overhead_ok && disabled_cheap;
  return ok ? 0 : 1;
}
