// Serving benchmark: resident Engine (deploy once, query many) vs the
// one-shot DistributedMatch path that rebuilds the fragmentation, the
// cluster runtime, and the per-site actors for every pattern.
//
// Workload: the Fig. 6(a)/(b) default (web graph, |Q| = (5, 10) cyclic,
// |Vf| ~ 25%, 8 sites), served with dGPM, dMes, and Match.
//
// For each algorithm the same query stream runs three ways:
//   one-shot     DistributedMatch(g, assignment, ...) per query — pays
//                fragmentation + deployment + query every time.
//   engine 1st   the first pass over a fresh Engine — pays the lazy
//                per-family deployment build once, then queries.
//   engine 2..N  the steady-state pass — queries against fully resident
//                state (the amortized serving cost).
//
// The results and the DS/message accounting must be bit-identical across
// the paths, and the steady-state per-query wall time must be strictly
// below the one-shot wall time; the process exits nonzero otherwise, so
// CI guards the deploy-once contract, not just the trend. BENCH_serving.json
// records the setup-vs-query cost split (deploy_ms vs per-query ms) and
// the amortized queries/sec per algorithm.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace dgs;

bool SameAnswerAndShipment(const DistOutcome& a, const DistOutcome& b,
                           const std::string& what) {
  bool same = true;
  if (!(a.result == b.result)) {
    std::cerr << "MISMATCH [" << what << "]: simulation results differ\n";
    same = false;
  }
  auto check = [&](uint64_t x, uint64_t y, const char* field) {
    if (x != y) {
      std::cerr << "MISMATCH [" << what << "]: " << field << " " << x
                << " vs " << y << "\n";
      same = false;
    }
  };
  check(a.stats.data_bytes, b.stats.data_bytes, "data_bytes");
  check(a.stats.result_bytes, b.stats.result_bytes, "result_bytes");
  check(a.stats.data_messages, b.stats.data_messages, "data_messages");
  check(a.stats.result_messages, b.stats.result_messages, "result_messages");
  check(a.stats.rounds, b.stats.rounds, "rounds");
  check(a.counters.vars_shipped, b.counters.vars_shipped, "vars_shipped");
  return same;
}

}  // namespace

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(150000), m = env.Scaled(750000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  std::cout << "Serving: web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |Q| = (5,10), |Vf| ~ 25%, 8 sites, "
            << "threads " << env.threads << ", wire "
            << WireFormatName(env.wire) << "\n\n";

  std::vector<Pattern> queries;
  for (int i = 0; i < env.queries; ++i) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }
  const uint32_t sites = 8;
  auto assignment = PartitionWithBoundaryRatio(g, sites, 0.25, rng);
  if (queries.empty()) {
    std::cerr << "workload setup failed\n";
    return 1;
  }

  EngineOptions engine_options;
  engine_options.network = bench::BenchNetwork();
  engine_options.num_threads = env.threads;
  engine_options.wire_format = env.wire;

  DistOptions oneshot_options;
  oneshot_options.network = bench::BenchNetwork();
  oneshot_options.num_threads = env.threads;
  oneshot_options.wire_format = env.wire;

  bench::BenchJson json("serving");
  json.meta()
      .Num("scale", env.scale)
      .Int("queries", static_cast<uint64_t>(queries.size()))
      .Int("seed", env.seed)
      .Int("sites", sites)
      .Int("threads", env.threads)
      .Str("wire", WireFormatName(env.wire))
      .Str("workload", "fig6_ab_default");

  TablePrinter table({"algorithm", "deploy(ms)", "one-shot(ms/q)",
                      "engine 1st(ms/q)", "engine 2..N(ms/q)", "speedup",
                      "queries/s"});

  bool all_identical = true;
  bool all_faster = true;
  for (Algorithm algorithm :
       {Algorithm::kDgpm, Algorithm::kDMes, Algorithm::kMatch}) {
    QueryOptions query_options;
    query_options.algorithm = algorithm;
    DistOptions oneshot = oneshot_options;
    oneshot.algorithm = algorithm;

    // Resident path: deploy once...
    WallTimer deploy_timer;
    auto engine = Engine::Create(g, assignment, sites, engine_options);
    if (!engine.ok()) {
      std::cerr << "engine deploy failed: "
                << engine.status().ToString() << "\n";
      return 1;
    }
    const double deploy_ms = deploy_timer.ElapsedMillis();

    // ...then serve the stream three times: pass 0 is the engine's first
    // touch (builds the family's resident actors lazily); passes 1 and 2
    // are the 2nd..Nth-query steady state the serving model amortizes
    // toward. The faster steady pass is reported, so a scheduler hiccup
    // on a shared CI runner cannot flip the strictly-cheaper gate.
    double first_pass_ms = 0;
    double steady_ms = 0;
    std::vector<DistOutcome> served;
    for (int pass = 0; pass < 3; ++pass) {
      double pass_ms = 0;
      std::vector<DistOutcome> pass_outcomes;
      pass_outcomes.reserve(queries.size());
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        WallTimer timer;
        auto outcome = (*engine)->Match(queries[qi], query_options);
        pass_ms += timer.ElapsedMillis();
        if (!outcome.ok()) {
          std::cerr << "engine query failed: "
                    << outcome.status().ToString() << "\n";
          return 1;
        }
        pass_outcomes.push_back(std::move(outcome).value());
      }
      if (pass == 0) {
        first_pass_ms = pass_ms;
      } else if (pass == 1 || pass_ms < steady_ms) {
        steady_ms = pass_ms;
      }
      served = std::move(pass_outcomes);
    }

    // One-shot path: everything rebuilt per query.
    double oneshot_ms = 0;
    double ds_kb = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      WallTimer timer;
      auto outcome =
          DistributedMatch(g, assignment, sites, queries[qi], oneshot);
      const double query_ms = timer.ElapsedMillis();
      oneshot_ms += query_ms;
      if (!outcome.ok()) {
        std::cerr << "one-shot query failed: "
                  << outcome.status().ToString() << "\n";
        return 1;
      }
      const std::string what = std::string(AlgorithmName(algorithm)) + " q" +
                               std::to_string(qi);
      if (!SameAnswerAndShipment(served[qi], *outcome, what)) {
        all_identical = false;
      }
      ds_kb += static_cast<double>(outcome->stats.data_bytes) / 1024.0;
      json.AddRow()
          .Str("algorithm", AlgorithmName(algorithm))
          .Int("query", qi)
          .Num("oneshot_ms", query_ms)
          .Num("ds_kb",
               static_cast<double>(outcome->stats.data_bytes) / 1024.0);
    }

    const double q = static_cast<double>(queries.size());
    const double steady_per_query = steady_ms / q;
    const double oneshot_per_query = oneshot_ms / q;
    const double speedup =
        steady_per_query > 0 ? oneshot_per_query / steady_per_query : 0;
    const double qps =
        steady_per_query > 0 ? 1000.0 / steady_per_query : 0;
    if (steady_per_query >= oneshot_per_query) {
      std::cerr << "NOT FASTER [" << AlgorithmName(algorithm)
                << "]: resident " << steady_per_query << " ms/q vs one-shot "
                << oneshot_per_query << " ms/q\n";
      all_faster = false;
    }

    table.AddRow({std::string(AlgorithmName(algorithm)),
                  FormatDouble(deploy_ms, 2),
                  FormatDouble(oneshot_per_query, 2),
                  FormatDouble(first_pass_ms / q, 2),
                  FormatDouble(steady_per_query, 2),
                  FormatDouble(speedup, 2), FormatDouble(qps, 1)});
    json.AddRow()
        .Str("algorithm", AlgorithmName(algorithm))
        .Str("query", "total")
        .Num("deploy_ms", deploy_ms)
        .Num("oneshot_ms_per_query", oneshot_per_query)
        .Num("engine_first_ms_per_query", first_pass_ms / q)
        .Num("engine_steady_ms_per_query", steady_per_query)
        .Num("speedup_steady", speedup)
        .Num("queries_per_second", qps)
        .Num("ds_kb_per_query", ds_kb / q)
        .Num("deploy_seconds_engine",
             (*engine)->serving_stats().deploy_seconds);
  }

  std::cout << "== Amortized serving cost: one-shot vs resident Engine ==\n";
  table.Print(std::cout);
  std::cout << "\ncross-path results/DS accounting: "
            << (all_identical ? "IDENTICAL" : "MISMATCH")
            << "\nresident 2..N strictly below one-shot: "
            << (all_faster ? "YES" : "NO") << "\n";
  json.meta()
      .Str("identical", all_identical ? "true" : "false")
      .Str("resident_faster", all_faster ? "true" : "false");
  json.WriteFile();
  return (all_identical && all_faster) ? 0 : 1;
}
