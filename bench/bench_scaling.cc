// Parallel-runtime scaling: wall-clock throughput vs executor width.
//
// Two sections, both sweeping num_threads over {1, 2, 4, 8}:
//
//   cluster   an 8-worker dGPM run on the paper's random-graph workload
//             (Section 6 setup, laptop-scaled). Wall-clock time of the
//             whole Run() — with the pooled executor the per-round
//             critical path replaces the sequential sum over sites.
//   kernel    the centralized HHK counting kernel (ComputeSimulation) on
//             the Fig. 6 default workload (web graph, |Q| = (5, 10)),
//             broken down per phase: the support-counter build and the
//             refinement worklist drain both parallelize now (partitioned
//             chaotic relaxation, simulation/relax.h), and each phase gets
//             its own row set ("kernel_build" / "kernel_refine") next to
//             the end-to-end "kernel" rows so the refinement-tail speedup
//             is tracked across PRs.
//
// Every width is verified against the num_threads = 1 reference: identical
// SimulationResult and bit-identical message/byte accounting (the runtime's
// determinism contract). The ASCII tables are mirrored into
// BENCH_scaling.json with the measured speedups, so successive PRs can
// track the trajectory.
//
// Speedup assertion: on a machine with >= 8 hardware threads at full scale
// (DGS_SCALE >= 1) the kernel must reach >= 2x end-to-end and the
// refinement drain >= 1.8x at 8 threads; on smaller runners (CI containers
// are often 1-4 cores) the assertion is skipped — recorded as such in the
// JSON meta — instead of failing, since speedup is bounded by
// hardware_threads. The determinism check always runs.
//
// Extra knobs: DGS_REPS (wall-clock repetitions per width, default 3).

#include <algorithm>

#include "bench_common.h"

namespace {

using namespace dgs;

struct Measurement {
  double wall_seconds = 0;  // best of DGS_REPS runs
  DistOutcome outcome;
};

bool SameAccounting(const DistOutcome& a, const DistOutcome& b) {
  return a.result == b.result && a.stats.data_bytes == b.stats.data_bytes &&
         a.stats.control_bytes == b.stats.control_bytes &&
         a.stats.result_bytes == b.stats.result_bytes &&
         a.stats.data_messages == b.stats.data_messages &&
         a.stats.control_messages == b.stats.control_messages &&
         a.stats.result_messages == b.stats.result_messages &&
         a.stats.rounds == b.stats.rounds &&
         a.counters.vars_shipped == b.counters.vars_shipped &&
         a.counters.push_count == b.counters.push_count &&
         a.counters.equation_units == b.counters.equation_units;
}

int Reps() {
  if (const char* s = std::getenv("DGS_REPS")) {
    int reps = std::atoi(s);
    if (reps > 0) return reps;
  }
  return 3;
}

}  // namespace

int main() {
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);
  const int reps = Reps();
  const std::vector<uint32_t> widths = {1, 2, 4, 8};
  const uint32_t hardware = ThreadPool::HardwareThreads();

  bench::BenchJson json("scaling");
  json.meta()
      .Int("hardware_threads", hardware)
      .Num("scale", env.scale)
      .Int("seed", env.seed)
      .Int("reps", static_cast<uint64_t>(reps));
  bench::MetaTransport(json, env);

  std::cout << "Parallel-runtime scaling (hardware threads: " << hardware
            << ", reps: " << reps << ")\n\n";

  bool all_identical = true;

  // --- Section 1: 8-worker dGPM end-to-end -------------------------------
  {
    const size_t n = env.Scaled(40000), m = env.Scaled(200000);
    Graph g = RandomGraph(n, m, kDefaultAlphabet, rng);
    auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
    auto frag = Fragmentation::Create(g, assignment, 8);
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (!frag.ok() || !q.ok()) {
      std::cerr << "setup failed for the cluster section\n";
      return 1;
    }
    std::cout << "Section 1: dGPM, 8 workers, random graph |G| = ("
              << g.NumNodes() << ", " << g.NumEdges() << ")\n";

    std::vector<Measurement> results;
    for (uint32_t threads : widths) {
      ClusterOptions runtime(bench::BenchNetwork());
      runtime.num_threads = threads;
      runtime.wire_format = env.wire;
      runtime.transport = env.transport;
      Measurement m2;
      m2.wall_seconds = 1e100;
      for (int r = 0; r < reps; ++r) {
        WallTimer timer;
        DistOutcome outcome = RunDgpm(*frag, *q, DgpmConfig{}, runtime);
        double wall = timer.ElapsedSeconds();
        if (wall < m2.wall_seconds) {
          m2.wall_seconds = wall;
        }
        m2.outcome = std::move(outcome);
      }
      results.push_back(std::move(m2));
    }

    TablePrinter table({"threads", "wall(ms)", "speedup", "rounds/s",
                        "identical"});
    for (size_t i = 0; i < widths.size(); ++i) {
      const bool identical = SameAccounting(results[0].outcome,
                                            results[i].outcome);
      all_identical = all_identical && identical;
      const double speedup = results[0].wall_seconds /
                             std::max(results[i].wall_seconds, 1e-12);
      const double rounds_per_s =
          results[i].outcome.stats.rounds /
          std::max(results[i].wall_seconds, 1e-12);
      table.AddRow({std::to_string(widths[i]),
                    FormatDouble(results[i].wall_seconds * 1e3, 2),
                    FormatDouble(speedup, 2) + "x",
                    FormatDouble(rounds_per_s, 1),
                    identical ? "yes" : "NO"});
      json.AddRow()
          .Str("section", "cluster_dgpm")
          .Int("workers", 8)
          .Int("threads", widths[i])
          .Num("wall_ms", results[i].wall_seconds * 1e3)
          .Num("speedup", speedup)
          .Num("rounds_per_s", rounds_per_s)
          .Int("identical", identical ? 1 : 0);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // --- Section 2: centralized counting kernel, per-phase ------------------
  double kernel_speedup_8 = 0, refine_speedup_8 = 0;
  {
    // Fig. 6(a)/(b) default workload: web graph, |Q| = (5, 10) cyclic.
    const size_t n = env.Scaled(150000), m = env.Scaled(750000);
    Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (!q.ok()) {
      std::cerr << "setup failed for the kernel section\n";
      return 1;
    }
    std::cout << "Section 2: ComputeSimulation, web graph |G| = ("
              << g.NumNodes() << ", " << g.NumEdges() << ")\n";

    SimulationResult reference;
    double base_wall = 0, base_build = 0, base_drain = 0;
    TablePrinter table({"threads", "wall(ms)", "speedup", "build(ms)",
                        "build spd", "drain(ms)", "drain spd", "identical"});
    for (uint32_t threads : widths) {
      SimulationPhases phases;
      SimulationOptions options;
      options.num_threads = threads;
      options.phases = &phases;
      double best = 1e100;
      SimulationPhases best_phases;
      SimulationResult result;
      for (int r = 0; r < reps; ++r) {
        WallTimer timer;
        result = ComputeSimulation(*q, g, options);
        double wall = timer.ElapsedSeconds();
        if (wall < best) {
          best = wall;
          best_phases = phases;
        }
      }
      if (threads == widths.front()) {
        reference = result;
        base_wall = best;
        base_build = best_phases.build_seconds;
        base_drain = best_phases.drain_seconds;
      }
      const bool identical = result == reference;
      all_identical = all_identical && identical;
      const double speedup = base_wall / std::max(best, 1e-12);
      const double build_speedup =
          base_build / std::max(best_phases.build_seconds, 1e-12);
      const double drain_speedup =
          base_drain / std::max(best_phases.drain_seconds, 1e-12);
      if (threads == 8) {
        kernel_speedup_8 = speedup;
        refine_speedup_8 = drain_speedup;
      }
      table.AddRow({std::to_string(threads), FormatDouble(best * 1e3, 2),
                    FormatDouble(speedup, 2) + "x",
                    FormatDouble(best_phases.build_seconds * 1e3, 2),
                    FormatDouble(build_speedup, 2) + "x",
                    FormatDouble(best_phases.drain_seconds * 1e3, 2),
                    FormatDouble(drain_speedup, 2) + "x",
                    identical ? "yes" : "NO"});
      json.AddRow()
          .Str("section", "kernel")
          .Int("threads", threads)
          .Num("wall_ms", best * 1e3)
          .Num("speedup", speedup)
          .Int("identical", identical ? 1 : 0);
      json.AddRow()
          .Str("section", "kernel_build")
          .Int("threads", threads)
          .Num("wall_ms", best_phases.build_seconds * 1e3)
          .Num("speedup", build_speedup)
          .Int("identical", identical ? 1 : 0);
      // The refinement-only rows this PR's parallel drain is measured by.
      json.AddRow()
          .Str("section", "kernel_refine")
          .Int("threads", threads)
          .Num("wall_ms", best_phases.drain_seconds * 1e3)
          .Num("speedup", drain_speedup)
          .Int("identical", identical ? 1 : 0);
    }
    table.Print(std::cout);
  }

  json.meta()
      .Int("all_identical", all_identical ? 1 : 0)
      .Num("kernel_speedup_at_8", kernel_speedup_8)
      .Num("refine_speedup_at_8", refine_speedup_8);

  // The >= 2x end-to-end / >= 1.8x refinement-drain targets only make
  // sense with >= 8 real lanes and the full-size workload; smaller runners
  // record the measurement and skip the assertion instead of failing.
  bool speedup_ok = true;
  if (hardware >= 8 && env.scale >= 1.0) {
    json.meta().Str("speedup_assert", "enforced");
    speedup_ok = kernel_speedup_8 >= 2.0 && refine_speedup_8 >= 1.8;
    if (!speedup_ok) {
      std::cerr << "SPEEDUP REGRESSION: kernel "
                << FormatDouble(kernel_speedup_8, 2) << "x (need 2.0x), "
                << "refine " << FormatDouble(refine_speedup_8, 2)
                << "x (need 1.8x) at 8 threads\n";
    }
  } else {
    json.meta().Str("speedup_assert", "skipped");
    std::cout << "\n[skip] speedup assertion (hardware_threads=" << hardware
              << ", scale=" << env.scale << " — needs >= 8 threads at scale "
              << ">= 1)\n";
  }

  json.WriteFile();
  if (!all_identical) {
    std::cerr << "DETERMINISM VIOLATION: results differ across widths\n";
    return 1;
  }
  return speedup_ok ? 0 : 1;
}
