// Fig. 6(c)/6(d): PT and DS vs pattern size |Q| on the Yahoo-like web
// graph. Paper setup: |F| = 8, |G| = (3M, 15M), |Vf| = 25%, |Q| from (4, 8)
// to (8, 16); here scaled down.
//
// Expected shape: all PTs grow with |Q|; dGPM's DS is far less sensitive to
// |Q| than disHHK's and dMes's.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(150000), m = env.Scaled(750000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  auto frag = Fragmentation::Create(g, assignment, 8);
  if (!frag.ok()) return 1;
  std::cout << "Fig 6(c)/(d): web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |F| = 8, |Vf| ~ 25%\n\n";

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpm, Algorithm::kDisHhk, Algorithm::kDgpmNoOpt,
      Algorithm::kDMes, Algorithm::kMatch};
  bench::FigureTable fig("Fig 6(c): PT vs |Q|", "Fig 6(d): DS vs |Q|", "|Q|",
                         algorithms);

  for (size_t nq = 4; nq <= 8; ++nq) {
    const size_t mq = 2 * nq;
    std::string x = "(" + std::to_string(nq) + "," + std::to_string(mq) + ")";
    for (int i = 0; i < env.queries; ++i) {
      PatternSpec spec;
      spec.num_nodes = nq;
      spec.num_edges = mq;
      spec.kind = PatternKind::kCyclic;
      auto q = ExtractPattern(g, spec, rng);
      if (!q.ok()) continue;
      for (Algorithm a : algorithms) {
        DistOutcome outcome;
        if (bench::RunOne(g, *frag, *q, a, &outcome, env)) fig.Add(x, a, outcome);
      }
    }
  }
  fig.Report("fig6_cd", env);
  return 0;
}
