// Fig. 6(g)/6(h): PT and DS vs query diameter d on the Citation-like DAG.
// Paper setup: |F| = 8, |G| = (1.4M, 3M), |Q| = (9, 13), |Ef| ~ 25%,
// d from 2 to 8; here scaled down.
//
// Expected shape: dGPMd's PT grows with d (d rounds of rank-batched
// refinement) while its DS stays flat; dGPMd beats Match, disHHK and dMes
// on both metrics throughout.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(140000), m = env.Scaled(300000);
  Graph g = CitationDag(n, m, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  auto frag = Fragmentation::Create(g, assignment, 8);
  if (!frag.ok()) return 1;
  std::cout << "Fig 6(g)/(h): citation DAG |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |F| = 8, |Q| = (9,13)\n\n";

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpmDag, Algorithm::kDisHhk, Algorithm::kDMes,
      Algorithm::kMatch};
  bench::FigureTable fig("Fig 6(g): PT vs d", "Fig 6(h): DS vs d", "d",
                         algorithms);

  for (uint32_t d = 2; d <= 8; ++d) {
    for (int i = 0; i < env.queries; ++i) {
      PatternSpec spec;
      spec.num_nodes = 9;
      spec.num_edges = 13;
      spec.kind = PatternKind::kDag;
      spec.dag_depth = d;
      auto q = ExtractPattern(g, spec, rng);
      if (!q.ok()) continue;
      for (Algorithm a : algorithms) {
        DistOutcome outcome;
        if (bench::RunOne(g, *frag, *q, a, &outcome, env)) {
          fig.Add(std::to_string(d), a, outcome);
        }
      }
    }
  }
  fig.Report("fig6_gh", env);
  return 0;
}
