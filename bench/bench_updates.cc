// Dynamic updates: incremental repair vs from-scratch recomputation, plus
// the end-to-end Server::Update pipeline.
//
// Section 1 ("repair") maintains standing queries through a stream of
// small update batches two ways — the subscription registry's incremental
// kernel (dyn/subscription.h) and a full ComputeSimulation on the mutated
// graph after every batch — verifying after each batch that both paths
// agree bit for bit, and timing both. The point of incremental maintenance
// is that a small delta costs |AFF|, not |G|: the benchmark gates on the
// repair path being >= 5x cheaper over the whole stream.
//
// Section 2 ("server_update") drives dgs::Server::Update end to end —
// replication run over the cluster transport, parent-side commit, versioned
// redeploy, subscription deltas — and reports the charged kUpdate traffic
// (RunStats::update_bytes) and wall time per batch.
//
// Speedup assertion: enforced at full scale on a multi-core host; a 1-core
// runner records the measurement and skips the gate instead of failing
// (same policy as bench_scaling), since the recompute reference
// parallelizes while the small-cascade repair path is inherently short.
// The agreement check always runs.

#include <algorithm>

#include "bench_common.h"

namespace {

using namespace dgs;

// Batches of `edits` random mutations each (deletions of present edges,
// insertions of fresh ones), PLUS alternating eviction/restore of a node
// currently matching one of the standing queries: a batch either deletes
// every out-edge of a matched node — guaranteed to move the match set,
// since every node of a cyclic pattern has an out-edge — or re-inserts the
// previous victim's edges. Random single-edge edits almost never flip a
// match on a web graph (one deleted edge is rarely the LAST support), so
// without the evictions the repair path would be measuring no-op batches.
std::vector<UpdateBatch> MakeBatches(const Graph& g,
                                     const std::vector<Pattern>& patterns,
                                     Rng& rng, int batches, int edits) {
  DynamicAdjacency mirror(g);
  std::vector<UpdateBatch> out;
  std::vector<std::pair<NodeId, NodeId>> evicted;
  for (int b = 0; b < batches; ++b) {
    UpdateBatch batch;
    Graph now = mirror.ToGraph();
    auto edges = now.Edges();
    for (int i = 0; i < edits; ++i) {
      if (rng.UniformInt(2) == 0 && !edges.empty()) {
        batch.deletes.push_back(edges[rng.UniformInt(edges.size())]);
      } else {
        batch.inserts.push_back(
            {static_cast<NodeId>(rng.UniformInt(g.NumNodes())),
             static_cast<NodeId>(rng.UniformInt(g.NumNodes()))});
      }
    }
    if (!evicted.empty()) {
      batch.inserts.insert(batch.inserts.end(), evicted.begin(),
                           evicted.end());
      evicted.clear();
    } else {
      const Pattern& q = patterns[(b / 2) % patterns.size()];
      SimulationResult r = ComputeSimulation(q, now);
      bool found = false;
      for (NodeId u = 0; u < static_cast<NodeId>(q.NumNodes()) && !found;
           ++u) {
        r.FixpointSet(u).ForEachSet([&](size_t x) {
          if (found || now.OutDegree(static_cast<NodeId>(x)) == 0) return;
          for (NodeId y : now.OutNeighbors(static_cast<NodeId>(x))) {
            evicted.push_back({static_cast<NodeId>(x), y});
          }
          found = true;
        });
      }
      batch.deletes.insert(batch.deletes.end(), evicted.begin(),
                           evicted.end());
    }
    CanonicalizeBatch(&batch);
    for (auto e : batch.deletes) mirror.RemoveEdge(e.first, e.second);
    for (auto e : batch.inserts) mirror.InsertEdge(e.first, e.second);
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace

int main() {
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);
  const uint32_t hardware = ThreadPool::HardwareThreads();
  const int num_batches = 12;
  const int edits_per_batch = 8;

  bench::BenchJson json("updates");
  json.meta()
      .Int("hardware_threads", hardware)
      .Num("scale", env.scale)
      .Int("seed", env.seed)
      .Int("threads", env.threads)
      .Int("batches", static_cast<uint64_t>(num_batches))
      .Int("edits_per_batch", static_cast<uint64_t>(edits_per_batch));
  bench::MetaTransport(json, env);

  // Section 6 style workload, laptop-scaled: a web graph and cyclic
  // patterns of |Q| = (4, 6).
  const size_t n = env.Scaled(40000), m = env.Scaled(180000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  std::vector<Pattern> patterns;
  for (int i = 0; i < 6 && patterns.size() < 2; ++i) {
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) patterns.push_back(*q);
  }
  if (patterns.empty()) {
    std::cerr << "pattern extraction failed\n";
    return 1;
  }
  std::cout << "Dynamic updates: web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), " << patterns.size()
            << " standing queries, " << num_batches << " batches x "
            << edits_per_batch << " edits\n\n";

  const auto batches =
      MakeBatches(g, patterns, rng, num_batches, edits_per_batch);

  // --- Section 1: incremental repair vs recompute -------------------------
  bool all_identical = true;
  double inc_total = 0, recompute_total = 0;
  {
    SubscriptionRegistry registry(g, env.threads);
    std::vector<SubscriptionId> subs;
    for (const Pattern& q : patterns) subs.push_back(registry.Subscribe(q));

    DynamicAdjacency mirror(g);
    TablePrinter table({"batch", "repair(ms)", "recompute(ms)", "speedup"});
    for (size_t b = 0; b < batches.size(); ++b) {
      WallTimer inc_timer;
      registry.ApplyBatch(batches[b], b + 1);
      const double inc_ms = inc_timer.ElapsedSeconds() * 1e3;

      for (auto e : batches[b].deletes) mirror.RemoveEdge(e.first, e.second);
      for (auto e : batches[b].inserts) mirror.InsertEdge(e.first, e.second);
      Graph now = mirror.ToGraph();
      SimulationOptions options;
      options.num_threads = env.threads;
      double recompute_ms = 0;
      for (size_t s = 0; s < subs.size(); ++s) {
        WallTimer timer;
        SimulationResult scratch = ComputeSimulation(patterns[s], now,
                                                     options);
        recompute_ms += timer.ElapsedSeconds() * 1e3;
        auto snapshot = registry.Snapshot(subs[s]);
        const bool identical = snapshot.ok() && *snapshot == scratch;
        if (!identical) {
          std::cerr << "MISMATCH: batch " << b << " sub " << s
                    << ": repaired result != from-scratch\n";
          all_identical = false;
        }
      }
      inc_total += inc_ms;
      recompute_total += recompute_ms;
      table.AddRow({std::to_string(b + 1), FormatDouble(inc_ms, 3),
                    FormatDouble(recompute_ms, 3),
                    FormatDouble(recompute_ms / std::max(inc_ms, 1e-9), 1) +
                        "x"});
      json.AddRow()
          .Str("section", "repair")
          .Int("batch", b + 1)
          .Num("repair_ms", inc_ms)
          .Num("recompute_ms", recompute_ms);
    }
    std::cout << "== Incremental repair vs from-scratch recompute ==\n";
    table.Print(std::cout);
  }
  const double repair_speedup = recompute_total / std::max(inc_total, 1e-9);
  std::cout << "\nstream totals: repair "
            << FormatDouble(inc_total, 2) << " ms, recompute "
            << FormatDouble(recompute_total, 2) << " ms, speedup "
            << FormatDouble(repair_speedup, 1) << "x\n\n";

  // --- Section 2: Server::Update end to end -------------------------------
  {
    auto assignment = PartitionWithBoundaryRatio(g, 4, 0.25, rng);
    ServerOptions options;
    options.engine.num_threads = env.threads;
    options.engine.network = bench::BenchNetwork();
    options.engine.wire_format = env.wire;
    options.engine.transport = env.transport;
    options.num_replicas = 1;
    auto server = Server::Create(g, assignment, 4, options);
    if (!server.ok()) {
      std::cerr << "server setup failed: " << server.status().ToString()
                << "\n";
      return 1;
    }
    for (const Pattern& q : patterns) {
      auto id = (*server)->Subscribe(q);
      if (!id.ok()) {
        std::cerr << "subscribe failed: " << id.status().ToString() << "\n";
        return 1;
      }
    }

    TablePrinter table({"batch", "wall(ms)", "update(KB)", "update msgs",
                        "deltas", "memo inval"});
    for (size_t b = 0; b < batches.size(); ++b) {
      WallTimer timer;
      auto outcome = (*server)->Update(batches[b]);
      const double wall_ms = timer.ElapsedSeconds() * 1e3;
      if (!outcome.ok()) {
        std::cerr << "update " << b << " failed: "
                  << outcome.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({std::to_string(b + 1), FormatDouble(wall_ms, 3),
                    FormatDouble(outcome->stats.update_bytes / 1024.0, 3),
                    std::to_string(outcome->stats.update_messages),
                    std::to_string(outcome->deltas_delivered),
                    std::to_string(outcome->cache_invalidated)});
      json.AddRow()
          .Str("section", "server_update")
          .Int("batch", b + 1)
          .Num("wall_ms", wall_ms)
          .Num("update_kb", outcome->stats.update_bytes / 1024.0)
          .Int("update_messages", outcome->stats.update_messages)
          .Int("deltas_delivered", outcome->deltas_delivered);
    }
    std::cout << "== Server::Update end to end (charged kUpdate traffic) "
                 "==\n";
    table.Print(std::cout);
    (*server)->Shutdown();
  }

  json.meta()
      .Int("all_identical", all_identical ? 1 : 0)
      .Num("repair_total_ms", inc_total)
      .Num("recompute_total_ms", recompute_total)
      .Num("repair_speedup", repair_speedup);

  // The >= 5x gate needs the full-size workload and a host where the
  // recompute reference is not starved; a 1-core runner records and skips.
  bool speedup_ok = true;
  if (hardware >= 2 && env.scale >= 1.0) {
    json.meta().Str("speedup_assert", "enforced");
    speedup_ok = repair_speedup >= 5.0;
    if (!speedup_ok) {
      std::cerr << "REPAIR REGRESSION: incremental repair only "
                << FormatDouble(repair_speedup, 1)
                << "x cheaper than recompute (need 5x)\n";
    }
  } else {
    json.meta().Str("speedup_assert", "skipped");
    std::cout << "\n[skip] repair-speedup assertion (hardware_threads="
              << hardware << ", scale=" << env.scale
              << " — needs >= 2 threads at scale >= 1)\n";
  }

  json.WriteFile();
  if (!all_identical) {
    std::cerr << "AGREEMENT VIOLATION: repaired results diverged\n";
    return 1;
  }
  return speedup_ok ? 0 : 1;
}
