// Section 4.2 ablation: the two dGPM optimizations.
//
//   (1) incremental local evaluation vs full recomputation (dGPMNOpt):
//       the paper reports ~20x; shape = NOpt's PT grows with fragment size
//       much faster than dGPM's.
//   (2) the push operation: sweep the threshold theta. Lower theta = more
//       pushes = more equation bytes shipped but fewer waiting rounds; the
//       paper fixes theta = 0.2.

#include "bench_common.h"

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  bench::BenchJson json("ablation_opts");
  json.meta().Num("scale", env.scale).Int("seed", env.seed)
      .Int("threads", env.threads);
  bench::MetaTransport(json, env);
  const ClusterOptions runtime = [&] {
    ClusterOptions r(bench::BenchNetwork());
    r.num_threads = env.threads;
    r.wire_format = env.wire;
    r.transport = env.transport;
    return r;
  }();

  // --- incremental vs recompute, growing fragment size -------------------
  {
    std::cout << "Ablation 1: incremental evaluation (dGPM vs dGPMNOpt)\n\n";
    TablePrinter table({"|G|", "dGPM PT(ms)", "NOpt PT(ms)", "speedup",
                        "NOpt recomputes"});
    for (size_t n : {env.Scaled(10000), env.Scaled(20000),
                     env.Scaled(40000)}) {
      Graph g = WebGraph(n, 5 * n, kDefaultAlphabet, rng);
      auto assignment = PartitionWithBoundaryRatio(g, 8, 0.3, rng);
      auto frag = Fragmentation::Create(g, assignment, 8);
      if (!frag.ok()) continue;
      PatternSpec spec;
      spec.num_nodes = 5;
      spec.num_edges = 10;
      spec.kind = PatternKind::kCyclic;
      auto q = ExtractPattern(g, spec, rng);
      if (!q.ok()) continue;

      DgpmConfig opt;
      DgpmConfig noopt;
      noopt.incremental = false;
      noopt.enable_push = false;
      auto fast = RunDgpm(*frag, *q, opt, runtime);
      auto slow = RunDgpm(*frag, *q, noopt, runtime);
      table.AddRow(
          {"(" + std::to_string(g.NumNodes()) + "," +
               std::to_string(g.NumEdges()) + ")",
           FormatDouble(fast.stats.response_seconds * 1e3, 2),
           FormatDouble(slow.stats.response_seconds * 1e3, 2),
           FormatDouble(slow.stats.response_seconds /
                            std::max(fast.stats.response_seconds, 1e-9),
                        1) + "x",
           std::to_string(slow.counters.recomputations)});
    }
    table.Print(std::cout);
    bench::AppendTableJson(json, "incremental_vs_recompute", table);
    std::cout << "\n";
  }

  // --- incremental vs recompute on adversarial refinement waves ----------
  {
    std::cout << "Ablation 1b: adversarial refinement waves (K broken "
                 "chains weaving\nbetween two sites; site 0 receives 2K "
                 "update rounds)\n\n";
    TablePrinter table({"K chains", "dGPM PT(ms)", "NOpt PT(ms)", "speedup",
                        "NOpt recomputes"});
    for (size_t k : {16u, 32u, 64u}) {
      // Chain j (j = 1..K) has 2j+1 nodes alternating between site 0 and
      // site 1 with labels A,B,A,B,...; the final node dangles, so the
      // refutation walks back one hop per round — the two sites re-evaluate
      // 2K times, and a full recomputation each time is quadratic.
      GraphBuilder b;
      std::vector<uint32_t> assignment;
      for (size_t j = 1; j <= k; ++j) {
        NodeId prev = kInvalidNode;
        for (size_t h = 0; h <= 2 * j; ++h) {
          NodeId node = b.AddNode(static_cast<Label>(h % 2));
          assignment.push_back(static_cast<uint32_t>(h % 2));
          if (prev != kInvalidNode) b.AddEdge(prev, node);
          prev = node;
        }
      }
      Graph g = std::move(b).Build();
      Pattern q(MakeGraph({0, 1}, {{0, 1}, {1, 0}}));
      auto frag = Fragmentation::Create(g, assignment, 2);
      if (!frag.ok()) continue;
      DgpmConfig opt;
      opt.enable_push = false;
      DgpmConfig noopt;
      noopt.incremental = false;
      noopt.enable_push = false;
      auto fast = RunDgpm(*frag, q, opt, runtime);
      auto slow = RunDgpm(*frag, q, noopt, runtime);
      table.AddRow(
          {std::to_string(k),
           FormatDouble(fast.stats.response_seconds * 1e3, 2),
           FormatDouble(slow.stats.response_seconds * 1e3, 2),
           FormatDouble(slow.stats.response_seconds /
                            std::max(fast.stats.response_seconds, 1e-9),
                        1) + "x",
           std::to_string(slow.counters.recomputations)});
    }
    table.Print(std::cout);
    bench::AppendTableJson(json, "refinement_waves", table);
    std::cout << "\n(Long refinement waves are where the paper's ~20x "
                 "incremental-evaluation gap\ncomes from.)\n\n";
  }

  // --- push threshold sweep ----------------------------------------------
  {
    std::cout << "Ablation 2: push operation threshold theta\n\n";
    Graph g = WebGraph(env.Scaled(20000), env.Scaled(100000),
                       kDefaultAlphabet, rng);
    auto assignment = PartitionWithBoundaryRatio(g, 10, 0.3, rng);
    auto frag = Fragmentation::Create(g, assignment, 10);
    if (!frag.ok()) return 1;
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (!q.ok()) return 1;

    TablePrinter table({"theta", "pushes", "PT(ms)", "DS(KB)", "rounds"});
    for (double theta : {0.0, 0.01, 0.05, 0.2, 1.0, 1e18}) {
      DgpmConfig config;
      config.enable_push = true;
      config.push_threshold = theta;
      auto outcome = RunDgpm(*frag, *q, config, runtime);
      table.AddRow({theta > 1e17 ? "inf" : FormatDouble(theta, 2),
                    std::to_string(outcome.counters.push_count),
                    FormatDouble(outcome.stats.response_seconds * 1e3, 2),
                    FormatDouble(outcome.stats.data_bytes / 1024.0, 3),
                    std::to_string(outcome.stats.rounds)});
    }
    table.Print(std::cout);
    bench::AppendTableJson(json, "push_threshold", table);
    std::cout << "\n(Lower theta: more equation shipping, fewer rounds — "
                 "the Section 4.2 trade-off.)\n";
  }
  json.WriteFile();
  return 0;
}
