// Wire-format comparison: V1 fixed records vs V2 sorted-gap deltas.
//
// Runs the Fig. 6(a)/(b) default workload (web graph, |Q| = (5, 10),
// |Vf| ~ 25%, 8 sites) with every algorithm whose data shipment rides the
// delta-encoded payloads — dGPM, dGPMNOpt, dMes (truth values) plus Match
// and disHHK (kSubgraph shipments, V2 since PR 4) — under both wire
// formats and executor widths {1, 8}. Verifies that the simulation result
// and all message counts are bit-identical across the four (format,
// threads) combinations, then reports the V1-vs-V2 data shipment side by
// side. Control shipment (the kSubscribe node lists, delta-encoded since
// PR 4) is reported alongside.
//
// BENCH_wire.json rows: one per (algorithm, query) combination plus one
// "total" row per algorithm, each with ds_v1_kb, ds_v2_kb, the v2/v1
// ratio, control-byte columns, and the bytes-saved counters reported by
// the encoders. The process exits nonzero if any cross-format/threads
// fingerprint diverges, so CI catches wire-format regressions, not just
// size drift.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace dgs;

struct ComboResult {
  DistOutcome outcome;
  bool ok = false;
};

ComboResult RunCombo(const Graph& g, const Fragmentation& frag,
                     const Pattern& q, Algorithm a, WireFormat wire,
                     uint32_t threads, bool coalesce = false) {
  DistOptions options;
  options.algorithm = a;
  options.network = bench::BenchNetwork();
  options.num_threads = threads;
  options.wire_format = wire;
  options.transport.coalesce = coalesce;
  ComboResult r;
  auto result = DistributedMatch(g, frag, q, options);
  if (!result.ok()) {
    std::cerr << "  [skip] " << AlgorithmName(a) << ": "
              << result.status().ToString() << "\n";
    return r;
  }
  r.outcome = std::move(result).value();
  r.ok = true;
  return r;
}

bool SameAnswerAndTraffic(const DistOutcome& a, const DistOutcome& b,
                          const char* what) {
  bool same = true;
  if (!(a.result == b.result)) {
    std::cerr << "MISMATCH [" << what << "]: simulation results differ\n";
    same = false;
  }
  auto check = [&](uint64_t x, uint64_t y, const char* field) {
    if (x != y) {
      std::cerr << "MISMATCH [" << what << "]: " << field << " " << x
                << " vs " << y << "\n";
      same = false;
    }
  };
  check(a.stats.data_messages, b.stats.data_messages, "data_messages");
  check(a.stats.control_messages, b.stats.control_messages,
        "control_messages");
  check(a.stats.result_messages, b.stats.result_messages, "result_messages");
  check(a.stats.rounds, b.stats.rounds, "rounds");
  check(a.counters.vars_shipped, b.counters.vars_shipped, "vars_shipped");
  check(a.counters.supersteps, b.counters.supersteps, "supersteps");
  return same;
}

}  // namespace

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(150000), m = env.Scaled(750000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  std::cout << "Wire format: web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), |Q| = (5,10), |Vf| ~ 25%, 8 sites\n\n";

  std::vector<Pattern> queries;
  for (int i = 0; i < env.queries; ++i) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(*q);
  }

  const uint32_t sites = 8;
  auto assignment = PartitionWithBoundaryRatio(g, sites, 0.25, rng);
  auto frag = Fragmentation::Create(g, assignment, sites);
  if (!frag.ok() || queries.empty()) {
    std::cerr << "workload setup failed\n";
    return 1;
  }

  const std::vector<Algorithm> algorithms = {
      Algorithm::kDgpm, Algorithm::kDgpmNoOpt, Algorithm::kDMes,
      Algorithm::kMatch, Algorithm::kDisHhk};
  const std::vector<uint32_t> widths = {1, 8};

  bench::BenchJson json("wire");
  json.meta()
      .Num("scale", env.scale)
      .Int("queries", static_cast<uint64_t>(queries.size()))
      .Int("seed", env.seed)
      .Int("sites", sites)
      .Str("workload", "fig6_ab_default");
  bench::MetaTransport(json, env);

  TablePrinter table({"algorithm", "DS v1(KB)", "DS v2(KB)", "v2/v1",
                      "CS v1(KB)", "CS v2(KB)", "saved data(KB)",
                      "saved ctrl(KB)", "saved result(KB)"});
  bool all_identical = true;
  double grand_v1 = 0, grand_v2 = 0, grand_v2c = 0;
  TablePrinter coalesce_table(
      {"algorithm", "DS v2(KB)", "DS v2+coalesce(KB)", "ratio"});
  for (Algorithm a : algorithms) {
    double total_v1 = 0, total_v2 = 0, total_v2c = 0;
    double total_cs_v1 = 0, total_cs_v2 = 0;
    double total_saved_data = 0, total_saved_control = 0,
           total_saved_result = 0;
    size_t runs = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Pattern& q = queries[qi];
      // Reference: V1, sequential.
      ComboResult ref = RunCombo(g, *frag, q, a, WireFormat::kV1Fixed, 1);
      if (!ref.ok) continue;
      ComboResult v2 = RunCombo(g, *frag, q, a, WireFormat::kV2Delta, 1);
      if (!v2.ok) continue;
      // Coalesced framing: one header per (src,dst) flush per round. The
      // answer, message counts and rounds must be untouched, and the
      // charged bytes can only shrink.
      ComboResult packed =
          RunCombo(g, *frag, q, a, WireFormat::kV2Delta, 1, /*coalesce=*/true);
      {
        std::string what = std::string(AlgorithmName(a)) + " q" +
                           std::to_string(qi) + " coalesce";
        if (!packed.ok ||
            !SameAnswerAndTraffic(v2.outcome, packed.outcome, what.c_str())) {
          all_identical = false;
        } else if (packed.outcome.stats.data_bytes >
                       v2.outcome.stats.data_bytes ||
                   packed.outcome.stats.control_bytes >
                       v2.outcome.stats.control_bytes ||
                   packed.outcome.stats.result_bytes >
                       v2.outcome.stats.result_bytes) {
          std::cerr << "MISMATCH [" << what
                    << "]: coalesced framing charged MORE bytes\n";
          all_identical = false;
        }
      }
      // The answer, message counts and rounds must be identical across
      // formats and thread counts; only the shipped bytes may differ.
      {
        std::string what = std::string(AlgorithmName(a)) + " q" +
                           std::to_string(qi) + " v2 t1";
        if (!SameAnswerAndTraffic(ref.outcome, v2.outcome, what.c_str())) {
          all_identical = false;
        }
      }
      for (uint32_t threads : widths) {
        if (threads == 1) continue;  // both t1 runs already checked above
        for (WireFormat wire :
             {WireFormat::kV1Fixed, WireFormat::kV2Delta}) {
          ComboResult combo = RunCombo(g, *frag, q, a, wire, threads);
          const DistOutcome& expect_bytes =
              wire == WireFormat::kV1Fixed ? ref.outcome : v2.outcome;
          std::string what = std::string(AlgorithmName(a)) + " q" +
                             std::to_string(qi) + " " +
                             WireFormatName(wire) + " t" +
                             std::to_string(threads);
          if (!combo.ok ||
              !SameAnswerAndTraffic(ref.outcome, combo.outcome,
                                    what.c_str()) ||
              combo.outcome.stats.data_bytes !=
                  expect_bytes.stats.data_bytes ||
              combo.outcome.stats.control_bytes !=
                  expect_bytes.stats.control_bytes) {
            if (combo.ok && (combo.outcome.stats.data_bytes !=
                                 expect_bytes.stats.data_bytes ||
                             combo.outcome.stats.control_bytes !=
                                 expect_bytes.stats.control_bytes)) {
              std::cerr << "MISMATCH [" << what
                        << "]: shipped bytes not thread-invariant\n";
            }
            all_identical = false;
          }
        }
      }
      const double ds_v1 =
          static_cast<double>(ref.outcome.stats.data_bytes);
      const double ds_v2 = static_cast<double>(v2.outcome.stats.data_bytes);
      const double cs_v1 =
          static_cast<double>(ref.outcome.stats.control_bytes);
      const double cs_v2 =
          static_cast<double>(v2.outcome.stats.control_bytes);
      const double ds_v2c =
          packed.ok ? static_cast<double>(packed.outcome.stats.data_bytes)
                    : ds_v2;
      total_v1 += ds_v1;
      total_v2 += ds_v2;
      total_v2c += ds_v2c;
      total_cs_v1 += cs_v1;
      total_cs_v2 += cs_v2;
      total_saved_data +=
          static_cast<double>(v2.outcome.counters.wire_saved_data_bytes);
      total_saved_control +=
          static_cast<double>(v2.outcome.counters.wire_saved_control_bytes);
      total_saved_result +=
          static_cast<double>(v2.outcome.counters.wire_saved_result_bytes);
      ++runs;
      json.AddRow()
          .Str("algorithm", AlgorithmName(a))
          .Int("query", qi)
          .Num("ds_v1_kb", ds_v1 / 1024.0)
          .Num("ds_v2_kb", ds_v2 / 1024.0)
          .Num("ds_ratio", ds_v1 > 0 ? ds_v2 / ds_v1 : 1.0)
          .Num("ds_v2_coalesced_kb", ds_v2c / 1024.0)
          .Num("coalesce_ratio", ds_v2 > 0 ? ds_v2c / ds_v2 : 1.0)
          .Num("cs_v1_kb", cs_v1 / 1024.0)
          .Num("cs_v2_kb", cs_v2 / 1024.0)
          .Int("data_messages", ref.outcome.stats.data_messages)
          .Int("rounds", ref.outcome.stats.rounds)
          .Num("saved_data_kb",
               static_cast<double>(
                   v2.outcome.counters.wire_saved_data_bytes) /
                   1024.0)
          .Num("saved_control_kb",
               static_cast<double>(
                   v2.outcome.counters.wire_saved_control_bytes) /
                   1024.0)
          .Num("saved_result_kb",
               static_cast<double>(
                   v2.outcome.counters.wire_saved_result_bytes) /
                   1024.0);
    }
    if (runs == 0) continue;
    grand_v1 += total_v1;
    grand_v2 += total_v2;
    grand_v2c += total_v2c;
    coalesce_table.AddRow(
        {std::string(AlgorithmName(a)), FormatDouble(total_v2 / 1024.0, 3),
         FormatDouble(total_v2c / 1024.0, 3),
         FormatDouble(total_v2 > 0 ? total_v2c / total_v2 : 1.0, 3)});
    const double ratio = total_v1 > 0 ? total_v2 / total_v1 : 1.0;
    table.AddRow({std::string(AlgorithmName(a)),
                  FormatDouble(total_v1 / 1024.0, 3),
                  FormatDouble(total_v2 / 1024.0, 3), FormatDouble(ratio, 3),
                  FormatDouble(total_cs_v1 / 1024.0, 3),
                  FormatDouble(total_cs_v2 / 1024.0, 3),
                  FormatDouble(total_saved_data / 1024.0, 3),
                  FormatDouble(total_saved_control / 1024.0, 3),
                  FormatDouble(total_saved_result / 1024.0, 3)});
    json.AddRow()
        .Str("algorithm", AlgorithmName(a))
        .Str("query", "total")
        .Num("ds_v1_kb", total_v1 / 1024.0)
        .Num("ds_v2_kb", total_v2 / 1024.0)
        .Num("ds_ratio", ratio)
        .Num("ds_v2_coalesced_kb", total_v2c / 1024.0)
        .Num("coalesce_ratio", total_v2 > 0 ? total_v2c / total_v2 : 1.0)
        .Num("cs_v1_kb", total_cs_v1 / 1024.0)
        .Num("cs_v2_kb", total_cs_v2 / 1024.0)
        .Num("saved_data_kb", total_saved_data / 1024.0)
        .Num("saved_control_kb", total_saved_control / 1024.0)
        .Num("saved_result_kb", total_saved_result / 1024.0);
  }

  // Workload aggregate: DS summed over the whole algorithm set, the way
  // Fig. 6(b) reports the workload (dMes dominates, exactly as in the
  // paper). The per-algorithm rows above break the same number down.
  const double grand_ratio = grand_v1 > 0 ? grand_v2 / grand_v1 : 1.0;
  table.AddRow({"ALL", FormatDouble(grand_v1 / 1024.0, 3),
                FormatDouble(grand_v2 / 1024.0, 3),
                FormatDouble(grand_ratio, 3), "-", "-", "-", "-", "-"});
  json.AddRow()
      .Str("algorithm", "all")
      .Str("query", "total")
      .Num("ds_v1_kb", grand_v1 / 1024.0)
      .Num("ds_v2_kb", grand_v2 / 1024.0)
      .Num("ds_ratio", grand_ratio);

  std::cout << "== DS: V1 fixed vs V2 delta (identical answers & message "
               "counts) ==\n";
  table.Print(std::cout);
  std::cout << "\n== DS: coalesced frame charging (identical answers & "
               "message counts) ==\n";
  coalesce_table.Print(std::cout);
  std::cout << "\nworkload DS ratio v2/v1: " << FormatDouble(grand_ratio, 3)
            << "\ncross-format/threads fingerprints: "
            << (all_identical ? "IDENTICAL" : "MISMATCH") << "\n";
  json.meta()
      .Num("ds_ratio_total", grand_ratio)
      .Num("coalesce_ratio_total", grand_v2 > 0 ? grand_v2c / grand_v2 : 1.0)
      .Str("identical", all_identical ? "true" : "false");
  json.WriteFile();
  return all_identical ? 0 : 1;
}
