// Fault-tolerance benchmark: the chaos plans of runtime/fault.h swept over
// a resident dGPM Engine, plus the dgs::Server retry loop closing over a
// site crash.
//
// Workload: the Fig. 6(a)/(b) default shape (web graph, |Q| = (5, 10)
// cyclic, |Vf| ~ 25%, 8 sites), DGS_QUERIES patterns per plan.
//
// Sections and CI gates (the process exits nonzero on any violation):
//   disabled     ClusterOptions::faults off — the baseline pass. Gate:
//                zero chaos accounting (FaultStats all zero), which is the
//                zero-overhead-by-construction witness: no injector is
//                even built, so the existing BENCH_scaling/serving gates
//                keep measuring the same code path they always did.
//   recovered    drop / drop+dup+reorder plans WITH recovery. Gate: every
//                query succeeds and its results AND message/byte
//                accounting are bit-identical to the baseline — recovered
//                chaos is visible only in DistOutcome::faults (and in
//                response time, which absorbs the simulated backoff).
//   poisoned     a low-rate corruption plan. Corrupt frames are checksum-
//                rejected and poison their run. Gate: every failure is
//                classified DataLoss, and the SAME Engine keeps serving
//                later queries of the stream (graceful degradation).
//   retry        dgs::Server with RetryOptions against a crash-at-round-1
//                plan (crash_once: the site "restarts"). Gate: the client
//                sees zero failures, the crash is absorbed by a retry, and
//                results match the baseline.
//
// BENCH_faults.json records per-plan success/poison/retry rates and the
// full chaos accounting (frames, drops, retransmits, duplicates, reorders)
// so successive PRs can track the tolerance trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace dgs;

bool SameAnswerAndShipment(const DistOutcome& a, const DistOutcome& b,
                           const std::string& what) {
  bool same = true;
  if (!(a.result == b.result)) {
    std::cerr << "MISMATCH [" << what << "]: simulation results differ\n";
    same = false;
  }
  auto check = [&](uint64_t x, uint64_t y, const char* field) {
    if (x != y) {
      std::cerr << "MISMATCH [" << what << "]: " << field << " " << x
                << " vs " << y << "\n";
      same = false;
    }
  };
  check(a.stats.data_bytes, b.stats.data_bytes, "data_bytes");
  check(a.stats.control_bytes, b.stats.control_bytes, "control_bytes");
  check(a.stats.result_bytes, b.stats.result_bytes, "result_bytes");
  check(a.stats.data_messages, b.stats.data_messages, "data_messages");
  check(a.stats.control_messages, b.stats.control_messages,
        "control_messages");
  check(a.stats.result_messages, b.stats.result_messages, "result_messages");
  check(a.stats.rounds, b.stats.rounds, "rounds");
  check(a.counters.vars_shipped, b.counters.vars_shipped, "vars_shipped");
  check(a.counters.push_count, b.counters.push_count, "push_count");
  return same;
}

}  // namespace

int main() {
  using namespace dgs;
  auto env = bench::Env::FromEnv();
  Rng rng(env.seed);

  const size_t n = env.Scaled(40000), m = env.Scaled(200000);
  Graph g = WebGraph(n, m, kDefaultAlphabet, rng);
  auto assignment = PartitionWithBoundaryRatio(g, 8, 0.25, rng);
  std::cout << "Faults: web graph |G| = (" << g.NumNodes() << ", "
            << g.NumEdges() << "), 8 sites, " << env.queries
            << " queries per plan, seed " << env.seed << "\n\n";

  std::vector<Pattern> queries;
  for (int tries = 0; tries < 4 * env.queries &&
                      queries.size() < static_cast<size_t>(env.queries);
       ++tries) {
    PatternSpec spec;
    spec.num_nodes = 5;
    spec.num_edges = 10;
    spec.kind = PatternKind::kCyclic;
    auto q = ExtractPattern(g, spec, rng);
    if (q.ok()) queries.push_back(std::move(*q));
  }
  if (queries.empty()) {
    std::cerr << "no queries extracted\n";
    return 1;
  }

  EngineOptions base_options;
  base_options.network = bench::BenchNetwork();
  base_options.num_threads = env.threads;
  base_options.wire_format = env.wire;
  base_options.transport = env.transport;

  QueryOptions query;
  query.algorithm = Algorithm::kDgpm;

  bool ok = true;
  bench::BenchJson json("faults");
  json.meta()
      .Num("scale", env.scale)
      .Int("queries", static_cast<uint64_t>(queries.size()))
      .Int("seed", env.seed)
      .Int("threads", env.threads)
      .Str("wire", WireFormatName(env.wire));
  bench::MetaTransport(json, env);

  // --- disabled: the fault-free baseline, and the zero-overhead witness.
  auto baseline_engine = Engine::Create(g, assignment, 8, base_options);
  if (!baseline_engine.ok()) {
    std::cerr << "baseline engine: " << baseline_engine.status().ToString()
              << "\n";
    return 1;
  }
  std::vector<DistOutcome> baseline;
  for (const Pattern& q : queries) {
    auto outcome = (*baseline_engine)->Match(q, query);
    if (!outcome.ok()) {
      std::cerr << "baseline query failed: " << outcome.status().ToString()
                << "\n";
      return 1;
    }
    if (outcome->faults.frames != 0 || outcome->faults.Injected() != 0) {
      std::cerr << "GATE: disabled plan produced chaos accounting\n";
      ok = false;
    }
    baseline.push_back(std::move(outcome).value());
  }
  json.AddRow()
      .Str("plan", "disabled")
      .Str("spec", "off")
      .Int("queries", baseline.size())
      .Int("succeeded", baseline.size())
      .Int("poisoned", 0)
      .Int("frames", 0)
      .Int("injected", 0);

  TablePrinter table({"plan", "queries", "succeeded", "poisoned", "frames",
                      "drops", "retransmits", "dups", "reorders",
                      "identical"});
  table.AddRow({"disabled", std::to_string(baseline.size()),
                std::to_string(baseline.size()), "0", "0", "0", "0", "0", "0",
                std::to_string(baseline.size())});

  // --- recovered: lossy but recoverable chaos must be invisible.
  struct PlanCase {
    const char* name;
    const char* spec;
  };
  const PlanCase recovered_cases[] = {
      {"drop10", "drop=0.1,retries=16"},
      {"drop30", "drop=0.3,retries=16"},
      {"chaos", "drop=0.3,dup=0.2,reorder=0.3,retries=16"},
  };
  for (const PlanCase& c : recovered_cases) {
    auto plan = ParseFaultSpec(c.spec);
    if (!plan.ok()) {
      std::cerr << c.name << ": " << plan.status().ToString() << "\n";
      return 1;
    }
    plan->seed = env.seed;
    EngineOptions options = base_options;
    options.faults = *plan;
    auto engine = Engine::Create(g, assignment, 8, options);
    if (!engine.ok()) {
      std::cerr << c.name << ": " << engine.status().ToString() << "\n";
      return 1;
    }
    FaultStats agg;
    size_t succeeded = 0, identical = 0, poisoned = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto outcome = (*engine)->Match(queries[i], query);
      if (!outcome.ok()) {
        std::cerr << "GATE [" << c.name << "]: recovered plan poisoned q" << i
                  << ": " << outcome.status().ToString() << "\n";
        ok = false;
        ++poisoned;
        continue;
      }
      ++succeeded;
      agg.Accumulate(outcome->faults);
      if (outcome->faults.lost != 0) {
        std::cerr << "GATE [" << c.name << "]: lost frames on q" << i << "\n";
        ok = false;
      }
      const std::string what = std::string(c.name) + " q" + std::to_string(i);
      if (SameAnswerAndShipment(*outcome, baseline[i], what)) {
        ++identical;
      } else {
        ok = false;
      }
    }
    table.AddRow({c.name, std::to_string(queries.size()),
                  std::to_string(succeeded), std::to_string(poisoned),
                  std::to_string(agg.frames), std::to_string(agg.drops),
                  std::to_string(agg.retransmits),
                  std::to_string(agg.duplicates_injected),
                  std::to_string(agg.reorders), std::to_string(identical)});
    json.AddRow()
        .Str("plan", c.name)
        .Str("spec", c.spec)
        .Int("queries", queries.size())
        .Int("succeeded", succeeded)
        .Int("poisoned", poisoned)
        .Int("identical", identical)
        .Int("frames", agg.frames)
        .Int("drops", agg.drops)
        .Int("retransmits", agg.retransmits)
        .Int("lost", agg.lost)
        .Int("dups", agg.duplicates_injected)
        .Int("reorders", agg.reorders)
        .Num("backoff_s", agg.backoff_seconds);
  }

  // --- poisoned: low-rate corruption degrades gracefully, never silently.
  {
    const char* spec = "corrupt=0.0005,retries=16";
    auto plan = ParseFaultSpec(spec);
    plan->seed = env.seed;
    EngineOptions options = base_options;
    options.faults = *plan;
    auto engine = Engine::Create(g, assignment, 8, options);
    if (!engine.ok()) {
      std::cerr << "corrupt engine: " << engine.status().ToString() << "\n";
      return 1;
    }
    FaultStats agg;
    size_t succeeded = 0, poisoned = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto outcome = (*engine)->Match(queries[i], query);
      if (outcome.ok()) {
        ++succeeded;
        agg.Accumulate(outcome->faults);
        if (!SameAnswerAndShipment(*outcome, baseline[i],
                                   "corrupt-clean q" + std::to_string(i))) {
          ok = false;
        }
      } else {
        ++poisoned;
        if (outcome.status().code() != StatusCode::kDataLoss) {
          std::cerr << "GATE [corrupt]: q" << i << " classified "
                    << outcome.status().ToString() << ", want DataLoss\n";
          ok = false;
        }
      }
    }
    table.AddRow({"corrupt", std::to_string(queries.size()),
                  std::to_string(succeeded), std::to_string(poisoned),
                  std::to_string(agg.frames), "0", "0", "0", "0",
                  std::to_string(succeeded)});
    json.AddRow()
        .Str("plan", "corrupt")
        .Str("spec", spec)
        .Int("queries", queries.size())
        .Int("succeeded", succeeded)
        .Int("poisoned", poisoned)
        .Int("corruptions", agg.corruptions)
        .Int("checksum_rejects", agg.checksum_rejects);
  }

  // --- retry: dgs::Server absorbs a crashed-and-restarted site.
  {
    ServerOptions options;
    options.engine = base_options;
    options.num_replicas = 1;  // one injector: the crash fires exactly once
    options.engine.faults.crash_site = 1;
    options.engine.faults.crash_round = 1;
    options.engine.faults.seed = env.seed;
    options.retry.max_attempts = 3;
    auto server = Server::Create(g, assignment, 8, options);
    if (!server.ok()) {
      std::cerr << "server: " << server.status().ToString() << "\n";
      return 1;
    }
    size_t succeeded = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto outcome = (*server)->Match(queries[i], query);
      if (!outcome.ok()) {
        std::cerr << "GATE [retry]: q" << i << " failed after retries: "
                  << outcome.status().ToString() << "\n";
        ok = false;
        continue;
      }
      if (!(outcome->result == baseline[i].result)) {
        std::cerr << "GATE [retry]: q" << i << " result differs\n";
        ok = false;
        continue;
      }
      ++succeeded;
    }
    (*server)->Shutdown();
    ServerStats stats = (*server)->stats();
    if (stats.failed != 0 || stats.retry_successes < 1) {
      std::cerr << "GATE [retry]: failed=" << stats.failed
                << " retry_successes=" << stats.retry_successes
                << " (want 0 and >=1)\n";
      ok = false;
    }
    table.AddRow({"crash+retry", std::to_string(queries.size()),
                  std::to_string(succeeded),
                  std::to_string(queries.size() - succeeded), "-", "-", "-",
                  "-", "-", std::to_string(succeeded)});
    json.AddRow()
        .Str("plan", "crash+retry")
        .Str("spec", "crash=1@1 + retry.max_attempts=3")
        .Int("queries", queries.size())
        .Int("succeeded", succeeded)
        .Int("retries", stats.retries)
        .Int("retry_successes", stats.retry_successes)
        .Int("failed", stats.failed);
  }

  // --- recovery latency: poisoned query -> next healthy answer, timed.
  // A crash_once plan poisons the first query of a resident Engine; the
  // site "restarts" and the SAME engine serves the retry. The latency a
  // client actually experiences is failure detection (the poisoned run
  // draining to quiescence) plus the clean re-run — both walls recorded
  // in BENCH_faults.json so the recovery trajectory is tracked per PR.
  {
    EngineOptions options = base_options;
    options.faults.crash_site = 1;
    options.faults.crash_round = 1;
    options.faults.seed = env.seed;
    auto engine = Engine::Create(g, assignment, 8, options);
    if (!engine.ok()) {
      std::cerr << "recovery engine: " << engine.status().ToString() << "\n";
      return 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto poisoned = (*engine)->Match(queries[0], query);
    const double detect_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (poisoned.ok() ||
        poisoned.status().code() != StatusCode::kUnavailable) {
      std::cerr << "GATE [recovery]: crash_once did not poison q0 "
                   "Unavailable\n";
      ok = false;
    }
    const auto t1 = std::chrono::steady_clock::now();
    auto healed = (*engine)->Match(queries[0], query);
    const double heal_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t1)
                               .count();
    if (!healed.ok()) {
      std::cerr << "GATE [recovery]: healed query failed: "
                << healed.status().ToString() << "\n";
      ok = false;
    } else if (!SameAnswerAndShipment(*healed, baseline[0], "recovery q0")) {
      ok = false;
    }
    table.AddRow({"crash-recovery", "2", healed.ok() ? "1" : "0", "1", "-",
                  "-", "-", "-", "-", healed.ok() ? "1" : "0"});
    json.AddRow()
        .Str("plan", "crash-recovery")
        .Str("spec", "crash=1@1, resident engine, re-query after poison")
        .Num("detect_ms", detect_ms)
        .Num("heal_ms", heal_ms)
        .Num("recovery_ms", detect_ms + heal_ms);
    std::cout << "recovery latency: detect " << FormatDouble(detect_ms, 2)
              << " ms + heal " << FormatDouble(heal_ms, 2) << " ms\n\n";
  }

  std::cout << "== Chaos plans over a resident dGPM Engine ==\n";
  table.Print(std::cout);
  json.WriteFile();

  if (!ok) {
    std::cerr << "\nFAULT TOLERANCE GATE FAILED\n";
    return 1;
  }
  std::cout << "\nall fault-tolerance gates passed\n";
  return 0;
}
