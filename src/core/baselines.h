// The comparison algorithms of Section 6:
//
//   Match   ships every fragment to a single site and runs the centralized
//           simulation there (the naive algorithm of Section 3.1).
//           DS = O(|G|); PT dominated by one site processing all of G.
//
//   disHHK  the algorithm of Ma et al. [25]: each site ships the subgraph
//           induced by its label-candidate nodes to a single site, which
//           assembles a directly query-able graph and resolves the matches.
//           DS = O(|G|) in the worst case; PT = O((|Vq|+|V|)(|Eq|+|E|)).
//
//   dMes    vertex-centric message passing in the style of Pregel /
//           Fard et al. [14], as described in the paper's experimental
//           setup: in every superstep each site re-requests the truth
//           values of all its still-undecided virtual-node variables,
//           applies the replies, and votes to halt when nothing changed.
//           Redundant per-superstep traffic is the point of comparison.
//
// All three follow the QuerySiteActor serving lifecycle (core/serving.h).
// Resident state pays off here too: Match caches each fragment's wire
// encoding (it is pattern-independent), and disHHK keeps a per-site
// label -> nodes index so candidate extraction touches only nodes whose
// label occurs in the query.

#ifndef DGS_CORE_BASELINES_H_
#define DGS_CORE_BASELINES_H_

#include <memory>

#include "core/dgpm.h"

namespace dgs {

struct BaselineConfig {
  bool boolean_only = false;
};

// Resident deployments for serving (core/engine.h).
std::unique_ptr<Deployment> MakeMatchDeployment(
    const Fragmentation* fragmentation);
std::unique_ptr<Deployment> MakeDisHhkDeployment(
    const Fragmentation* fragmentation);
std::unique_ptr<Deployment> MakeDMesDeployment(
    const Fragmentation* fragmentation);

// Match: ship-everything baseline.
DistOutcome RunMatch(const Fragmentation& fragmentation, const Pattern& pattern,
                     const BaselineConfig& config,
                     const ClusterOptions& runtime = {});

// disHHK [25].
DistOutcome RunDisHhk(const Fragmentation& fragmentation,
                      const Pattern& pattern, const BaselineConfig& config,
                      const ClusterOptions& runtime = {});

// dMes (vertex-centric / Pregel-style).
DistOutcome RunDMes(const Fragmentation& fragmentation, const Pattern& pattern,
                    const BaselineConfig& config,
                    const ClusterOptions& runtime = {});

}  // namespace dgs

#endif  // DGS_CORE_BASELINES_H_
