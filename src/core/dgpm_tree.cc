#include "core/dgpm_tree.h"

#include <algorithm>

namespace dgs {

DgpmTreeWorker::DgpmTreeWorker(const Fragmentation* fragmentation,
                               uint32_t site)
    : fragment_(&fragmentation->fragment(site)) {}

void DgpmTreeWorker::BindQuery(const QueryContext& query) {
  pattern_ = query.pattern;
  config_.boolean_only = query.options.boolean_only;
  counters_ = query.counters;
  health_ = query.health;
  engine_.emplace(fragment_, pattern_, /*incremental=*/true);
  matches_dirty_ = true;
}

void DgpmTreeWorker::EndQuery() {
  pattern_ = nullptr;
  counters_ = nullptr;
  health_ = nullptr;
  engine_.reset();
  matches_dirty_ = true;
}

void DgpmTreeWorker::Setup(SiteContext& ctx) {
  engine_->SetExecutor(ctx.pool());
  engine_->Initialize();
  ReducedSystem answer = engine_->ReduceInNodeEquations();
  counters_->equation_units += answer.TotalUnits();
  Blob blob;
  PutTag(blob, WireTag::kTreeAnswer);
  counters_->wire_saved_data_bytes +=
      answer.Serialize(blob, ctx.wire_format());
  // Also register every undecided frontier variable: the coordinator must
  // route resolved falses for these even when they appear in no in-node
  // equation (e.g. the fragment holding the tree root has no in-nodes at
  // all, yet still depends on its virtual children). Encoded as an
  // embedded (tagged) key list so it rides the configured wire format.
  counters_->wire_saved_data_bytes += AppendFalseVarList(
      blob, engine_->UndecidedFrontierKeys(), ctx.wire_format());
  ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(blob));
}

void DgpmTreeWorker::OnMessages(SiteContext& ctx, std::vector<Message> inbox) {
  if (health_->poisoned()) return;
  engine_->SetExecutor(ctx.pool());
  std::vector<uint64_t> falses;
  for (const Message& m : inbox) {
    Blob::Reader reader(m.payload);
    if (GetTag(reader) != WireTag::kTreeValues) continue;
    const WireTag inner = GetTag(reader);
    std::vector<uint64_t> keys;
    if (!ReadFalseVarList(reader, inner, &keys)) {
      health_->PoisonDecode(m.cls, "corrupt tree-values payload");
      return;
    }
    falses.insert(falses.end(), keys.begin(), keys.end());
  }
  if (!falses.empty()) {
    engine_->ApplyRemoteFalses(falses);
    matches_dirty_ = true;
  }
  // Locally derived in-node falses need no further shipping: the
  // coordinator already resolved every boundary variable globally.
  engine_->DrainInNodeFalses();
}

void DgpmTreeWorker::OnQuiesce(SiteContext& ctx) {
  if (health_->poisoned()) return;
  if (matches_dirty_) {
    SendMatches(ctx);
    matches_dirty_ = false;
  }
}

void DgpmTreeWorker::SendMatches(SiteContext& ctx) {
  auto candidates = engine_->LocalCandidates();
  std::vector<std::vector<NodeId>> lists(candidates.size());
  for (NodeId u = 0; u < candidates.size(); ++u) {
    candidates[u].ForEachSet([&](size_t lv) {
      lists[u].push_back(fragment_->ToGlobal(static_cast<NodeId>(lv)));
    });
  }
  Blob blob;
  counters_->wire_saved_result_bytes +=
      AppendMatchList(blob, lists, config_.boolean_only, ctx.wire_format());
  ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(blob));
}

DgpmTreeCoordinator::DgpmTreeCoordinator(size_t num_global_nodes,
                                         uint32_t num_workers)
    : collector_(num_global_nodes), num_workers_(num_workers) {}

void DgpmTreeCoordinator::BindQuery(const QueryContext& query) {
  collector_.BindQuery(query);
  counters_ = query.counters;
  health_ = query.health;
  answers_received_ = 0;
  answers_.assign(num_workers_, ReducedSystem{});
  interest_.assign(num_workers_, {});
  solved_ = false;
}

void DgpmTreeCoordinator::EndQuery() {
  collector_.EndQuery();
  counters_ = nullptr;
  health_ = nullptr;
  answers_received_ = 0;
  answers_.clear();
  interest_.clear();
  solved_ = false;
}

void DgpmTreeCoordinator::OnMessages(SiteContext& ctx,
                                     std::vector<Message> inbox) {
  if (health_->poisoned()) return;
  for (Message& m : inbox) {
    Blob::Reader reader(m.payload);
    WireTag tag = GetTag(reader);
    if (tag == WireTag::kTreeAnswer) {
      if (m.src >= num_workers_) {
        health_->PoisonDecode(m.cls, "tree answer from unknown site");
        return;
      }
      if (!ReducedSystem::Deserialize(reader, &answers_[m.src])) {
        health_->PoisonDecode(m.cls, "corrupt tree-answer payload");
        return;
      }
      for (const ReducedEntry& e : answers_[m.src].entries) {
        interest_[m.src].push_back(e.key);
        for (const auto& g : e.groups) {
          for (uint64_t ref : g) interest_[m.src].push_back(ref);
        }
      }
      // Frontier registrations: an embedded tagged key list after the
      // reduced system.
      const WireTag inner = GetTag(reader);
      std::vector<uint64_t> frontier;
      if (!ReadFalseVarList(reader, inner, &frontier)) {
        health_->PoisonDecode(m.cls, "corrupt frontier registration payload");
        return;
      }
      interest_[m.src].insert(interest_[m.src].end(), frontier.begin(),
                              frontier.end());
      ++answers_received_;
    } else if (tag == WireTag::kMatches || tag == WireTag::kMatches2) {
      // Delegate result collection.
      std::vector<Message> one;
      one.push_back(std::move(m));
      collector_.OnMessages(ctx, std::move(one));
    }
  }
  if (!solved_ && answers_received_ == num_workers_) {
    Solve(ctx);
    solved_ = true;
  }
}

void DgpmTreeCoordinator::Solve(SiteContext& ctx) {
  // Link all partial answers into one equation system over wire keys.
  EquationSystem system;
  std::unordered_map<uint64_t, VarId> vars;
  auto var_of = [&](uint64_t key) {
    auto it = vars.find(key);
    if (it != vars.end()) return it->second;
    VarId x = system.NewVar();
    vars.emplace(key, x);
    return x;
  };
  for (const ReducedSystem& answer : answers_) {
    for (const ReducedEntry& e : answer.entries) {
      VarId x = var_of(e.key);
      switch (e.kind) {
        case ReducedEntry::kFalse:
          system.AssertFalse(x);
          break;
        case ReducedEntry::kTrue:
          break;  // undecided-forever == true under gfp semantics
        case ReducedEntry::kEquation: {
          if (system.IsFalse(x) || system.HasEquation(x)) break;
          std::vector<std::vector<VarId>> groups;
          for (const auto& g : e.groups) {
            std::vector<VarId> group;
            for (uint64_t ref : g) group.push_back(var_of(ref));
            groups.push_back(std::move(group));
          }
          system.SetEquation(x, groups);
          break;
        }
      }
    }
  }
  // The coordinator solves alone in its round, so the runtime's other
  // lanes are idle — the sharded drain gets real parallelism here (the
  // flipped set, and therefore every shipped byte, is width-invariant).
  system.PropagateParallel(ctx.pool(), [](VarId) {});

  // Return the resolved falses each site cares about: filter and encode
  // each site's slice in its own slot (independent work), send in site
  // order.
  std::vector<Blob> blobs(num_workers_);
  std::vector<uint64_t> saved(num_workers_);
  std::vector<size_t> shipped(num_workers_);
  ParallelEncodePayloads(ctx.pool(), num_workers_, [&](size_t site) {
    std::vector<uint64_t>& keys = interest_[site];
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::vector<uint64_t> falses;
    for (uint64_t key : keys) {
      auto it = vars.find(key);
      if (it != vars.end() && system.IsFalse(it->second)) {
        falses.push_back(key);
      }
    }
    shipped[site] = falses.size();
    if (falses.empty()) return;
    PutTag(blobs[site], WireTag::kTreeValues);
    // An embedded tagged key list carries the resolved falses.
    saved[site] = AppendFalseVarList(blobs[site], falses, ctx.wire_format());
  });
  for (uint32_t site = 0; site < num_workers_; ++site) {
    if (shipped[site] == 0) continue;
    counters_->wire_saved_data_bytes += saved[site];
    counters_->vars_shipped += shipped[site];
    ctx.Send(site, MessageClass::kData, std::move(blobs[site]));
  }
}

namespace {

class DgpmTreeDeployment : public Deployment {
 public:
  explicit DgpmTreeDeployment(const Fragmentation* fragmentation)
      : coordinator_(fragmentation->assignment().size(),
                     fragmentation->NumFragments()) {
    workers_.reserve(fragmentation->NumFragments());
    for (uint32_t i = 0; i < fragmentation->NumFragments(); ++i) {
      workers_.push_back(std::make_unique<DgpmTreeWorker>(fragmentation, i));
    }
  }

  uint32_t num_workers() const override {
    return static_cast<uint32_t>(workers_.size());
  }
  QuerySiteActor* worker(uint32_t i) override { return workers_[i].get(); }
  QuerySiteActor* coordinator() override { return &coordinator_; }

  SimulationResult Collect(AlgoCounters* counters) override {
    (void)counters;
    return coordinator_.BuildResult();
  }

 private:
  std::vector<std::unique_ptr<DgpmTreeWorker>> workers_;
  DgpmTreeCoordinator coordinator_;
};

}  // namespace

std::unique_ptr<Deployment> MakeDgpmTreeDeployment(
    const Fragmentation* fragmentation) {
  return std::make_unique<DgpmTreeDeployment>(fragmentation);
}

DistOutcome RunDgpmTree(const Fragmentation& fragmentation,
                        const Pattern& pattern, const DgpmTreeConfig& config,
                        const ClusterOptions& runtime) {
  auto deployment = MakeDgpmTreeDeployment(&fragmentation);
  QueryOptions options;
  options.algorithm = Algorithm::kDgpmTree;
  options.boolean_only = config.boolean_only;
  return ServeQueryOnce(*deployment, pattern, options, runtime);
}

}  // namespace dgs
