#include "core/local_engine.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace dgs {

LocalEngine::LocalEngine(const Fragment* fragment, const Pattern* pattern,
                         bool incremental)
    : fragment_(fragment),
      pattern_(pattern),
      incremental_(incremental),
      shipped_(static_cast<size_t>(fragment->num_local) *
               pattern->NumNodes()) {}

void LocalEngine::Initialize() {
  BuildSystem();
  PropagateAndCollect();
  recompute_count_ = 1;
}

VarId LocalEngine::VarOf(NodeId local_node, NodeId query_node) const {
  return var_ids_[static_cast<size_t>(local_node) * pattern_->NumNodes() +
                  query_node];
}

void LocalEngine::BuildSystem() {
  system_ = EquationSystem();
  info_.clear();
  key_vars_.clear();
  frontier_vars_.clear();
  num_undecided_frontier_ = 0;
  num_false_vars_ = 0;

  const Graph& lg = fragment_->graph;
  const size_t nq = pattern_->NumNodes();
  var_ids_.assign(lg.NumNodes() * nq, kNoVar);

  is_in_node_.assign(fragment_->num_local, false);
  for (NodeId v : fragment_->in_nodes) is_in_node_[v] = true;

  // Query nodes grouped by label.
  LabelIndex query_by_label(nq, [&](NodeId u) { return pattern_->LabelOf(u); });

  // Variables: one per label-compatible (query node, fragment node) pair.
  for (NodeId v = 0; v < lg.NumNodes(); ++v) {
    for (NodeId u : query_by_label.Of(lg.LabelOf(v))) {
      VarId x = system_.NewVar();
      var_ids_[static_cast<size_t>(v) * nq + u] = x;
      VarInfo vi;
      vi.local_node = v;
      vi.query_node = u;
      vi.key = MakeVarKey(u, fragment_->ToGlobal(v));
      vi.frontier = fragment_->IsVirtual(v) && !pattern_->IsSink(u);
      vi.in_node = v < fragment_->num_local && is_in_node_[v];
      info_.push_back(vi);
      if (vi.frontier) {
        frontier_vars_.push_back(x);
        ++num_undecided_frontier_;
      }
    }
  }

  // Equations for local, non-sink pairs. Virtual nodes have no local
  // out-edges, so their variables stay frontier (decided by their home
  // site); sink-query variables are unconditionally true.
  std::vector<std::vector<VarId>> groups;
  for (NodeId v = 0; v < fragment_->num_local; ++v) {
    for (NodeId u : query_by_label.Of(lg.LabelOf(v))) {
      if (pattern_->IsSink(u)) continue;
      groups.clear();
      for (NodeId uc : pattern_->Children(u)) {
        std::vector<VarId> group;
        const Label child_label = pattern_->LabelOf(uc);
        for (NodeId w : lg.OutNeighbors(v)) {
          if (lg.LabelOf(w) != child_label) continue;
          VarId m = VarOf(w, uc);
          DGS_DCHECK(m != kNoVar, "label-matching child must have a var");
          group.push_back(m);
        }
        groups.push_back(std::move(group));
      }
      system_.SetEquation(VarOf(v, u), groups);
    }
  }

  // Replay remote knowledge accumulated so far (rebuild path).
  for (const ReducedSystem& reduced : installed_) {
    InstallReducedSystemInternal(reduced, nullptr);
  }
  for (uint64_t key : known_false_keys_) {
    AssertKeyFalse(key);
  }
}

void LocalEngine::AssertKeyFalse(uint64_t key) {
  const NodeId u = VarKeyQueryNode(key);
  const NodeId gv = VarKeyGlobalNode(key);
  if (u >= pattern_->NumNodes()) return;
  NodeId lv = fragment_->ToLocal(gv);
  VarId x = kNoVar;
  if (lv != kInvalidNode) {
    x = VarOf(lv, u);
  } else {
    const VarId* found = key_vars_.find(key);
    if (found != nullptr) x = *found;
  }
  if (x != kNoVar) system_.AssertFalse(x);
}

void LocalEngine::PropagateAndCollect() {
  const size_t nq = pattern_->NumNodes();
  auto on_false = [&](VarId x) {
    ++num_false_vars_;
    const VarInfo& vi = info_[x];
    // Frontier-flagged variables never have an equation (install clears
    // the flag), so this flip takes one off the undecided-frontier count.
    if (vi.frontier) --num_undecided_frontier_;
    if (!vi.in_node) return;
    const size_t idx = static_cast<size_t>(vi.local_node) * nq + vi.query_node;
    if (!shipped_.Test(idx)) {
      shipped_.Set(idx);
      pending_in_node_falses_.push_back({vi.local_node, vi.query_node});
    }
  };
  // The collection above is order-insensitive (counters plus a dedup
  // bitmap; consumers sort the drained falses before shipping), so the
  // parallel drain's sorted callback order is equivalent to the sequential
  // propagation order.
  if (pool_ != nullptr) {
    system_.PropagateParallel(pool_, on_false);
  } else {
    system_.Propagate(on_false);
  }
}

void LocalEngine::ApplyRemoteFalses(const std::vector<uint64_t>& false_keys) {
  known_false_keys_.insert(known_false_keys_.end(), false_keys.begin(),
                           false_keys.end());
  if (incremental_) {
    for (uint64_t key : false_keys) AssertKeyFalse(key);
  } else {
    // dGPMNOpt: recompute the whole local fixpoint from scratch.
    BuildSystem();
    ++recompute_count_;
  }
  PropagateAndCollect();
}

bool LocalEngine::PushedKeyResolvable(uint64_t key) const {
  const NodeId u = VarKeyQueryNode(key);
  if (u >= pattern_->NumNodes()) return false;
  const NodeId lv = fragment_->ToLocal(VarKeyGlobalNode(key));
  return lv == kInvalidNode || VarOf(lv, u) != kNoVar;
}

VarId LocalEngine::FindOrCreateKeyVar(uint64_t key,
                                      std::vector<uint64_t>* fresh) {
  const NodeId u = VarKeyQueryNode(key);
  const NodeId gv = VarKeyGlobalNode(key);
  DGS_CHECK(u < pattern_->NumNodes(), "bad query node in wire key");
  NodeId lv = fragment_->ToLocal(gv);
  if (lv != kInvalidNode) {
    VarId x = VarOf(lv, u);
    DGS_CHECK(x != kNoVar, "pushed key references a label-mismatched pair");
    return x;
  }
  const VarId* found = key_vars_.find(key);
  if (found != nullptr) return *found;
  VarId x = system_.NewVar();
  VarInfo vi;
  vi.local_node = kInvalidNode;
  vi.query_node = u;
  vi.key = key;
  vi.frontier = true;
  vi.in_node = false;
  info_.push_back(vi);
  frontier_vars_.push_back(x);
  ++num_undecided_frontier_;
  key_vars_.insert(key, x);
  if (fresh != nullptr) fresh->push_back(key);
  return x;
}

std::vector<uint64_t> LocalEngine::InstallReducedSystemInternal(
    const ReducedSystem& reduced, std::vector<uint64_t>* fresh) {
  std::vector<uint64_t> fresh_local;
  if (fresh == nullptr) fresh = &fresh_local;
  for (const ReducedEntry& e : reduced.entries) {
    VarId x = FindOrCreateKeyVar(e.key, fresh);
    switch (e.kind) {
      case ReducedEntry::kFalse:
        system_.AssertFalse(x);
        break;
      case ReducedEntry::kTrue:
        // Optimistic semantics already presume undecided variables true.
        break;
      case ReducedEntry::kEquation: {
        if (system_.IsFalse(x) || system_.HasEquation(x)) break;
        std::vector<std::vector<VarId>> groups;
        groups.reserve(e.groups.size());
        for (const auto& g : e.groups) {
          std::vector<VarId> group;
          group.reserve(g.size());
          for (uint64_t ref : g) group.push_back(FindOrCreateKeyVar(ref, fresh));
          groups.push_back(std::move(group));
        }
        system_.SetEquation(x, groups);
        if (info_[x].frontier) {
          // x was counted undecided-frontier (not false: checked above);
          // with an equation installed it is frontier no longer.
          info_[x].frontier = false;
          --num_undecided_frontier_;
        }
        break;
      }
    }
  }
  return *fresh;
}

std::vector<uint64_t> LocalEngine::InstallReducedSystem(
    const ReducedSystem& reduced) {
  installed_.push_back(reduced);
  std::vector<uint64_t> fresh;
  InstallReducedSystemInternal(reduced, &fresh);
  PropagateAndCollect();
  return fresh;
}

std::vector<LocalEngine::FalseVar> LocalEngine::DrainInNodeFalses() {
  std::vector<FalseVar> out = std::move(pending_in_node_falses_);
  pending_in_node_falses_.clear();
  return out;
}

std::vector<uint64_t> LocalEngine::UndecidedFrontierKeys() const {
  // Lazy compaction: entries decided since the last call (flipped false or
  // given an equation) leave the list for good — decided variables never
  // become undecided again.
  std::vector<uint64_t> keys;
  keys.reserve(num_undecided_frontier_);
  size_t w = 0;
  for (VarId x : frontier_vars_) {
    if (info_[x].frontier && !system_.IsFalse(x)) {
      frontier_vars_[w++] = x;
      keys.push_back(info_[x].key);
    }
  }
  frontier_vars_.resize(w);
  DGS_DCHECK(keys.size() == num_undecided_frontier_,
             "undecided-frontier counter out of sync");
  return keys;
}

size_t LocalEngine::NumUndecidedInNode() const {
  size_t count = 0;
  for (const VarInfo& vi : info_) {
    if (vi.in_node) {
      VarId x = VarOf(vi.local_node, vi.query_node);
      if (!system_.IsFalse(x)) ++count;
    }
  }
  return count;
}

ReducedSystem LocalEngine::ReduceInNodeEquations() const {
  std::vector<VarId> roots;
  for (VarId x = 0; x < info_.size(); ++x) {
    if (info_[x].in_node) roots.push_back(x);
  }
  return ReduceToFrontier(
      system_, roots,
      [this](VarId x) {
        return info_[x].frontier && !system_.HasEquation(x);
      },
      [this](VarId x) { return info_[x].key; });
}

std::vector<NodeId> LocalEngine::FalseQueryNodesFor(NodeId local_node) const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < pattern_->NumNodes(); ++u) {
    VarId x = VarOf(local_node, u);
    if (x != kNoVar && system_.IsFalse(x)) out.push_back(u);
  }
  return out;
}

bool LocalEngine::IsKeyFalse(uint64_t key) const {
  const NodeId u = VarKeyQueryNode(key);
  const NodeId gv = VarKeyGlobalNode(key);
  if (u >= pattern_->NumNodes()) return true;
  NodeId lv = fragment_->ToLocal(gv);
  if (lv != kInvalidNode) {
    VarId x = VarOf(lv, u);
    return x == kNoVar || system_.IsFalse(x);
  }
  const VarId* found = key_vars_.find(key);
  return found != nullptr && system_.IsFalse(*found);
}

std::vector<DynamicBitset> LocalEngine::LocalCandidates() const {
  const size_t nq = pattern_->NumNodes();
  std::vector<DynamicBitset> out(nq, DynamicBitset(fragment_->num_local));
  for (NodeId v = 0; v < fragment_->num_local; ++v) {
    for (NodeId u = 0; u < nq; ++u) {
      VarId x = VarOf(v, u);
      if (x != kNoVar && !system_.IsFalse(x)) out[u].Set(v);
    }
  }
  return out;
}

}  // namespace dgs
