// dgs::Engine — deploy-once / query-many serving of distributed graph
// simulation.
//
// The paper's deployment model (Section 2.2) fragments the data graph G
// over sites ONCE; pattern queries then arrive as a stream against the
// resident fragmentation. Engine is that model as an API, with the two
// phases priced separately:
//
//   DEPLOYMENT (Engine::Create) — pays everything that depends only on
//   (G, assignment, EngineOptions): building or adopting the
//   Fragmentation, the cluster runtime (thread pool, pooled per-round
//   outbox buffers), the per-site resident actors of each algorithm
//   family (fragment views, in-node consumer indexes, label indexes,
//   cached fragment wire encodings), and the structure facts used by
//   Algorithm::kAuto (is G a downward forest / a DAG — computed lazily
//   and memoized). ServingStats::deploy_seconds records the cost.
//
//   QUERY (Engine::Match / Engine::MatchBatch) — pays only what depends
//   on the pattern: the actors are re-bound to the query
//   (QuerySiteActor::BindQuery), the cluster re-runs over the resident
//   state, the result is collected, and EndQuery drops the per-query
//   state again. No fragmentation build, no thread-pool spawn, no
//   per-site index reconstruction.
//
// Lifecycle and lifetime:
//
//   dgs::Graph g = ...;
//   auto engine = dgs::Engine::Create(g, assignment, 8, dgs::EngineOptions{});
//   if (!engine.ok()) ...;
//   for (const dgs::Pattern& q : stream) {
//     auto outcome = (*engine)->Match(q);        // QueryOptions{} = kAuto
//     if (!outcome.ok()) continue;               // engine stays usable
//     outcome->result.Matches(u);                // Q(G)
//     outcome->data_shipment_bytes();            // DS, this query
//   }
//   (*engine)->serving_stats();                  // cumulative + deploy cost
//
// `g` must outlive the engine (the kAuto/dGPMd structure facts read it
// lazily); a borrowed Fragmentation (the const-reference overload) must
// outlive it too. Engines are not movable or copyable — resident actors
// hold stable pointers into the deployment — so Create returns a
// unique_ptr.
//
// Threading contract. An Engine is NOT thread-safe: it serves exactly one
// query at a time from one thread — intra-query parallelism comes from
// EngineOptions::num_threads, never from concurrent Match calls. The
// contract is enforced, not just documented: Match/MatchBatch carry a
// reentrancy guard (one atomic exchange per query, active in every build)
// that aborts with a diagnostic when two queries overlap on one Engine,
// so misuse fails loudly instead of racing on the resident actors.
// Concurrent serving is the job of dgs::Server (serve/server.h), which
// multiplexes client threads onto N single-threaded Engine replicas that
// share one const Fragmentation (the borrowed-fragmentation Create
// overload) and one SharedStructureFacts memo — everything an Engine
// reads from the deployment is immutable, so replicas never synchronize
// during a query.
//
// Failure containment: a query that fails — invalid pattern, an
// algorithm's structural precondition, or a run poisoned by a corrupt
// payload (RunHealth, surfaced as a DataLoss Status) — leaves the
// deployment intact; the next Match starts from a clean bind.
//
// DistributedMatch (core/api.h) remains the one-shot convenience wrapper:
// it builds a temporary Engine, serves the single query, and tears it
// down, so both paths produce bit-identical results and identical
// message/byte accounting.

#ifndef DGS_CORE_ENGINE_H_
#define DGS_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/baselines.h"
#include "core/dgpm.h"
#include "core/dgpm_dag.h"
#include "core/dgpm_tree.h"
#include "core/metrics.h"
#include "core/serving.h"
#include "graph/graph.h"
#include "graph/pattern.h"
#include "partition/fragmentation.h"
#include "util/status.h"

namespace dgs {

// Cumulative serving metrics of one Engine.
struct ServingStats {
  // Wall-clock cost of Engine::Create (fragmentation build + deployment).
  double deploy_seconds = 0;
  // Successful / failed Match calls (failed = error Status returned).
  uint64_t queries_served = 0;
  uint64_t queries_failed = 0;
  // Summed over the successful queries.
  RunStats cumulative;
  AlgoCounters counters;
  // Summed over ALL queries, failed ones included: a poisoned Match
  // returns only an error Status, so this is where its per-class decode
  // drops remain observable (nonzero only after poisoned runs).
  DecodeDrops decode_drops;
  // Transport chaos summed over ALL queries, failed ones included (all
  // zero unless EngineOptions::faults is enabled).
  FaultStats faults;
  // Measured wire accounting summed over ALL queries, failed ones
  // included (all zero on the loopback backend; real socket bytes and
  // frame counts under EngineOptions::transport = tcp).
  TransportStats transport;
};

// One query of a MatchBatch stream: its Status, and the outcome when ok.
struct BatchQueryResult {
  Status status;
  DistOutcome outcome;  // meaningful iff status.ok()
};

// Outcome of Engine::MatchBatch: per-query results in stream order plus
// the cumulative accounting of the successful ones.
struct BatchOutcome {
  std::vector<BatchQueryResult> queries;
  RunStats cumulative;
  AlgoCounters counters;
  uint64_t succeeded = 0;
  uint64_t failed = 0;
  // End-to-end wall time of serving the stream (queries only; deployment
  // cost lives in ServingStats::deploy_seconds).
  double wall_seconds = 0;
};

class Engine {
 public:
  // Fragments g according to `assignment` and deploys it. Fails with
  // InvalidArgument/OutOfRange on malformed assignments.
  static StatusOr<std::unique_ptr<Engine>> Create(
      const Graph& g, const std::vector<uint32_t>& assignment,
      uint32_t num_fragments, const EngineOptions& options = {});

  // Adopts an already-built fragmentation (moved into the engine).
  static StatusOr<std::unique_ptr<Engine>> Create(
      const Graph& g, Fragmentation fragmentation,
      const EngineOptions& options = {});

  // Borrows an already-built fragmentation; it must outlive the engine.
  static StatusOr<std::unique_ptr<Engine>> Create(
      const Graph& g, const Fragmentation* fragmentation,
      const EngineOptions& options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Serves one pattern query over the resident deployment. Fails with
  // InvalidArgument on malformed patterns, FailedPrecondition when the
  // requested algorithm's structural requirements are not met (kDgpmDag
  // with cyclic Q and cyclic G; kDgpmTree on non-trees), and a classified
  // poison Status when the run was poisoned: DataLoss (corrupt payload),
  // Unavailable (site crash / frame loss), DeadlineExceeded (watchdog).
  // The engine stays usable after any failure.
  StatusOr<DistOutcome> Match(const Pattern& q,
                              const QueryOptions& options = {});

  // Serves a query stream, accumulating per-query and cumulative metrics.
  // Individual failures are recorded per query; the stream continues.
  BatchOutcome MatchBatch(std::span<const Pattern> queries,
                          const QueryOptions& options = {});

  const Fragmentation& fragmentation() const { return *frag_; }
  const EngineOptions& options() const { return options_; }
  const ServingStats& serving_stats() const { return stats_; }
  uint32_t NumSites() const { return frag_->NumFragments(); }

 private:
  // Index into deployments_: the dGPM slot serves both kDgpm and
  // kDgpmNoOpt (the ablation differs per query, not per deployment).
  enum FamilySlot {
    kSlotDgpm = 0,
    kSlotDag,
    kSlotTree,
    kSlotMatch,
    kSlotDisHhk,
    kSlotDMes,
    kNumFamilySlots,
  };

  Engine(const Graph* g, std::optional<Fragmentation> owned,
         const Fragmentation* frag, const EngineOptions& options);

  // Resolves kAuto by graph/pattern structure (Table 1 hierarchy).
  Algorithm ResolveAlgorithm(const Pattern& q, Algorithm requested);
  // Lazily computed, memoized structure facts of the deployed graph.
  // Routed through EngineOptions::structure_facts when set (replicas of
  // one dgs::Server compute them once per deployment, not per replica).
  bool GraphIsForest();
  bool GraphIsAcyclic();
  // Maps a resolved algorithm to its deployment slot.
  static FamilySlot SlotFor(Algorithm algorithm);
  // Lazily built resident actor set of the algorithm's family.
  Deployment& DeploymentFor(Algorithm algorithm);

  const Graph* graph_;
  std::optional<Fragmentation> owned_frag_;  // engaged when the engine owns
  const Fragmentation* frag_;                // always valid
  EngineOptions options_;
  Cluster cluster_;
  std::optional<bool> forest_fact_;
  std::optional<bool> acyclic_fact_;
  std::unique_ptr<Deployment> deployments_[kNumFamilySlots];
  // Query re-ship channel for the persistent tcp workers (see
  // QueryBindingChannel in core/serving.h). Deliberately an Engine member:
  // the forked workers call its virtuals on their copy-on-write copy, so
  // it must live at a stable address the fork captured — never a Match
  // stack temporary. Armed per query, keyed by family slot + 1 as the
  // transport's deploy_version.
  QueryBindingChannel binding_;
  ServingStats stats_;
  // Reentrancy guard behind the single-thread contract (see the file
  // comment): set for the duration of Match, checked on entry.
  std::atomic<bool> serving_{false};
};

}  // namespace dgs

#endif  // DGS_CORE_ENGINE_H_
