// Per-site local evaluation (procedure lEval of Section 4.1).
//
// A LocalEngine owns the Boolean-equation partial answer of one fragment:
// one variable per label-compatible (query node, fragment node) pair, with
// equations for local nodes and frontier (external) variables for virtual
// nodes. It supports
//   - incremental refinement (Section 4.2): remote falses are asserted and
//     propagated in O(|AFF|), and
//   - the dGPMNOpt ablation: full recomputation from scratch on every
//     message batch, as the unoptimized baseline.
// It also produces the ReducedSystem used by push (Section 4.2) and dGPMt
// (Section 5.2), and installs pushed systems received from other sites.

#ifndef DGS_CORE_LOCAL_ENGINE_H_
#define DGS_CORE_LOCAL_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/booleq.h"
#include "graph/pattern.h"
#include "partition/fragmentation.h"
#include "util/bitset.h"
#include "util/flat_hash.h"

namespace dgs {

// Wire key of a variable X(u, v): v is a GLOBAL node id, u a query node.
// The query node is packed into the low 16 bits; larger patterns would
// silently alias keys, so they are rejected loudly here (the public API
// additionally refuses such patterns with a Status).
inline uint64_t MakeVarKey(NodeId query_node, NodeId global_node) {
  DGS_DCHECK(query_node < (1u << 16),
             "query node id does not fit the 16-bit wire-key field");
  return (static_cast<uint64_t>(global_node) << 16) |
         static_cast<uint64_t>(query_node);
}
inline NodeId VarKeyQueryNode(uint64_t key) {
  return static_cast<NodeId>(key & 0xffff);
}
inline NodeId VarKeyGlobalNode(uint64_t key) {
  return static_cast<NodeId>(key >> 16);
}

class LocalEngine {
 public:
  // A newly-false variable of an in-node, ready to ship (local ids).
  struct FalseVar {
    NodeId local_node;
    NodeId query_node;
  };

  // `fragment` and `pattern` must outlive the engine. With
  // incremental=false the engine recomputes the whole fragment fixpoint on
  // every ApplyRemoteFalses call (dGPMNOpt).
  LocalEngine(const Fragment* fragment, const Pattern* pattern,
              bool incremental);

  // Builds the equation system and runs the initial local fixpoint
  // (phase 1 partial evaluation). Call exactly once before anything else.
  void Initialize();

  // Borrowed executor for the propagation drains: large fixpoint tails are
  // drained with EquationSystem::PropagateParallel on it (null or 1-lane =
  // the sequential reference drain; flips and counters are identical
  // either way). Site actors forward SiteContext::pool() here each
  // callback — nested use inside a busy cluster round degrades to inline
  // execution by ThreadPool's reentrancy rule, so it is always safe.
  void SetExecutor(ThreadPool* pool) { pool_ = pool; }

  // Applies remote truth values (variables now known false) and refines.
  // Keys reference global node ids; unknown keys (no local copy and not a
  // pushed variable) are ignored.
  void ApplyRemoteFalses(const std::vector<uint64_t>& false_keys);

  // Installs a pushed/reduced equation system from another site. Unknown
  // referenced keys become new frontier variables; returns those keys so
  // the caller can subscribe to their home sites.
  std::vector<uint64_t> InstallReducedSystem(const ReducedSystem& reduced);

  // Newly-false in-node variables since the previous drain (each variable
  // reported at most once per engine lifetime, also across recomputations).
  std::vector<FalseVar> DrainInNodeFalses();

  // Undecided frontier variable keys (the unevaluated virtual-node
  // variables Fi.O' — dMes re-requests these every superstep). Served from
  // an incrementally maintained frontier set: cost is O(|frontier|) per
  // call, not O(|variables|), and NumUndecidedFrontier is O(1).
  std::vector<uint64_t> UndecidedFrontierKeys() const;
  size_t NumUndecidedFrontier() const { return num_undecided_frontier_; }
  size_t NumUndecidedInNode() const;

  // Reduced equations of the undecided in-node variables over the frontier
  // (the push payload, and dGPMt's partial answer Li).
  ReducedSystem ReduceInNodeEquations() const;

  // Current candidate set per query node over LOCAL nodes (bit v set iff
  // X(u, v) exists and is not false). At global quiescence this is the
  // restriction of the greatest fixpoint to this fragment.
  std::vector<DynamicBitset> LocalCandidates() const;

  // Query nodes u for which X(u, local_node) is currently false (used to
  // answer late push subscriptions with already-known falses).
  std::vector<NodeId> FalseQueryNodesFor(NodeId local_node) const;

  // Total number of variables currently false (dMes change detection).
  // O(1): counted as flips propagate.
  size_t NumFalseVars() const { return num_false_vars_; }

  // Current truth of a wire key: true if the variable is known false here.
  // Keys with no corresponding variable (label mismatch) report false=true,
  // since such pairs can never match.
  bool IsKeyFalse(uint64_t key) const;

  // True if a pushed wire key can be bound to a variable here: the query
  // node must exist and, when the global node has a local copy, the pair
  // must be label-compatible. The fail-soft decode boundary (DgpmWorker)
  // runs this over a deserialized push payload BEFORE InstallReducedSystem,
  // which treats an unresolvable key as a hard invariant violation — from
  // an honest peer it can only mean memory corruption, but a chaos-mutated
  // frame that survives without recovery must poison, not abort.
  bool PushedKeyResolvable(uint64_t key) const;

  // Number of full recomputations performed (1 after Initialize; grows in
  // non-incremental mode).
  uint64_t recompute_count() const { return recompute_count_; }

 private:
  void BuildSystem();
  void PropagateAndCollect();
  void AssertKeyFalse(uint64_t key);
  VarId VarOf(NodeId local_node, NodeId query_node) const;
  VarId FindOrCreateKeyVar(uint64_t key, std::vector<uint64_t>* fresh);
  std::vector<uint64_t> InstallReducedSystemInternal(
      const ReducedSystem& reduced, std::vector<uint64_t>* fresh);

  const Fragment* fragment_;
  const Pattern* pattern_;
  bool incremental_;
  ThreadPool* pool_ = nullptr;  // borrowed; see SetExecutor

  EquationSystem system_;
  // var_ids_[local_node * |Vq| + u]; kNoVar when labels mismatch.
  std::vector<VarId> var_ids_;
  // Reverse map: var -> (local node, query node); local node may be
  // kInvalidNode for variables created from pushed keys with no local copy.
  struct VarInfo {
    NodeId local_node;
    NodeId query_node;
    uint64_t key;
    bool frontier;
    bool in_node;
  };
  std::vector<VarInfo> info_;
  std::vector<bool> is_in_node_;  // per local node id
  FlatHashMap<uint64_t, VarId> key_vars_;  // pushed-only variables

  // Remote knowledge and push installs survive recomputation.
  std::vector<uint64_t> known_false_keys_;
  std::vector<ReducedSystem> installed_;

  // Incrementally maintained undecided-frontier set. frontier_vars_ holds
  // every variable that was ever frontier-flagged, in creation order, and
  // is compacted lazily (decided entries dropped) by UndecidedFrontierKeys;
  // num_undecided_frontier_ is kept exact at the three mutation points
  // (creation, equation install, false flip). Rebuilds reset both.
  mutable std::vector<VarId> frontier_vars_;
  size_t num_undecided_frontier_ = 0;
  size_t num_false_vars_ = 0;

  std::vector<FalseVar> pending_in_node_falses_;
  // Dense (local node, query node) bitmap of variables already reported
  // through DrainInNodeFalses (survives rebuilds; in-node variables always
  // reference local nodes, so local_node * |Vq| + u indexes it).
  DynamicBitset shipped_;
  uint64_t recompute_count_ = 0;
};

}  // namespace dgs

#endif  // DGS_CORE_LOCAL_ENGINE_H_
