// Query-serving vocabulary shared by the distributed algorithms and the
// resident Engine (core/engine.h).
//
// The paper's deployment model — and the ROADMAP north star — is
// deploy-once / query-many: the data graph G is fragmented over sites
// once, then serves a stream of pattern queries. This header separates
// the two phases at the type level:
//
//   EngineOptions   per-DEPLOYMENT knobs: executor width, network cost
//                   model, wire format. Fixed for the lifetime of an
//                   Engine / Cluster.
//   QueryOptions    per-QUERY knobs: algorithm (incl. kAuto structure
//                   dispatch), Boolean-only mode, the dGPM push
//                   optimization parameters.
//
// and gives the site actors a matching lifecycle:
//
//   QuerySiteActor  a SiteActor that serves many queries over resident
//                   graph-side state. BindQuery() installs one query's
//                   state (pattern, counters, health, options), the
//                   cluster Run()s, EndQuery() drops the per-query state
//                   again. Members that depend only on the fragment —
//                   in-node indexes, label indexes, cached fragment
//                   encodings, buffer capacity — persist across queries.
//
//   Deployment      one algorithm family resident over a fragmentation:
//                   the persistent workers plus coordinator, with the
//                   family-specific result collection. Built once (per
//                   Engine, per family) and re-bound per query.
//
//   RunHealth       per-run poison flag (runtime/fault.h, re-exported via
//                   runtime/cluster.h). A corrupt or truncated payload
//                   used to be a fatal DGS_CHECK inside the actors; they
//                   now poison the run instead: every actor of the run
//                   drains silently, the cluster reaches quiescence, and
//                   the caller surfaces a classified Status (DataLoss /
//                   Unavailable / DeadlineExceeded) while the deployment
//                   stays usable for the next query.

#ifndef DGS_CORE_SERVING_H_
#define DGS_CORE_SERVING_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "graph/pattern.h"
#include "obs/histogram.h"
#include "runtime/cluster.h"
#include "util/status.h"

namespace dgs {

enum class Algorithm {
  kDgpm,       // Section 4: partition bounded, incremental + push
  kDgpmNoOpt,  // dGPMNOpt ablation: no incremental evaluation, no push
  kDgpmDag,    // Section 5.1: rank-scheduled batching (DAG Q or DAG G)
  kDgpmTree,   // Section 5.2: two-round coordinator algorithm (tree G)
  kMatch,      // ship-everything baseline
  kDisHhk,     // Ma et al. [25]
  kDMes,       // vertex-centric / Pregel-style
  kAuto,       // structure dispatch: tree G -> dGPMt, DAG Q or DAG G ->
               // dGPMd, otherwise dGPM (the paper's Table 1 hierarchy)
};

const char* AlgorithmName(Algorithm algorithm);

// Memoized structural facts of one deployed data graph (is it a downward
// forest? acyclic?), shared between the Engine replicas that serve the same
// deployment so the facts are computed once per data graph, not once per
// replica. Thread-safe: the first caller computes under the lock, everyone
// else reads the memo. The compute callables must be pure functions of the
// deployed graph (they are, in Engine: IsDownwardForest / IsAcyclic), so
// which replica wins the race is unobservable.
class SharedStructureFacts {
 public:
  template <typename Fn>
  bool Forest(Fn&& compute) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!forest_.has_value()) forest_ = compute();
    return *forest_;
  }
  template <typename Fn>
  bool Acyclic(Fn&& compute) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!acyclic_.has_value()) acyclic_ = compute();
    return *acyclic_;
  }

 private:
  std::mutex mu_;
  std::optional<bool> forest_;
  std::optional<bool> acyclic_;
};

// Per-deployment configuration: everything that shapes the resident
// cluster rather than an individual query.
struct EngineOptions {
  // Network cost model added to the BSP critical path of every query.
  NetworkModel network;
  // Executor width for the cluster runtime: 1 = sequential reference mode,
  // 0 = all hardware threads. Results and message accounting are identical
  // for every value (see runtime/cluster.h).
  uint32_t num_threads = 1;
  // Wire format for the dominant payloads (truth values, match lists).
  // kV2Delta (default) delta-encodes them and never ships more bytes than
  // kV1Fixed; simulation results and message counts are identical for both
  // (see runtime/message.h and core/protocol.h).
  WireFormat wire_format = WireFormat::kV2Delta;
  // Shared memo for the kAuto structure facts. Engines sharing one data
  // graph (the replicas of a dgs::Server) point at one instance so the
  // facts are computed once per deployment; null (the default) keeps an
  // engine-private memo.
  std::shared_ptr<SharedStructureFacts> structure_facts;
  // Seeded chaos schedule for the runtime's delivery path (default off;
  // see the delivery-semantics contract in runtime/cluster.h).
  FaultPlan faults;
  // Round watchdog bound converting a stalled run into DeadlineExceeded
  // (0 = off; see ClusterOptions::watchdog_rounds).
  uint32_t watchdog_rounds = 0;
  // Round-execution backend of the resident cluster: loopback (default,
  // in-process) or tcp (one OS process per site-group; see
  // runtime/transport.h). Results and accounting are backend-invariant;
  // tcp additionally measures real socket bytes (DistOutcome::transport).
  TransportOptions transport;

  ClusterOptions ToClusterOptions() const {
    ClusterOptions runtime(network);
    runtime.num_threads = num_threads;
    runtime.wire_format = wire_format;
    runtime.faults = faults;
    runtime.watchdog_rounds = watchdog_rounds;
    runtime.transport = transport;
    return runtime;
  }
};

// Per-query configuration. The default algorithm is kAuto: a serving
// engine picks the strongest applicable algorithm per query (Table 1).
struct QueryOptions {
  Algorithm algorithm = Algorithm::kAuto;
  // Boolean pattern query: only GraphMatches() of the result is meaningful,
  // and result collection ships one bit per query node per site.
  bool boolean_only = false;
  // dGPM knobs (Section 4.2). enable_push is honored as given by the
  // low-level Run* entry points; Engine::Match and DistributedMatch
  // restrict push to Algorithm::kDgpm (the ablation runs without it).
  bool enable_push = true;
  double push_threshold = 0.2;
};

// Dispatch order of the dgs::Server admission queue (serve/admission.h).
enum class AdmissionPolicy {
  kFifo,      // strict arrival order
  kPriority,  // higher SubmitOptions::priority first, ties in arrival order.
              // Queries left at the default priority 0 are ordered
              // shortest-estimated-job-first using the per-label candidate
              // counts of the inter-query cache (when it is enabled).
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

// What the inter-query cache of a dgs::Server is allowed to keep
// (serve/query_cache.h). The cache is per deployment. The candidate layer
// depends only on node labels, which never change, so it is coherent even
// under dynamic updates; the result layer is kept coherent by precise
// label-pair dirtying on every committed Server::Update (see
// serve/query_cache.h for the invalidation lemma).
enum class CacheMode {
  kOff,         // no inter-query state
  kCandidates,  // per-label candidate bitsets only, shared across queries
                // that use the same label. They serve the ADMISSION layer
                // (cost estimates / shortest-job-first pricing, label
                // statistics); execution does not read them, so this mode
                // does not change per-query cost (see serve/query_cache.h)
  kFull,        // + exact-pattern result memoization: a query whose
                // canonicalized structure and options were served before
                // returns the memoized outcome (bit-identical results and
                // accounting, by the runtime's determinism contract)
};

const char* CacheModeName(CacheMode mode);

// Transparent retry policy of a dgs::Server worker. A query that fails
// with a retryable Status (IsRetryable in util/status.h: Unavailable /
// DeadlineExceeded / ResourceExhausted — transient conditions like a
// crashed-and-restarted site or a watchdog trip) is re-run on the same
// replica up to max_attempts total attempts with doubling backoff between
// them. DataLoss and the argument/precondition failures are never retried:
// a corrupt run is a deterministic report, not a transient. Each cluster
// run reseeds its fault schedule, so a retry faces fresh chaos rolls.
struct RetryOptions {
  // Total attempts per query, including the first (1 = no retries).
  uint32_t max_attempts = 1;
  // Real sleep before retry k (k = 1, 2, ...): backoff_seconds * 2^(k-1).
  double backoff_seconds = 0;
};

// Per-server configuration: the deployment knobs of every Engine replica
// plus the serving-layer knobs (concurrency, admission, caching).
struct ServerOptions {
  // Per-replica deployment options. ServerOptions::Create installs the
  // shared structure-facts memo itself; a caller-provided structure_facts
  // is honored but unnecessary.
  EngineOptions engine;
  // Resident Engine replicas sharing the deployment's Fragmentation. Each
  // replica serves one query at a time with engine.num_threads intra-query
  // parallelism, so up to num_replicas queries run concurrently.
  // 0 = one replica per hardware thread.
  uint32_t num_replicas = 1;
  // Bound of the admission queue. A Submit that finds the queue full is
  // rejected with ResourceExhausted instead of blocking (overload sheds
  // load at the door, the MPC-style capacity discipline).
  size_t max_queue = 256;
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  CacheMode cache = CacheMode::kFull;
  // Byte budget of the exact-pattern result memo (LRU eviction). The
  // per-label candidate bitsets are bounded by the label alphabet and are
  // not evicted.
  size_t cache_max_result_bytes = size_t{64} << 20;
  // Deadline applied to queries submitted without one (0 = none). A query
  // whose deadline passes while queued completes with DeadlineExceeded
  // without running.
  double default_deadline_seconds = 0;
  // When true, Create does not start the worker threads; queries queue up
  // until Start() (deterministic backlog construction in tests and
  // closed-loop benchmarks). Shutdown() starts the workers if needed so
  // accepted work always drains.
  bool defer_workers = false;
  // Transparent re-execution of queries that fail with a retryable Status
  // (default: one attempt, no retries). Also applied to Server::Update's
  // replication runs: a retryable poison re-runs the batch from scratch
  // (nothing was applied, so the re-run is idempotent); DataLoss still
  // fails immediately.
  RetryOptions retry;
  // Graceful-degradation circuit breaker (see docs/FAILURES.md). A replica
  // accumulates a strike per consecutive retryable query failure and heals
  // to zero on any success. When EVERY replica is at or over this
  // threshold the server sheds new Submits with ResourceExhausted
  // (counted in ServerStats::degraded_rejections) instead of queueing work
  // the fleet keeps failing — except one probe query at a time, which is
  // admitted to test recovery and closes the circuit when it succeeds.
  // 0 disables the breaker.
  uint32_t circuit_breaker_strikes = 8;
};

// Latency distributions of one dgs::Server, split by outcome class. All
// histograms record NANOSECONDS (use the QuantileMillis/QuantileSeconds
// accessors). End-to-end spans Submit() to completion; queue wait spans
// admission to worker pickup (dispatched queries only); run time is the
// engine execution of fresh (non-cache-hit) served queries, retries
// included. Because histogram records land after the matching ServerStats
// counter bump, any StatsSnapshot obeys `histogram.count() <= counter` per
// class — snapshots never claim more latency samples than counted queries.
// Metric names and exposition: docs/OBSERVABILITY.md.
struct ServerLatency {
  obs::HistogramSnapshot e2e_served;     // completed ok, fresh run
  obs::HistogramSnapshot e2e_cache_hit;  // completed ok from the result memo
  obs::HistogramSnapshot e2e_failed;     // completed with an error Status
  obs::HistogramSnapshot e2e_rejected;   // rejected at admission (overload,
                                         // shutdown, degraded) or expired
  obs::HistogramSnapshot e2e_retried;    // served after >=1 retry/failover
                                         // (sub-population of e2e_served)
  obs::HistogramSnapshot queue_wait;     // admission -> worker pickup
  obs::HistogramSnapshot run_served;     // engine time of fresh served runs
};

// Cumulative serving metrics of one dgs::Server. Counters are exact; a
// query is counted in exactly one of {rejected_overload, rejected_shutdown,
// expired, served, failed}.
struct ServerStats {
  // Wall-clock cost of Server::Create: fragmentation build (when not
  // borrowed) + all replica deployments + worker spawn.
  double deploy_seconds = 0;
  uint32_t replicas = 0;
  uint64_t submitted = 0;          // Submit calls (incl. rejected)
  uint64_t admitted = 0;           // entered the admission queue
  uint64_t rejected_overload = 0;  // ResourceExhausted at admission
  uint64_t rejected_shutdown = 0;  // Unavailable after Shutdown
  uint64_t expired = 0;            // deadline passed before dispatch
  uint64_t served = 0;             // completed ok (cache hits included)
  uint64_t failed = 0;             // completed with an error Status (after
                                   // exhausting any RetryOptions attempts)
  // Retry-policy effectiveness (ServerOptions::retry).
  uint64_t retries = 0;          // re-execution attempts after a retryable
                                 // failure
  uint64_t retry_successes = 0;  // queries that failed at least once and
                                 // then completed ok on a retry
  // Replica failover (see docs/FAILURES.md): a query whose replica failed
  // retryably is re-dispatched to a DIFFERENT healthy replica before the
  // same-replica retry policy kicks in. The client sees one Submit and one
  // result; failovers are invisible except here.
  uint64_t failovers = 0;
  // Submits shed with ResourceExhausted while the circuit breaker was open
  // (ServerOptions::circuit_breaker_strikes). A sub-count of
  // rejected_overload: the query was rejected at admission.
  uint64_t degraded_rejections = 0;
  // Inter-query cache effectiveness (see CacheMode).
  uint64_t cache_result_hits = 0;
  uint64_t cache_result_misses = 0;
  uint64_t cache_result_evictions = 0;
  uint64_t cache_label_hits = 0;    // candidate bitset already resident
  uint64_t cache_label_misses = 0;  // candidate bitset built now
  uint64_t cache_result_bytes = 0;  // resident memo footprint
  uint64_t cache_label_bytes = 0;   // resident candidate-bitset footprint
  size_t peak_queue_depth = 0;
  // Dynamic-update pipeline (Server::Update). A batch is counted in exactly
  // one of {applied, failed}; rejected batches (invalid arguments) count in
  // neither — they never reached the replication run.
  uint64_t updates_submitted = 0;  // Update calls that entered the pipeline
  uint64_t updates_applied = 0;    // committed batches
  uint64_t updates_failed = 0;     // poisoned replication runs (retryable
                                   // ones included; nothing was applied),
                                   // counted once per batch after any
                                   // RetryOptions attempts are exhausted
  uint64_t update_retries = 0;     // replication re-runs after a retryable
                                   // poison (ServerOptions::retry)
  uint64_t update_retry_successes = 0;  // batches that committed on a
                                        // retry after failing at least once
  uint64_t update_edges_deleted = 0;   // mutations that changed the graph
  uint64_t update_edges_inserted = 0;  // (no-op edges excluded)
  uint64_t graph_version = 0;          // committed version watermark
  // Standing-query subscriptions (Server::Subscribe).
  uint64_t subscriptions_created = 0;
  uint64_t subscriptions_active = 0;
  uint64_t sub_deltas_delivered = 0;  // non-empty deltas queued
  uint64_t sub_deltas_dropped = 0;    // overflow evictions (lagged)
  uint64_t sub_pairs_added = 0;       // result pairs that entered a match
  uint64_t sub_pairs_removed = 0;     // result pairs that left a match
  // Result-memo entries erased by label-pair dirtying (precise
  // invalidation; see serve/query_cache.h).
  uint64_t cache_invalidations = 0;
  // Summed over the served queries (cache hits contribute the memoized
  // accounting, which is bit-identical to a fresh run's).
  RunStats cumulative;
  // Summed over the update replication runs, kept apart from the query
  // accounting so per-query byte/message comparisons stay meaningful.
  RunStats update_cumulative;
  AlgoCounters counters;
  // Latency distributions (p50/p95/p99 via ServerLatency accessors).
  ServerLatency latency;
};

// RunHealth — the per-run poison flag the actors and the transport share —
// lives in runtime/fault.h (included via runtime/cluster.h): the fault
// layer poisons runs too, and the runtime must not depend on core.

// Everything one query hands the resident actors at bind time. The
// pointed-to objects must outlive the run (the caller's stack frame or the
// Engine own them).
struct QueryContext {
  const Pattern* pattern = nullptr;
  AlgoCounters* counters = nullptr;
  RunHealth* health = nullptr;
  QueryOptions options;
};

// SharedRunState implementation (runtime/transport.h) that ships one run's
// AlgoCounters across process boundaries. It lives here — not in runtime/ —
// because the runtime must not depend on core: the transport sees only the
// opaque snapshot/delta blobs. Encoding: one varint per counter field, in
// AlgoCounters::VisitFields order. Deltas are unsigned differences (the
// counters only grow during a run) folded back with atomic adds, which is
// order-insensitive — so remote totals are bit-identical to in-process
// counting. Bound per run via Cluster::BindSharedState; loopback ignores
// it (the counters are already shared in-process).
class AlgoCountersChannel : public SharedRunState {
 public:
  explicit AlgoCountersChannel(AlgoCounters* counters)
      : counters_(counters) {}

  void Encode(Blob* out) const override {
    counters_->VisitFields([&](const auto& field) {
      out->PutVarint(static_cast<uint64_t>(
          field.load(std::memory_order_relaxed)));
    });
  }

  void EncodeDelta(Blob::Reader& before, Blob* out) const override {
    counters_->VisitFields([&](const auto& field) {
      const uint64_t prev = before.GetVarint();
      out->PutVarint(static_cast<uint64_t>(
                         field.load(std::memory_order_relaxed)) -
                     prev);
    });
  }

  void MergeDelta(Blob::Reader& delta) override {
    counters_->VisitFields([&](auto& field) {
      const uint64_t d = delta.GetVarint();
      using Value = decltype(field.load());
      if (d != 0) {
        field.fetch_add(static_cast<Value>(d), std::memory_order_relaxed);
      }
    });
  }

 private:
  AlgoCounters* counters_;
};

// A site actor with a bind query -> run -> clear lifecycle (see the file
// comment). Implementations must make BindQuery idempotent with respect to
// leftover per-query state: binding after a failed or poisoned run starts
// the new query from a clean slate.
class QuerySiteActor : public SiteActor {
 public:
  // Installs one query's state. Called on every actor before Run().
  virtual void BindQuery(const QueryContext& query) = 0;
  // Drops per-query state (and its memory, where it is query-sized);
  // graph-side members persist. Called after the run, win or lose.
  virtual void EndQuery() = 0;
};

// One algorithm family deployed over a fragmentation: persistent workers
// plus coordinator. Factories: MakeDgpmDeployment (dGPM + dGPMNOpt),
// MakeDgpmDagDeployment, MakeDgpmTreeDeployment (core/dgpm*.h) and
// MakeMatchDeployment / MakeDisHhkDeployment / MakeDMesDeployment
// (core/baselines.h). The fragmentation must outlive the deployment.
class Deployment {
 public:
  virtual ~Deployment() = default;

  virtual uint32_t num_workers() const = 0;
  virtual QuerySiteActor* worker(uint32_t i) = 0;
  virtual QuerySiteActor* coordinator() = 0;

  // Assembles the run's SimulationResult and folds worker-side counters
  // (e.g. lEval recomputations) into `counters`. Only meaningful after a
  // healthy Run() and before EndQuery().
  virtual SimulationResult Collect(AlgoCounters* counters) = 0;

  void BindQuery(const QueryContext& query) {
    for (uint32_t i = 0; i < num_workers(); ++i) worker(i)->BindQuery(query);
    coordinator()->BindQuery(query);
  }
  void EndQuery() {
    for (uint32_t i = 0; i < num_workers(); ++i) worker(i)->EndQuery();
    coordinator()->EndQuery();
  }
};

// RunBinding implementation (runtime/transport.h) that re-ships one query
// to the PERSISTENT tcp workers of runtime/supervisor.h. A persistent
// worker is forked once per deployment and reused across runs, so it never
// sees the parent's per-query stack state; instead the parent arms this
// channel with the query before Cluster::Run() and the transport ships
// EncodeBinding's blob to every worker at BeginRun. The child-side
// BindRemote rebuilds the Pattern from the blob (GraphBuilder with
// dedupe=false reproduces the CSR bit-for-bit: Edges() emits each node's
// already-sorted adjacency in order), binds it into the fork-time
// deployment snapshot, and hands the transport a child-owned RunHealth +
// AlgoCountersChannel for the run — the fork-time parent pointers would be
// stale copy-on-write copies.
//
// The instance must live at a stable address captured by the fork (an
// Engine member): the child invokes the virtuals on its COW copy of this
// same object. Arm/Disarm run in the parent only; BindRemote/UnbindRemote
// in the child only.
class QueryBindingChannel : public RunBinding {
 public:
  // Parent side: stages one query for re-shipping. The deployment and
  // pattern must outlive the run.
  void Arm(Deployment* deployment, const Pattern* pattern,
           const QueryOptions& options) {
    deployment_ = deployment;
    pattern_ = pattern;
    options_ = options;
  }
  void Disarm() {
    deployment_ = nullptr;
    pattern_ = nullptr;
  }

  void EncodeBinding(Blob* out) const override {
    const Graph& q = pattern_->graph();
    out->PutVarint(q.NumNodes());
    for (NodeId v = 0; v < q.NumNodes(); ++v) out->PutVarint(q.LabelOf(v));
    const auto edges = q.Edges();
    out->PutVarint(edges.size());
    for (const auto& [src, dst] : edges) {
      out->PutVarint(src);
      out->PutVarint(dst);
    }
    out->PutU8(static_cast<uint8_t>(options_.algorithm));
    out->PutU8(options_.boolean_only ? 1 : 0);
    out->PutU8(options_.enable_push ? 1 : 0);
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(options_.push_threshold));
    std::memcpy(&bits, &options_.push_threshold, sizeof(bits));
    out->PutU64(bits);
  }

  bool BindRemote(Blob::Reader& r, RunHealth** health,
                  SharedRunState** shared) override {
    UnbindRemote();  // idempotent clean slate after a poisoned run
    const uint64_t num_nodes = r.GetVarint();
    if (!r.ok()) return false;
    GraphBuilder builder;
    for (uint64_t v = 0; v < num_nodes; ++v) {
      builder.AddNode(static_cast<Label>(r.GetVarint()));
    }
    const uint64_t num_edges = r.GetVarint();
    for (uint64_t e = 0; e < num_edges && r.ok(); ++e) {
      const uint64_t src = r.GetVarint();
      const uint64_t dst = r.GetVarint();
      if (!r.ok() || src >= num_nodes || dst >= num_nodes) return false;
      builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst));
    }
    QueryOptions options;
    options.algorithm = static_cast<Algorithm>(r.GetU8());
    options.boolean_only = r.GetU8() != 0;
    options.enable_push = r.GetU8() != 0;
    const uint64_t bits = r.GetU64();
    std::memcpy(&options.push_threshold, &bits, sizeof(bits));
    if (!r.ok()) return false;

    // No dedupe: the blob's edges came out of a built CSR, so rebuilding
    // verbatim yields a bit-identical adjacency — and with it bit-identical
    // results and accounting (the determinism contract).
    remote_pattern_.emplace(std::move(builder).Build(false));
    remote_counters_.emplace();
    remote_channel_.emplace(&*remote_counters_);
    remote_health_.emplace();

    QueryContext query;
    query.pattern = &*remote_pattern_;
    query.counters = &*remote_counters_;
    query.health = &*remote_health_;
    query.options = options;
    deployment_->BindQuery(query);
    bound_ = true;
    *health = &*remote_health_;
    *shared = &*remote_channel_;
    return true;
  }

  void UnbindRemote() override {
    if (!bound_) return;
    deployment_->EndQuery();
    remote_pattern_.reset();
    remote_channel_.reset();
    remote_counters_.reset();
    remote_health_.reset();
    bound_ = false;
  }

 private:
  // Parent-side staging (Arm/Disarm).
  Deployment* deployment_ = nullptr;
  const Pattern* pattern_ = nullptr;
  QueryOptions options_;
  // Child-side per-run state (BindRemote/UnbindRemote). The child talks to
  // the deployment through its COW copy of deployment_, which points at
  // the fork-time actor snapshot — exactly the actors the transport runs.
  std::optional<Pattern> remote_pattern_;
  std::optional<AlgoCounters> remote_counters_;
  std::optional<AlgoCountersChannel> remote_channel_;
  std::optional<RunHealth> remote_health_;
  bool bound_ = false;
};

// Runs fn(i) for i in [0, n), on `pool` when one is available. The actors
// use this for their per-destination fan-out encode loops: every slot i
// must touch only slot-local state (its own Blob / counters slot), and the
// caller performs the Sends afterwards in destination order, so the wire
// bytes and accounting stay identical for every thread count. Inside a
// busy multi-site round the pool executes the calls inline (reentrancy
// rule); in a single-active-site round the idle lanes overlap the
// serialization with nothing else to do.
template <typename Fn>
inline void ParallelEncodePayloads(ThreadPool* pool, size_t n, const Fn& fn) {
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

// Serves a single query over `deployment` on a throwaway cluster: bind,
// run, collect (unless poisoned), end. The shared engine of the one-shot
// Run* entry points; resident serving goes through dgs::Engine instead.
DistOutcome ServeQueryOnce(Deployment& deployment, const Pattern& pattern,
                           const QueryOptions& options,
                           const ClusterOptions& runtime);

// Points every cluster site at the deployment's resident actors
// (non-owning). The deployment's worker count must match the cluster's.
inline void BindToCluster(Cluster& cluster, Deployment& deployment) {
  DGS_CHECK(cluster.NumWorkers() == deployment.num_workers(),
            "deployment/cluster site count mismatch");
  for (uint32_t i = 0; i < deployment.num_workers(); ++i) {
    cluster.BindWorker(i, deployment.worker(i));
  }
  cluster.BindCoordinator(deployment.coordinator());
}

}  // namespace dgs

#endif  // DGS_CORE_SERVING_H_
