// Query-serving vocabulary shared by the distributed algorithms and the
// resident Engine (core/engine.h).
//
// The paper's deployment model — and the ROADMAP north star — is
// deploy-once / query-many: the data graph G is fragmented over sites
// once, then serves a stream of pattern queries. This header separates
// the two phases at the type level:
//
//   EngineOptions   per-DEPLOYMENT knobs: executor width, network cost
//                   model, wire format. Fixed for the lifetime of an
//                   Engine / Cluster.
//   QueryOptions    per-QUERY knobs: algorithm (incl. kAuto structure
//                   dispatch), Boolean-only mode, the dGPM push
//                   optimization parameters.
//
// and gives the site actors a matching lifecycle:
//
//   QuerySiteActor  a SiteActor that serves many queries over resident
//                   graph-side state. BindQuery() installs one query's
//                   state (pattern, counters, health, options), the
//                   cluster Run()s, EndQuery() drops the per-query state
//                   again. Members that depend only on the fragment —
//                   in-node indexes, label indexes, cached fragment
//                   encodings, buffer capacity — persist across queries.
//
//   Deployment      one algorithm family resident over a fragmentation:
//                   the persistent workers plus coordinator, with the
//                   family-specific result collection. Built once (per
//                   Engine, per family) and re-bound per query.
//
//   RunHealth       per-run poison flag. A corrupt or truncated payload
//                   used to be a fatal DGS_CHECK inside the actors; they
//                   now poison the run instead: every actor of the run
//                   drains silently, the cluster reaches quiescence, and
//                   the caller surfaces a DataLoss Status while the
//                   deployment stays usable for the next query.

#ifndef DGS_CORE_SERVING_H_
#define DGS_CORE_SERVING_H_

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "graph/pattern.h"
#include "runtime/cluster.h"
#include "util/status.h"

namespace dgs {

enum class Algorithm {
  kDgpm,       // Section 4: partition bounded, incremental + push
  kDgpmNoOpt,  // dGPMNOpt ablation: no incremental evaluation, no push
  kDgpmDag,    // Section 5.1: rank-scheduled batching (DAG Q or DAG G)
  kDgpmTree,   // Section 5.2: two-round coordinator algorithm (tree G)
  kMatch,      // ship-everything baseline
  kDisHhk,     // Ma et al. [25]
  kDMes,       // vertex-centric / Pregel-style
  kAuto,       // structure dispatch: tree G -> dGPMt, DAG Q or DAG G ->
               // dGPMd, otherwise dGPM (the paper's Table 1 hierarchy)
};

const char* AlgorithmName(Algorithm algorithm);

// Per-deployment configuration: everything that shapes the resident
// cluster rather than an individual query.
struct EngineOptions {
  // Network cost model added to the BSP critical path of every query.
  NetworkModel network;
  // Executor width for the cluster runtime: 1 = sequential reference mode,
  // 0 = all hardware threads. Results and message accounting are identical
  // for every value (see runtime/cluster.h).
  uint32_t num_threads = 1;
  // Wire format for the dominant payloads (truth values, match lists).
  // kV2Delta (default) delta-encodes them and never ships more bytes than
  // kV1Fixed; simulation results and message counts are identical for both
  // (see runtime/message.h and core/protocol.h).
  WireFormat wire_format = WireFormat::kV2Delta;

  ClusterOptions ToClusterOptions() const {
    ClusterOptions runtime(network);
    runtime.num_threads = num_threads;
    runtime.wire_format = wire_format;
    return runtime;
  }
};

// Per-query configuration. The default algorithm is kAuto: a serving
// engine picks the strongest applicable algorithm per query (Table 1).
struct QueryOptions {
  Algorithm algorithm = Algorithm::kAuto;
  // Boolean pattern query: only GraphMatches() of the result is meaningful,
  // and result collection ships one bit per query node per site.
  bool boolean_only = false;
  // dGPM knobs (Section 4.2). enable_push is honored as given by the
  // low-level Run* entry points; Engine::Match and DistributedMatch
  // restrict push to Algorithm::kDgpm (the ablation runs without it).
  bool enable_push = true;
  double push_threshold = 0.2;
};

// Poison flag shared by the actors of one run. The first failure wins and
// records its reason; every subsequent callback drains without acting, so
// a poisoned run still reaches quiescence deterministically. Decode
// failures are additionally counted per message class (PoisonDecode), so
// the caller can tell which traffic class was corrupted and how often —
// the counts ride along in DistOutcome::decode_drops.
class RunHealth {
 public:
  RunHealth() = default;
  RunHealth(const RunHealth&) = delete;
  RunHealth& operator=(const RunHealth&) = delete;

  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  // Thread-safe (site callbacks may run concurrently); the first reason is
  // kept.
  void Poison(std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (reason_.empty()) reason_ = std::move(reason);
    }
    poisoned_.store(true, std::memory_order_release);
  }

  // Records a payload of class `cls` that failed to decode, then poisons
  // the run. Every corrupt-payload site in the actors goes through here.
  void PoisonDecode(MessageClass cls, std::string reason) {
    drops_[static_cast<size_t>(cls)].fetch_add(1, std::memory_order_relaxed);
    Poison(std::move(reason));
  }

  // Number of payloads of `cls` dropped by decoders this run.
  uint64_t decode_drops(MessageClass cls) const {
    return drops_[static_cast<size_t>(cls)].load(std::memory_order_relaxed);
  }

  // Ok when the run stayed healthy, DataLoss with the first reason after
  // poisoning.
  Status ToStatus() const {
    if (!poisoned()) return Status::Ok();
    std::lock_guard<std::mutex> lock(mu_);
    return Status::DataLoss(reason_);
  }

 private:
  std::atomic<bool> poisoned_{false};
  std::array<std::atomic<uint64_t>, 3> drops_{};  // indexed by MessageClass
  mutable std::mutex mu_;
  std::string reason_;
};

// Everything one query hands the resident actors at bind time. The
// pointed-to objects must outlive the run (the caller's stack frame or the
// Engine own them).
struct QueryContext {
  const Pattern* pattern = nullptr;
  AlgoCounters* counters = nullptr;
  RunHealth* health = nullptr;
  QueryOptions options;
};

// A site actor with a bind query -> run -> clear lifecycle (see the file
// comment). Implementations must make BindQuery idempotent with respect to
// leftover per-query state: binding after a failed or poisoned run starts
// the new query from a clean slate.
class QuerySiteActor : public SiteActor {
 public:
  // Installs one query's state. Called on every actor before Run().
  virtual void BindQuery(const QueryContext& query) = 0;
  // Drops per-query state (and its memory, where it is query-sized);
  // graph-side members persist. Called after the run, win or lose.
  virtual void EndQuery() = 0;
};

// One algorithm family deployed over a fragmentation: persistent workers
// plus coordinator. Factories: MakeDgpmDeployment (dGPM + dGPMNOpt),
// MakeDgpmDagDeployment, MakeDgpmTreeDeployment (core/dgpm*.h) and
// MakeMatchDeployment / MakeDisHhkDeployment / MakeDMesDeployment
// (core/baselines.h). The fragmentation must outlive the deployment.
class Deployment {
 public:
  virtual ~Deployment() = default;

  virtual uint32_t num_workers() const = 0;
  virtual QuerySiteActor* worker(uint32_t i) = 0;
  virtual QuerySiteActor* coordinator() = 0;

  // Assembles the run's SimulationResult and folds worker-side counters
  // (e.g. lEval recomputations) into `counters`. Only meaningful after a
  // healthy Run() and before EndQuery().
  virtual SimulationResult Collect(AlgoCounters* counters) = 0;

  void BindQuery(const QueryContext& query) {
    for (uint32_t i = 0; i < num_workers(); ++i) worker(i)->BindQuery(query);
    coordinator()->BindQuery(query);
  }
  void EndQuery() {
    for (uint32_t i = 0; i < num_workers(); ++i) worker(i)->EndQuery();
    coordinator()->EndQuery();
  }
};

// Runs fn(i) for i in [0, n), on `pool` when one is available. The actors
// use this for their per-destination fan-out encode loops: every slot i
// must touch only slot-local state (its own Blob / counters slot), and the
// caller performs the Sends afterwards in destination order, so the wire
// bytes and accounting stay identical for every thread count. Inside a
// busy multi-site round the pool executes the calls inline (reentrancy
// rule); in a single-active-site round the idle lanes overlap the
// serialization with nothing else to do.
template <typename Fn>
inline void ParallelEncodePayloads(ThreadPool* pool, size_t n, const Fn& fn) {
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

// Serves a single query over `deployment` on a throwaway cluster: bind,
// run, collect (unless poisoned), end. The shared engine of the one-shot
// Run* entry points; resident serving goes through dgs::Engine instead.
DistOutcome ServeQueryOnce(Deployment& deployment, const Pattern& pattern,
                           const QueryOptions& options,
                           const ClusterOptions& runtime);

// Points every cluster site at the deployment's resident actors
// (non-owning). The deployment's worker count must match the cluster's.
inline void BindToCluster(Cluster& cluster, Deployment& deployment) {
  DGS_CHECK(cluster.NumWorkers() == deployment.num_workers(),
            "deployment/cluster site count mismatch");
  for (uint32_t i = 0; i < deployment.num_workers(); ++i) {
    cluster.BindWorker(i, deployment.worker(i));
  }
  cluster.BindCoordinator(deployment.coordinator());
}

}  // namespace dgs

#endif  // DGS_CORE_SERVING_H_
