#include "core/metrics.h"

// Header-only aggregate types; this translation unit keeps the build layout
// uniform (one .cc per module).
