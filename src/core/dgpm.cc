#include "core/dgpm.h"

#include <algorithm>

namespace dgs {

CollectingCoordinator::CollectingCoordinator(size_t num_global_nodes)
    : num_global_nodes_(num_global_nodes) {}

void CollectingCoordinator::BindQuery(const QueryContext& query) {
  num_query_nodes_ = query.pattern->NumNodes();
  health_ = query.health;
  per_site_.clear();
}

void CollectingCoordinator::EndQuery() {
  num_query_nodes_ = 0;
  health_ = nullptr;
  per_site_.clear();
}

void CollectingCoordinator::OnMessages(SiteContext& ctx,
                                       std::vector<Message> inbox) {
  (void)ctx;
  if (health_->poisoned()) return;
  for (const Message& m : inbox) {
    Blob::Reader reader(m.payload);
    WireTag tag = GetTag(reader);
    if (tag != WireTag::kMatches && tag != WireTag::kMatches2) {
      continue;  // change flags etc.
    }
    std::vector<std::vector<NodeId>> lists;
    if (!ReadMatchList(reader, tag, &lists)) {
      health_->PoisonDecode(m.cls, "corrupt match list");
      return;
    }
    if (lists.size() != num_query_nodes_) {
      health_->PoisonDecode(m.cls, "match list arity mismatch");
      return;
    }
    // Fail-soft: BuildResult sets fixpoint bits straight from these ids, so
    // an id from a mutated frame must be rejected here, not written OOB.
    for (const std::vector<NodeId>& list : lists) {
      for (NodeId v : list) {
        if (v != kInvalidNode && v >= num_global_nodes_) {
          health_->PoisonDecode(m.cls, "match list node out of range");
          return;
        }
      }
    }
    per_site_[m.src] = std::move(lists);  // latest report wins
  }
}

SimulationResult CollectingCoordinator::BuildResult() const {
  bool boolean_payloads = false;
  std::vector<DynamicBitset> fixpoint(num_query_nodes_,
                                      DynamicBitset(num_global_nodes_));
  std::vector<bool> boolean_hit(num_query_nodes_, false);
  for (const auto& [site, lists] : per_site_) {
    for (NodeId u = 0; u < lists.size(); ++u) {
      for (NodeId v : lists[u]) {
        if (v == kInvalidNode) {
          boolean_payloads = true;
          boolean_hit[u] = true;
        } else {
          fixpoint[u].Set(v);
        }
      }
    }
  }
  if (!boolean_payloads) {
    return SimulationResult(std::move(fixpoint), num_global_nodes_);
  }
  // Boolean mode: encode per-query-node hits with a marker bit so that
  // GraphMatches() is exact.
  std::vector<DynamicBitset> marker(
      num_query_nodes_, DynamicBitset(std::max<size_t>(num_global_nodes_, 1)));
  for (NodeId u = 0; u < marker.size(); ++u) {
    if (boolean_hit[u]) marker[u].Set(0);
  }
  return SimulationResult(std::move(marker), num_global_nodes_);
}

DgpmWorker::DgpmWorker(const Fragmentation* fragmentation, uint32_t site)
    : fragmentation_(fragmentation),
      fragment_(&fragmentation->fragment(site)) {
  in_node_index_.reserve(fragment_->in_nodes.size());
  for (size_t k = 0; k < fragment_->in_nodes.size(); ++k) {
    in_node_index_.insert(fragment_->in_nodes[k], k);
  }
}

void DgpmWorker::BindQuery(const QueryContext& query) {
  pattern_ = query.pattern;
  config_.incremental = query.options.algorithm != Algorithm::kDgpmNoOpt;
  config_.enable_push = query.options.enable_push;
  config_.push_threshold = query.options.push_threshold;
  config_.boolean_only = query.options.boolean_only;
  counters_ = query.counters;
  health_ = query.health;
  engine_.emplace(fragment_, pattern_, config_.incremental);
  dynamic_consumers_.clear();
  matches_dirty_ = true;
  charged_recomputes_ = 0;
}

void DgpmWorker::EndQuery() {
  pattern_ = nullptr;
  counters_ = nullptr;
  health_ = nullptr;
  engine_.reset();
  dynamic_consumers_.clear();
  matches_dirty_ = true;
}

void DgpmWorker::Setup(SiteContext& ctx) {
  engine_->SetExecutor(ctx.pool());
  engine_->Initialize();
  ShipFalses(ctx, /*flag_coordinator=*/false);
  MaybePush(ctx);
  ChargeRecomputations();
}

void DgpmWorker::ChargeRecomputations() {
  const uint64_t now = engine_->recompute_count();
  counters_->recomputations += now - charged_recomputes_;
  charged_recomputes_ = now;
}

void DgpmWorker::OnMessages(SiteContext& ctx, std::vector<Message> inbox) {
  if (health_->poisoned()) return;
  engine_->SetExecutor(ctx.pool());
  std::vector<uint64_t> falses;
  for (const Message& m : inbox) {
    if (m.cls == MessageClass::kResult) continue;
    Blob::Reader reader(m.payload);
    const WireTag tag = GetTag(reader);
    switch (tag) {
      case WireTag::kFalseVars:
      case WireTag::kFalseVars2: {
        std::vector<uint64_t> keys;
        if (!ReadFalseVarList(reader, tag, &keys)) {
          health_->PoisonDecode(m.cls, "corrupt false-var payload");
          return;
        }
        falses.insert(falses.end(), keys.begin(), keys.end());
        break;
      }
      case WireTag::kPushSystem: {
        ReducedSystem reduced;
        if (!ReducedSystem::Deserialize(reader, &reduced)) {
          health_->PoisonDecode(m.cls, "corrupt push payload");
          return;
        }
        // Fail-soft semantic validation: a structurally well-formed payload
        // can still carry keys naming unknown nodes or label-mismatched
        // pairs (a mutated frame delivered without recovery). Install and
        // the fresh-key subscription below treat those as hard invariant
        // violations, so reject the whole payload here instead.
        const NodeId num_global =
            static_cast<NodeId>(fragmentation_->assignment().size());
        auto usable = [&](uint64_t key) {
          return VarKeyGlobalNode(key) < num_global &&
                 engine_->PushedKeyResolvable(key);
        };
        bool keys_ok = true;
        for (const ReducedEntry& e : reduced.entries) {
          keys_ok = keys_ok && usable(e.key);
          for (const auto& group : e.groups) {
            for (uint64_t ref : group) keys_ok = keys_ok && usable(ref);
          }
        }
        if (!keys_ok) {
          health_->PoisonDecode(m.cls, "pushed system names unknown nodes");
          return;
        }
        std::vector<uint64_t> fresh = engine_->InstallReducedSystem(reduced);
        matches_dirty_ = true;  // installation may refine local candidates
        // Subscribe to the home sites of the newly referenced variables so
        // their falses flow here directly, bypassing the pushing site.
        std::map<uint32_t, std::vector<NodeId>> by_owner;
        for (uint64_t key : fresh) {
          NodeId gv = VarKeyGlobalNode(key);
          uint32_t owner = fragmentation_->OwnerOf(gv);
          if (owner != ctx.site_id()) by_owner[owner].push_back(gv);
        }
        for (auto& [owner, nodes] : by_owner) {
          std::sort(nodes.begin(), nodes.end());
          nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
          Blob blob;
          counters_->wire_saved_control_bytes +=
              AppendSubscribeList(blob, nodes, ctx.wire_format());
          ctx.Send(owner, MessageClass::kControl, std::move(blob));
        }
        break;
      }
      case WireTag::kSubscribe:
      case WireTag::kSubscribe2: {
        std::vector<NodeId> nodes;
        if (!ReadSubscribeList(reader, tag, &nodes)) {
          health_->PoisonDecode(m.cls, "corrupt subscription payload");
          return;
        }
        std::vector<uint64_t> known_falses;
        for (NodeId gv : nodes) {
          NodeId lv = fragment_->ToLocal(gv);
          if (lv == kInvalidNode || lv >= fragment_->num_local) {
            health_->PoisonDecode(m.cls, "subscription for a non-local node");
            return;
          }
          dynamic_consumers_[lv].insert(m.src);
          for (NodeId u : engine_->FalseQueryNodesFor(lv)) {
            known_falses.push_back(MakeVarKey(u, gv));
          }
        }
        if (!known_falses.empty()) {
          Blob blob;
          counters_->wire_saved_data_bytes +=
              AppendFalseVarList(blob, known_falses, ctx.wire_format());
          counters_->vars_shipped += known_falses.size();
          ctx.Send(m.src, MessageClass::kData, std::move(blob));
        }
        break;
      }
      default:
        break;
    }
  }
  if (!falses.empty()) {
    engine_->ApplyRemoteFalses(falses);
    matches_dirty_ = true;
  }
  ShipFalses(ctx, /*flag_coordinator=*/true);
  ChargeRecomputations();
}

void DgpmWorker::OnQuiesce(SiteContext& ctx) {
  if (health_->poisoned()) return;
  if (matches_dirty_) {
    SendMatches(ctx);
    matches_dirty_ = false;
  }
  ChargeRecomputations();
}

void DgpmWorker::ShipFalses(SiteContext& ctx, bool flag_coordinator) {
  auto falses = engine_->DrainInNodeFalses();
  if (falses.empty()) return;

  std::map<uint32_t, std::vector<uint64_t>> by_dst;
  for (const auto& f : falses) {
    uint64_t key = MakeVarKey(f.query_node, fragment_->ToGlobal(f.local_node));
    const size_t* idx_ptr = in_node_index_.find(f.local_node);
    DGS_CHECK(idx_ptr != nullptr, "false var for a non-in-node");
    size_t idx = *idx_ptr;
    for (const InNodeConsumer& c : fragment_->consumers[idx]) {
      if (ConsumerNeedsVar(*pattern_, f.query_node, c.source_labels)) {
        by_dst[c.site].push_back(key);
      }
    }
    auto dit = dynamic_consumers_.find(f.local_node);
    if (dit != dynamic_consumers_.end()) {
      for (uint32_t site : dit->second) by_dst[site].push_back(key);
    }
  }
  // Per-destination fan-out: sort/dedup and delta-encode each payload in a
  // slot of its own — independent work, so it runs on the runtime's pool
  // when one is idle — then charge counters and send in destination order
  // (bytes and accounting identical for every thread count).
  std::vector<std::pair<uint32_t, std::vector<uint64_t>>> fan_out(
      std::make_move_iterator(by_dst.begin()),
      std::make_move_iterator(by_dst.end()));
  std::vector<Blob> blobs(fan_out.size());
  std::vector<uint64_t> saved(fan_out.size());
  ParallelEncodePayloads(ctx.pool(), fan_out.size(), [&](size_t i) {
    auto& keys = fan_out[i].second;
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    saved[i] = AppendFalseVarList(blobs[i], keys, ctx.wire_format());
  });
  for (size_t i = 0; i < fan_out.size(); ++i) {
    counters_->wire_saved_data_bytes += saved[i];
    counters_->vars_shipped += fan_out[i].second.size();
    ctx.Send(fan_out[i].first, MessageClass::kData, std::move(blobs[i]));
  }
  if (flag_coordinator) {
    // Termination-detection traffic: "something changed here" (Section 4.1
    // phase 2). Counted as control bytes.
    Blob blob;
    PutTag(blob, WireTag::kFlag);
    blob.PutU8(1);
    ctx.Send(ctx.coordinator_id(), MessageClass::kControl, std::move(blob));
  }
}

void DgpmWorker::MaybePush(SiteContext& ctx) {
  if (!config_.enable_push) return;
  const size_t undecided_in = engine_->NumUndecidedInNode();
  if (undecided_in == 0) return;
  ReducedSystem reduced = engine_->ReduceInNodeEquations();
  if (reduced.TotalUnits() == 0) return;

  // Each parent receives only the equations of the in-nodes it consumes
  // (plus their reachable closure), per Section 4.2: "sends the equations
  // in v.rvec[u] to all the parent sites Sj if Aid(Sj, Si) contains v".
  FlatHashMap<uint64_t, const ReducedEntry*> index;
  FlatHashMap<NodeId, std::vector<uint64_t>> eq_keys_by_node;
  for (const ReducedEntry& e : reduced.entries) {
    index.insert(e.key, &e);
    if (e.kind == ReducedEntry::kEquation) {
      eq_keys_by_node.insert(VarKeyGlobalNode(e.key), {})->push_back(e.key);
    }
  }
  std::map<uint32_t, std::vector<uint64_t>> parent_roots;
  for (size_t k = 0; k < fragment_->in_nodes.size(); ++k) {
    const NodeId global = fragment_->ToGlobal(fragment_->in_nodes[k]);
    const std::vector<uint64_t>* keys = eq_keys_by_node.find(global);
    if (keys == nullptr) continue;
    for (const InNodeConsumer& c : fragment_->consumers[k]) {
      auto& roots = parent_roots[c.site];
      roots.insert(roots.end(), keys->begin(), keys->end());
    }
  }
  if (parent_roots.empty()) return;

  // Slice per parent and compute the total message size m for B(Si).
  std::map<uint32_t, ReducedSystem> slices;
  size_t total_units = 0;
  for (auto& [site, roots] : parent_roots) {
    ReducedSystem slice;
    std::set<uint64_t> seen;
    std::vector<uint64_t> stack = roots;
    while (!stack.empty()) {
      uint64_t key = stack.back();
      stack.pop_back();
      if (!seen.insert(key).second) continue;
      const ReducedEntry* const* entry = index.find(key);
      if (entry == nullptr) continue;  // frontier key
      slice.entries.push_back(**entry);
      for (const auto& g : (*entry)->groups) {
        for (uint64_t ref : g) stack.push_back(ref);
      }
    }
    total_units += slice.TotalUnits();
    slices.emplace(site, std::move(slice));
  }
  if (total_units == 0) return;

  const double benefit = static_cast<double>(engine_->NumUndecidedFrontier()) /
                         (static_cast<double>(total_units) *
                          static_cast<double>(undecided_in));
  if (benefit < config_.push_threshold) return;

  ++counters_->push_count;
  // Reduced-system serialization is the heaviest encode of the family;
  // each parent's slice is independent, so the slices encode in parallel
  // and ship in site order.
  std::vector<std::pair<uint32_t, ReducedSystem>> ship(
      std::make_move_iterator(slices.begin()),
      std::make_move_iterator(slices.end()));
  std::vector<Blob> payloads(ship.size());
  std::vector<uint64_t> saved(ship.size());
  ParallelEncodePayloads(ctx.pool(), ship.size(), [&](size_t i) {
    if (ship[i].second.entries.empty()) return;
    PutTag(payloads[i], WireTag::kPushSystem);
    saved[i] = ship[i].second.Serialize(payloads[i], ctx.wire_format());
  });
  for (size_t i = 0; i < ship.size(); ++i) {
    if (ship[i].second.entries.empty()) continue;
    counters_->wire_saved_data_bytes += saved[i];
    counters_->equation_units += ship[i].second.TotalUnits();
    ctx.Send(ship[i].first, MessageClass::kData, std::move(payloads[i]));
  }
}

void DgpmWorker::SendMatches(SiteContext& ctx) {
  auto candidates = engine_->LocalCandidates();
  std::vector<std::vector<NodeId>> lists(candidates.size());
  for (NodeId u = 0; u < candidates.size(); ++u) {
    candidates[u].ForEachSet([&](size_t lv) {
      lists[u].push_back(fragment_->ToGlobal(static_cast<NodeId>(lv)));
    });
  }
  Blob blob;
  counters_->wire_saved_result_bytes +=
      AppendMatchList(blob, lists, config_.boolean_only, ctx.wire_format());
  ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(blob));
}

namespace {

class DgpmDeployment : public Deployment {
 public:
  explicit DgpmDeployment(const Fragmentation* fragmentation)
      : coordinator_(fragmentation->assignment().size()) {
    workers_.reserve(fragmentation->NumFragments());
    for (uint32_t i = 0; i < fragmentation->NumFragments(); ++i) {
      workers_.push_back(std::make_unique<DgpmWorker>(fragmentation, i));
    }
  }

  uint32_t num_workers() const override {
    return static_cast<uint32_t>(workers_.size());
  }
  QuerySiteActor* worker(uint32_t i) override { return workers_[i].get(); }
  QuerySiteActor* coordinator() override { return &coordinator_; }

  // Recomputations are charged incrementally inside the worker callbacks
  // (see DgpmWorker::ChargeRecomputations) — Collect must not read worker
  // state: under the tcp transport the workers ran in other processes and
  // the parent's copies are stale.
  SimulationResult Collect(AlgoCounters*) override {
    return coordinator_.BuildResult();
  }

 private:
  std::vector<std::unique_ptr<DgpmWorker>> workers_;
  CollectingCoordinator coordinator_;
};

}  // namespace

std::unique_ptr<Deployment> MakeDgpmDeployment(
    const Fragmentation* fragmentation) {
  return std::make_unique<DgpmDeployment>(fragmentation);
}

DistOutcome RunDgpm(const Fragmentation& fragmentation, const Pattern& pattern,
                    const DgpmConfig& config, const ClusterOptions& runtime) {
  auto deployment = MakeDgpmDeployment(&fragmentation);
  QueryOptions options;
  options.algorithm =
      config.incremental ? Algorithm::kDgpm : Algorithm::kDgpmNoOpt;
  options.boolean_only = config.boolean_only;
  options.enable_push = config.enable_push;
  options.push_threshold = config.push_threshold;
  return ServeQueryOnce(*deployment, pattern, options, runtime);
}

}  // namespace dgs
