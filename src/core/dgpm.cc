#include "core/dgpm.h"

#include <algorithm>

namespace dgs {

CollectingCoordinator::CollectingCoordinator(size_t num_query_nodes,
                                             size_t num_global_nodes)
    : num_query_nodes_(num_query_nodes), num_global_nodes_(num_global_nodes) {}

void CollectingCoordinator::OnMessages(SiteContext& ctx,
                                       std::vector<Message> inbox) {
  (void)ctx;
  for (const Message& m : inbox) {
    Blob::Reader reader(m.payload);
    WireTag tag = GetTag(reader);
    if (tag != WireTag::kMatches && tag != WireTag::kMatches2) {
      continue;  // change flags etc.
    }
    std::vector<std::vector<NodeId>> lists;
    DGS_CHECK(ReadMatchList(reader, tag, &lists), "corrupt match list");
    DGS_CHECK(lists.size() == num_query_nodes_, "match list arity mismatch");
    per_site_[m.src] = std::move(lists);  // latest report wins
  }
}

SimulationResult CollectingCoordinator::BuildResult() const {
  bool boolean_payloads = false;
  std::vector<DynamicBitset> fixpoint(num_query_nodes_,
                                      DynamicBitset(num_global_nodes_));
  std::vector<bool> boolean_hit(num_query_nodes_, false);
  for (const auto& [site, lists] : per_site_) {
    for (NodeId u = 0; u < lists.size(); ++u) {
      for (NodeId v : lists[u]) {
        if (v == kInvalidNode) {
          boolean_payloads = true;
          boolean_hit[u] = true;
        } else {
          fixpoint[u].Set(v);
        }
      }
    }
  }
  if (!boolean_payloads) {
    return SimulationResult(std::move(fixpoint), num_global_nodes_);
  }
  // Boolean mode: encode per-query-node hits with a marker bit so that
  // GraphMatches() is exact.
  std::vector<DynamicBitset> marker(
      num_query_nodes_, DynamicBitset(std::max<size_t>(num_global_nodes_, 1)));
  for (NodeId u = 0; u < marker.size(); ++u) {
    if (boolean_hit[u]) marker[u].Set(0);
  }
  return SimulationResult(std::move(marker), num_global_nodes_);
}

DgpmWorker::DgpmWorker(const Fragmentation* fragmentation, uint32_t site,
                       const Pattern* pattern, const DgpmConfig& config,
                       AlgoCounters* counters)
    : fragmentation_(fragmentation),
      fragment_(&fragmentation->fragment(site)),
      pattern_(pattern),
      config_(config),
      counters_(counters),
      engine_(fragment_, pattern, config.incremental) {
  in_node_index_.reserve(fragment_->in_nodes.size());
  for (size_t k = 0; k < fragment_->in_nodes.size(); ++k) {
    in_node_index_.insert(fragment_->in_nodes[k], k);
  }
}

void DgpmWorker::Setup(SiteContext& ctx) {
  engine_.Initialize();
  ShipFalses(ctx, /*flag_coordinator=*/false);
  MaybePush(ctx);
}

void DgpmWorker::OnMessages(SiteContext& ctx, std::vector<Message> inbox) {
  std::vector<uint64_t> falses;
  for (const Message& m : inbox) {
    if (m.cls == MessageClass::kResult) continue;
    Blob::Reader reader(m.payload);
    const WireTag tag = GetTag(reader);
    switch (tag) {
      case WireTag::kFalseVars:
      case WireTag::kFalseVars2: {
        std::vector<uint64_t> keys;
        DGS_CHECK(ReadFalseVarList(reader, tag, &keys),
                  "corrupt false-var payload");
        falses.insert(falses.end(), keys.begin(), keys.end());
        break;
      }
      case WireTag::kPushSystem: {
        ReducedSystem reduced;
        DGS_CHECK(ReducedSystem::Deserialize(reader, &reduced),
                  "corrupt push payload");
        std::vector<uint64_t> fresh = engine_.InstallReducedSystem(reduced);
        matches_dirty_ = true;  // installation may refine local candidates
        // Subscribe to the home sites of the newly referenced variables so
        // their falses flow here directly, bypassing the pushing site.
        std::map<uint32_t, std::vector<NodeId>> by_owner;
        for (uint64_t key : fresh) {
          NodeId gv = VarKeyGlobalNode(key);
          uint32_t owner = fragmentation_->OwnerOf(gv);
          if (owner != ctx.site_id()) by_owner[owner].push_back(gv);
        }
        for (auto& [owner, nodes] : by_owner) {
          std::sort(nodes.begin(), nodes.end());
          nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
          Blob blob;
          PutTag(blob, WireTag::kSubscribe);
          blob.PutU32(static_cast<uint32_t>(nodes.size()));
          for (NodeId gv : nodes) blob.PutU32(gv);
          ctx.Send(owner, MessageClass::kControl, std::move(blob));
        }
        break;
      }
      case WireTag::kSubscribe: {
        uint32_t n = reader.GetU32();
        DGS_CHECK(reader.ok() && n <= reader.Remaining() / 4,
                  "corrupt subscription payload");
        std::vector<uint64_t> known_falses;
        for (uint32_t i = 0; i < n; ++i) {
          NodeId gv = reader.GetU32();
          NodeId lv = fragment_->ToLocal(gv);
          DGS_CHECK(lv != kInvalidNode && lv < fragment_->num_local,
                    "subscription for a non-local node");
          dynamic_consumers_[lv].insert(m.src);
          for (NodeId u : engine_.FalseQueryNodesFor(lv)) {
            known_falses.push_back(MakeVarKey(u, gv));
          }
        }
        if (!known_falses.empty()) {
          Blob blob;
          counters_->wire_saved_data_bytes +=
              AppendFalseVarList(blob, known_falses, ctx.wire_format());
          counters_->vars_shipped += known_falses.size();
          ctx.Send(m.src, MessageClass::kData, std::move(blob));
        }
        break;
      }
      default:
        break;
    }
  }
  if (!falses.empty()) {
    engine_.ApplyRemoteFalses(falses);
    matches_dirty_ = true;
  }
  ShipFalses(ctx, /*flag_coordinator=*/true);
}

void DgpmWorker::OnQuiesce(SiteContext& ctx) {
  if (matches_dirty_) {
    SendMatches(ctx);
    matches_dirty_ = false;
  }
}

void DgpmWorker::ShipFalses(SiteContext& ctx, bool flag_coordinator) {
  auto falses = engine_.DrainInNodeFalses();
  if (falses.empty()) return;

  std::map<uint32_t, std::vector<uint64_t>> by_dst;
  for (const auto& f : falses) {
    uint64_t key = MakeVarKey(f.query_node, fragment_->ToGlobal(f.local_node));
    const size_t* idx_ptr = in_node_index_.find(f.local_node);
    DGS_CHECK(idx_ptr != nullptr, "false var for a non-in-node");
    size_t idx = *idx_ptr;
    for (const InNodeConsumer& c : fragment_->consumers[idx]) {
      if (ConsumerNeedsVar(*pattern_, f.query_node, c.source_labels)) {
        by_dst[c.site].push_back(key);
      }
    }
    auto dit = dynamic_consumers_.find(f.local_node);
    if (dit != dynamic_consumers_.end()) {
      for (uint32_t site : dit->second) by_dst[site].push_back(key);
    }
  }
  for (auto& [dst, keys] : by_dst) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    Blob blob;
    counters_->wire_saved_data_bytes +=
        AppendFalseVarList(blob, keys, ctx.wire_format());
    counters_->vars_shipped += keys.size();
    ctx.Send(dst, MessageClass::kData, std::move(blob));
  }
  if (flag_coordinator) {
    // Termination-detection traffic: "something changed here" (Section 4.1
    // phase 2). Counted as control bytes.
    Blob blob;
    PutTag(blob, WireTag::kFlag);
    blob.PutU8(1);
    ctx.Send(ctx.coordinator_id(), MessageClass::kControl, std::move(blob));
  }
}

void DgpmWorker::MaybePush(SiteContext& ctx) {
  if (!config_.enable_push) return;
  const size_t undecided_in = engine_.NumUndecidedInNode();
  if (undecided_in == 0) return;
  ReducedSystem reduced = engine_.ReduceInNodeEquations();
  if (reduced.TotalUnits() == 0) return;

  // Each parent receives only the equations of the in-nodes it consumes
  // (plus their reachable closure), per Section 4.2: "sends the equations
  // in v.rvec[u] to all the parent sites Sj if Aid(Sj, Si) contains v".
  FlatHashMap<uint64_t, const ReducedEntry*> index;
  FlatHashMap<NodeId, std::vector<uint64_t>> eq_keys_by_node;
  for (const ReducedEntry& e : reduced.entries) {
    index.insert(e.key, &e);
    if (e.kind == ReducedEntry::kEquation) {
      eq_keys_by_node.insert(VarKeyGlobalNode(e.key), {})->push_back(e.key);
    }
  }
  std::map<uint32_t, std::vector<uint64_t>> parent_roots;
  for (size_t k = 0; k < fragment_->in_nodes.size(); ++k) {
    const NodeId global = fragment_->ToGlobal(fragment_->in_nodes[k]);
    const std::vector<uint64_t>* keys = eq_keys_by_node.find(global);
    if (keys == nullptr) continue;
    for (const InNodeConsumer& c : fragment_->consumers[k]) {
      auto& roots = parent_roots[c.site];
      roots.insert(roots.end(), keys->begin(), keys->end());
    }
  }
  if (parent_roots.empty()) return;

  // Slice per parent and compute the total message size m for B(Si).
  std::map<uint32_t, ReducedSystem> slices;
  size_t total_units = 0;
  for (auto& [site, roots] : parent_roots) {
    ReducedSystem slice;
    std::set<uint64_t> seen;
    std::vector<uint64_t> stack = roots;
    while (!stack.empty()) {
      uint64_t key = stack.back();
      stack.pop_back();
      if (!seen.insert(key).second) continue;
      const ReducedEntry* const* entry = index.find(key);
      if (entry == nullptr) continue;  // frontier key
      slice.entries.push_back(**entry);
      for (const auto& g : (*entry)->groups) {
        for (uint64_t ref : g) stack.push_back(ref);
      }
    }
    total_units += slice.TotalUnits();
    slices.emplace(site, std::move(slice));
  }
  if (total_units == 0) return;

  const double benefit = static_cast<double>(engine_.NumUndecidedFrontier()) /
                         (static_cast<double>(total_units) *
                          static_cast<double>(undecided_in));
  if (benefit < config_.push_threshold) return;

  ++counters_->push_count;
  for (auto& [site, slice] : slices) {
    if (slice.entries.empty()) continue;
    Blob payload;
    PutTag(payload, WireTag::kPushSystem);
    counters_->wire_saved_data_bytes +=
        slice.Serialize(payload, ctx.wire_format());
    counters_->equation_units += slice.TotalUnits();
    ctx.Send(site, MessageClass::kData, std::move(payload));
  }
}

void DgpmWorker::SendMatches(SiteContext& ctx) {
  auto candidates = engine_.LocalCandidates();
  std::vector<std::vector<NodeId>> lists(candidates.size());
  for (NodeId u = 0; u < candidates.size(); ++u) {
    candidates[u].ForEachSet([&](size_t lv) {
      lists[u].push_back(fragment_->ToGlobal(static_cast<NodeId>(lv)));
    });
  }
  Blob blob;
  counters_->wire_saved_result_bytes +=
      AppendMatchList(blob, lists, config_.boolean_only, ctx.wire_format());
  ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(blob));
}

DistOutcome RunDgpm(const Fragmentation& fragmentation, const Pattern& pattern,
                    const DgpmConfig& config, const ClusterOptions& runtime) {
  const uint32_t n = fragmentation.NumFragments();
  const size_t num_global = fragmentation.assignment().size();

  DistOutcome outcome;
  Cluster cluster(n, runtime);
  for (uint32_t i = 0; i < n; ++i) {
    cluster.SetWorker(i, std::make_unique<DgpmWorker>(
                             &fragmentation, i, &pattern, config,
                             &outcome.counters));
  }
  cluster.SetCoordinator(std::make_unique<CollectingCoordinator>(
      pattern.NumNodes(), num_global));

  outcome.stats = cluster.Run();
  for (uint32_t i = 0; i < n; ++i) {
    outcome.counters.recomputations +=
        static_cast<DgpmWorker*>(cluster.worker(i))->engine().recompute_count();
  }
  outcome.result =
      static_cast<CollectingCoordinator*>(cluster.coordinator())->BuildResult();
  return outcome;
}

}  // namespace dgs
