// Outcome of a distributed matching run: the answer plus the performance
// metrics the paper reports (response time PT and data shipment DS), with
// the algorithm-specific counters used in the experiment harness.

#ifndef DGS_CORE_METRICS_H_
#define DGS_CORE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "runtime/cluster.h"
#include "simulation/simulation.h"

namespace dgs {

// Counters shared by the site actors of one run. Increments are atomic
// because site callbacks may execute concurrently (ClusterOptions::
// num_threads > 1); the final sums are deterministic for any thread count.
// Copyable (snapshot semantics) so DistOutcome stays a value type.
struct AlgoCounters {
  std::atomic<uint64_t> vars_shipped{0};   // truth values shipped
  std::atomic<uint64_t> push_count{0};     // push operations performed
  std::atomic<uint64_t> equation_units{0};  // reduced-system units shipped
  std::atomic<uint64_t> recomputations{0};  // total lEval (re)computations
  std::atomic<uint32_t> supersteps{0};      // dMes supersteps
  // Payload bytes the V2 delta wire format avoided shipping, per message
  // class (exact: every encoder charges v1_body - v2_body when it emits a
  // V2 body; always 0 under WireFormat::kV1Fixed). Control savings stay 0
  // until subscription/tick payloads are delta-encoded too.
  std::atomic<uint64_t> wire_saved_data_bytes{0};
  std::atomic<uint64_t> wire_saved_control_bytes{0};
  std::atomic<uint64_t> wire_saved_result_bytes{0};

  AlgoCounters() = default;
  AlgoCounters(const AlgoCounters& other) { *this = other; }
  AlgoCounters& operator=(const AlgoCounters& other) {
    vars_shipped = other.vars_shipped.load();
    push_count = other.push_count.load();
    equation_units = other.equation_units.load();
    recomputations = other.recomputations.load();
    supersteps = other.supersteps.load();
    wire_saved_data_bytes = other.wire_saved_data_bytes.load();
    wire_saved_control_bytes = other.wire_saved_control_bytes.load();
    wire_saved_result_bytes = other.wire_saved_result_bytes.load();
    return *this;
  }
};

struct DistOutcome {
  SimulationResult result;
  RunStats stats;
  AlgoCounters counters;

  // Convenience accessors matching the paper's metric names.
  double response_seconds() const { return stats.response_seconds; }
  // DS as the paper reports it: data shipped while computing the answer
  // (truth values, equations, shipped subgraphs). Control traffic and final
  // result collection are tracked separately in `stats`.
  uint64_t data_shipment_bytes() const { return stats.data_bytes; }
};

}  // namespace dgs

#endif  // DGS_CORE_METRICS_H_
