// Outcome of a distributed matching run: the answer plus the performance
// metrics the paper reports (response time PT and data shipment DS), with
// the algorithm-specific counters used in the experiment harness.

#ifndef DGS_CORE_METRICS_H_
#define DGS_CORE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "runtime/cluster.h"
#include "simulation/simulation.h"
#include "util/status.h"

namespace dgs {

// Counters shared by the site actors of one run. Increments are atomic
// because site callbacks may execute concurrently (ClusterOptions::
// num_threads > 1); the final sums are deterministic for any thread count.
// Copyable (snapshot semantics) so DistOutcome stays a value type.
struct AlgoCounters {
  std::atomic<uint64_t> vars_shipped{0};   // truth values shipped
  std::atomic<uint64_t> push_count{0};     // push operations performed
  std::atomic<uint64_t> equation_units{0};  // reduced-system units shipped
  std::atomic<uint64_t> recomputations{0};  // total lEval (re)computations
  std::atomic<uint32_t> supersteps{0};      // dMes supersteps
  // Payload bytes the V2 delta wire format avoided shipping, per message
  // class (exact: every encoder charges v1_body - v2_body when it emits a
  // V2 body; always 0 under WireFormat::kV1Fixed). Control savings come
  // from the kSubscribe2 node lists; the remaining tick/flag/verdict
  // payloads are 1-2 bytes and stay fixed-width.
  std::atomic<uint64_t> wire_saved_data_bytes{0};
  std::atomic<uint64_t> wire_saved_control_bytes{0};
  std::atomic<uint64_t> wire_saved_result_bytes{0};

  AlgoCounters() = default;
  AlgoCounters(const AlgoCounters& other) { *this = other; }
  AlgoCounters& operator=(const AlgoCounters& other) {
    ForEachField(*this, other,
                 [](auto& dst, const auto& src) { dst = src.load(); });
    return *this;
  }

  // Adds another run's sums into this one (query-stream accounting).
  void Accumulate(const AlgoCounters& other) {
    ForEachField(*this, other,
                 [](auto& dst, const auto& src) { dst += src.load(); });
  }

  // Visits every counter field in declaration order (fn(atomic&)). The
  // cross-process counter channel (AlgoCountersChannel in core/serving.h)
  // serializes and merges through this, so it must enumerate exactly the
  // fields ForEachField does, in the same order.
  template <typename Fn>
  void VisitFields(Fn fn) {
    fn(vars_shipped);
    fn(push_count);
    fn(equation_units);
    fn(recomputations);
    fn(supersteps);
    fn(wire_saved_data_bytes);
    fn(wire_saved_control_bytes);
    fn(wire_saved_result_bytes);
  }
  template <typename Fn>
  void VisitFields(Fn fn) const {
    const_cast<AlgoCounters*>(this)->VisitFields(
        [&](const auto& field) { fn(field); });
  }

 private:
  // The single field list behind copy and accumulate — a new counter only
  // needs to be added here (and declared above, and in VisitFields).
  template <typename Fn>
  static void ForEachField(AlgoCounters& dst, const AlgoCounters& src,
                           Fn fn) {
    fn(dst.vars_shipped, src.vars_shipped);
    fn(dst.push_count, src.push_count);
    fn(dst.equation_units, src.equation_units);
    fn(dst.recomputations, src.recomputations);
    fn(dst.supersteps, src.supersteps);
    fn(dst.wire_saved_data_bytes, src.wire_saved_data_bytes);
    fn(dst.wire_saved_control_bytes, src.wire_saved_control_bytes);
    fn(dst.wire_saved_result_bytes, src.wire_saved_result_bytes);
  }
};

// Per-class decode-drop counts of one run, surfaced from RunHealth. A
// healthy run has all-zero drops; a poisoned run tells which message class
// was corrupted and how many payloads the decoders rejected before the
// cluster drained.
struct DecodeDrops {
  uint64_t data = 0;
  uint64_t control = 0;
  uint64_t result = 0;
  uint64_t update = 0;

  uint64_t Total() const { return data + control + result + update; }

  void Accumulate(const DecodeDrops& other) {
    data += other.data;
    control += other.control;
    result += other.result;
    update += other.update;
  }
};

struct DistOutcome {
  SimulationResult result;
  RunStats stats;
  AlgoCounters counters;
  // Wire health of the run. A corrupt or truncated payload — or an
  // injected transport fault — no longer aborts the process: the run is
  // poisoned (see RunHealth in runtime/fault.h), the cluster drains, and
  // the failure surfaces here as a classified status (DataLoss /
  // Unavailable / DeadlineExceeded) with `result` left empty.
  // Engine::Match converts a poisoned outcome into an error Status and
  // stays usable for the next query.
  Status health;
  // Per-message-class decode drops behind `health` (all zero when ok).
  DecodeDrops decode_drops;
  // Chaos accounting of the run's transport (Cluster::fault_stats(); all
  // zero when ClusterOptions::faults is disabled). Recovered faults show
  // up here and ONLY here — RunStats stay bit-identical to fault-free.
  FaultStats faults;
  // Measured wire accounting of the run (Cluster::transport_stats(); all
  // zero on the loopback backend). Under DistOptions::transport = tcp
  // these are real socket bytes and frame counts — the measured twin of
  // the charged RunStats, reported side by side by bench_transport.
  TransportStats transport;

  bool poisoned() const { return !health.ok(); }

  // Convenience accessors matching the paper's metric names.
  double response_seconds() const { return stats.response_seconds; }
  // DS as the paper reports it: data shipped while computing the answer
  // (truth values, equations, shipped subgraphs). Control traffic and final
  // result collection are tracked separately in `stats`.
  uint64_t data_shipment_bytes() const { return stats.data_bytes; }
};

}  // namespace dgs

#endif  // DGS_CORE_METRICS_H_
