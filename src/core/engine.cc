#include "core/engine.h"

#include <utility>

#include "graph/algorithms.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace dgs {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDgpm:
      return "dGPM";
    case Algorithm::kDgpmNoOpt:
      return "dGPMNOpt";
    case Algorithm::kDgpmDag:
      return "dGPMd";
    case Algorithm::kDgpmTree:
      return "dGPMt";
    case Algorithm::kMatch:
      return "Match";
    case Algorithm::kDisHhk:
      return "disHHK";
    case Algorithm::kDMes:
      return "dMes";
    case Algorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

DistOutcome ServeQueryOnce(Deployment& deployment, const Pattern& pattern,
                           const QueryOptions& options,
                           const ClusterOptions& runtime) {
  DistOutcome outcome;
  RunHealth health;

  QueryContext query;
  query.pattern = &pattern;
  query.counters = &outcome.counters;
  query.health = &health;
  query.options = options;

  Cluster cluster(deployment.num_workers(), runtime);
  cluster.BindHealth(&health);
  // Ships this run's AlgoCounters back from remote site processes; the
  // loopback backend ignores the binding (counters are shared in-process).
  AlgoCountersChannel counters_channel(&outcome.counters);
  cluster.BindSharedState(&counters_channel);
  deployment.BindQuery(query);
  BindToCluster(cluster, deployment);
  outcome.stats = cluster.Run();
  outcome.faults = cluster.fault_stats();
  outcome.transport = cluster.transport_stats();
  if (!health.poisoned()) {
    outcome.result = deployment.Collect(&outcome.counters);
  }
  outcome.health = health.ToStatus();
  outcome.decode_drops = {health.decode_drops(MessageClass::kData),
                          health.decode_drops(MessageClass::kControl),
                          health.decode_drops(MessageClass::kResult),
                          health.decode_drops(MessageClass::kUpdate)};
  deployment.EndQuery();
  return outcome;
}

Engine::Engine(const Graph* g, std::optional<Fragmentation> owned,
               const Fragmentation* frag, const EngineOptions& options)
    : graph_(g),
      owned_frag_(std::move(owned)),
      frag_(owned_frag_.has_value() ? &*owned_frag_ : frag),
      options_(options),
      cluster_(frag_->NumFragments(), options.ToClusterOptions()) {}

StatusOr<std::unique_ptr<Engine>> Engine::Create(
    const Graph& g, const std::vector<uint32_t>& assignment,
    uint32_t num_fragments, const EngineOptions& options) {
  WallTimer timer;
  auto fragmentation = Fragmentation::Create(g, assignment, num_fragments);
  if (!fragmentation.ok()) return fragmentation.status();
  std::unique_ptr<Engine> engine(new Engine(
      &g, std::move(fragmentation).value(), nullptr, options));
  engine->stats_.deploy_seconds = timer.ElapsedSeconds();
  return engine;
}

StatusOr<std::unique_ptr<Engine>> Engine::Create(
    const Graph& g, Fragmentation fragmentation,
    const EngineOptions& options) {
  WallTimer timer;
  std::unique_ptr<Engine> engine(
      new Engine(&g, std::move(fragmentation), nullptr, options));
  engine->stats_.deploy_seconds = timer.ElapsedSeconds();
  return engine;
}

StatusOr<std::unique_ptr<Engine>> Engine::Create(
    const Graph& g, const Fragmentation* fragmentation,
    const EngineOptions& options) {
  if (fragmentation == nullptr) {
    return Status::InvalidArgument("fragmentation must not be null");
  }
  WallTimer timer;
  std::unique_ptr<Engine> engine(
      new Engine(&g, std::nullopt, fragmentation, options));
  engine->stats_.deploy_seconds = timer.ElapsedSeconds();
  return engine;
}

bool Engine::GraphIsForest() {
  if (options_.structure_facts != nullptr) {
    return options_.structure_facts->Forest(
        [this] { return IsDownwardForest(*graph_); });
  }
  if (!forest_fact_.has_value()) forest_fact_ = IsDownwardForest(*graph_);
  return *forest_fact_;
}

bool Engine::GraphIsAcyclic() {
  if (options_.structure_facts != nullptr) {
    return options_.structure_facts->Acyclic(
        [this] { return IsAcyclic(*graph_); });
  }
  if (!acyclic_fact_.has_value()) acyclic_fact_ = IsAcyclic(*graph_);
  return *acyclic_fact_;
}

Algorithm Engine::ResolveAlgorithm(const Pattern& q, Algorithm requested) {
  if (requested != Algorithm::kAuto) return requested;
  // Prefer the specialized algorithms with the strongest bounds (Table 1):
  // trees, then DAGs, then the general partition-bounded one.
  if (GraphIsForest()) return Algorithm::kDgpmTree;
  if (q.IsDag() || GraphIsAcyclic()) return Algorithm::kDgpmDag;
  return Algorithm::kDgpm;
}

Engine::FamilySlot Engine::SlotFor(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDgpm:
    case Algorithm::kDgpmNoOpt:
      return kSlotDgpm;
    case Algorithm::kDgpmDag:
      return kSlotDag;
    case Algorithm::kDgpmTree:
      return kSlotTree;
    case Algorithm::kMatch:
      return kSlotMatch;
    case Algorithm::kDisHhk:
      return kSlotDisHhk;
    case Algorithm::kDMes:
      return kSlotDMes;
    case Algorithm::kAuto:
      break;
  }
  DGS_CHECK(false, "kAuto must be resolved before deployment lookup");
  return kSlotDgpm;
}

Deployment& Engine::DeploymentFor(Algorithm algorithm) {
  const FamilySlot slot = SlotFor(algorithm);
  std::unique_ptr<Deployment>& deployment = deployments_[slot];
  if (deployment == nullptr) {
    switch (slot) {
      case kSlotDgpm:
        deployment = MakeDgpmDeployment(frag_);
        break;
      case kSlotDag:
        deployment = MakeDgpmDagDeployment(frag_);
        break;
      case kSlotTree:
        deployment = MakeDgpmTreeDeployment(frag_);
        break;
      case kSlotMatch:
        deployment = MakeMatchDeployment(frag_);
        break;
      case kSlotDisHhk:
        deployment = MakeDisHhkDeployment(frag_);
        break;
      case kSlotDMes:
        deployment = MakeDMesDeployment(frag_);
        break;
      case kNumFamilySlots:
        break;
    }
  }
  return *deployment;
}

namespace {

// RAII side of the Engine single-thread contract: entry does one atomic
// exchange and aborts when a query is already in flight on this Engine.
class ServingGuard {
 public:
  explicit ServingGuard(std::atomic<bool>& serving) : serving_(serving) {
    DGS_CHECK(!serving_.exchange(true, std::memory_order_acquire),
              "Engine serves one query at a time: a Match overlapped an "
              "in-flight query on the same Engine. Use dgs::Server "
              "(serve/server.h) for concurrent serving.");
  }
  ~ServingGuard() { serving_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& serving_;
};

}  // namespace

StatusOr<DistOutcome> Engine::Match(const Pattern& q,
                                    const QueryOptions& options) {
  ServingGuard guard(serving_);
  if (q.NumNodes() == 0) {
    ++stats_.queries_failed;
    return Status::InvalidArgument("pattern must have at least one node");
  }
  if (q.NumNodes() >= (1u << 16)) {
    ++stats_.queries_failed;
    return Status::InvalidArgument("patterns are limited to 65535 nodes");
  }

  const Algorithm algorithm = ResolveAlgorithm(q, options.algorithm);
  switch (algorithm) {
    case Algorithm::kDgpm:
    case Algorithm::kDgpmNoOpt:
    case Algorithm::kDgpmDag:
    case Algorithm::kDgpmTree:
    case Algorithm::kMatch:
    case Algorithm::kDisHhk:
    case Algorithm::kDMes:
      break;
    case Algorithm::kAuto:  // resolved above; out-of-range casts land here
    default:
      ++stats_.queries_failed;
      return Status::Internal("unhandled algorithm");
  }

  // Structural preconditions (Section 5). kAuto never fails these: it only
  // dispatches to a specialized algorithm when the structure fits.
  if (algorithm == Algorithm::kDgpmTree && !GraphIsForest()) {
    ++stats_.queries_failed;
    return Status::FailedPrecondition(
        "dGPMt requires a tree-shaped (downward forest) data graph");
  }
  if (algorithm == Algorithm::kDgpmDag && !q.IsDag()) {
    if (!GraphIsAcyclic()) {
      ++stats_.queries_failed;
      return Status::FailedPrecondition(
          "dGPMd requires a DAG pattern or a DAG data graph");
    }
    // A cyclic pattern cannot match an acyclic graph: some query node on a
    // cycle would need an infinite descending chain of matches. Answered
    // from the deployment without any distributed work.
    const size_t num_global = frag_->assignment().size();
    DistOutcome outcome;
    outcome.result = SimulationResult(
        std::vector<DynamicBitset>(q.NumNodes(), DynamicBitset(num_global)),
        num_global);
    ++stats_.queries_served;
    return outcome;
  }

  Deployment& deployment = DeploymentFor(algorithm);

  obs::TraceSpan match_span("engine", "engine.match");
  match_span.Arg("algorithm", AlgorithmName(algorithm));

  DistOutcome outcome;
  RunHealth health;
  QueryContext query;
  query.pattern = &q;
  query.counters = &outcome.counters;
  query.health = &health;
  query.options = options;
  query.options.algorithm = algorithm;
  // Push is a kDgpm optimization; the ablation and the specialized
  // algorithms run without it (mirrors the one-shot API's behavior).
  query.options.enable_push =
      options.enable_push && algorithm == Algorithm::kDgpm;

  AlgoCountersChannel counters_channel(&outcome.counters);
  {
    obs::TraceSpan bind_span("engine", "engine.bind");
    deployment.BindQuery(query);
    BindToCluster(cluster_, deployment);
    cluster_.BindHealth(&health);
    cluster_.BindSharedState(&counters_channel);
    // Arms the persistent-worker re-ship channel (no-op under loopback or
    // with persistent workers disabled): a tcp fleet forked under this
    // family's deployment picks the query up from the binding blob instead
    // of being reforked per run. deploy_version = family slot + 1, so a
    // family switch retires the fleet whose fork-time snapshot no longer
    // matches.
    binding_.Arm(&deployment, &q, query.options);
    cluster_.BindRunBinding(&binding_,
                            static_cast<uint64_t>(SlotFor(algorithm)) + 1);
  }
  {
    obs::TraceSpan run_span("engine", "engine.run");
    outcome.stats = cluster_.Run();  // Run starts from a clean slate itself
  }
  cluster_.BindRunBinding(nullptr, 0);
  binding_.Disarm();
  cluster_.BindHealth(nullptr);  // health dies with this frame
  cluster_.BindSharedState(nullptr);  // channel dies with this frame
  outcome.faults = cluster_.fault_stats();
  outcome.transport = cluster_.transport_stats();
  const bool poisoned = health.poisoned();
  if (!poisoned) {
    obs::TraceSpan collect_span("engine", "engine.collect");
    outcome.result = deployment.Collect(&outcome.counters);
  }
  outcome.decode_drops = {health.decode_drops(MessageClass::kData),
                          health.decode_drops(MessageClass::kControl),
                          health.decode_drops(MessageClass::kResult),
                          health.decode_drops(MessageClass::kUpdate)};
  // Accumulated win or lose: a poisoned query returns only a Status, so
  // the serving stats are the surviving record of what was dropped (and,
  // under a fault plan, of the chaos the transport absorbed).
  stats_.decode_drops.Accumulate(outcome.decode_drops);
  stats_.faults.Accumulate(outcome.faults);
  stats_.transport.Accumulate(outcome.transport);
  {
    obs::TraceSpan clear_span("engine", "engine.clear");
    deployment.EndQuery();
  }

  if (poisoned) {
    ++stats_.queries_failed;
    return health.ToStatus();
  }
  ++stats_.queries_served;
  stats_.cumulative.Accumulate(outcome.stats);
  stats_.counters.Accumulate(outcome.counters);
  return outcome;
}

BatchOutcome Engine::MatchBatch(std::span<const Pattern> queries,
                                const QueryOptions& options) {
  BatchOutcome batch;
  batch.queries.reserve(queries.size());
  WallTimer timer;
  for (const Pattern& q : queries) {
    BatchQueryResult entry;
    auto result = Match(q, options);
    if (result.ok()) {
      entry.outcome = std::move(result).value();
      batch.cumulative.Accumulate(entry.outcome.stats);
      batch.counters.Accumulate(entry.outcome.counters);
      ++batch.succeeded;
    } else {
      entry.status = result.status();
      ++batch.failed;
    }
    batch.queries.push_back(std::move(entry));
  }
  batch.wall_seconds = timer.ElapsedSeconds();
  return batch;
}

}  // namespace dgs
