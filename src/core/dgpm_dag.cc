#include "core/dgpm_dag.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace dgs {

DgpmDagWorker::DgpmDagWorker(const Fragmentation* fragmentation, uint32_t site)
    : fragmentation_(fragmentation),
      fragment_(&fragmentation->fragment(site)) {
  in_node_index_.reserve(fragment_->in_nodes.size());
  for (size_t k = 0; k < fragment_->in_nodes.size(); ++k) {
    in_node_index_.insert(fragment_->in_nodes[k], k);
  }
}

void DgpmDagWorker::BindQuery(const QueryContext& query) {
  pattern_ = query.pattern;
  config_.boolean_only = query.options.boolean_only;
  counters_ = query.counters;
  health_ = query.health;
  engine_.emplace(fragment_, pattern_, /*incremental=*/true);
  buffer_.clear();
  matches_dirty_ = true;
}

void DgpmDagWorker::EndQuery() {
  pattern_ = nullptr;
  counters_ = nullptr;
  health_ = nullptr;
  engine_.reset();
  buffer_.clear();
  matches_dirty_ = true;
}

void DgpmDagWorker::Setup(SiteContext& ctx) {
  engine_->SetExecutor(ctx.pool());
  engine_->Initialize();
  BufferFalses();  // shipped at the first rank tick
}

void DgpmDagWorker::OnMessages(SiteContext& ctx, std::vector<Message> inbox) {
  if (health_->poisoned()) return;
  engine_->SetExecutor(ctx.pool());
  std::vector<uint64_t> falses;
  uint32_t tick_rank = 0;
  bool ticked = false;
  for (const Message& m : inbox) {
    Blob::Reader reader(m.payload);
    const WireTag tag = GetTag(reader);
    switch (tag) {
      case WireTag::kFalseVars:
      case WireTag::kFalseVars2: {
        std::vector<uint64_t> keys;
        if (!ReadFalseVarList(reader, tag, &keys)) {
          health_->PoisonDecode(m.cls, "corrupt false-var payload");
          return;
        }
        falses.insert(falses.end(), keys.begin(), keys.end());
        break;
      }
      case WireTag::kTick: {
        tick_rank = reader.GetU32();
        if (!reader.ok()) {
          health_->PoisonDecode(m.cls, "corrupt rank tick");
          return;
        }
        ticked = true;
        break;
      }
      default:
        break;
    }
  }
  if (!falses.empty()) {
    engine_->ApplyRemoteFalses(falses);
    matches_dirty_ = true;
    BufferFalses();
  }
  if (ticked) {
    // All variables of rank <= tick_rank are final at every site now.
    ShipUpToRank(ctx, tick_rank);
    Blob ack;
    PutTag(ack, WireTag::kFlag);
    ack.PutU8(1);
    ctx.Send(ctx.coordinator_id(), MessageClass::kControl, std::move(ack));
  }
}

void DgpmDagWorker::OnQuiesce(SiteContext& ctx) {
  if (health_->poisoned()) return;
  if (!buffer_.empty()) {
    // Safety flush; with the rank clock this only fires if the pattern has
    // falses above the final tick (impossible by construction, but false
    // values are always final, so flushing is harmless).
    ShipUpToRank(ctx, pattern_->MaxRank());
    return;
  }
  if (matches_dirty_) {
    SendMatches(ctx);
    matches_dirty_ = false;
  }
}

void DgpmDagWorker::BufferFalses() {
  const auto& ranks = pattern_->Ranks();
  for (const auto& f : engine_->DrainInNodeFalses()) {
    uint64_t key = MakeVarKey(f.query_node, fragment_->ToGlobal(f.local_node));
    const size_t* idx_ptr = in_node_index_.find(f.local_node);
    DGS_CHECK(idx_ptr != nullptr, "false var for a non-in-node");
    size_t idx = *idx_ptr;
    for (const InNodeConsumer& c : fragment_->consumers[idx]) {
      if (ConsumerNeedsVar(*pattern_, f.query_node, c.source_labels)) {
        buffer_[ranks[f.query_node]][c.site].push_back(key);
      }
    }
  }
}

void DgpmDagWorker::ShipUpToRank(SiteContext& ctx, uint32_t max_rank) {
  std::map<uint32_t, std::vector<uint64_t>> by_dst;
  while (!buffer_.empty() && buffer_.begin()->first <= max_rank) {
    for (auto& [dst, keys] : buffer_.begin()->second) {
      auto& sink = by_dst[dst];
      sink.insert(sink.end(), keys.begin(), keys.end());
    }
    buffer_.erase(buffer_.begin());
  }
  for (auto& [dst, keys] : by_dst) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    Blob blob;
    counters_->wire_saved_data_bytes +=
        AppendFalseVarList(blob, keys, ctx.wire_format());
    counters_->vars_shipped += keys.size();
    ctx.Send(dst, MessageClass::kData, std::move(blob));
  }
}

void DgpmDagWorker::SendMatches(SiteContext& ctx) {
  auto candidates = engine_->LocalCandidates();
  std::vector<std::vector<NodeId>> lists(candidates.size());
  for (NodeId u = 0; u < candidates.size(); ++u) {
    candidates[u].ForEachSet([&](size_t lv) {
      lists[u].push_back(fragment_->ToGlobal(static_cast<NodeId>(lv)));
    });
  }
  Blob blob;
  counters_->wire_saved_result_bytes +=
      AppendMatchList(blob, lists, config_.boolean_only, ctx.wire_format());
  ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(blob));
}

DgpmDagCoordinator::DgpmDagCoordinator(size_t num_global_nodes,
                                       uint32_t num_workers)
    : collector_(num_global_nodes), num_workers_(num_workers) {}

void DgpmDagCoordinator::BindQuery(const QueryContext& query) {
  collector_.BindQuery(query);
  health_ = query.health;
  max_rank_ = query.pattern->MaxRank();
  current_rank_ = 0;
  acks_ = 0;
}

void DgpmDagCoordinator::EndQuery() {
  collector_.EndQuery();
  health_ = nullptr;
  max_rank_ = 0;
  current_rank_ = 0;
  acks_ = 0;
}

void DgpmDagCoordinator::Setup(SiteContext& ctx) {
  if (max_rank_ >= 1) {
    current_rank_ = 1;
    BroadcastTick(ctx);
  }
}

void DgpmDagCoordinator::OnMessages(SiteContext& ctx,
                                    std::vector<Message> inbox) {
  if (health_->poisoned()) return;
  for (Message& m : inbox) {
    Blob::Reader reader(m.payload);
    WireTag tag = GetTag(reader);
    if (tag == WireTag::kFlag) {
      ++acks_;
    } else if (tag == WireTag::kMatches || tag == WireTag::kMatches2) {
      std::vector<Message> one;
      one.push_back(std::move(m));
      collector_.OnMessages(ctx, std::move(one));
    }
  }
  if (acks_ >= num_workers_ && current_rank_ < max_rank_) {
    acks_ = 0;
    ++current_rank_;
    BroadcastTick(ctx);
  }
}

void DgpmDagCoordinator::BroadcastTick(SiteContext& ctx) {
  for (uint32_t i = 0; i < num_workers_; ++i) {
    Blob blob;
    PutTag(blob, WireTag::kTick);
    blob.PutU32(current_rank_);
    ctx.Send(i, MessageClass::kControl, std::move(blob));
  }
}

namespace {

class DgpmDagDeployment : public Deployment {
 public:
  explicit DgpmDagDeployment(const Fragmentation* fragmentation)
      : coordinator_(fragmentation->assignment().size(),
                     fragmentation->NumFragments()) {
    workers_.reserve(fragmentation->NumFragments());
    for (uint32_t i = 0; i < fragmentation->NumFragments(); ++i) {
      workers_.push_back(std::make_unique<DgpmDagWorker>(fragmentation, i));
    }
  }

  uint32_t num_workers() const override {
    return static_cast<uint32_t>(workers_.size());
  }
  QuerySiteActor* worker(uint32_t i) override { return workers_[i].get(); }
  QuerySiteActor* coordinator() override { return &coordinator_; }

  SimulationResult Collect(AlgoCounters* counters) override {
    (void)counters;
    return coordinator_.BuildResult();
  }

 private:
  std::vector<std::unique_ptr<DgpmDagWorker>> workers_;
  DgpmDagCoordinator coordinator_;
};

}  // namespace

std::unique_ptr<Deployment> MakeDgpmDagDeployment(
    const Fragmentation* fragmentation) {
  return std::make_unique<DgpmDagDeployment>(fragmentation);
}

DistOutcome RunDgpmDag(const Fragmentation& fragmentation,
                       const Pattern& pattern, const Graph& g,
                       const DgpmDagConfig& config,
                       const ClusterOptions& runtime) {
  const size_t num_global = fragmentation.assignment().size();
  if (!pattern.IsDag()) {
    DGS_CHECK(IsAcyclic(g),
              "dGPMd requires a DAG pattern or a DAG data graph");
    // A cyclic pattern cannot match an acyclic graph: some query node on a
    // cycle would need an infinite descending chain of matches.
    DistOutcome outcome;
    outcome.result = SimulationResult(
        std::vector<DynamicBitset>(pattern.NumNodes(),
                                   DynamicBitset(num_global)),
        num_global);
    return outcome;
  }

  auto deployment = MakeDgpmDagDeployment(&fragmentation);
  QueryOptions options;
  options.algorithm = Algorithm::kDgpmDag;
  options.boolean_only = config.boolean_only;
  return ServeQueryOnce(*deployment, pattern, options, runtime);
}

}  // namespace dgs
