#include "core/api.h"

#include "graph/algorithms.h"

namespace dgs {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDgpm:
      return "dGPM";
    case Algorithm::kDgpmNoOpt:
      return "dGPMNOpt";
    case Algorithm::kDgpmDag:
      return "dGPMd";
    case Algorithm::kDgpmTree:
      return "dGPMt";
    case Algorithm::kMatch:
      return "Match";
    case Algorithm::kDisHhk:
      return "disHHK";
    case Algorithm::kDMes:
      return "dMes";
    case Algorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

StatusOr<DistOutcome> DistributedMatch(const Graph& g,
                                       const Fragmentation& fragmentation,
                                       const Pattern& q,
                                       const DistOptions& options) {
  if (q.NumNodes() == 0) {
    return Status::InvalidArgument("pattern must have at least one node");
  }
  if (q.NumNodes() >= (1u << 16)) {
    return Status::InvalidArgument("patterns are limited to 65535 nodes");
  }

  ClusterOptions runtime(options.network);
  runtime.num_threads = options.num_threads;
  runtime.wire_format = options.wire_format;

  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    // Prefer the specialized algorithms with the strongest bounds
    // (Table 1): trees, then DAGs, then the general partition-bounded one.
    if (IsDownwardForest(g)) {
      algorithm = Algorithm::kDgpmTree;
    } else if (q.IsDag() || IsAcyclic(g)) {
      algorithm = Algorithm::kDgpmDag;
    } else {
      algorithm = Algorithm::kDgpm;
    }
    DistOptions resolved = options;
    resolved.algorithm = algorithm;
    return DistributedMatch(g, fragmentation, q, resolved);
  }

  switch (options.algorithm) {
    case Algorithm::kDgpm:
    case Algorithm::kDgpmNoOpt: {
      DgpmConfig config;
      config.incremental = options.algorithm == Algorithm::kDgpm;
      config.enable_push =
          options.enable_push && options.algorithm == Algorithm::kDgpm;
      config.push_threshold = options.push_threshold;
      config.boolean_only = options.boolean_only;
      return RunDgpm(fragmentation, q, config, runtime);
    }
    case Algorithm::kDgpmDag: {
      if (!q.IsDag() && !IsAcyclic(g)) {
        return Status::FailedPrecondition(
            "dGPMd requires a DAG pattern or a DAG data graph");
      }
      DgpmDagConfig config;
      config.boolean_only = options.boolean_only;
      return RunDgpmDag(fragmentation, q, g, config, runtime);
    }
    case Algorithm::kDgpmTree: {
      if (!IsDownwardForest(g)) {
        return Status::FailedPrecondition(
            "dGPMt requires a tree-shaped (downward forest) data graph");
      }
      DgpmTreeConfig config;
      config.boolean_only = options.boolean_only;
      return RunDgpmTree(fragmentation, q, config, runtime);
    }
    case Algorithm::kMatch:
    case Algorithm::kDisHhk: {
      BaselineConfig config;
      config.boolean_only = options.boolean_only;
      return options.algorithm == Algorithm::kMatch
                 ? RunMatch(fragmentation, q, config, runtime)
                 : RunDisHhk(fragmentation, q, config, runtime);
    }
    case Algorithm::kDMes: {
      BaselineConfig config;
      config.boolean_only = options.boolean_only;
      return RunDMes(fragmentation, q, config, runtime);
    }
    case Algorithm::kAuto:
      break;  // resolved above; unreachable
  }
  return Status::Internal("unhandled algorithm");
}

StatusOr<DistOutcome> DistributedMatch(const Graph& g,
                                       const std::vector<uint32_t>& assignment,
                                       uint32_t num_fragments, const Pattern& q,
                                       const DistOptions& options) {
  auto fragmentation = Fragmentation::Create(g, assignment, num_fragments);
  if (!fragmentation.ok()) return fragmentation.status();
  return DistributedMatch(g, *fragmentation, q, options);
}

}  // namespace dgs
