#include "core/api.h"

namespace dgs {

StatusOr<DistOutcome> DistributedMatch(const Graph& g,
                                       const Fragmentation& fragmentation,
                                       const Pattern& q,
                                       const DistOptions& options) {
  // One-shot = deploy a temporary engine, serve the single query. The
  // engine borrows the caller's fragmentation; both live for this call.
  auto engine = Engine::Create(g, &fragmentation, options.engine_options());
  if (!engine.ok()) return engine.status();
  return (*engine)->Match(q, options.query_options());
}

StatusOr<DistOutcome> DistributedMatch(const Graph& g,
                                       const std::vector<uint32_t>& assignment,
                                       uint32_t num_fragments, const Pattern& q,
                                       const DistOptions& options) {
  auto engine =
      Engine::Create(g, assignment, num_fragments, options.engine_options());
  if (!engine.ok()) return engine.status();
  return (*engine)->Match(q, options.query_options());
}

}  // namespace dgs
