// Wire protocol shared by the distributed algorithms.
//
// Every payload starts with a one-byte tag. False-variable lists use the
// compact 6-byte encoding (u32 global node, u16 query node) since truth
// values dominate dGPM's data shipment and the paper's bounds count them.

#ifndef DGS_CORE_PROTOCOL_H_
#define DGS_CORE_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "core/local_engine.h"
#include "graph/pattern.h"
#include "runtime/message.h"

namespace dgs {

enum class WireTag : uint8_t {
  kFalseVars = 1,    // dGPM family: variables now known false
  kPushSystem = 2,   // push operation: reduced equation system
  kSubscribe = 3,    // push follow-up: deliver falses of a node to a site
  kFlag = 4,         // change flag to the coordinator
  kMatches = 5,      // result collection
  kSubgraph = 6,     // Match / disHHK: shipped fragment subgraph
  kRequest = 7,      // dMes: request truth values
  kReply = 8,        // dMes: reply with current truth values
  kTick = 9,         // dMes: superstep clock
  kVerdict = 10,     // dMes: continue / halt
  kTreeAnswer = 11,  // dGPMt: partial answer Li (reduced system)
  kTreeValues = 12,  // dGPMt: resolved Boolean values
};

inline void PutTag(Blob& blob, WireTag tag) {
  blob.PutU8(static_cast<uint8_t>(tag));
}
inline WireTag GetTag(Blob::Reader& reader) {
  return static_cast<WireTag>(reader.GetU8());
}

// --- False-variable lists -------------------------------------------------

inline void AppendFalseVarList(Blob& blob, const std::vector<uint64_t>& keys) {
  PutTag(blob, WireTag::kFalseVars);
  blob.PutU32(static_cast<uint32_t>(keys.size()));
  for (uint64_t key : keys) {
    blob.PutU32(VarKeyGlobalNode(key));
    blob.PutU16(static_cast<uint16_t>(VarKeyQueryNode(key)));
  }
}

// Call with the reader positioned after the tag.
inline std::vector<uint64_t> ReadFalseVarList(Blob::Reader& reader) {
  uint32_t n = reader.GetU32();
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t gv = reader.GetU32();
    uint16_t u = reader.GetU16();
    keys.push_back(MakeVarKey(u, gv));
  }
  return keys;
}

// --- Match lists (result collection) --------------------------------------

// Payload: tag, u16 num query nodes, then per query node a u32 count and
// that many u32 global node ids. In Boolean mode counts are 0/1 with no ids
// shipped beyond a presence bit per query node.
inline void AppendMatchList(Blob& blob,
                            const std::vector<std::vector<NodeId>>& matches,
                            bool boolean_only) {
  PutTag(blob, WireTag::kMatches);
  blob.PutU16(static_cast<uint16_t>(matches.size()));
  blob.PutU8(boolean_only ? 1 : 0);
  for (const auto& list : matches) {
    if (boolean_only) {
      blob.PutU8(list.empty() ? 0 : 1);
    } else {
      blob.PutU32(static_cast<uint32_t>(list.size()));
      for (NodeId v : list) blob.PutU32(v);
    }
  }
}

// Returns per-query-node global id lists; in Boolean mode a non-empty
// marker is encoded as a single kInvalidNode entry.
inline std::vector<std::vector<NodeId>> ReadMatchList(Blob::Reader& reader) {
  uint16_t nq = reader.GetU16();
  bool boolean_only = reader.GetU8() != 0;
  std::vector<std::vector<NodeId>> out(nq);
  for (auto& list : out) {
    if (boolean_only) {
      if (reader.GetU8() != 0) list.push_back(kInvalidNode);
    } else {
      uint32_t n = reader.GetU32();
      list.reserve(n);
      for (uint32_t i = 0; i < n; ++i) list.push_back(reader.GetU32());
    }
  }
  return out;
}

// --- Usefulness filter (Section 4.1) --------------------------------------

// A consumer site holding node v as a virtual node references X(u, v) only
// if some crossing-edge source at that site could match a parent of u; the
// fragmentation records those source labels.
inline bool ConsumerNeedsVar(const Pattern& q, NodeId u,
                             const std::vector<Label>& source_labels) {
  for (NodeId up : q.Parents(u)) {
    Label l = q.LabelOf(up);
    for (Label s : source_labels) {
      if (s == l) return true;
    }
  }
  return false;
}

}  // namespace dgs

#endif  // DGS_CORE_PROTOCOL_H_
