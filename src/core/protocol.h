// Wire protocol shared by the distributed algorithms.
//
// Every payload starts with a one-byte tag. Truth values dominate the data
// shipment of the dGPM family and dMes (the paper's DS metric counts them),
// so the key lists they ride in exist in two formats:
//
//   V1 (fixed):  u32 count, then one 6-byte record per truth value
//                (u32 global node, u16 query node). Request lists and
//                kReply add a truth byte per record (7 bytes).
//
//   V2 (delta):  a grouped sorted-gap varint list. Layout after the tag:
//                  varint #groups
//                  per group: u16 query node, varint count,
//                             varint first global id, count-1 varint gaps
//                Keys are regrouped by query node and sorted by global id,
//                so consecutive ids of one fragment collapse to 1-byte
//                gaps. Consumers of these lists are order-insensitive;
//                decoders return the keys sorted by wire-key value.
//                Match lists (kMatches2) use the per-query-node variant:
//                u16 #query nodes, then per node varint count, varint first
//                id, gaps. Truth-value replies (kReply2) ship only the
//                FALSE subset as a delta list — absent keys are true, which
//                the optimistic greatest-fixpoint semantics make implicit.
//
// Every V2 encoder compares its body against the V1 body and emits whichever
// is smaller (tags are self-describing), so V2 never ships more bytes than
// V1; the bytes saved are returned so callers can charge the per-class
// savings counters in AlgoCounters.
//
// All decoders are length-validated: declared counts are checked against
// Reader::Remaining() before any reserve/resize, global ids are checked
// against the 32-bit node range, and truncated or corrupt payloads make the
// decoder return false instead of crashing or over-allocating.

#ifndef DGS_CORE_PROTOCOL_H_
#define DGS_CORE_PROTOCOL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/local_engine.h"
#include "graph/pattern.h"
#include "runtime/message.h"

namespace dgs {

enum class WireTag : uint8_t {
  kFalseVars = 1,    // dGPM family: variables now known false (V1 fixed)
  kPushSystem = 2,   // push operation: reduced equation system
  kSubscribe = 3,    // push follow-up: deliver falses of a node to a site
  kFlag = 4,         // change flag to the coordinator
  kMatches = 5,      // result collection (V1 fixed / Boolean bits)
  kSubgraph = 6,     // Match / disHHK: shipped fragment subgraph
  kRequest = 7,      // dMes: request truth values (V1 fixed)
  kReply = 8,        // dMes: reply with current truth values (V1 fixed)
  kTick = 9,         // dMes: superstep clock
  kVerdict = 10,     // dMes: continue / halt
  kTreeAnswer = 11,  // dGPMt: partial answer Li (reduced system)
  kTreeValues = 12,  // dGPMt: resolved Boolean values
  kFalseVars2 = 13,  // V2 delta false-var list
  kMatches2 = 14,    // V2 delta match list
  kRequest2 = 15,    // V2 delta truth-value request
  kReply2 = 16,      // V2 delta truth-value reply (false subset only)
  kSubscribe2 = 17,  // V2 delta subscription node list
  kSubgraph2 = 18,   // V2 delta subgraph shipment
};

inline void PutTag(Blob& blob, WireTag tag) {
  blob.PutU8(static_cast<uint8_t>(tag));
}
inline WireTag GetTag(Blob::Reader& reader) {
  return static_cast<WireTag>(reader.GetU8());
}

// Fixed-record sizes of the V1 layouts (used for length validation and for
// computing the V2 savings).
inline constexpr size_t kFalseVarRecordBytes = 6;   // u32 node + u16 query
inline constexpr size_t kTruthReplyRecordBytes = 7;  // record + truth byte

namespace wire_internal {

// Appends the V2 grouped-delta body (no tag) for a key list. Keys are
// regrouped by query node and delta-encoded over sorted global ids.
inline void AppendDeltaKeyList(Blob& blob, std::vector<uint64_t> keys) {
  std::sort(keys.begin(), keys.end(), [](uint64_t a, uint64_t b) {
    if (VarKeyQueryNode(a) != VarKeyQueryNode(b)) {
      return VarKeyQueryNode(a) < VarKeyQueryNode(b);
    }
    return VarKeyGlobalNode(a) < VarKeyGlobalNode(b);
  });
  size_t num_groups = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i == 0 || VarKeyQueryNode(keys[i]) != VarKeyQueryNode(keys[i - 1])) {
      ++num_groups;
    }
  }
  blob.PutVarint(num_groups);
  size_t i = 0;
  while (i < keys.size()) {
    const NodeId u = VarKeyQueryNode(keys[i]);
    size_t end = i;
    while (end < keys.size() && VarKeyQueryNode(keys[end]) == u) ++end;
    blob.PutU16(static_cast<uint16_t>(u));
    blob.PutVarint(end - i);
    blob.PutVarint(VarKeyGlobalNode(keys[i]));
    for (size_t k = i + 1; k < end; ++k) {
      blob.PutVarint(VarKeyGlobalNode(keys[k]) - VarKeyGlobalNode(keys[k - 1]));
    }
    i = end;
  }
}

// Reads a V2 grouped-delta body into `out` (sorted by wire-key value).
// Returns false on truncation, overflow, or implausible counts.
inline bool ReadDeltaKeyList(Blob::Reader& reader, std::vector<uint64_t>* out) {
  out->clear();
  const uint64_t num_groups = reader.GetVarint();
  // A group takes at least 4 bytes (u16 query node + 2 one-byte varints).
  if (!reader.ok() || num_groups > reader.Remaining() / 4) return false;
  for (uint64_t g = 0; g < num_groups; ++g) {
    const NodeId u = reader.GetU16();
    const uint64_t count = reader.GetVarint();
    // Every id/gap varint takes at least one byte; an empty group is never
    // emitted, so count == 0 means corruption.
    if (!reader.ok() || count == 0 || count > reader.Remaining()) return false;
    out->reserve(out->size() + static_cast<size_t>(count));
    uint64_t gid = reader.GetVarint();
    for (uint64_t k = 0; k < count; ++k) {
      if (k > 0) {
        // Bound the gap before accumulating so a huge varint cannot wrap
        // the accumulator back under the 32-bit node-id check.
        const uint64_t gap = reader.GetVarint();
        if (gap > 0xffffffffull) return false;
        gid += gap;
      }
      if (!reader.ok() || gid > 0xffffffffull) return false;
      out->push_back(MakeVarKey(u, static_cast<NodeId>(gid)));
    }
  }
  std::sort(out->begin(), out->end());
  return true;
}

// Shared V1/V2 key-list encoder: emits the V2 delta body under `v2_tag`
// when the format asks for it AND the delta body is smaller, otherwise the
// V1 fixed body under `v1_tag`. Returns payload bytes saved vs V1.
inline uint64_t AppendKeyList(Blob& blob, WireTag v1_tag, WireTag v2_tag,
                              const std::vector<uint64_t>& keys,
                              WireFormat format) {
  const size_t v1_body = 4 + kFalseVarRecordBytes * keys.size();
  if (format == WireFormat::kV2Delta) {
    Blob body;
    AppendDeltaKeyList(body, keys);
    if (body.size() < v1_body) {
      PutTag(blob, v2_tag);
      blob.Append(body);
      return v1_body - body.size();
    }
  }
  PutTag(blob, v1_tag);
  blob.PutU32(static_cast<uint32_t>(keys.size()));
  for (uint64_t key : keys) {
    blob.PutU32(VarKeyGlobalNode(key));
    blob.PutU16(static_cast<uint16_t>(VarKeyQueryNode(key)));
  }
  return 0;
}

// Shared V1 fixed-record key-list decoder (reader positioned after the tag).
inline bool ReadFixedKeyList(Blob::Reader& reader, std::vector<uint64_t>* out) {
  out->clear();
  const uint32_t n = reader.GetU32();
  if (!reader.ok() || n > reader.Remaining() / kFalseVarRecordBytes) {
    return false;
  }
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t gv = reader.GetU32();
    const uint16_t u = reader.GetU16();
    out->push_back(MakeVarKey(u, gv));
  }
  return reader.ok();
}

}  // namespace wire_internal

// --- False-variable lists -------------------------------------------------

// Appends a false-var list in the requested format; returns the payload
// bytes saved vs the V1 layout (0 when the V1 body was emitted).
inline uint64_t AppendFalseVarList(Blob& blob,
                                   const std::vector<uint64_t>& keys,
                                   WireFormat format) {
  return wire_internal::AppendKeyList(blob, WireTag::kFalseVars,
                                      WireTag::kFalseVars2, keys, format);
}

// Call with the reader positioned after the tag; `tag` selects the layout.
// Returns false (leaving *out empty or partial) on a corrupt payload.
inline bool ReadFalseVarList(Blob::Reader& reader, WireTag tag,
                             std::vector<uint64_t>* out) {
  if (tag == WireTag::kFalseVars2) {
    return wire_internal::ReadDeltaKeyList(reader, out);
  }
  if (tag != WireTag::kFalseVars) return false;
  return wire_internal::ReadFixedKeyList(reader, out);
}

// --- dMes truth-value requests and replies --------------------------------

// Requests reuse the key-list layouts under their own tags.
inline uint64_t AppendTruthRequest(Blob& blob,
                                   const std::vector<uint64_t>& keys,
                                   WireFormat format) {
  return wire_internal::AppendKeyList(blob, WireTag::kRequest,
                                      WireTag::kRequest2, keys, format);
}
inline bool ReadTruthRequest(Blob::Reader& reader, WireTag tag,
                             std::vector<uint64_t>* out) {
  if (tag == WireTag::kRequest2) {
    return wire_internal::ReadDeltaKeyList(reader, out);
  }
  if (tag != WireTag::kRequest) return false;
  return wire_internal::ReadFixedKeyList(reader, out);
}

// Reply: V1 echoes every requested key with a truth byte; V2 ships only the
// false subset as a delta list (keys not mentioned are still undecided,
// i.e. presumed true — exactly how the requester treats them). `is_false`
// is evaluated once per requested key. Returns payload bytes saved vs V1.
template <typename IsFalse>
inline uint64_t AppendTruthReply(Blob& blob, const std::vector<uint64_t>& keys,
                                 const IsFalse& is_false, WireFormat format) {
  const size_t v1_body = 4 + kTruthReplyRecordBytes * keys.size();
  if (format == WireFormat::kV2Delta) {
    std::vector<uint64_t> falses;
    for (uint64_t key : keys) {
      if (is_false(key)) falses.push_back(key);
    }
    Blob body;
    wire_internal::AppendDeltaKeyList(body, falses);
    if (body.size() < v1_body) {
      PutTag(blob, WireTag::kReply2);
      blob.Append(body);
      return v1_body - body.size();
    }
  }
  PutTag(blob, WireTag::kReply);
  blob.PutU32(static_cast<uint32_t>(keys.size()));
  for (uint64_t key : keys) {
    blob.PutU32(VarKeyGlobalNode(key));
    blob.PutU16(static_cast<uint16_t>(VarKeyQueryNode(key)));
    blob.PutU8(is_false(key) ? 1 : 0);
  }
  return 0;
}

// Reads the keys reported FALSE by a reply in either format.
inline bool ReadTruthReplyFalses(Blob::Reader& reader, WireTag tag,
                                 std::vector<uint64_t>* out) {
  if (tag == WireTag::kReply2) {
    return wire_internal::ReadDeltaKeyList(reader, out);
  }
  if (tag != WireTag::kReply) return false;
  out->clear();
  const uint32_t n = reader.GetU32();
  if (!reader.ok() || n > reader.Remaining() / kTruthReplyRecordBytes) {
    return false;
  }
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t gv = reader.GetU32();
    const uint16_t u = reader.GetU16();
    if (reader.GetU8() != 0) out->push_back(MakeVarKey(u, gv));
  }
  return reader.ok();
}

// --- Subscription node lists (push follow-up) -----------------------------

// V1 payload: tag, u32 count, u32 global id per node. V2 (kSubscribe2):
// varint count, varint first id, sorted varint gaps. `nodes` must be
// sorted ascending and duplicate-free (the subscribe path sorts before
// encoding); decoders of either layout return the ids as shipped. Returns
// payload bytes saved vs V1 (0 when the V1 body was emitted).
inline uint64_t AppendSubscribeList(Blob& blob,
                                    const std::vector<NodeId>& nodes,
                                    WireFormat format) {
  const size_t v1_body = 4 + 4 * nodes.size();
  if (format == WireFormat::kV2Delta) {
    Blob body;
    body.PutVarint(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      body.PutVarint(i == 0 ? nodes[0] : nodes[i] - nodes[i - 1]);
    }
    if (body.size() < v1_body) {
      PutTag(blob, WireTag::kSubscribe2);
      blob.Append(body);
      return v1_body - body.size();
    }
  }
  PutTag(blob, WireTag::kSubscribe);
  blob.PutU32(static_cast<uint32_t>(nodes.size()));
  for (NodeId gv : nodes) blob.PutU32(gv);
  return 0;
}

// Call with the reader positioned after the tag; `tag` selects the layout.
inline bool ReadSubscribeList(Blob::Reader& reader, WireTag tag,
                              std::vector<NodeId>* out) {
  out->clear();
  if (tag == WireTag::kSubscribe2) {
    const uint64_t n = reader.GetVarint();
    // Every id/gap varint takes at least one byte.
    if (!reader.ok() || n > reader.Remaining()) return false;
    out->reserve(n);
    uint64_t id = 0;
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t delta = reader.GetVarint();
      if (delta > 0xffffffffull) return false;  // would wrap the sum
      id = (i == 0) ? delta : id + delta;
      if (!reader.ok() || id > 0xffffffffull) return false;
      out->push_back(static_cast<NodeId>(id));
    }
    return true;
  }
  if (tag != WireTag::kSubscribe) return false;
  const uint32_t n = reader.GetU32();
  if (!reader.ok() || n > reader.Remaining() / 4) return false;
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) out->push_back(reader.GetU32());
  return reader.ok();
}

// --- Subgraph shipments (Match / disHHK) ----------------------------------

// V1 payload: tag, u32 #nodes, (u32 global id, u32 label) per node,
// u32 #edges, (u32 from, u32 to) per edge — emitted in the caller's order.
// V2 (kSubgraph2) sorts copies and delta-encodes:
//   varint #nodes, per node varint id gap (sorted by id) + varint label
//   varint #source groups, per group varint source gap, varint edge count,
//     varint first target, sorted varint target gaps
// Returns payload bytes saved vs V1 (0 when the V1 body was emitted).
inline uint64_t AppendSubgraph(
    Blob& blob, const std::vector<std::pair<NodeId, Label>>& nodes,
    const std::vector<std::pair<NodeId, NodeId>>& edges, WireFormat format) {
  const size_t v1_body = 4 + 8 * nodes.size() + 4 + 8 * edges.size();
  if (format == WireFormat::kV2Delta) {
    std::vector<std::pair<NodeId, Label>> ns(nodes);
    std::sort(ns.begin(), ns.end());
    std::vector<std::pair<NodeId, NodeId>> es(edges);
    std::sort(es.begin(), es.end());
    Blob body;
    body.PutVarint(ns.size());
    for (size_t i = 0; i < ns.size(); ++i) {
      body.PutVarint(i == 0 ? ns[0].first : ns[i].first - ns[i - 1].first);
      body.PutVarint(ns[i].second);
    }
    size_t num_groups = 0;
    for (size_t i = 0; i < es.size(); ++i) {
      if (i == 0 || es[i].first != es[i - 1].first) ++num_groups;
    }
    body.PutVarint(num_groups);
    size_t i = 0;
    NodeId prev_src = 0;
    while (i < es.size()) {
      const NodeId src = es[i].first;
      size_t end = i;
      while (end < es.size() && es[end].first == src) ++end;
      body.PutVarint(src - prev_src);  // first group: absolute (prev = 0)
      prev_src = src;
      body.PutVarint(end - i);
      body.PutVarint(es[i].second);
      for (size_t k = i + 1; k < end; ++k) {
        body.PutVarint(es[k].second - es[k - 1].second);
      }
      i = end;
    }
    if (body.size() < v1_body) {
      PutTag(blob, WireTag::kSubgraph2);
      blob.Append(body);
      return v1_body - body.size();
    }
  }
  PutTag(blob, WireTag::kSubgraph);
  blob.PutU32(static_cast<uint32_t>(nodes.size()));
  for (auto [gid, label] : nodes) {
    blob.PutU32(gid);
    blob.PutU32(label);
  }
  blob.PutU32(static_cast<uint32_t>(edges.size()));
  for (auto [from, to] : edges) {
    blob.PutU32(from);
    blob.PutU32(to);
  }
  return 0;
}

// Call with the reader positioned after the tag. Length-validated like the
// other decoders; node/edge ids additionally checked against the 32-bit
// range. Range checks against the actual graph size stay with the caller.
inline bool ReadSubgraph(Blob::Reader& reader, WireTag tag,
                         std::vector<std::pair<NodeId, Label>>* nodes,
                         std::vector<std::pair<NodeId, NodeId>>* edges) {
  nodes->clear();
  edges->clear();
  if (tag == WireTag::kSubgraph2) {
    const uint64_t num_nodes = reader.GetVarint();
    // Every node takes at least two varint bytes (id gap + label).
    if (!reader.ok() || num_nodes > reader.Remaining() / 2) return false;
    nodes->reserve(num_nodes);
    uint64_t gid = 0;
    for (uint64_t i = 0; i < num_nodes; ++i) {
      const uint64_t gap = reader.GetVarint();
      if (gap > 0xffffffffull) return false;
      gid = (i == 0) ? gap : gid + gap;
      const uint64_t label = reader.GetVarint();
      if (!reader.ok() || gid > 0xffffffffull || label > 0xffffffffull) {
        return false;
      }
      nodes->emplace_back(static_cast<NodeId>(gid),
                          static_cast<Label>(label));
    }
    const uint64_t num_groups = reader.GetVarint();
    // A group takes at least three varint bytes (gap, count, first target).
    if (!reader.ok() || num_groups > reader.Remaining() / 3) return false;
    uint64_t src = 0;
    for (uint64_t g = 0; g < num_groups; ++g) {
      const uint64_t src_gap = reader.GetVarint();
      if (src_gap > 0xffffffffull) return false;
      src = (g == 0) ? src_gap : src + src_gap;
      const uint64_t count = reader.GetVarint();
      // An empty group is never emitted; every target takes >= one byte.
      if (!reader.ok() || src > 0xffffffffull || count == 0 ||
          count > reader.Remaining()) {
        return false;
      }
      edges->reserve(edges->size() + static_cast<size_t>(count));
      uint64_t to = 0;
      for (uint64_t k = 0; k < count; ++k) {
        const uint64_t gap = reader.GetVarint();
        if (gap > 0xffffffffull) return false;
        to = (k == 0) ? gap : to + gap;
        if (!reader.ok() || to > 0xffffffffull) return false;
        edges->emplace_back(static_cast<NodeId>(src),
                            static_cast<NodeId>(to));
      }
    }
    return true;
  }
  if (tag != WireTag::kSubgraph) return false;
  const uint32_t num_nodes = reader.GetU32();
  if (!reader.ok() || num_nodes > reader.Remaining() / 8) return false;
  nodes->reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    const NodeId gid = reader.GetU32();
    const Label label = reader.GetU32();
    nodes->emplace_back(gid, label);
  }
  const uint32_t num_edges = reader.GetU32();
  if (!reader.ok() || num_edges > reader.Remaining() / 8) return false;
  edges->reserve(num_edges);
  for (uint32_t i = 0; i < num_edges; ++i) {
    const NodeId from = reader.GetU32();
    const NodeId to = reader.GetU32();
    edges->emplace_back(from, to);
  }
  return reader.ok();
}

// --- Match lists (result collection) --------------------------------------

// V1 payload: tag, u16 num query nodes, u8 boolean flag, then per query
// node a u32 count and that many u32 global node ids. In Boolean mode
// counts are 0/1 with no ids shipped beyond a presence bit per query node
// (already minimal, so Boolean always uses the V1 layout). V2 (kMatches2,
// selecting mode only): u16 num query nodes, then per query node a varint
// count, varint first id and sorted varint gaps. Returns bytes saved vs V1.
inline uint64_t AppendMatchList(Blob& blob,
                                const std::vector<std::vector<NodeId>>& matches,
                                bool boolean_only, WireFormat format) {
  if (!boolean_only && format == WireFormat::kV2Delta) {
    size_t v1_body = 2 + 1;
    for (const auto& list : matches) v1_body += 4 + 4 * list.size();
    Blob body;
    body.PutU16(static_cast<uint16_t>(matches.size()));
    for (const auto& list : matches) {
      std::vector<NodeId> sorted(list);
      std::sort(sorted.begin(), sorted.end());
      body.PutVarint(sorted.size());
      for (size_t i = 0; i < sorted.size(); ++i) {
        body.PutVarint(i == 0 ? sorted[0] : sorted[i] - sorted[i - 1]);
      }
    }
    if (body.size() < v1_body) {
      PutTag(blob, WireTag::kMatches2);
      blob.Append(body);
      return v1_body - body.size();
    }
  }
  PutTag(blob, WireTag::kMatches);
  blob.PutU16(static_cast<uint16_t>(matches.size()));
  blob.PutU8(boolean_only ? 1 : 0);
  for (const auto& list : matches) {
    if (boolean_only) {
      blob.PutU8(list.empty() ? 0 : 1);
    } else {
      blob.PutU32(static_cast<uint32_t>(list.size()));
      for (NodeId v : list) blob.PutU32(v);
    }
  }
  return 0;
}

// Returns per-query-node global id lists; in Boolean mode a non-empty
// marker is encoded as a single kInvalidNode entry. V2 lists come back
// sorted ascending (consumers are order-insensitive). Returns false on a
// corrupt payload.
inline bool ReadMatchList(Blob::Reader& reader, WireTag tag,
                          std::vector<std::vector<NodeId>>* out) {
  out->clear();
  if (tag == WireTag::kMatches2) {
    const uint16_t nq = reader.GetU16();
    if (!reader.ok()) return false;
    out->resize(nq);
    for (auto& list : *out) {
      const uint64_t n = reader.GetVarint();
      // Each id/gap varint takes at least one byte.
      if (!reader.ok() || n > reader.Remaining()) return false;
      list.reserve(n);
      uint64_t id = 0;
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t delta = reader.GetVarint();
        if (delta > 0xffffffffull) return false;  // would wrap the sum
        id = (i == 0) ? delta : id + delta;
        if (!reader.ok() || id > 0xffffffffull) return false;
        list.push_back(static_cast<NodeId>(id));
      }
    }
    return true;
  }
  if (tag != WireTag::kMatches) return false;
  const uint16_t nq = reader.GetU16();
  const bool boolean_only = reader.GetU8() != 0;
  if (!reader.ok()) return false;
  out->resize(nq);
  for (auto& list : *out) {
    if (boolean_only) {
      if (reader.GetU8() != 0) list.push_back(kInvalidNode);
    } else {
      const uint32_t n = reader.GetU32();
      if (!reader.ok() || n > reader.Remaining() / 4) return false;
      list.reserve(n);
      for (uint32_t i = 0; i < n; ++i) list.push_back(reader.GetU32());
    }
  }
  return reader.ok();
}

// --- Usefulness filter (Section 4.1) --------------------------------------

// A consumer site holding node v as a virtual node references X(u, v) only
// if some crossing-edge source at that site could match a parent of u; the
// fragmentation records those source labels.
inline bool ConsumerNeedsVar(const Pattern& q, NodeId u,
                             const std::vector<Label>& source_labels) {
  for (NodeId up : q.Parents(u)) {
    Label l = q.LabelOf(up);
    for (Label s : source_labels) {
      if (s == l) return true;
    }
  }
  return false;
}

}  // namespace dgs

#endif  // DGS_CORE_PROTOCOL_H_
