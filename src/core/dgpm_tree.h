// dGPMt: distributed simulation over tree-shaped data (Section 5.2,
// Corollary 4).
//
// Two rounds of coordinator communication:
//   1. Each site runs lEval and ships its partial answer Li — the reduced
//      Boolean equations of its in-node variables over its virtual-node
//      variables — to the coordinator.
//   2. The coordinator links all Li into one equation system (each virtual
//      variable is the in-node variable it references at its home site),
//      solves it under greatest-fixpoint semantics, and returns the
//      resolved false values to the sites, which finalize local matches.
//
// On a tree with connected fragments each fragment has one in-node and the
// reduced answers total O(|Q||F|) units, giving PT = O(|Q||Fm| + |Q||F|)
// and DS = O(|Q||F|) — parallel scalable in data shipment. The
// implementation itself is correct for ANY data graph (the coordinator
// solve handles cyclic equation systems); only the size bounds rely on the
// tree shape. The public API enforces the tree precondition; tests exercise
// the generalized behaviour directly.
//
// The actors follow the QuerySiteActor lifecycle (core/serving.h);
// MakeDgpmTreeDeployment() yields the persistent actor set for serving.

#ifndef DGS_CORE_DGPM_TREE_H_
#define DGS_CORE_DGPM_TREE_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/dgpm.h"

namespace dgs {

struct DgpmTreeConfig {
  bool boolean_only = false;
};

class DgpmTreeWorker : public QuerySiteActor {
 public:
  DgpmTreeWorker(const Fragmentation* fragmentation, uint32_t site);

  void BindQuery(const QueryContext& query) override;
  void EndQuery() override;

  void Setup(SiteContext& ctx) override;
  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override;
  void OnQuiesce(SiteContext& ctx) override;

 private:
  void SendMatches(SiteContext& ctx);

  // --- deployment state ---
  const Fragment* fragment_;
  // --- query state ---
  const Pattern* pattern_ = nullptr;
  DgpmTreeConfig config_;
  AlgoCounters* counters_ = nullptr;
  RunHealth* health_ = nullptr;
  std::optional<LocalEngine> engine_;
  bool matches_dirty_ = true;
};

class DgpmTreeCoordinator : public QuerySiteActor {
 public:
  DgpmTreeCoordinator(size_t num_global_nodes, uint32_t num_workers);

  void BindQuery(const QueryContext& query) override;
  void EndQuery() override;

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override;

  SimulationResult BuildResult() const { return collector_.BuildResult(); }

 private:
  void Solve(SiteContext& ctx);

  CollectingCoordinator collector_;
  uint32_t num_workers_;
  // --- query state ---
  AlgoCounters* counters_ = nullptr;
  RunHealth* health_ = nullptr;
  uint32_t answers_received_ = 0;
  std::vector<ReducedSystem> answers_;        // per site
  std::vector<std::vector<uint64_t>> interest_;  // keys each site cares about
  bool solved_ = false;
};

// Resident dGPMt deployment.
std::unique_ptr<Deployment> MakeDgpmTreeDeployment(
    const Fragmentation* fragmentation);

// Runs dGPMt end to end. The caller is responsible for the tree
// precondition when the Corollary 4 bounds are desired; the algorithm
// itself returns the exact answer for any fragmentation.
DistOutcome RunDgpmTree(const Fragmentation& fragmentation,
                        const Pattern& pattern, const DgpmTreeConfig& config,
                        const ClusterOptions& runtime = {});

}  // namespace dgs

#endif  // DGS_CORE_DGPM_TREE_H_
