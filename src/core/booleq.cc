#include "core/booleq.h"

#include <algorithm>
#include <atomic>

#include "simulation/relax.h"
#include "util/bitset.h"
#include "util/flat_hash.h"
#include "util/thread_pool.h"

namespace dgs {

namespace {
// Cutoffs below which the sharded drain's round barriers dominate; the
// sequential drain is used instead (the result is identical either way).
constexpr size_t kParallelSolveMinVars = 1 << 14;
constexpr size_t kParallelSolveSeedsPerLane = 4;
}  // namespace

void EquationSystem::PropagateParallel(
    ThreadPool* pool, const std::function<void(VarId)>& on_false) {
  const size_t nv = NumVars();
  // InJobContext: inside a busy cluster round every nested dispatch runs
  // inline, so the sharded drain would pay its bookkeeping with zero
  // parallelism — the plain drain is strictly better there.
  if (pool == nullptr || pool->InJobContext() || nv < kParallelSolveMinVars ||
      !pool->WorthParallelizing(queue_.size(), kParallelSolveSeedsPerLane)) {
    Propagate(on_false);
    return;
  }

  // One contiguous VarId shard per lane, drained by the shared chaotic-
  // relaxation skeleton (simulation/relax.h). A shard owns the states_
  // bytes of its variables (distinct memory locations, so plain writes are
  // safe); support_ counters are shared across shards and decremented
  // through std::atomic_ref, whose RMW makes the zero crossing fire
  // exactly once.
  const size_t lanes = pool->num_threads();
  const size_t block = (nv + lanes - 1) / lanes;
  const uint32_t num_shards = static_cast<uint32_t>((nv + block - 1) / block);

  ShardScratch<VarId> s;
  s.Reset(num_shards);
  std::vector<std::vector<VarId>> flips(num_shards);
  for (VarId x : queue_) s.worklists[x / block].push_back(x);
  queue_.clear();

  auto try_acquire = [&](VarId x) {
    // Only the owner lane of x reaches here; a variable flips at most once.
    if (states_[x] != kUndecided) return false;
    states_[x] = kFalse;
    return true;
  };
  auto relax = [&](size_t sh, VarId x, const auto& emit) {
    flips[sh].push_back(x);
    for (uint32_t gid : occurrences_[x]) {
      std::atomic_ref<uint32_t> support(support_[gid]);
      if (support.fetch_sub(1, std::memory_order_relaxed) == 1) {
        const VarId owner = group_owner_[gid];
        emit(static_cast<uint32_t>(owner / block), owner);
      }
    }
  };
  ChaoticRelaxRounds(*pool, num_shards, s, try_acquire, relax);

  // Deterministic callback order: ascending VarId over the merged flips.
  std::vector<VarId> all;
  size_t total = 0;
  for (const auto& f : flips) total += f.size();
  all.reserve(total);
  for (const auto& f : flips) all.insert(all.end(), f.begin(), f.end());
  std::sort(all.begin(), all.end());
  for (VarId x : all) on_false(x);
}

void EquationSystem::SetEquation(VarId x,
                                 const std::vector<std::vector<VarId>>& groups) {
  DGS_CHECK(!HasEquation(x), "variable already has an equation");
  if (states_[x] == kFalse) return;  // value already settled
  eq_begin_[x] = static_cast<uint32_t>(group_owner_.size());
  bool dead = false;
  for (const auto& group : groups) {
    uint32_t gid = static_cast<uint32_t>(group_owner_.size());
    group_owner_.push_back(x);
    member_begin_.push_back(static_cast<uint32_t>(members_.size()));
    uint32_t live = 0;
    for (VarId m : group) {
      members_.push_back(m);
      // Members that are already false never contributed support, so they
      // must not register an occurrence either: their (possibly still
      // queued) false would otherwise decrement a count they never raised.
      if (states_[m] == kUndecided) {
        occurrences_[m].push_back(gid);
        ++live;
      }
    }
    member_end_.push_back(static_cast<uint32_t>(members_.size()));
    support_.push_back(live);
    if (live == 0) dead = true;  // empty or fully-false group
  }
  eq_end_[x] = static_cast<uint32_t>(group_owner_.size());
  if (dead) AssertFalse(x);
}

std::vector<VarId> EquationSystem::GroupMembers(uint32_t gid) const {
  return std::vector<VarId>(members_.begin() + member_begin_[gid],
                            members_.begin() + member_end_[gid]);
}

size_t ReducedSystem::TotalUnits() const {
  size_t units = 0;
  for (const auto& e : entries) {
    ++units;
    for (const auto& g : e.groups) units += g.size();
  }
  return units;
}

namespace {

// Serialization versions (first payload byte).
constexpr uint8_t kReducedV1 = 1;  // fixed-width records
constexpr uint8_t kReducedV2 = 2;  // varint keys, sorted-gap group refs

void SerializeReducedV1(const ReducedSystem& r, Blob& blob) {
  blob.PutU32(static_cast<uint32_t>(r.entries.size()));
  for (const auto& e : r.entries) {
    blob.PutU64(e.key);
    blob.PutU8(static_cast<uint8_t>(e.kind));
    if (e.kind != ReducedEntry::kEquation) continue;
    blob.PutU16(static_cast<uint16_t>(e.groups.size()));
    for (const auto& g : e.groups) {
      blob.PutU16(static_cast<uint16_t>(g.size()));
      for (uint64_t ref : g) blob.PutU64(ref);
    }
  }
}

void SerializeReducedV2(const ReducedSystem& r, Blob& blob) {
  blob.PutVarint(r.entries.size());
  for (const auto& e : r.entries) {
    blob.PutVarint(e.key);
    blob.PutU8(static_cast<uint8_t>(e.kind));
    if (e.kind != ReducedEntry::kEquation) continue;
    blob.PutVarint(e.groups.size());
    for (const auto& g : e.groups) {
      // Group refs arrive sorted from ReduceToFrontier; sort a copy anyway
      // so hand-built systems encode correctly (members are a set).
      std::vector<uint64_t> refs(g);
      std::sort(refs.begin(), refs.end());
      blob.PutVarint(refs.size());
      for (size_t i = 0; i < refs.size(); ++i) {
        blob.PutVarint(i == 0 ? refs[0] : refs[i] - refs[i - 1]);
      }
    }
  }
}

bool DeserializeReducedV1(Blob::Reader& reader, ReducedSystem* out) {
  const uint32_t n = reader.GetU32();
  // Every entry carries at least a u64 key and a u8 kind.
  if (!reader.ok() || n > reader.Remaining() / 9) return false;
  out->entries.resize(n);
  for (auto& e : out->entries) {
    e.key = reader.GetU64();
    const uint8_t kind = reader.GetU8();
    if (!reader.ok() || kind > ReducedEntry::kEquation) return false;
    e.kind = static_cast<ReducedEntry::Kind>(kind);
    if (e.kind != ReducedEntry::kEquation) continue;
    const uint16_t num_groups = reader.GetU16();
    if (!reader.ok() || num_groups > reader.Remaining() / 2) return false;
    e.groups.resize(num_groups);
    for (auto& g : e.groups) {
      const uint16_t num_refs = reader.GetU16();
      if (!reader.ok() || num_refs > reader.Remaining() / 8) return false;
      g.resize(num_refs);
      for (auto& ref : g) ref = reader.GetU64();
    }
  }
  return reader.ok();
}

bool DeserializeReducedV2(Blob::Reader& reader, ReducedSystem* out) {
  const uint64_t n = reader.GetVarint();
  // Every entry takes at least a one-byte key varint and a kind byte.
  if (!reader.ok() || n > reader.Remaining() / 2) return false;
  out->entries.resize(n);
  for (auto& e : out->entries) {
    e.key = reader.GetVarint();
    const uint8_t kind = reader.GetU8();
    if (!reader.ok() || kind > ReducedEntry::kEquation) return false;
    e.kind = static_cast<ReducedEntry::Kind>(kind);
    if (e.kind != ReducedEntry::kEquation) continue;
    const uint64_t num_groups = reader.GetVarint();
    // A group takes at least two bytes (count varint + one ref varint).
    if (!reader.ok() || num_groups > reader.Remaining() / 2) return false;
    e.groups.resize(num_groups);
    for (auto& g : e.groups) {
      const uint64_t num_refs = reader.GetVarint();
      if (!reader.ok() || num_refs > reader.Remaining()) return false;
      g.resize(num_refs);
      uint64_t ref = 0;
      for (size_t i = 0; i < g.size(); ++i) {
        ref = (i == 0) ? reader.GetVarint() : ref + reader.GetVarint();
        g[i] = ref;
      }
    }
  }
  return reader.ok();
}

}  // namespace

uint64_t ReducedSystem::Serialize(Blob& blob, WireFormat format) const {
  if (format == WireFormat::kV2Delta) {
    size_t v1_size = 4;
    for (const auto& e : entries) {
      v1_size += 9;
      if (e.kind != ReducedEntry::kEquation) continue;
      v1_size += 2;
      for (const auto& g : e.groups) v1_size += 2 + 8 * g.size();
    }
    Blob v2;
    SerializeReducedV2(*this, v2);
    if (v2.size() < v1_size) {
      blob.PutU8(kReducedV2);
      blob.Append(v2);
      return v1_size - v2.size();
    }
  }
  blob.PutU8(kReducedV1);
  SerializeReducedV1(*this, blob);
  return 0;
}

bool ReducedSystem::Deserialize(Blob::Reader& reader, ReducedSystem* out) {
  out->entries.clear();
  const uint8_t version = reader.GetU8();
  if (!reader.ok()) return false;
  if (version == kReducedV1) return DeserializeReducedV1(reader, out);
  if (version == kReducedV2) return DeserializeReducedV2(reader, out);
  return false;
}

namespace {

// Per-variable resolution during reduction.
enum class Res : uint8_t { kTrue, kFalse, kRef };

}  // namespace

ReducedSystem ReduceToFrontier(const EquationSystem& system,
                               const std::vector<VarId>& roots,
                               const std::function<bool(VarId)>& is_frontier,
                               const std::function<uint64_t(VarId)>& key_of) {
  // 1. Pessimistic analysis: clone, assert the whole frontier false, and
  // propagate. Non-frontier variables that survive are definitely true no
  // matter what the rest of the world decides.
  EquationSystem pessimistic = system;
  for (VarId x = 0; x < system.NumVars(); ++x) {
    if (!system.IsFalse(x) && is_frontier(x)) pessimistic.AssertFalse(x);
  }
  pessimistic.Propagate([](VarId) {});
  auto def_true = [&](VarId x) {
    return !system.IsFalse(x) && !is_frontier(x) && !pessimistic.IsFalse(x);
  };
  auto resolution = [&](VarId x) {
    if (system.IsFalse(x)) return Res::kFalse;
    if (is_frontier(x)) return Res::kRef;
    if (def_true(x)) return Res::kTrue;
    return Res::kRef;  // undecided internal: gets its own entry
  };

  // 2. Collect the undecided internal variables reachable from the roots
  // (iterative BFS; recursion depth is unbounded on chain graphs).
  std::vector<VarId> reachable;
  DynamicBitset seen(system.NumVars());
  auto visit = [&](VarId x) {
    if (seen.Test(x)) return false;
    seen.Set(x);
    return true;
  };
  for (VarId r : roots) {
    if (resolution(r) == Res::kRef && !is_frontier(r) && visit(r)) {
      reachable.push_back(r);
    }
  }
  for (size_t head = 0; head < reachable.size(); ++head) {
    VarId x = reachable[head];
    for (size_t k = 0; k < system.NumGroups(x); ++k) {
      for (VarId m : system.GroupMembers(system.GroupId(x, k))) {
        if (resolution(m) == Res::kRef && !is_frontier(m) && visit(m)) {
          reachable.push_back(m);
        }
      }
    }
  }

  // 3. Emit one raw entry per reachable variable, folding constants:
  // definitely-true members satisfy (drop) their group, false members are
  // dropped from the group.
  FlatHashMap<uint64_t, size_t> index;  // key -> entry position
  ReducedSystem out;
  auto emit_scalar = [&](VarId r, ReducedEntry::Kind kind) {
    ReducedEntry e;
    e.key = key_of(r);
    e.kind = kind;
    if (!index.contains(e.key)) {
      index.insert(e.key, out.entries.size());
      out.entries.push_back(std::move(e));
    }
  };
  for (VarId r : roots) {
    switch (resolution(r)) {
      case Res::kFalse:
        emit_scalar(r, ReducedEntry::kFalse);
        break;
      case Res::kTrue:
        emit_scalar(r, ReducedEntry::kTrue);
        break;
      case Res::kRef:
        break;  // handled below (or the root is itself frontier)
    }
  }
  for (VarId x : reachable) {
    ReducedEntry e;
    e.key = key_of(x);
    e.kind = ReducedEntry::kEquation;
    for (size_t k = 0; k < system.NumGroups(x); ++k) {
      std::vector<uint64_t> refs;
      bool satisfied = false;
      for (VarId m : system.GroupMembers(system.GroupId(x, k))) {
        switch (resolution(m)) {
          case Res::kTrue:
            satisfied = true;
            break;
          case Res::kFalse:
            break;  // dead member
          case Res::kRef:
            refs.push_back(key_of(m));
            break;
        }
        if (satisfied) break;
      }
      if (satisfied) continue;
      DGS_CHECK(!refs.empty(),
                "undecided variable cannot have a fully-false group");
      std::sort(refs.begin(), refs.end());
      refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
      e.groups.push_back(std::move(refs));
    }
    DGS_CHECK(!e.groups.empty(),
              "non-definitely-true variable must depend on the frontier");
    if (!index.contains(e.key)) {
      index.insert(e.key, out.entries.size());
      out.entries.push_back(std::move(e));
    }
  }

  // 4. Chain collapse: a non-root equation of the form X = Y can be aliased
  // away. Resolve aliases with path compression (cycle-guarded), rewrite all
  // refs, then drop entries no longer reachable from the roots.
  FlatHashSet<uint64_t> root_keys;
  std::vector<uint64_t> root_key_list;
  for (VarId r : roots) {
    if (root_keys.insert(key_of(r))) root_key_list.push_back(key_of(r));
  }
  // Root aliases are followed too (substituting a defined variable by its
  // definition is sound under the greatest fixpoint), which yields the
  // paper's Li form: every in-node equation is expressed over virtual-node
  // variables only (Section 4.1). Root entries themselves are always kept.
  auto is_alias = [&](const ReducedEntry& e) {
    return e.kind == ReducedEntry::kEquation && e.groups.size() == 1 &&
           e.groups[0].size() == 1;
  };
  auto chase = [&](uint64_t start, uint64_t origin) -> uint64_t {
    // Iteratively follows alias links, cycle-guarded, then path-compresses.
    std::vector<uint64_t> path;
    FlatHashSet<uint64_t> on_path;
    on_path.insert(origin);
    uint64_t key = start;
    while (true) {
      const size_t* pos = index.find(key);
      if (pos == nullptr) break;  // frontier key
      ReducedEntry& e = out.entries[*pos];
      if (!is_alias(e)) break;
      if (!on_path.insert(key)) break;  // cycle: keep as entry
      path.push_back(key);
      key = e.groups[0][0];
    }
    for (uint64_t hop : path) {
      out.entries[*index.find(hop)].groups[0][0] = key;
    }
    return key;
  };
  for (auto& e : out.entries) {
    for (auto& g : e.groups) {
      for (auto& ref : g) ref = chase(ref, e.key);
      std::sort(g.begin(), g.end());
      g.erase(std::unique(g.begin(), g.end()), g.end());
    }
  }
  // Reachability sweep from roots.
  FlatHashSet<uint64_t> live;
  std::vector<uint64_t> stack = std::move(root_key_list);
  while (!stack.empty()) {
    uint64_t key = stack.back();
    stack.pop_back();
    if (!live.insert(key)) continue;
    const size_t* pos = index.find(key);
    if (pos == nullptr) continue;
    for (const auto& g : out.entries[*pos].groups) {
      for (uint64_t ref : g) stack.push_back(ref);
    }
  }
  ReducedSystem pruned;
  for (auto& e : out.entries) {
    if (live.contains(e.key)) pruned.entries.push_back(std::move(e));
  }
  return pruned;
}

}  // namespace dgs
