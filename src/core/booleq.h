// Boolean-equation partial answers (Section 4.1).
//
// The paper encodes partial simulation results as Boolean variables
// X(u, v) ("v matches u") with equations
//
//     X(u,v) = AND over query children u' of ( OR over data children v'
//              with matching label of X(u', v') ).
//
// Graph simulation is the GREATEST fixpoint of this system: all variables
// start optimistically undecided (= presumed true) and monotonically flip
// to false; whatever survives is true (Section 2.1, [18]). EquationSystem
// implements exactly that discipline with counting-based propagation, so a
// flip costs O(#occurrences) — the incremental evaluation of Section 4.2.
//
// ReduceToFrontier eliminates decided and definitely-true variables and
// collapses chains, expressing a set of root variables in terms of a
// frontier (the virtual-node variables). It powers both the push operation
// (Section 4.2) and the dGPMt coordinator solve (Section 5.2).

#ifndef DGS_CORE_BOOLEQ_H_
#define DGS_CORE_BOOLEQ_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/message.h"
#include "util/check.h"

namespace dgs {

class ThreadPool;

using VarId = uint32_t;
inline constexpr VarId kNoVar = static_cast<VarId>(-1);

// Monotone Boolean equation system with AND-of-ORs equations.
//
// A variable with no equation stays undecided forever unless AssertFalse is
// called on it (external variables awaiting remote truth values, and sink
// variables that are unconditionally true).
class EquationSystem {
 public:
  EquationSystem() = default;

  // Copyable: the pessimistic analysis in ReduceToFrontier clones the
  // system and asserts the frontier false.
  EquationSystem(const EquationSystem&) = default;
  EquationSystem& operator=(const EquationSystem&) = default;
  EquationSystem(EquationSystem&&) = default;
  EquationSystem& operator=(EquationSystem&&) = default;

  VarId NewVar() {
    states_.push_back(kUndecided);
    eq_begin_.push_back(kNone);
    eq_end_.push_back(kNone);
    occurrences_.emplace_back();
    return static_cast<VarId>(states_.size() - 1);
  }

  size_t NumVars() const { return states_.size(); }

  bool IsFalse(VarId x) const { return states_[x] == kFalse; }
  bool HasEquation(VarId x) const { return eq_begin_[x] != kNone; }

  // Installs x's equation. Must not already have one. An empty group (a
  // query child with no candidate data children) makes x false immediately;
  // members that are already false do not count as support.
  void SetEquation(VarId x, const std::vector<std::vector<VarId>>& groups);

  // Marks x false (no-op if already false). Call Propagate() afterwards.
  void AssertFalse(VarId x) {
    if (states_[x] == kUndecided) {
      states_[x] = kFalse;
      queue_.push_back(x);
    }
  }

  // Drains the worklist; on_false(x) fires exactly once per variable that
  // flips to false (including ones asserted directly).
  template <typename Fn>
  void Propagate(Fn&& on_false) {
    while (!queue_.empty()) {
      VarId x = queue_.back();
      queue_.pop_back();
      on_false(x);
      for (uint32_t gid : occurrences_[x]) {
        DGS_DCHECK(support_[gid] > 0, "group support underflow");
        if (--support_[gid] == 0) AssertFalse(group_owner_[gid]);
      }
    }
  }

  // Parallel drain: partitions the variables by id range into one shard per
  // pool lane and false-propagates each shard on its own lane, routing
  // cross-shard support exhaustion through per-shard inboxes until a global
  // fixpoint (the same chaotic-relaxation scheme as simulation/relax.h —
  // sound because the system is monotone, so the set of flips is
  // order-independent). Falls back to Propagate when `pool` is null, has
  // one lane, or the system/seed set is too small to amortize the barriers.
  //
  // The flipped SET is bit-identical to the sequential drain; the callback
  // ORDER differs: on_false fires after the fixpoint, in ascending VarId
  // order (deterministic for every lane count). Callers must therefore be
  // order-insensitive — every caller in this codebase is (they collect the
  // flips into sets or counters).
  void PropagateParallel(ThreadPool* pool,
                         const std::function<void(VarId)>& on_false);

  // --- Introspection for ReduceToFrontier ---

  // Group ids of x's equation; empty span when x has none.
  size_t NumGroups(VarId x) const {
    return HasEquation(x) ? eq_end_[x] - eq_begin_[x] : 0;
  }
  uint32_t GroupId(VarId x, size_t k) const { return eq_begin_[x] + static_cast<uint32_t>(k); }
  // Members of a group (as stored; includes members that flipped false).
  std::vector<VarId> GroupMembers(uint32_t gid) const;

 private:
  static constexpr uint8_t kUndecided = 0;
  static constexpr uint8_t kFalse = 1;
  static constexpr uint32_t kNone = static_cast<uint32_t>(-1);

  std::vector<uint8_t> states_;
  // Per-variable equation: groups [eq_begin_, eq_end_) into the group
  // tables below.
  std::vector<uint32_t> eq_begin_;
  std::vector<uint32_t> eq_end_;
  // Per-group: owner variable, live-member support count, member storage.
  std::vector<VarId> group_owner_;
  std::vector<uint32_t> support_;
  std::vector<uint32_t> member_begin_;
  std::vector<uint32_t> member_end_;
  std::vector<VarId> members_;
  // occurrences_[x] = ids of groups containing x.
  std::vector<std::vector<uint32_t>> occurrences_;
  std::vector<VarId> queue_;
};

// Result of ReduceToFrontier: a compact equation system over opaque 64-bit
// keys (the caller encodes (query node, global data node) pairs).
struct ReducedEntry {
  enum Kind : uint8_t { kTrue = 0, kFalse = 1, kEquation = 2 };
  uint64_t key = 0;
  Kind kind = kEquation;
  std::vector<std::vector<uint64_t>> groups;  // frontier/entry keys
};

struct ReducedSystem {
  std::vector<ReducedEntry> entries;

  // Size in "equation units" (entries plus refs) — the m of the benefit
  // function B(Si) in Section 4.2.
  size_t TotalUnits() const;

  // Serialized layout starts with a one-byte version: 1 = fixed-width
  // records (u64 keys, u16 counts), 2 = varint keys with sorted-gap delta
  // group refs. Under WireFormat::kV2Delta the encoder emits whichever
  // body is smaller and returns the bytes saved vs the fixed layout (0
  // under kV1Fixed).
  uint64_t Serialize(Blob& blob, WireFormat format = WireFormat::kV1Fixed) const;
  // Length-validated: declared counts are checked against the reader's
  // remaining bytes before any allocation; returns false (with *out in an
  // unspecified partial state) on a truncated or corrupt payload.
  static bool Deserialize(Blob::Reader& reader, ReducedSystem* out);
};

// Expresses `roots` in terms of the frontier variables.
//
//   is_frontier(x): x has no equation but may still be asserted false by a
//                   remote site (external variables).
//   key_of(x):      wire key for frontier and emitted variables.
//
// Guarantees: every root has an entry; entries reference only frontier keys
// or other entries; definitely-true variables (those that survive even if
// the whole frontier is false) are folded away; single-reference chains are
// collapsed. Cycles among undecided variables are preserved as cyclic
// entries (greatest-fixpoint semantics carry over to the consumer).
ReducedSystem ReduceToFrontier(const EquationSystem& system,
                               const std::vector<VarId>& roots,
                               const std::function<bool(VarId)>& is_frontier,
                               const std::function<uint64_t(VarId)>& key_of);

}  // namespace dgs

#endif  // DGS_CORE_BOOLEQ_H_
