// dGPM: the partition-bounded distributed simulation algorithm (Section 4,
// Theorem 2), with the Section 4.2 optimizations:
//   - incremental local evaluation (on by default; off = dGPMNOpt),
//   - the push operation with benefit function B(Si) and threshold θ.
//
// Protocol (per site):
//   Setup       partial evaluation lEval; ship in-node falses (lMsg); maybe
//               push reduced equations to parent sites.
//   OnMessages  apply remote falses / pushed systems / subscriptions;
//               refine; ship newly-false in-node variables; flag changes to
//               the coordinator.
//   OnQuiesce   ship local matches to the coordinator (phase 3).
//
// Bounds: every in-node variable flips false at most once and is shipped to
// each consumer at most once, so data shipment is O(|Ef||Vq|) truth values;
// response time is O(|Vf||Vq|) rounds of local refinement on fragments of
// size at most |Fm|.
//
// Serving lifecycle: the worker and coordinator are QuerySiteActors
// (core/serving.h). Construction captures graph-side state only (fragment
// views, the in-node consumer index); BindQuery()/EndQuery() install and
// drop one query's state, so a MakeDgpmDeployment() stays resident across
// a query stream (core/engine.h) while RunDgpm() remains the one-shot
// entry point.

#ifndef DGS_CORE_DGPM_H_
#define DGS_CORE_DGPM_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "core/local_engine.h"
#include "core/metrics.h"
#include "core/protocol.h"
#include "core/serving.h"
#include "partition/fragmentation.h"
#include "runtime/cluster.h"
#include "util/flat_hash.h"

namespace dgs {

struct DgpmConfig {
  bool incremental = true;    // false = dGPMNOpt ablation
  bool enable_push = true;
  double push_threshold = 0.2;  // θ of Section 4.2
  bool boolean_only = false;    // Boolean pattern query (phase-3 shortcut)
};

// Generic coordinator that assembles worker match lists into the global
// answer; shared by the dGPM family and dMes. A site may report more than
// once (it resends whenever refinement continued after a quiescent point);
// the latest report per site wins.
class CollectingCoordinator : public QuerySiteActor {
 public:
  explicit CollectingCoordinator(size_t num_global_nodes);

  void BindQuery(const QueryContext& query) override;
  void EndQuery() override;

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override;

  // Assembles Q(G) from the collected partial matches. In Boolean mode the
  // result's GraphMatches() is exact and the match sets use a marker bit.
  SimulationResult BuildResult() const;

 private:
  size_t num_global_nodes_;
  // --- query state ---
  size_t num_query_nodes_ = 0;
  RunHealth* health_ = nullptr;
  // Latest per-site match lists (kInvalidNode marks a Boolean-mode hit).
  std::map<uint32_t, std::vector<std::vector<NodeId>>> per_site_;
};

// One dGPM worker site.
class DgpmWorker : public QuerySiteActor {
 public:
  // Captures the resident graph-side state of `site` (fragment view plus
  // the in-node consumer index); queries attach via BindQuery.
  DgpmWorker(const Fragmentation* fragmentation, uint32_t site);

  void BindQuery(const QueryContext& query) override;
  void EndQuery() override;

  void Setup(SiteContext& ctx) override;
  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override;
  void OnQuiesce(SiteContext& ctx) override;

  // Valid between BindQuery and EndQuery.
  const LocalEngine& engine() const { return *engine_; }

 private:
  void ShipFalses(SiteContext& ctx, bool flag_coordinator);
  void MaybePush(SiteContext& ctx);
  void SendMatches(SiteContext& ctx);
  void ChargeRecomputations();

  // --- deployment state (persists across queries) ---
  const Fragmentation* fragmentation_;
  const Fragment* fragment_;
  // local in-node id -> index into fragment_->in_nodes / consumers
  // (kInvalidNode is the empty sentinel; local ids never reach it).
  FlatHashMap<NodeId, size_t> in_node_index_;

  // --- query state (BindQuery .. EndQuery) ---
  const Pattern* pattern_ = nullptr;
  DgpmConfig config_;
  AlgoCounters* counters_ = nullptr;
  RunHealth* health_ = nullptr;
  std::optional<LocalEngine> engine_;
  // Push subscriptions: local node -> extra consumer sites.
  std::unordered_map<NodeId, std::set<uint32_t>> dynamic_consumers_;
  // Matches changed since the last report to the coordinator.
  bool matches_dirty_ = true;
  // lEval (re)computations already charged to counters_. Charging happens
  // at the end of every callback — not at Collect — so the counter is
  // complete while the run is still inside the cluster, which is what
  // lets it travel over the cross-process counter channel (the parent
  // never sees a remote worker's LocalEngine).
  uint64_t charged_recomputes_ = 0;
};

// Resident dGPM deployment (also serves dGPMNOpt: the ablation is a
// per-query config, not a different actor set).
std::unique_ptr<Deployment> MakeDgpmDeployment(
    const Fragmentation* fragmentation);

// Runs dGPM (or dGPMNOpt via config) end to end on a fragmentation.
// `runtime` carries the network cost model and the executor width; a bare
// NetworkModel converts implicitly for callers without threading needs.
// A corrupt payload surfaces in DistOutcome::health instead of aborting.
DistOutcome RunDgpm(const Fragmentation& fragmentation, const Pattern& pattern,
                    const DgpmConfig& config,
                    const ClusterOptions& runtime = {});

}  // namespace dgs

#endif  // DGS_CORE_DGPM_H_
