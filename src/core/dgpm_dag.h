// dGPMd: distributed simulation for DAG patterns (Section 5.1, Theorem 3).
//
// When Q is a DAG, X(u, v) depends only on variables X(u', v') with
// r(u') < r(u), where r is the topological rank (0 for sinks). dGPMd
// therefore batches the shipment of false variables by rank, coordinated by
// rank ticks from the coordinator:
//
//   tick r:  every site ships its buffered false variables of rank <= r
//            (one batch per destination) and acknowledges; the coordinator
//            advances to rank r + 1 once all sites acknowledged.
//
// Rank-r variables are final when every rank-(r-1) batch has been applied,
// so exactly d rank phases suffice: at most one data message per ordered
// site pair per rank, O(|Ef||Vq|) truth values total, and
// PT = O(d (|Vq|+|Vm|)(|Eq|+|Em|) + |Q||F|) — parallel scalable in response
// time for fixed |F| (Theorem 3). Ticks/acks are control traffic (the
// |Q||F| term).
//
// For a DAG data graph G with a cyclic Q, G cannot match Q (some query node
// on a cycle has no match); RunDgpmDag handles that case without any
// distributed work. A cyclic Q on a cyclic G is outside dGPMd's scope.
//
// Like the rest of the dGPM family the actors are QuerySiteActors: the
// in-node consumer index is resident, the rank buffers and the engine are
// per-query (BindQuery/EndQuery), and MakeDgpmDagDeployment() yields the
// persistent actor set Engine uses to serve DAG queries.

#ifndef DGS_CORE_DGPM_DAG_H_
#define DGS_CORE_DGPM_DAG_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/dgpm.h"

namespace dgs {

struct DgpmDagConfig {
  bool boolean_only = false;
};

// One dGPMd worker site: like dGPM but with rank-scheduled shipment.
class DgpmDagWorker : public QuerySiteActor {
 public:
  DgpmDagWorker(const Fragmentation* fragmentation, uint32_t site);

  void BindQuery(const QueryContext& query) override;
  void EndQuery() override;

  void Setup(SiteContext& ctx) override;
  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override;
  void OnQuiesce(SiteContext& ctx) override;

 private:
  void BufferFalses();
  // Ships buffered falses with rank <= `max_rank` (one batch per dest).
  void ShipUpToRank(SiteContext& ctx, uint32_t max_rank);
  void SendMatches(SiteContext& ctx);

  // --- deployment state (persists across queries) ---
  const Fragmentation* fragmentation_;
  const Fragment* fragment_;
  FlatHashMap<NodeId, size_t> in_node_index_;

  // --- query state (BindQuery .. EndQuery) ---
  const Pattern* pattern_ = nullptr;
  DgpmDagConfig config_;
  AlgoCounters* counters_ = nullptr;
  RunHealth* health_ = nullptr;
  std::optional<LocalEngine> engine_;
  // Pending shipments: rank -> destination -> keys.
  std::map<uint32_t, std::map<uint32_t, std::vector<uint64_t>>> buffer_;
  // Matches changed since the last report to the coordinator.
  bool matches_dirty_ = true;
};

// Advances the rank clock and collects the final matches.
class DgpmDagCoordinator : public QuerySiteActor {
 public:
  DgpmDagCoordinator(size_t num_global_nodes, uint32_t num_workers);

  void BindQuery(const QueryContext& query) override;
  void EndQuery() override;

  void Setup(SiteContext& ctx) override;
  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override;

  SimulationResult BuildResult() const { return collector_.BuildResult(); }

 private:
  void BroadcastTick(SiteContext& ctx);

  CollectingCoordinator collector_;
  uint32_t num_workers_;
  // --- query state ---
  RunHealth* health_ = nullptr;
  uint32_t max_rank_ = 0;
  uint32_t current_rank_ = 0;
  uint32_t acks_ = 0;
};

// Resident dGPMd deployment.
std::unique_ptr<Deployment> MakeDgpmDagDeployment(
    const Fragmentation* fragmentation);

// Runs dGPMd. Requires Q to be a DAG, or G to be a DAG (in which case a
// cyclic Q yields the empty answer immediately).
DistOutcome RunDgpmDag(const Fragmentation& fragmentation,
                       const Pattern& pattern, const Graph& g,
                       const DgpmDagConfig& config,
                       const ClusterOptions& runtime = {});

}  // namespace dgs

#endif  // DGS_CORE_DGPM_DAG_H_
