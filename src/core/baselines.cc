#include "core/baselines.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace dgs {
namespace {

// ---------------------------------------------------------------------------
// Shared subgraph-shipping machinery (Match and disHHK)
// ---------------------------------------------------------------------------
// The subgraph wire codec (V1 fixed / V2 delta) lives in core/protocol.h.

// Assembles shipped subgraphs into a global-id graph and runs the
// centralized simulation once all fragments reported. Unshipped nodes get a
// sentinel label that matches no query node. Resident across queries: the
// label array and the edge buffer keep their allocation; BindQuery rewinds
// them.
class AssemblingCoordinator : public QuerySiteActor {
 public:
  AssemblingCoordinator(size_t num_global_nodes, uint32_t num_workers)
      : num_global_nodes_(num_global_nodes),
        num_workers_(num_workers),
        labels_(num_global_nodes, kSentinelLabel) {}

  void BindQuery(const QueryContext& query) override {
    pattern_ = query.pattern;
    boolean_only_ = query.options.boolean_only;
    health_ = query.health;
    labels_.assign(num_global_nodes_, kSentinelLabel);
    edges_.clear();
    received_ = 0;
    computed_ = false;
    result_ = SimulationResult();
  }

  void EndQuery() override {
    pattern_ = nullptr;
    health_ = nullptr;
    edges_.clear();
    received_ = 0;
    computed_ = false;
    result_ = SimulationResult();
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    if (health_->poisoned()) return;
    for (const Message& m : inbox) {
      Blob::Reader reader(m.payload);
      const WireTag tag = GetTag(reader);
      if (tag != WireTag::kSubgraph && tag != WireTag::kSubgraph2) continue;
      std::vector<std::pair<NodeId, Label>> nodes;
      std::vector<std::pair<NodeId, NodeId>> edges;
      if (!ReadSubgraph(reader, tag, &nodes, &edges)) {
        health_->PoisonDecode(m.cls, "corrupt subgraph payload");
        return;
      }
      for (auto [gid, label] : nodes) {
        if (gid >= labels_.size()) {
          health_->PoisonDecode(m.cls, "subgraph node id out of range");
          return;
        }
        labels_[gid] = label;
      }
      edges_.reserve(edges_.size() + edges.size());
      for (auto [from, to] : edges) {
        if (from >= labels_.size() || to >= labels_.size()) {
          health_->PoisonDecode(m.cls, "subgraph edge endpoint out of range");
          return;
        }
        edges_.emplace_back(from, to);
      }
      ++received_;
    }
    if (received_ == num_workers_ && !computed_) {
      // Assemble the query-able graph and resolve matches centrally. The
      // coordinator computes alone in this round, so the runtime's idle
      // lanes parallelize both the counter build and the refinement drain
      // (the fixpoint is width-invariant).
      GraphBuilder builder;
      for (Label l : labels_) builder.AddNode(l);
      for (auto [from, to] : edges_) builder.AddEdge(from, to);
      Graph assembled = std::move(builder).Build();
      SimulationOptions options;
      options.boolean_only = boolean_only_;
      options.pool = ctx.pool();
      result_ = ComputeSimulation(*pattern_, assembled, options);
      computed_ = true;
    }
  }

  SimulationResult BuildResult() const {
    DGS_CHECK(computed_, "coordinator never received all fragments");
    return result_;
  }

 private:
  // No real label uses the top of the 32-bit space (generators use small
  // alphabets); a sentinel guarantees unshipped nodes never match.
  static constexpr Label kSentinelLabel = 0xffffffffu;

  size_t num_global_nodes_;
  uint32_t num_workers_;
  std::vector<Label> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  // --- query state ---
  const Pattern* pattern_ = nullptr;
  bool boolean_only_ = false;
  RunHealth* health_ = nullptr;
  uint32_t received_ = 0;
  bool computed_ = false;
  SimulationResult result_;
};

// Match worker: ships the entire fragment. The encoding is
// pattern-independent, so a resident worker serializes its fragment once
// (per wire format) and replays the cached bytes for every query.
class MatchWorker : public QuerySiteActor {
 public:
  explicit MatchWorker(const Fragment* fragment) : fragment_(fragment) {}

  // Match workers never parse payloads; only the run's counters are taken
  // from the query (the shipped subgraph itself is pattern-independent).
  void BindQuery(const QueryContext& query) override {
    counters_ = query.counters;
  }
  void EndQuery() override { counters_ = nullptr; }

  void Setup(SiteContext& ctx) override {
    if (!encoded_ || encoded_format_ != ctx.wire_format()) {
      std::vector<std::pair<NodeId, Label>> nodes;
      nodes.reserve(fragment_->num_local);
      for (NodeId v = 0; v < fragment_->num_local; ++v) {
        nodes.emplace_back(fragment_->ToGlobal(v),
                           fragment_->graph.LabelOf(v));
      }
      std::vector<std::pair<NodeId, NodeId>> edges;
      for (NodeId v = 0; v < fragment_->num_local; ++v) {
        for (NodeId w : fragment_->graph.OutNeighbors(v)) {
          edges.emplace_back(fragment_->ToGlobal(v), fragment_->ToGlobal(w));
        }
      }
      subgraph_ = Blob();
      saved_ = AppendSubgraph(subgraph_, nodes, edges, ctx.wire_format());
      encoded_ = true;
      encoded_format_ = ctx.wire_format();
    }
    counters_->wire_saved_data_bytes += saved_;
    Blob blob = subgraph_;  // shipped per query; encoded once
    ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(blob));
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    (void)ctx;
    (void)inbox;
  }

 private:
  const Fragment* fragment_;
  AlgoCounters* counters_ = nullptr;
  Blob subgraph_;  // cached wire encoding of the fragment
  uint64_t saved_ = 0;  // bytes the cached encoding avoided vs V1
  bool encoded_ = false;
  WireFormat encoded_format_ = WireFormat::kV1Fixed;
};

// disHHK worker: ships the subgraph induced by label-candidate nodes. The
// resident label -> local nodes index makes candidate extraction
// proportional to the candidates, not the fragment.
class DisHhkWorker : public QuerySiteActor {
 public:
  explicit DisHhkWorker(const Fragment* fragment) : fragment_(fragment) {
    const Graph& lg = fragment_->graph;
    for (NodeId v = 0; v < lg.NumNodes(); ++v) {
      nodes_by_label_[lg.LabelOf(v)].push_back(v);
    }
  }

  // disHHK workers only read the pattern (for the candidate labels); they
  // never parse payloads, so there is no poison path to track.
  void BindQuery(const QueryContext& query) override {
    pattern_ = query.pattern;
    counters_ = query.counters;
  }
  void EndQuery() override {
    pattern_ = nullptr;
    counters_ = nullptr;
  }

  void Setup(SiteContext& ctx) override {
    // Candidate = carries a label used by some query node.
    std::unordered_set<Label> query_labels;
    for (NodeId u = 0; u < pattern_->NumNodes(); ++u) {
      query_labels.insert(pattern_->LabelOf(u));
    }
    const Graph& lg = fragment_->graph;
    auto is_candidate = [&](NodeId v) {
      return query_labels.count(lg.LabelOf(v)) > 0;
    };
    // Gather candidates through the resident label index, then restore
    // ascending node order so the shipped bytes are independent of label
    // iteration order.
    std::vector<NodeId> candidates;
    for (Label l : query_labels) {
      auto bucket = nodes_by_label_.find(l);
      if (bucket == nodes_by_label_.end()) continue;
      candidates.insert(candidates.end(), bucket->second.begin(),
                        bucket->second.end());
    }
    std::sort(candidates.begin(), candidates.end());
    std::vector<std::pair<NodeId, Label>> nodes;
    std::vector<std::pair<NodeId, NodeId>> edges;
    nodes.reserve(candidates.size());
    for (NodeId v : candidates) {
      // Virtual candidates are shipped as bare nodes (their home fragment
      // ships their adjacency); local candidates also ship their edges to
      // candidate children.
      nodes.emplace_back(fragment_->ToGlobal(v), lg.LabelOf(v));
      if (fragment_->IsVirtual(v)) continue;
      for (NodeId w : lg.OutNeighbors(v)) {
        if (is_candidate(w)) {
          edges.emplace_back(fragment_->ToGlobal(v), fragment_->ToGlobal(w));
        }
      }
    }
    Blob blob;
    counters_->wire_saved_data_bytes +=
        AppendSubgraph(blob, nodes, edges, ctx.wire_format());
    ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(blob));
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    (void)ctx;
    (void)inbox;
  }

 private:
  const Fragment* fragment_;
  std::unordered_map<Label, std::vector<NodeId>> nodes_by_label_;  // resident
  const Pattern* pattern_ = nullptr;
  AlgoCounters* counters_ = nullptr;
};

// ---------------------------------------------------------------------------
// dMes
// ---------------------------------------------------------------------------

class DMesWorker : public QuerySiteActor {
 public:
  DMesWorker(const Fragmentation* fragmentation, uint32_t site)
      : fragmentation_(fragmentation),
        fragment_(&fragmentation->fragment(site)) {}

  void BindQuery(const QueryContext& query) override {
    pattern_ = query.pattern;
    config_.boolean_only = query.options.boolean_only;
    counters_ = query.counters;
    health_ = query.health;
    engine_.emplace(fragment_, pattern_, /*incremental=*/true);
    last_false_count_ = 0;
    halted_ = false;
    matches_dirty_ = true;
  }

  void EndQuery() override {
    pattern_ = nullptr;
    counters_ = nullptr;
    health_ = nullptr;
    engine_.reset();
    last_false_count_ = 0;
    halted_ = false;
    matches_dirty_ = true;
  }

  void Setup(SiteContext& ctx) override {
    engine_->SetExecutor(ctx.pool());
    engine_->Initialize();
    engine_->DrainInNodeFalses();  // dMes never pushes falses proactively
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    if (health_->poisoned()) return;
    engine_->SetExecutor(ctx.pool());
    bool ticked = false;
    bool halt = false;
    std::vector<uint64_t> falses;
    for (const Message& m : inbox) {
      Blob::Reader reader(m.payload);
      const WireTag tag = GetTag(reader);
      switch (tag) {
        case WireTag::kTick:
          ticked = true;
          break;
        case WireTag::kVerdict:
          if (reader.GetU8() == 0) {
            halt = true;
          } else {
            ticked = true;
          }
          break;
        case WireTag::kRequest:
        case WireTag::kRequest2: {
          // Reply with the current truth value of every requested variable
          // (under V2 only the false subset ships; absence means true).
          std::vector<uint64_t> keys;
          if (!ReadTruthRequest(reader, tag, &keys)) {
            health_->PoisonDecode(m.cls, "corrupt truth request");
            return;
          }
          Blob reply;
          counters_->wire_saved_data_bytes += AppendTruthReply(
              reply, keys,
              [this](uint64_t key) { return engine_->IsKeyFalse(key); },
              ctx.wire_format());
          counters_->vars_shipped += keys.size();
          ctx.Send(m.src, MessageClass::kData, std::move(reply));
          break;
        }
        case WireTag::kReply:
        case WireTag::kReply2: {
          std::vector<uint64_t> reply_falses;
          if (!ReadTruthReplyFalses(reader, tag, &reply_falses)) {
            health_->PoisonDecode(m.cls, "corrupt truth reply");
            return;
          }
          falses.insert(falses.end(), reply_falses.begin(),
                        reply_falses.end());
          break;
        }
        default:
          break;
      }
    }
    if (!falses.empty()) {
      engine_->ApplyRemoteFalses(falses);
      engine_->DrainInNodeFalses();
      matches_dirty_ = true;
    }
    if (halt) {
      halted_ = true;
      return;
    }
    if (ticked && !halted_) {
      // Re-request every still-undecided virtual variable (the redundant
      // per-superstep traffic characteristic of the vertex-centric model).
      // Encode the per-owner requests in independent slots, send in owner
      // order (bytes and accounting invariant across thread counts).
      std::map<uint32_t, std::vector<uint64_t>> by_owner;
      for (uint64_t key : engine_->UndecidedFrontierKeys()) {
        by_owner[fragmentation_->OwnerOf(VarKeyGlobalNode(key))].push_back(
            key);
      }
      std::vector<std::pair<uint32_t, std::vector<uint64_t>>> fan_out(
          std::make_move_iterator(by_owner.begin()),
          std::make_move_iterator(by_owner.end()));
      std::vector<Blob> blobs(fan_out.size());
      std::vector<uint64_t> saved(fan_out.size());
      ParallelEncodePayloads(ctx.pool(), fan_out.size(), [&](size_t i) {
        saved[i] =
            AppendTruthRequest(blobs[i], fan_out[i].second, ctx.wire_format());
      });
      for (size_t i = 0; i < fan_out.size(); ++i) {
        counters_->wire_saved_data_bytes += saved[i];
        counters_->vars_shipped += fan_out[i].second.size();
        ctx.Send(fan_out[i].first, MessageClass::kData, std::move(blobs[i]));
      }
      // Change vote for the coordinator's halt decision.
      size_t now_false = engine_->NumFalseVars();
      Blob flag;
      PutTag(flag, WireTag::kFlag);
      flag.PutU8(now_false != last_false_count_ ? 1 : 0);
      last_false_count_ = now_false;
      ctx.Send(ctx.coordinator_id(), MessageClass::kControl, std::move(flag));
    }
  }

  void OnQuiesce(SiteContext& ctx) override {
    if (health_->poisoned()) return;
    if (!matches_dirty_) return;
    auto candidates = engine_->LocalCandidates();
    std::vector<std::vector<NodeId>> lists(candidates.size());
    for (NodeId u = 0; u < candidates.size(); ++u) {
      candidates[u].ForEachSet([&](size_t lv) {
        lists[u].push_back(fragment_->ToGlobal(static_cast<NodeId>(lv)));
      });
    }
    Blob blob;
    counters_->wire_saved_result_bytes +=
        AppendMatchList(blob, lists, config_.boolean_only, ctx.wire_format());
    ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(blob));
    matches_dirty_ = false;
  }

 private:
  const Fragmentation* fragmentation_;
  const Fragment* fragment_;
  const Pattern* pattern_ = nullptr;
  BaselineConfig config_;
  AlgoCounters* counters_ = nullptr;
  RunHealth* health_ = nullptr;
  std::optional<LocalEngine> engine_;
  size_t last_false_count_ = 0;
  bool halted_ = false;
  bool matches_dirty_ = true;
};

// Coordinates supersteps: broadcasts the initial tick, gathers change
// votes, and broadcasts continue/halt verdicts. Also collects the final
// matches.
class DMesCoordinator : public QuerySiteActor {
 public:
  DMesCoordinator(size_t num_global_nodes, uint32_t num_workers)
      : collector_(num_global_nodes), num_workers_(num_workers) {}

  void BindQuery(const QueryContext& query) override {
    collector_.BindQuery(query);
    counters_ = query.counters;
    health_ = query.health;
    flags_ = 0;
    any_changed_ = false;
  }

  void EndQuery() override {
    collector_.EndQuery();
    counters_ = nullptr;
    health_ = nullptr;
    flags_ = 0;
    any_changed_ = false;
  }

  void Setup(SiteContext& ctx) override {
    for (uint32_t i = 0; i < num_workers_; ++i) {
      Blob blob;
      PutTag(blob, WireTag::kTick);
      ctx.Send(i, MessageClass::kControl, std::move(blob));
    }
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    if (health_->poisoned()) return;
    for (Message& m : inbox) {
      Blob::Reader reader(m.payload);
      WireTag tag = GetTag(reader);
      if (tag == WireTag::kFlag) {
        ++flags_;
        if (reader.GetU8() != 0) any_changed_ = true;
      } else if (tag == WireTag::kMatches || tag == WireTag::kMatches2) {
        std::vector<Message> one;
        one.push_back(std::move(m));
        collector_.OnMessages(ctx, std::move(one));
      }
    }
    if (flags_ == num_workers_) {
      ++counters_->supersteps;
      const bool halt = !any_changed_;
      flags_ = 0;
      any_changed_ = false;
      for (uint32_t i = 0; i < num_workers_; ++i) {
        Blob blob;
        PutTag(blob, WireTag::kVerdict);
        blob.PutU8(halt ? 0 : 1);
        ctx.Send(i, MessageClass::kControl, std::move(blob));
      }
    }
  }

  SimulationResult BuildResult() const { return collector_.BuildResult(); }

 private:
  CollectingCoordinator collector_;
  uint32_t num_workers_;
  AlgoCounters* counters_ = nullptr;
  RunHealth* health_ = nullptr;
  uint32_t flags_ = 0;
  bool any_changed_ = false;
};

// ---------------------------------------------------------------------------
// Deployments and one-shot runners
// ---------------------------------------------------------------------------

class AssemblingDeployment : public Deployment {
 public:
  AssemblingDeployment(const Fragmentation* fragmentation, bool ship_all)
      : coordinator_(fragmentation->assignment().size(),
                     fragmentation->NumFragments()) {
    workers_.reserve(fragmentation->NumFragments());
    for (uint32_t i = 0; i < fragmentation->NumFragments(); ++i) {
      const Fragment* frag = &fragmentation->fragment(i);
      if (ship_all) {
        workers_.push_back(std::make_unique<MatchWorker>(frag));
      } else {
        workers_.push_back(std::make_unique<DisHhkWorker>(frag));
      }
    }
  }

  uint32_t num_workers() const override {
    return static_cast<uint32_t>(workers_.size());
  }
  QuerySiteActor* worker(uint32_t i) override { return workers_[i].get(); }
  QuerySiteActor* coordinator() override { return &coordinator_; }

  SimulationResult Collect(AlgoCounters* counters) override {
    (void)counters;
    return coordinator_.BuildResult();
  }

 private:
  std::vector<std::unique_ptr<QuerySiteActor>> workers_;
  AssemblingCoordinator coordinator_;
};

class DMesDeployment : public Deployment {
 public:
  explicit DMesDeployment(const Fragmentation* fragmentation)
      : coordinator_(fragmentation->assignment().size(),
                     fragmentation->NumFragments()) {
    workers_.reserve(fragmentation->NumFragments());
    for (uint32_t i = 0; i < fragmentation->NumFragments(); ++i) {
      workers_.push_back(std::make_unique<DMesWorker>(fragmentation, i));
    }
  }

  uint32_t num_workers() const override {
    return static_cast<uint32_t>(workers_.size());
  }
  QuerySiteActor* worker(uint32_t i) override { return workers_[i].get(); }
  QuerySiteActor* coordinator() override { return &coordinator_; }

  SimulationResult Collect(AlgoCounters* counters) override {
    (void)counters;
    return coordinator_.BuildResult();
  }

 private:
  std::vector<std::unique_ptr<DMesWorker>> workers_;
  DMesCoordinator coordinator_;
};

DistOutcome RunBaselineOnce(Deployment& deployment, const Pattern& pattern,
                            Algorithm algorithm, const BaselineConfig& config,
                            const ClusterOptions& runtime) {
  QueryOptions options;
  options.algorithm = algorithm;
  options.boolean_only = config.boolean_only;
  return ServeQueryOnce(deployment, pattern, options, runtime);
}

}  // namespace

std::unique_ptr<Deployment> MakeMatchDeployment(
    const Fragmentation* fragmentation) {
  return std::make_unique<AssemblingDeployment>(fragmentation,
                                                /*ship_all=*/true);
}

std::unique_ptr<Deployment> MakeDisHhkDeployment(
    const Fragmentation* fragmentation) {
  return std::make_unique<AssemblingDeployment>(fragmentation,
                                                /*ship_all=*/false);
}

std::unique_ptr<Deployment> MakeDMesDeployment(
    const Fragmentation* fragmentation) {
  return std::make_unique<DMesDeployment>(fragmentation);
}

DistOutcome RunMatch(const Fragmentation& fragmentation,
                     const Pattern& pattern, const BaselineConfig& config,
                     const ClusterOptions& runtime) {
  auto deployment = MakeMatchDeployment(&fragmentation);
  return RunBaselineOnce(*deployment, pattern, Algorithm::kMatch, config,
                         runtime);
}

DistOutcome RunDisHhk(const Fragmentation& fragmentation,
                      const Pattern& pattern, const BaselineConfig& config,
                      const ClusterOptions& runtime) {
  auto deployment = MakeDisHhkDeployment(&fragmentation);
  return RunBaselineOnce(*deployment, pattern, Algorithm::kDisHhk, config,
                         runtime);
}

DistOutcome RunDMes(const Fragmentation& fragmentation, const Pattern& pattern,
                    const BaselineConfig& config,
                    const ClusterOptions& runtime) {
  auto deployment = MakeDMesDeployment(&fragmentation);
  return RunBaselineOnce(*deployment, pattern, Algorithm::kDMes, config,
                         runtime);
}

}  // namespace dgs
