#include "core/baselines.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

namespace dgs {
namespace {

// ---------------------------------------------------------------------------
// Shared subgraph-shipping machinery (Match and disHHK)
// ---------------------------------------------------------------------------

// Serializes a node/edge set. Node labels ride along so the assembling site
// can rebuild a queryable graph without any other metadata.
void AppendSubgraph(Blob& blob,
                    const std::vector<std::pair<NodeId, Label>>& nodes,
                    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  PutTag(blob, WireTag::kSubgraph);
  blob.PutU32(static_cast<uint32_t>(nodes.size()));
  for (auto [gid, label] : nodes) {
    blob.PutU32(gid);
    blob.PutU32(label);
  }
  blob.PutU32(static_cast<uint32_t>(edges.size()));
  for (auto [from, to] : edges) {
    blob.PutU32(from);
    blob.PutU32(to);
  }
}

// Assembles shipped subgraphs into a global-id graph and runs the
// centralized simulation once all fragments reported. Unshipped nodes get a
// sentinel label that matches no query node.
class AssemblingCoordinator : public SiteActor {
 public:
  AssemblingCoordinator(const Pattern* pattern, size_t num_global_nodes,
                        uint32_t num_workers, bool boolean_only)
      : pattern_(pattern),
        num_global_nodes_(num_global_nodes),
        num_workers_(num_workers),
        boolean_only_(boolean_only),
        labels_(num_global_nodes, kSentinelLabel) {}

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    (void)ctx;
    for (const Message& m : inbox) {
      Blob::Reader reader(m.payload);
      if (GetTag(reader) != WireTag::kSubgraph) continue;
      uint32_t num_nodes = reader.GetU32();
      DGS_CHECK(reader.ok() && num_nodes <= reader.Remaining() / 8,
                "corrupt subgraph payload (node count)");
      for (uint32_t i = 0; i < num_nodes; ++i) {
        NodeId gid = reader.GetU32();
        Label label = reader.GetU32();
        DGS_CHECK(gid < labels_.size(), "subgraph node id out of range");
        labels_[gid] = label;
      }
      uint32_t num_edges = reader.GetU32();
      DGS_CHECK(reader.ok() && num_edges <= reader.Remaining() / 8,
                "corrupt subgraph payload (edge count)");
      edges_.reserve(edges_.size() + num_edges);
      for (uint32_t i = 0; i < num_edges; ++i) {
        NodeId from = reader.GetU32();
        NodeId to = reader.GetU32();
        DGS_CHECK(from < labels_.size() && to < labels_.size(),
                  "subgraph edge endpoint out of range");
        edges_.emplace_back(from, to);
      }
      ++received_;
    }
    if (received_ == num_workers_ && !computed_) {
      // Assemble the query-able graph and resolve matches centrally.
      GraphBuilder builder;
      for (Label l : labels_) builder.AddNode(l);
      for (auto [from, to] : edges_) builder.AddEdge(from, to);
      Graph assembled = std::move(builder).Build();
      SimulationOptions options;
      options.boolean_only = boolean_only_;
      result_ = ComputeSimulation(*pattern_, assembled, options);
      computed_ = true;
    }
  }

  SimulationResult BuildResult() const {
    DGS_CHECK(computed_, "coordinator never received all fragments");
    return result_;
  }

 private:
  // No real label uses the top of the 32-bit space (generators use small
  // alphabets); a sentinel guarantees unshipped nodes never match.
  static constexpr Label kSentinelLabel = 0xffffffffu;

  const Pattern* pattern_;
  size_t num_global_nodes_;
  uint32_t num_workers_;
  bool boolean_only_;
  std::vector<Label> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  uint32_t received_ = 0;
  bool computed_ = false;
  SimulationResult result_;
};

// Match worker: ships the entire fragment.
class MatchWorker : public SiteActor {
 public:
  explicit MatchWorker(const Fragment* fragment) : fragment_(fragment) {}

  void Setup(SiteContext& ctx) override {
    std::vector<std::pair<NodeId, Label>> nodes;
    nodes.reserve(fragment_->num_local);
    for (NodeId v = 0; v < fragment_->num_local; ++v) {
      nodes.emplace_back(fragment_->ToGlobal(v), fragment_->graph.LabelOf(v));
    }
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId v = 0; v < fragment_->num_local; ++v) {
      for (NodeId w : fragment_->graph.OutNeighbors(v)) {
        edges.emplace_back(fragment_->ToGlobal(v), fragment_->ToGlobal(w));
      }
    }
    Blob blob;
    AppendSubgraph(blob, nodes, edges);
    ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(blob));
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    (void)ctx;
    (void)inbox;
  }

 private:
  const Fragment* fragment_;
};

// disHHK worker: ships the subgraph induced by label-candidate nodes.
class DisHhkWorker : public SiteActor {
 public:
  DisHhkWorker(const Fragment* fragment, const Pattern* pattern)
      : fragment_(fragment), pattern_(pattern) {}

  void Setup(SiteContext& ctx) override {
    // Candidate = carries a label used by some query node.
    std::unordered_set<Label> query_labels;
    for (NodeId u = 0; u < pattern_->NumNodes(); ++u) {
      query_labels.insert(pattern_->LabelOf(u));
    }
    const Graph& lg = fragment_->graph;
    auto is_candidate = [&](NodeId v) {
      return query_labels.count(lg.LabelOf(v)) > 0;
    };
    std::vector<std::pair<NodeId, Label>> nodes;
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId v = 0; v < lg.NumNodes(); ++v) {
      if (!is_candidate(v)) continue;
      // Virtual candidates are shipped as bare nodes (their home fragment
      // ships their adjacency); local candidates also ship their edges to
      // candidate children.
      nodes.emplace_back(fragment_->ToGlobal(v), lg.LabelOf(v));
      if (fragment_->IsVirtual(v)) continue;
      for (NodeId w : lg.OutNeighbors(v)) {
        if (is_candidate(w)) {
          edges.emplace_back(fragment_->ToGlobal(v), fragment_->ToGlobal(w));
        }
      }
    }
    Blob blob;
    AppendSubgraph(blob, nodes, edges);
    ctx.Send(ctx.coordinator_id(), MessageClass::kData, std::move(blob));
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    (void)ctx;
    (void)inbox;
  }

 private:
  const Fragment* fragment_;
  const Pattern* pattern_;
};

DistOutcome RunAssembling(const Fragmentation& fragmentation,
                          const Pattern& pattern, bool ship_all,
                          const BaselineConfig& config,
                          const ClusterOptions& runtime) {
  const uint32_t n = fragmentation.NumFragments();
  const size_t num_global = fragmentation.assignment().size();
  DistOutcome outcome;
  Cluster cluster(n, runtime);
  for (uint32_t i = 0; i < n; ++i) {
    const Fragment* frag = &fragmentation.fragment(i);
    if (ship_all) {
      cluster.SetWorker(i, std::make_unique<MatchWorker>(frag));
    } else {
      cluster.SetWorker(i, std::make_unique<DisHhkWorker>(frag, &pattern));
    }
  }
  cluster.SetCoordinator(std::make_unique<AssemblingCoordinator>(
      &pattern, num_global, n, config.boolean_only));
  outcome.stats = cluster.Run();
  outcome.result = static_cast<AssemblingCoordinator*>(cluster.coordinator())
                       ->BuildResult();
  return outcome;
}

// ---------------------------------------------------------------------------
// dMes
// ---------------------------------------------------------------------------

class DMesWorker : public SiteActor {
 public:
  DMesWorker(const Fragmentation* fragmentation, uint32_t site,
             const Pattern* pattern, const BaselineConfig& config,
             AlgoCounters* counters)
      : fragmentation_(fragmentation),
        fragment_(&fragmentation->fragment(site)),
        pattern_(pattern),
        config_(config),
        counters_(counters),
        engine_(fragment_, pattern, /*incremental=*/true) {}

  void Setup(SiteContext& ctx) override {
    (void)ctx;
    engine_.Initialize();
    engine_.DrainInNodeFalses();  // dMes never pushes falses proactively
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    bool ticked = false;
    bool halt = false;
    std::vector<uint64_t> falses;
    for (const Message& m : inbox) {
      Blob::Reader reader(m.payload);
      const WireTag tag = GetTag(reader);
      switch (tag) {
        case WireTag::kTick:
          ticked = true;
          break;
        case WireTag::kVerdict:
          if (reader.GetU8() == 0) {
            halt = true;
          } else {
            ticked = true;
          }
          break;
        case WireTag::kRequest:
        case WireTag::kRequest2: {
          // Reply with the current truth value of every requested variable
          // (under V2 only the false subset ships; absence means true).
          std::vector<uint64_t> keys;
          DGS_CHECK(ReadTruthRequest(reader, tag, &keys),
                    "corrupt truth request");
          Blob reply;
          counters_->wire_saved_data_bytes += AppendTruthReply(
              reply, keys,
              [this](uint64_t key) { return engine_.IsKeyFalse(key); },
              ctx.wire_format());
          counters_->vars_shipped += keys.size();
          ctx.Send(m.src, MessageClass::kData, std::move(reply));
          break;
        }
        case WireTag::kReply:
        case WireTag::kReply2: {
          std::vector<uint64_t> reply_falses;
          DGS_CHECK(ReadTruthReplyFalses(reader, tag, &reply_falses),
                    "corrupt truth reply");
          falses.insert(falses.end(), reply_falses.begin(),
                        reply_falses.end());
          break;
        }
        default:
          break;
      }
    }
    if (!falses.empty()) {
      engine_.ApplyRemoteFalses(falses);
      engine_.DrainInNodeFalses();
      matches_dirty_ = true;
    }
    if (halt) {
      halted_ = true;
      return;
    }
    if (ticked && !halted_) {
      // Re-request every still-undecided virtual variable (the redundant
      // per-superstep traffic characteristic of the vertex-centric model).
      std::map<uint32_t, std::vector<uint64_t>> by_owner;
      for (uint64_t key : engine_.UndecidedFrontierKeys()) {
        by_owner[fragmentation_->OwnerOf(VarKeyGlobalNode(key))].push_back(key);
      }
      for (auto& [owner, keys] : by_owner) {
        Blob blob;
        counters_->wire_saved_data_bytes +=
            AppendTruthRequest(blob, keys, ctx.wire_format());
        counters_->vars_shipped += keys.size();
        ctx.Send(owner, MessageClass::kData, std::move(blob));
      }
      // Change vote for the coordinator's halt decision.
      size_t now_false = engine_.NumFalseVars();
      Blob flag;
      PutTag(flag, WireTag::kFlag);
      flag.PutU8(now_false != last_false_count_ ? 1 : 0);
      last_false_count_ = now_false;
      ctx.Send(ctx.coordinator_id(), MessageClass::kControl, std::move(flag));
    }
  }

  void OnQuiesce(SiteContext& ctx) override {
    if (!matches_dirty_) return;
    auto candidates = engine_.LocalCandidates();
    std::vector<std::vector<NodeId>> lists(candidates.size());
    for (NodeId u = 0; u < candidates.size(); ++u) {
      candidates[u].ForEachSet([&](size_t lv) {
        lists[u].push_back(fragment_->ToGlobal(static_cast<NodeId>(lv)));
      });
    }
    Blob blob;
    counters_->wire_saved_result_bytes +=
        AppendMatchList(blob, lists, config_.boolean_only, ctx.wire_format());
    ctx.Send(ctx.coordinator_id(), MessageClass::kResult, std::move(blob));
    matches_dirty_ = false;
  }

 private:
  const Fragmentation* fragmentation_;
  const Fragment* fragment_;
  const Pattern* pattern_;
  BaselineConfig config_;
  AlgoCounters* counters_;
  LocalEngine engine_;
  size_t last_false_count_ = 0;
  bool halted_ = false;
  bool matches_dirty_ = true;
};

// Coordinates supersteps: broadcasts the initial tick, gathers change
// votes, and broadcasts continue/halt verdicts. Also collects the final
// matches.
class DMesCoordinator : public SiteActor {
 public:
  DMesCoordinator(size_t num_query_nodes, size_t num_global_nodes,
                  uint32_t num_workers, AlgoCounters* counters)
      : collector_(num_query_nodes, num_global_nodes),
        num_workers_(num_workers),
        counters_(counters) {}

  void Setup(SiteContext& ctx) override {
    for (uint32_t i = 0; i < num_workers_; ++i) {
      Blob blob;
      PutTag(blob, WireTag::kTick);
      ctx.Send(i, MessageClass::kControl, std::move(blob));
    }
  }

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override {
    for (Message& m : inbox) {
      Blob::Reader reader(m.payload);
      WireTag tag = GetTag(reader);
      if (tag == WireTag::kFlag) {
        ++flags_;
        if (reader.GetU8() != 0) any_changed_ = true;
      } else if (tag == WireTag::kMatches || tag == WireTag::kMatches2) {
        std::vector<Message> one;
        one.push_back(std::move(m));
        collector_.OnMessages(ctx, std::move(one));
      }
    }
    if (flags_ == num_workers_) {
      ++counters_->supersteps;
      const bool halt = !any_changed_;
      flags_ = 0;
      any_changed_ = false;
      for (uint32_t i = 0; i < num_workers_; ++i) {
        Blob blob;
        PutTag(blob, WireTag::kVerdict);
        blob.PutU8(halt ? 0 : 1);
        ctx.Send(i, MessageClass::kControl, std::move(blob));
      }
    }
  }

  SimulationResult BuildResult() const { return collector_.BuildResult(); }

 private:
  CollectingCoordinator collector_;
  uint32_t num_workers_;
  AlgoCounters* counters_;
  uint32_t flags_ = 0;
  bool any_changed_ = false;
};

}  // namespace

DistOutcome RunMatch(const Fragmentation& fragmentation,
                     const Pattern& pattern, const BaselineConfig& config,
                     const ClusterOptions& runtime) {
  return RunAssembling(fragmentation, pattern, /*ship_all=*/true, config,
                       runtime);
}

DistOutcome RunDisHhk(const Fragmentation& fragmentation,
                      const Pattern& pattern, const BaselineConfig& config,
                      const ClusterOptions& runtime) {
  return RunAssembling(fragmentation, pattern, /*ship_all=*/false, config,
                       runtime);
}

DistOutcome RunDMes(const Fragmentation& fragmentation, const Pattern& pattern,
                    const BaselineConfig& config,
                    const ClusterOptions& runtime) {
  const uint32_t n = fragmentation.NumFragments();
  const size_t num_global = fragmentation.assignment().size();
  DistOutcome outcome;
  Cluster cluster(n, runtime);
  for (uint32_t i = 0; i < n; ++i) {
    cluster.SetWorker(i, std::make_unique<DMesWorker>(
                             &fragmentation, i, &pattern, config,
                             &outcome.counters));
  }
  cluster.SetCoordinator(std::make_unique<DMesCoordinator>(
      pattern.NumNodes(), num_global, n, &outcome.counters));
  outcome.stats = cluster.Run();
  outcome.result =
      static_cast<DMesCoordinator*>(cluster.coordinator())->BuildResult();
  return outcome;
}

}  // namespace dgs
