// Public entry point for distributed graph simulation.
//
// Typical use:
//
//   dgs::Graph g = ...;                       // data graph
//   dgs::Pattern q = ...;                     // pattern query
//   std::vector<uint32_t> part = dgs::RandomPartition(g, 8, rng);
//   dgs::DistOptions options;
//   options.algorithm = dgs::Algorithm::kDgpm;
//   auto outcome = dgs::DistributedMatch(g, part, 8, q, options);
//   if (outcome.ok()) {
//     outcome->result.Matches(u);             // Q(G)
//     outcome->response_seconds();            // PT
//     outcome->data_shipment_bytes();         // DS
//   }

#ifndef DGS_CORE_API_H_
#define DGS_CORE_API_H_

#include "core/baselines.h"
#include "core/dgpm.h"
#include "core/dgpm_dag.h"
#include "core/dgpm_tree.h"
#include "core/metrics.h"
#include "util/status.h"

namespace dgs {

enum class Algorithm {
  kDgpm,       // Section 4: partition bounded, incremental + push
  kDgpmNoOpt,  // dGPMNOpt ablation: no incremental evaluation, no push
  kDgpmDag,    // Section 5.1: rank-scheduled batching (DAG Q or DAG G)
  kDgpmTree,   // Section 5.2: two-round coordinator algorithm (tree G)
  kMatch,      // ship-everything baseline
  kDisHhk,     // Ma et al. [25]
  kDMes,       // vertex-centric / Pregel-style
  kAuto,       // structure dispatch: tree G -> dGPMt, DAG Q or DAG G ->
               // dGPMd, otherwise dGPM (the paper's Table 1 hierarchy)
};

const char* AlgorithmName(Algorithm algorithm);

struct DistOptions {
  Algorithm algorithm = Algorithm::kDgpm;
  // Boolean pattern query: only GraphMatches() of the result is meaningful,
  // and result collection ships one bit per query node per site.
  bool boolean_only = false;
  // dGPM knobs (Section 4.2).
  bool enable_push = true;
  double push_threshold = 0.2;
  Cluster::NetworkModel network;
  // Executor width for the cluster runtime: 1 = sequential reference mode,
  // 0 = all hardware threads. Results and message accounting are identical
  // for every value (see runtime/cluster.h).
  uint32_t num_threads = 1;
  // Wire format for the dominant payloads (truth values, match lists).
  // kV2Delta (default) delta-encodes them and never ships more bytes than
  // kV1Fixed; simulation results and message counts are identical for both
  // (see runtime/message.h and core/protocol.h).
  WireFormat wire_format = WireFormat::kV2Delta;
};

// Fragments g according to `assignment` and evaluates q distributedly.
// Fails with InvalidArgument/OutOfRange on malformed assignments,
// FailedPrecondition when the algorithm's structural requirements are not
// met (kDgpmDag with cyclic Q and cyclic G; kDgpmTree on non-trees).
StatusOr<DistOutcome> DistributedMatch(const Graph& g,
                                       const std::vector<uint32_t>& assignment,
                                       uint32_t num_fragments,
                                       const Pattern& q,
                                       const DistOptions& options = {});

// Same, for callers that already built (and want to reuse) a Fragmentation.
// `g` is still needed for kDgpmDag's acyclicity checks.
StatusOr<DistOutcome> DistributedMatch(const Graph& g,
                                       const Fragmentation& fragmentation,
                                       const Pattern& q,
                                       const DistOptions& options = {});

}  // namespace dgs

#endif  // DGS_CORE_API_H_
