// Public entry points for distributed graph simulation.
//
// Serving (deploy once, query many — the paper's deployment model and the
// primary API, see core/engine.h):
//
//   dgs::Graph g = ...;                       // data graph
//   std::vector<uint32_t> part = dgs::RandomPartition(g, 8, rng);
//   auto engine = dgs::Engine::Create(g, part, 8, dgs::EngineOptions{});
//   if (!engine.ok()) { ... }
//   for (const dgs::Pattern& q : queries) {   // query stream
//     auto outcome = (*engine)->Match(q);     // QueryOptions{} = kAuto
//     if (!outcome.ok()) continue;            // engine stays usable
//     outcome->result.Matches(u);             // Q(G)
//     outcome->response_seconds();            // PT
//     outcome->data_shipment_bytes();         // DS
//   }
//
// One-shot (a single pattern against a graph that is not resident yet):
//
//   dgs::DistOptions options;
//   options.algorithm = dgs::Algorithm::kDgpm;
//   auto outcome = dgs::DistributedMatch(g, part, 8, q, options);
//
// DistributedMatch deploys a temporary Engine, serves the one query, and
// tears it down — results and message/byte accounting are bit-identical
// to the serving path. DistOptions is exactly EngineOptions + QueryOptions
// flattened (see core/serving.h for the split).

#ifndef DGS_CORE_API_H_
#define DGS_CORE_API_H_

#include "core/engine.h"
#include "core/metrics.h"
#include "core/serving.h"
#include "util/status.h"

namespace dgs {

// Flat one-shot option set: the per-deployment and per-query knobs of the
// serving API in one struct, with the historical defaults (algorithm
// kDgpm, not kAuto).
struct DistOptions {
  Algorithm algorithm = Algorithm::kDgpm;
  // Boolean pattern query: only GraphMatches() of the result is meaningful,
  // and result collection ships one bit per query node per site.
  bool boolean_only = false;
  // dGPM knobs (Section 4.2).
  bool enable_push = true;
  double push_threshold = 0.2;
  Cluster::NetworkModel network;
  // Executor width for the cluster runtime: 1 = sequential reference mode,
  // 0 = all hardware threads. Results and message accounting are identical
  // for every value (see runtime/cluster.h).
  uint32_t num_threads = 1;
  // Wire format for the dominant payloads (truth values, match lists).
  // kV2Delta (default) delta-encodes them and never ships more bytes than
  // kV1Fixed; simulation results and message counts are identical for both
  // (see runtime/message.h and core/protocol.h).
  WireFormat wire_format = WireFormat::kV2Delta;
  // Seeded chaos schedule for the delivery path (default off; see the
  // delivery-semantics contract in runtime/cluster.h).
  FaultPlan faults;
  // Round watchdog bound converting a stalled run into DeadlineExceeded
  // (0 = off; see ClusterOptions::watchdog_rounds).
  uint32_t watchdog_rounds = 0;
  // Round-execution backend: loopback (default) or tcp multi-process
  // (see runtime/transport.h). Results and accounting are
  // backend-invariant; tcp fills DistOutcome::transport with measured
  // socket bytes.
  TransportOptions transport;

  // The deployment / query split these options flatten.
  EngineOptions engine_options() const {
    EngineOptions engine;
    engine.network = network;
    engine.num_threads = num_threads;
    engine.wire_format = wire_format;
    engine.faults = faults;
    engine.watchdog_rounds = watchdog_rounds;
    engine.transport = transport;
    return engine;
  }
  QueryOptions query_options() const {
    QueryOptions query;
    query.algorithm = algorithm;
    query.boolean_only = boolean_only;
    query.enable_push = enable_push;
    query.push_threshold = push_threshold;
    return query;
  }
};

// Fragments g according to `assignment` and evaluates q distributedly.
// Fails with InvalidArgument/OutOfRange on malformed assignments,
// FailedPrecondition when the algorithm's structural requirements are not
// met (kDgpmDag with cyclic Q and cyclic G; kDgpmTree on non-trees).
StatusOr<DistOutcome> DistributedMatch(const Graph& g,
                                       const std::vector<uint32_t>& assignment,
                                       uint32_t num_fragments,
                                       const Pattern& q,
                                       const DistOptions& options = {});

// Same, for callers that already built (and want to reuse) a Fragmentation.
// `g` is still needed for kDgpmDag's acyclicity checks.
StatusOr<DistOutcome> DistributedMatch(const Graph& g,
                                       const Fragmentation& fragmentation,
                                       const Pattern& q,
                                       const DistOptions& options = {});

}  // namespace dgs

#endif  // DGS_CORE_API_H_
