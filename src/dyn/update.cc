#include "dyn/update.h"

#include <algorithm>
#include <string>

namespace dgs {

namespace {

using Edge = std::pair<NodeId, NodeId>;

void SortUnique(std::vector<Edge>* edges) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
}

// Sorted-gap codec for one canonical edge list: the source gap, then the
// target (as a gap from the previous target while the source repeats).
void EncodeEdgeList(const std::vector<Edge>& edges, Blob* out) {
  out->PutVarint(edges.size());
  NodeId prev_u = 0;
  NodeId prev_v = 0;
  for (const auto& [u, v] : edges) {
    const NodeId gap = u - prev_u;
    out->PutVarint(gap);
    out->PutVarint(gap == 0 ? v - prev_v : v);
    prev_u = u;
    prev_v = v;
  }
}

bool DecodeEdgeList(Blob::Reader& r, std::vector<Edge>* edges) {
  const uint64_t count = r.GetVarint();
  uint64_t prev_u = 0;
  uint64_t prev_v = 0;
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    const uint64_t gap = r.GetVarint();
    const uint64_t u = prev_u + gap;
    const uint64_t v = (gap == 0 ? prev_v : 0) + r.GetVarint();
    if (u > 0xffffffffULL || v > 0xffffffffULL) return false;
    edges->emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    prev_u = u;
    prev_v = v;
  }
  return r.ok();
}

bool EndpointsValid(const std::vector<Edge>& edges, size_t num_nodes) {
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes || v >= num_nodes) return false;
  }
  return true;
}

}  // namespace

void CanonicalizeBatch(UpdateBatch* batch) {
  SortUnique(&batch->deletes);
  SortUnique(&batch->inserts);
}

void EncodeUpdateSlice(uint64_t epoch, const UpdateBatch& slice, Blob* out) {
  out->PutVarint(epoch);
  EncodeEdgeList(slice.deletes, out);
  EncodeEdgeList(slice.inserts, out);
}

bool DecodeUpdateSlice(Blob::Reader& r, uint64_t* epoch, UpdateBatch* slice) {
  *epoch = r.GetVarint();
  if (!DecodeEdgeList(r, &slice->deletes)) return false;
  if (!DecodeEdgeList(r, &slice->inserts)) return false;
  return r.ok() && r.AtEnd();
}

uint32_t UpdateChecksum(const Blob& blob) {
  uint32_t h = 2166136261u;  // FNV-1a offset basis
  const uint8_t* bytes = blob.data();
  for (size_t i = 0; i < blob.size(); ++i) {
    h ^= bytes[i];
    h *= 16777619u;  // FNV prime
  }
  return h;
}

std::vector<UpdateBatch> SliceBatchByOwner(const UpdateBatch& batch,
                                           const Fragmentation& frag) {
  std::vector<UpdateBatch> slices(frag.NumFragments());
  auto route = [&](const std::vector<Edge>& edges,
                   std::vector<Edge> UpdateBatch::*list) {
    for (const Edge& e : edges) {
      const uint32_t src_owner = frag.OwnerOf(e.first);
      const uint32_t dst_owner = frag.OwnerOf(e.second);
      (slices[src_owner].*list).push_back(e);
      if (dst_owner != src_owner) (slices[dst_owner].*list).push_back(e);
    }
  };
  route(batch.deletes, &UpdateBatch::deletes);
  route(batch.inserts, &UpdateBatch::inserts);
  // Routing preserves the canonical order per slice (stable walk over a
  // sorted list), but keep the invariant explicit.
  for (UpdateBatch& slice : slices) CanonicalizeBatch(&slice);
  return slices;
}

// ---------------------------------------------------------------------------
// UpdateSiteActor
// ---------------------------------------------------------------------------

void UpdateSiteActor::BindUpdate(uint64_t epoch, RunHealth* health) {
  epoch_ = epoch;
  health_ = health;
}

void UpdateSiteActor::EndUpdate() { health_ = nullptr; }

void UpdateSiteActor::OnMessages(SiteContext& ctx,
                                 std::vector<Message> inbox) {
  if (health_ != nullptr && health_->poisoned()) return;  // drain silently
  for (Message& m : inbox) {
    if (m.cls != MessageClass::kUpdate) {
      if (health_ != nullptr) {
        health_->PoisonDecode(m.cls, "site " + std::to_string(ctx.site_id()) +
                                         " got a non-update message in an "
                                         "update run");
      }
      return;
    }
    Blob::Reader r(m.payload);
    uint64_t epoch = 0;
    UpdateBatch slice;
    if (!DecodeUpdateSlice(r, &epoch, &slice) || epoch != epoch_ ||
        !EndpointsValid(slice.deletes, num_nodes_) ||
        !EndpointsValid(slice.inserts, num_nodes_)) {
      if (health_ != nullptr) {
        health_->PoisonDecode(MessageClass::kUpdate,
                              "site " + std::to_string(ctx.site_id()) +
                                  " rejected its update slice for epoch " +
                                  std::to_string(epoch_));
      }
      return;
    }
    // The slice checked out: ack what we saw. Commitment happens on the
    // parent after the whole run proves healthy (see the file comment).
    Blob ack;
    ack.PutVarint(epoch_);
    ack.PutVarint(ctx.site_id());
    ack.PutVarint(slice.deletes.size());
    ack.PutVarint(slice.inserts.size());
    ack.PutU32(UpdateChecksum(m.payload));
    ctx.Send(ctx.coordinator_id(), MessageClass::kControl, std::move(ack));
  }
}

void UpdateSiteActor::CommitEpoch(uint64_t epoch, const UpdateBatch& slice) {
  if (epoch <= committed_epoch_) return;  // idempotent replay
  committed_epoch_ = epoch;
  applied_deletes_ += slice.deletes.size();
  applied_inserts_ += slice.inserts.size();
}

// ---------------------------------------------------------------------------
// UpdateCoordinatorActor
// ---------------------------------------------------------------------------

void UpdateCoordinatorActor::BindUpdate(const std::vector<UpdateBatch>* slices,
                                        uint64_t epoch, RunHealth* health) {
  slices_ = slices;
  epoch_ = epoch;
  health_ = health;
  expected_.assign(slices->size(), Expected{});
  acks_ = 0;
}

void UpdateCoordinatorActor::EndUpdate() {
  slices_ = nullptr;
  health_ = nullptr;
  expected_.clear();
  acks_ = 0;
}

void UpdateCoordinatorActor::Setup(SiteContext& ctx) {
  DGS_CHECK(slices_ != nullptr && slices_->size() == ctx.num_workers(),
            "update coordinator not bound to this cluster");
  for (uint32_t site = 0; site < ctx.num_workers(); ++site) {
    const UpdateBatch& slice = (*slices_)[site];
    Blob payload;
    EncodeUpdateSlice(epoch_, slice, &payload);
    expected_[site].deletes = slice.deletes.size();
    expected_[site].inserts = slice.inserts.size();
    expected_[site].checksum = UpdateChecksum(payload);
    ctx.Send(site, MessageClass::kUpdate, std::move(payload));
  }
}

void UpdateCoordinatorActor::OnMessages(SiteContext& ctx,
                                        std::vector<Message> inbox) {
  if (health_ != nullptr && health_->poisoned()) return;  // drain silently
  for (Message& m : inbox) {
    Blob::Reader r(m.payload);
    const uint64_t epoch = r.GetVarint();
    const uint64_t site = r.GetVarint();
    const uint64_t deletes = r.GetVarint();
    const uint64_t inserts = r.GetVarint();
    const uint32_t checksum = r.GetU32();
    if (!r.ok() || !r.AtEnd() || m.cls != MessageClass::kControl ||
        site != m.src || site >= expected_.size()) {
      if (health_ != nullptr) {
        health_->PoisonDecode(m.cls, "malformed update ack from site " +
                                         std::to_string(m.src));
      }
      return;
    }
    Expected& want = expected_[site];
    if (want.acked) continue;  // duplicate ack (norecover chaos)
    if (epoch != epoch_ || deletes != want.deletes ||
        inserts != want.inserts || checksum != want.checksum) {
      if (health_ != nullptr) {
        health_->PoisonWith(StatusCode::kDataLoss,
                            "site " + std::to_string(site) +
                                " acked a different update slice than was "
                                "sent for epoch " +
                                std::to_string(epoch_));
      }
      return;
    }
    want.acked = true;
    ++acks_;
  }
  (void)ctx;
}

void UpdateCoordinatorActor::OnQuiesce(SiteContext& ctx) {
  (void)ctx;
  if (acks_ == expected_.size()) return;
  if (health_ != nullptr && !health_->poisoned()) {
    health_->PoisonWith(StatusCode::kUnavailable,
                        "update epoch " + std::to_string(epoch_) + ": " +
                            std::to_string(expected_.size() - acks_) +
                            " site ack(s) never arrived");
  }
}

}  // namespace dgs
