// Standing-query subscriptions over a dynamic graph.
//
// A subscription registers a pattern once against the deployed graph and
// then receives a *result delta* — the (query node, data node) pairs that
// entered or left the match relation — after every committed update batch,
// instead of recomputing from scratch. The registry owns:
//
//   - ONE shared DynamicAdjacency, the authoritative mutable adjacency of
//     the deployment. Every subscription's IncrementalSimulation borrows it
//     (simulation/incremental.h borrow path), so a thousand standing
//     queries still hold one copy of the graph.
//   - Per subscription: the pattern, its incremental fixpoint, the snapshot
//     of the last delivered result, and a bounded queue of undelivered
//     deltas.
//
// ApplyBatch mutates the shared adjacency exactly once per edge, repairs
// every live subscription through the post-mutation hooks, and diffs each
// repaired fixpoint against the last delivered snapshot (word-level XOR),
// which makes the delta exact and independent of thread width, transport
// backend, and mutation interleaving. A subscription whose pending queue
// overflows drops its oldest deltas and is marked lagged — the client's
// cue to resynchronize from Snapshot() (which always holds the full,
// current result).
//
// Thread safety: all public methods lock the registry; callers (the
// Server) may poll concurrently with updates.

#ifndef DGS_DYN_SUBSCRIPTION_H_
#define DGS_DYN_SUBSCRIPTION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "dyn/update.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/pattern.h"
#include "simulation/incremental.h"
#include "simulation/simulation.h"
#include "util/status.h"

namespace dgs {

using SubscriptionId = uint64_t;

struct SubscribeOptions {
  // Bound on the per-subscription queue of undelivered deltas; overflow
  // drops the oldest delta and marks the subscription lagged.
  size_t max_pending_deltas = 64;
};

// The pairs that entered/left one subscription's result at one version.
struct SubscriptionDelta {
  uint64_t version = 0;  // graph version whose commit produced this delta
  std::vector<std::pair<NodeId, NodeId>> added;    // (query node, data node)
  std::vector<std::pair<NodeId, NodeId>> removed;

  bool empty() const { return added.empty() && removed.empty(); }
};

class SubscriptionRegistry {
 public:
  // `num_threads` is handed to each subscription's incremental kernel for
  // its large-cascade drains (0 = all hardware threads).
  SubscriptionRegistry(const Graph& g, uint32_t num_threads);

  // The shared mutable adjacency (also the source of truth for rebuilding
  // Graph snapshots after a commit).
  const DynamicAdjacency& adjacency() const { return adjacency_; }

  // Materializes the pattern's full result at the current graph and starts
  // maintaining it. The initial result is NOT queued as a delta; read it
  // via Snapshot().
  SubscriptionId Subscribe(const Pattern& pattern,
                           const SubscribeOptions& options = {});

  // Stops maintaining `id`. Returns false if the id is unknown.
  bool Unsubscribe(SubscriptionId id);

  size_t NumSubscriptions() const;

  // Accounting of one ApplyBatch over all live subscriptions.
  struct ApplyOutcome {
    size_t edges_deleted = 0;   // mutations that actually changed the graph
    size_t edges_inserted = 0;
    size_t deltas_delivered = 0;  // non-empty deltas queued
    size_t deltas_empty = 0;      // subscriptions the batch did not touch
    size_t deltas_dropped = 0;    // overflow evictions (lagged subscribers)
    uint64_t pairs_added = 0;
    uint64_t pairs_removed = 0;
  };

  // Applies a canonical, validated batch (deletes first, then inserts) to
  // the shared adjacency and repairs every live subscription. `version` is
  // the graph version the commit establishes; it stamps the deltas.
  ApplyOutcome ApplyBatch(const UpdateBatch& batch, uint64_t version);

  // The subscription's full current result (bit-identical to a from-scratch
  // evaluation on the current graph).
  StatusOr<SimulationResult> Snapshot(SubscriptionId id) const;

  // Drains the subscription's pending deltas (oldest first). `lagged`, when
  // non-null, reports whether deltas were dropped since the last poll (the
  // flag resets on poll).
  StatusOr<std::vector<SubscriptionDelta>> PollDeltas(SubscriptionId id,
                                                      bool* lagged = nullptr);

 private:
  struct Subscription {
    Pattern pattern;  // owned: the kernel points at this copy
    std::unique_ptr<IncrementalSimulation> inc;
    std::vector<DynamicBitset> delivered;  // snapshot at last queued delta
    std::deque<SubscriptionDelta> pending;
    SubscribeOptions options;
    bool lagged = false;
  };

  mutable std::mutex mu_;
  DynamicAdjacency adjacency_;
  uint32_t num_threads_;
  SubscriptionId next_id_ = 1;
  // unique_ptr values: the kernel holds a pointer to Subscription::pattern,
  // so the record's address must survive map rebalancing.
  std::map<SubscriptionId, std::unique_ptr<Subscription>> subs_;
};

}  // namespace dgs

#endif  // DGS_DYN_SUBSCRIPTION_H_
