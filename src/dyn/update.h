// Dynamic-graph update batches and their distribution to sites.
//
// An UpdateBatch is a set of edge deletions plus a set of edge insertions
// against the deployed data graph. Batches are canonicalized delete-first:
// the post-batch graph is (G \ deletes) ∪ inserts, so the result of a batch
// depends only on the final edge set, never on intra-batch ordering.
//
// Distribution rides the existing Cluster/Transport seam as its own message
// class (MessageClass::kUpdate), so update traffic is charged in RunStats,
// subject to the fault injector, and works unchanged over the loopback and
// tcp backends:
//
//   Setup     the coordinator encodes one wire-v2 slice per site — the
//             edges whose source or target the site owns — and sends it as
//             a kUpdate message, remembering the slice's checksum.
//   Deliver   each site decodes its slice (failure → PoisonDecode(kUpdate)),
//             validates the endpoints, and acks with a kControl message
//             carrying (epoch, counts, checksum).
//   Quiesce   the coordinator has verified every ack against what it sent;
//             a missing ack poisons the run Unavailable, a mismatched one
//             DataLoss.
//
// The run *replicates and validates* the batch; it never mutates resident
// state. Commitment is the parent's move after a healthy run — it replays
// CommitEpoch on every site actor (idempotent via the epoch watermark),
// which keeps the resident per-site state identical across backends: under
// tcp the in-run actor copies live in forked children and die with them,
// so the parent-side replay is the only apply that counts on either
// backend. A poisoned run therefore commits nothing anywhere — a failed
// update is never half-applied and is always safe to resubmit.

#ifndef DGS_DYN_UPDATE_H_
#define DGS_DYN_UPDATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "partition/fragmentation.h"
#include "runtime/fault.h"
#include "runtime/message.h"
#include "runtime/transport.h"

namespace dgs {

// One batch of edge mutations. Deletions apply before insertions.
struct UpdateBatch {
  std::vector<std::pair<NodeId, NodeId>> deletes;
  std::vector<std::pair<NodeId, NodeId>> inserts;

  bool empty() const { return deletes.empty() && inserts.empty(); }
  size_t size() const { return deletes.size() + inserts.size(); }
};

// Sorts both edge lists by (source, target) and removes duplicates — the
// canonical form every encoder and checksum assumes.
void CanonicalizeBatch(UpdateBatch* batch);

// Wire-v2 slice codec: varint epoch, then each edge list as sorted-gap
// varint deltas. Encode expects a canonicalized batch.
void EncodeUpdateSlice(uint64_t epoch, const UpdateBatch& slice, Blob* out);
bool DecodeUpdateSlice(Blob::Reader& r, uint64_t* epoch, UpdateBatch* slice);

// FNV-1a over a blob's bytes; the ack-verification checksum.
uint32_t UpdateChecksum(const Blob& blob);

// Splits a canonical batch into per-site slices: edge (u, v) goes to the
// owner of u and (if different) the owner of v, so both endpoint fragments
// learn about it. Slices come out canonical.
std::vector<UpdateBatch> SliceBatchByOwner(const UpdateBatch& batch,
                                           const Fragmentation& frag);

// Resident per-site actor of the update deployment. Lives across update
// runs (bound non-owning into the cluster, like QuerySiteActor).
class UpdateSiteActor : public SiteActor {
 public:
  explicit UpdateSiteActor(size_t num_nodes) : num_nodes_(num_nodes) {}

  // Per-run binding (epoch = the version the batch would commit).
  void BindUpdate(uint64_t epoch, RunHealth* health);
  void EndUpdate();

  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override;

  // Parent-side commit after a healthy run; idempotent (a replayed or
  // repeated epoch is a no-op), which is what makes retried updates safe.
  void CommitEpoch(uint64_t epoch, const UpdateBatch& slice);

  uint64_t committed_epoch() const { return committed_epoch_; }
  uint64_t applied_inserts() const { return applied_inserts_; }
  uint64_t applied_deletes() const { return applied_deletes_; }

 private:
  size_t num_nodes_;
  uint64_t epoch_ = 0;
  RunHealth* health_ = nullptr;
  // Commit watermark + apply counters (the resident repair record).
  uint64_t committed_epoch_ = 0;
  uint64_t applied_inserts_ = 0;
  uint64_t applied_deletes_ = 0;
};

// Coordinator of the update deployment: fans the slices out and audits the
// acks.
class UpdateCoordinatorActor : public SiteActor {
 public:
  // `slices` has one entry per worker site (from SliceBatchByOwner);
  // must stay alive through the Run().
  void BindUpdate(const std::vector<UpdateBatch>* slices, uint64_t epoch,
                  RunHealth* health);
  void EndUpdate();

  void Setup(SiteContext& ctx) override;
  void OnMessages(SiteContext& ctx, std::vector<Message> inbox) override;
  void OnQuiesce(SiteContext& ctx) override;

 private:
  struct Expected {
    uint64_t deletes = 0;
    uint64_t inserts = 0;
    uint32_t checksum = 0;
    bool acked = false;
  };

  const std::vector<UpdateBatch>* slices_ = nullptr;
  uint64_t epoch_ = 0;
  RunHealth* health_ = nullptr;
  std::vector<Expected> expected_;
  size_t acks_ = 0;
};

}  // namespace dgs

#endif  // DGS_DYN_UPDATE_H_
