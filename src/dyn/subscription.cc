#include "dyn/subscription.h"

#include <algorithm>

#include "obs/trace.h"

namespace dgs {

SubscriptionRegistry::SubscriptionRegistry(const Graph& g,
                                           uint32_t num_threads)
    : adjacency_(g), num_threads_(num_threads) {}

SubscriptionId SubscriptionRegistry::Subscribe(const Pattern& pattern,
                                               const SubscribeOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  const SubscriptionId id = next_id_++;
  auto sub = std::make_unique<Subscription>();
  sub->pattern = pattern;
  sub->options = options;
  sub->inc = std::make_unique<IncrementalSimulation>(sub->pattern, &adjacency_,
                                                     num_threads_);
  const size_t nq = sub->pattern.NumNodes();
  sub->delivered.reserve(nq);
  for (NodeId u = 0; u < nq; ++u) {
    sub->delivered.push_back(sub->inc->CandidateSet(u));
  }
  subs_.emplace(id, std::move(sub));
  return id;
}

bool SubscriptionRegistry::Unsubscribe(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.erase(id) > 0;
}

size_t SubscriptionRegistry::NumSubscriptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

SubscriptionRegistry::ApplyOutcome SubscriptionRegistry::ApplyBatch(
    const UpdateBatch& batch, uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::TraceSpan apply_span("dyn", "dyn.subs_apply");
  apply_span.Arg("version", version);
  apply_span.Arg("subs", static_cast<uint64_t>(subs_.size()));
  ApplyOutcome outcome;

  // One authoritative mutation per edge, then every kernel repairs from the
  // already-mutated shared adjacency. Deletes before inserts — the batch's
  // canonical semantics.
  for (const auto& [u, v] : batch.deletes) {
    if (!adjacency_.RemoveEdge(u, v)) continue;  // absent: no-op
    ++outcome.edges_deleted;
    for (auto& [id, sub] : subs_) (void)sub->inc->ApplyEdgeRemoved(u, v);
  }
  for (const auto& [u, v] : batch.inserts) {
    if (!adjacency_.InsertEdge(u, v)) continue;  // present: no-op
    ++outcome.edges_inserted;
    for (auto& [id, sub] : subs_) (void)sub->inc->ApplyEdgeInserted(u, v);
  }

  // Diff each repaired fixpoint against the last delivered snapshot; the
  // whole batch yields ONE delta per subscription.
  for (auto& [id, sub] : subs_) {
    SubscriptionDelta delta;
    delta.version = version;
    const size_t nq = sub->pattern.NumNodes();
    for (NodeId u = 0; u < nq; ++u) {
      const DynamicBitset& now = sub->inc->CandidateSet(u);
      now.ForEachDiff(sub->delivered[u], [&](size_t v, bool now_set) {
        auto& list = now_set ? delta.added : delta.removed;
        list.emplace_back(u, static_cast<NodeId>(v));
      });
    }
    if (delta.empty()) {
      ++outcome.deltas_empty;
      continue;
    }
    outcome.pairs_added += delta.added.size();
    outcome.pairs_removed += delta.removed.size();
    for (NodeId u = 0; u < nq; ++u) {
      sub->delivered[u] = sub->inc->CandidateSet(u);
    }
    if (sub->pending.size() >= sub->options.max_pending_deltas) {
      sub->pending.pop_front();
      sub->lagged = true;
      ++outcome.deltas_dropped;
    }
    sub->pending.push_back(std::move(delta));
    ++outcome.deltas_delivered;
  }
  return outcome;
}

StatusOr<SimulationResult> SubscriptionRegistry::Snapshot(
    SubscriptionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(id);
  if (it == subs_.end()) {
    return Status::NotFound("unknown subscription id " + std::to_string(id));
  }
  return it->second->inc->Result();
}

StatusOr<std::vector<SubscriptionDelta>> SubscriptionRegistry::PollDeltas(
    SubscriptionId id, bool* lagged) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(id);
  if (it == subs_.end()) {
    return Status::NotFound("unknown subscription id " + std::to_string(id));
  }
  Subscription& sub = *it->second;
  std::vector<SubscriptionDelta> out(
      std::make_move_iterator(sub.pending.begin()),
      std::make_move_iterator(sub.pending.end()));
  sub.pending.clear();
  if (lagged != nullptr) *lagged = sub.lagged;
  sub.lagged = false;
  return out;
}

}  // namespace dgs
