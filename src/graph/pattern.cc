#include "graph/pattern.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace dgs {

Pattern::Pattern(Graph q) : graph_(std::move(q)) {
  is_dag_ = IsAcyclic(graph_);
  diameter_ = dgs::Diameter(graph_);
  if (is_dag_) ranks_ = TopologicalRanks(graph_);
}

const std::vector<uint32_t>& Pattern::Ranks() const {
  DGS_CHECK(is_dag_, "Ranks() requires a DAG pattern");
  return ranks_;
}

uint32_t Pattern::MaxRank() const {
  const auto& r = Ranks();
  uint32_t best = 0;
  for (uint32_t x : r) best = std::max(best, x);
  return best;
}

}  // namespace dgs
