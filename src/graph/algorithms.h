// Classic graph algorithms used by patterns, partitioners and the
// distributed engines: Tarjan SCC, acyclicity, topological order, BFS.

#ifndef DGS_GRAPH_ALGORITHMS_H_
#define DGS_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/flat_hash.h"

namespace dgs {

// Groups ids by label without assuming a dense label alphabet (assembled
// graphs use a 0xffffffff sentinel, so labels cannot index an array).
// Shared by the simulation kernels (candidate seeding, per-edge query-node
// lookup) and the local engines (per-fragment variable layout).
class LabelIndex {
 public:
  // Indexes ids [0, n); label_of(id) supplies each id's label.
  template <typename LabelOf>
  LabelIndex(size_t n, LabelOf&& label_of) {
    ids_.resize(n);
    // Counting sort by label: first sizes, then offsets, then placement.
    std::vector<uint32_t> bucket_of(n);
    for (NodeId v = 0; v < n; ++v) {
      uint32_t* b = buckets_.insert(static_cast<uint64_t>(label_of(v)),
                                    static_cast<uint32_t>(sizes_.size()));
      if (*b == sizes_.size()) sizes_.push_back(0);
      bucket_of[v] = *b;
      ++sizes_[*b];
    }
    offsets_.assign(sizes_.size() + 1, 0);
    for (size_t b = 0; b < sizes_.size(); ++b) {
      offsets_[b + 1] = offsets_[b] + sizes_[b];
    }
    std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (NodeId v = 0; v < n; ++v) ids_[cursor[bucket_of[v]]++] = v;
  }

  // Ids carrying `label`, in ascending order; empty for unseen labels.
  std::span<const NodeId> Of(Label label) const {
    const uint32_t* b = buckets_.find(static_cast<uint64_t>(label));
    if (b == nullptr) return {};
    return {ids_.data() + offsets_[*b], offsets_[*b + 1] - offsets_[*b]};
  }

 private:
  // Labels widen to the map's 64-bit key space, so the ~0 sentinel never
  // collides with a real 32-bit label.
  FlatHashMap<uint64_t, uint32_t> buckets_;  // label -> bucket id
  std::vector<size_t> sizes_;
  std::vector<size_t> offsets_;
  std::vector<NodeId> ids_;
};

// Strongly connected components via iterative Tarjan [32]. Returns a
// component id per node; ids are in reverse topological order of the
// condensation (i.e., a component only reaches components with smaller ids...
// precisely: for any edge u->v across components, comp[u] > comp[v]).
std::vector<uint32_t> StronglyConnectedComponents(const Graph& g,
                                                  uint32_t* num_components);

// True iff g has no directed cycle (counting self-loops as cycles).
bool IsAcyclic(const Graph& g);

// Topological order (sources first) if acyclic, std::nullopt otherwise.
std::optional<std::vector<NodeId>> TopologicalOrder(const Graph& g);

// BFS hop distances from `source` following out-edges; unreachable nodes get
// kUnreachable.
inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source);

// Diameter as defined in the paper: the longest finite shortest-path length
// over all ordered node pairs (directed). Quadratic; intended for small
// pattern-sized graphs.
uint32_t Diameter(const Graph& g);

// Topological rank of every node for a DAG (Section 5.1): r(u) = 0 if u has
// no child, else 1 + max over children. Requires acyclic input.
std::vector<uint32_t> TopologicalRanks(const Graph& g);

// True iff the undirected version of g is connected (empty graph counts as
// connected).
bool IsWeaklyConnected(const Graph& g);

// True iff g is a forest when edges are read as parent->child: every node
// has in-degree <= 1 and there is no cycle.
bool IsDownwardForest(const Graph& g);

}  // namespace dgs

#endif  // DGS_GRAPH_ALGORITHMS_H_
