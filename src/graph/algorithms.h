// Classic graph algorithms used by patterns, partitioners and the
// distributed engines: Tarjan SCC, acyclicity, topological order, BFS.

#ifndef DGS_GRAPH_ALGORITHMS_H_
#define DGS_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace dgs {

// Strongly connected components via iterative Tarjan [32]. Returns a
// component id per node; ids are in reverse topological order of the
// condensation (i.e., a component only reaches components with smaller ids...
// precisely: for any edge u->v across components, comp[u] > comp[v]).
std::vector<uint32_t> StronglyConnectedComponents(const Graph& g,
                                                  uint32_t* num_components);

// True iff g has no directed cycle (counting self-loops as cycles).
bool IsAcyclic(const Graph& g);

// Topological order (sources first) if acyclic, std::nullopt otherwise.
std::optional<std::vector<NodeId>> TopologicalOrder(const Graph& g);

// BFS hop distances from `source` following out-edges; unreachable nodes get
// kUnreachable.
inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source);

// Diameter as defined in the paper: the longest finite shortest-path length
// over all ordered node pairs (directed). Quadratic; intended for small
// pattern-sized graphs.
uint32_t Diameter(const Graph& g);

// Topological rank of every node for a DAG (Section 5.1): r(u) = 0 if u has
// no child, else 1 + max over children. Requires acyclic input.
std::vector<uint32_t> TopologicalRanks(const Graph& g);

// True iff the undirected version of g is connected (empty graph counts as
// connected).
bool IsWeaklyConnected(const Graph& g);

// True iff g is a forest when edges are read as parent->child: every node
// has in-degree <= 1 and there is no cycle.
bool IsDownwardForest(const Graph& g);

}  // namespace dgs

#endif  // DGS_GRAPH_ALGORITHMS_H_
