// Workload generators (Section 6 "Experimental setting").
//
// The paper evaluates on (a) the Yahoo web graph, (b) the arnetminer
// Citation DAG, and (c) synthetic graphs G(|V|, |E|, L) with a 15-label
// alphabet, plus pattern queries mined from the data (cyclic patterns with
// selection conditions; DAG patterns of prescribed diameter). Neither
// real dataset is redistributable, so this module provides generators that
// reproduce their structural properties (see DESIGN.md §4), the paper's
// worked examples as fixtures, and pattern extraction by subgraph sampling,
// which guarantees that extracted patterns have non-empty matches.

#ifndef DGS_GRAPH_GENERATORS_H_
#define DGS_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/pattern.h"
#include "util/rng.h"
#include "util/status.h"

namespace dgs {

// Number of labels used by the paper's synthetic generator.
inline constexpr Label kDefaultAlphabet = 15;

// Uniform random directed graph with `num_nodes` nodes, ~`num_edges` edges
// (after dedupe) and labels uniform over [0, alphabet).
Graph RandomGraph(size_t num_nodes, size_t num_edges, Label alphabet,
                  Rng& rng);

// Web-graph-like generator: skewed in-degree (hub pages), host locality in
// the id space, a long-range tail; cyclic. Stands in for the Yahoo graph
// (3M nodes / 15M edges in the paper; size here is a parameter).
Graph WebGraph(size_t num_nodes, size_t num_edges, Label alphabet, Rng& rng);

// Synthetic graph with tunable edge locality (fraction `locality` of edges
// land within +-window in the id space, the rest uniform). Used by the
// large-scale synthetic experiments, where the paper's partitioner reaches
// |Vf|/|V| = 20% — impossible on locality-free uniform graphs.
Graph ClusteredGraph(size_t num_nodes, size_t num_edges, Label alphabet,
                     Rng& rng, double locality = 0.9, size_t window = 32);

// Citation-DAG-like generator: node i may only cite nodes j < i (papers cite
// strictly older papers), with recency bias. Always acyclic. Stands in for
// the arnetminer Citation graph (1.4M / 3M in the paper).
Graph CitationDag(size_t num_nodes, size_t num_edges, Label alphabet,
                  Rng& rng);

// Random rooted tree with edges directed parent -> child (XML-document
// style, as required by dGPMt / Corollary 4). `max_fanout` caps children per
// node; 0 means unbounded.
Graph RandomTree(size_t num_nodes, Label alphabet, Rng& rng,
                 size_t max_fanout = 8);

// ---------------------------------------------------------------------------
// Paper fixtures
// ---------------------------------------------------------------------------

// The Fig. 2 data-locality gadget: G0 is the 2n-cycle
// A1 -> B1 -> A2 -> B2 -> ... -> An -> Bn -> A1 with alternating labels, and
// Q0 is the two-node cycle A <-> B. Used in the impossibility theorem: every
// (u, v) pair matches, but deciding so requires information to travel around
// the whole cycle. `broken` cuts the final edge (Bn -> A1), in which case
// nothing matches — yet discovering this still requires whole-cycle travel.
struct LocalityGadget {
  Graph g;
  Pattern q;
  // The natural fragmentation: fragment i holds {Ai, Bi} (Example 4).
  std::vector<uint32_t> assignment;
};
LocalityGadget MakeLocalityGadget(size_t n, bool broken = false);

// The Fig. 1 running example: 13-node social graph over labels
// {YB, YF, F, SP}, the beer-marketing pattern, the 3-site fragmentation of
// Example 4, and the expected maximum match of Example 2.
struct SocialExample {
  // Label ids.
  static constexpr Label kYB = 0, kYF = 1, kF = 2, kSP = 3;
  Graph g;
  Pattern q;
  std::vector<uint32_t> assignment;               // 3 sites
  std::vector<std::string> node_names;            // "yf1", "yb1", ...
  // expected_matches[u] = sorted data node ids matching query node u,
  // indexed by query node (0 = YB, 1 = YF, 2 = F, 3 = SP).
  std::vector<std::vector<NodeId>> expected_matches;
};
SocialExample MakeSocialExample();

// The Fig. 5 example used for dGPMd (Example 9/10): DAG pattern Q'' with
// ranks 0..4 over labels {YB, YF, F, SP, FB} and the 5-fragment graph G''
// that does not match it.
struct DagExample {
  Graph g;
  Pattern q;
  std::vector<uint32_t> assignment;
  std::vector<std::string> node_names;
};
DagExample MakeDagExample();

// ---------------------------------------------------------------------------
// Pattern generation
// ---------------------------------------------------------------------------

enum class PatternKind {
  kAny,     // connected, no structural constraint
  kCyclic,  // contains at least one directed cycle
  kDag,     // acyclic with prescribed depth (max topological rank)
};

struct PatternSpec {
  size_t num_nodes = 5;
  size_t num_edges = 10;  // target; actual may be lower (reported by caller)
  PatternKind kind = PatternKind::kCyclic;
  // For kDag: required max rank (== number of dGPMd message batches). The
  // extractor guarantees the result's MaxRank() equals this value.
  uint32_t dag_depth = 3;
};

// Extracts a pattern from `g` by sampling a connected subgraph with the
// requested shape, so that the identity embedding witnesses a non-empty
// simulation match (patterns "mined from the data", as in the paper's
// experiments). Returns an error if g cannot supply the shape (e.g. kCyclic
// on an acyclic graph).
StatusOr<Pattern> ExtractPattern(const Graph& g, const PatternSpec& spec,
                                 Rng& rng);

// Fully synthetic connected random pattern over [0, alphabet) labels; may or
// may not match any particular graph. kCyclic guarantees a directed cycle;
// kDag guarantees MaxRank() == spec.dag_depth.
Pattern SynthesizePattern(const PatternSpec& spec, Label alphabet, Rng& rng);

}  // namespace dgs

#endif  // DGS_GRAPH_GENERATORS_H_
