// Text serialization for graphs (and patterns, which are graphs).
//
// Format ("dgs-graph v1"):
//   dgs-graph v1
//   nodes <N>
//   labels <l0> <l1> ... <lN-1>
//   edges <M>
//   <from> <to>          (M lines)

#ifndef DGS_GRAPH_IO_H_
#define DGS_GRAPH_IO_H_

#include <istream>
#include <ostream>

#include "graph/graph.h"
#include "util/status.h"

namespace dgs {

// Writes `g` to `os` in the v1 text format.
void WriteGraph(const Graph& g, std::ostream& os);

// Parses a v1 text graph. Malformed input yields an InvalidArgument status.
StatusOr<Graph> ReadGraph(std::istream& is);

}  // namespace dgs

#endif  // DGS_GRAPH_IO_H_
