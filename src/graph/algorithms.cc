#include "graph/algorithms.h"

#include <algorithm>

namespace dgs {

std::vector<uint32_t> StronglyConnectedComponents(const Graph& g,
                                                  uint32_t* num_components) {
  const size_t n = g.NumNodes();
  constexpr uint32_t kUnset = static_cast<uint32_t>(-1);
  std::vector<uint32_t> index(n, kUnset);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<uint32_t> comp(n, kUnset);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  uint32_t next_index = 0;
  uint32_t next_comp = 0;

  // Iterative Tarjan: frames carry (node, next-child cursor).
  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> frames;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      NodeId v = f.v;
      if (f.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      auto nbrs = g.OutNeighbors(v);
      bool descended = false;
      while (f.child < nbrs.size()) {
        NodeId w = nbrs[f.child++];
        if (index[w] == kUnset) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;
      // v is finished.
      if (lowlink[v] == index[v]) {
        while (true) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }
  if (num_components != nullptr) *num_components = next_comp;
  return comp;
}

bool IsAcyclic(const Graph& g) {
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.HasEdge(v, v)) return false;
  }
  uint32_t num_components = 0;
  StronglyConnectedComponents(g, &num_components);
  return num_components == g.NumNodes();
}

std::optional<std::vector<NodeId>> TopologicalOrder(const Graph& g) {
  const size_t n = g.NumNodes();
  std::vector<uint32_t> indegree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : g.OutNeighbors(v)) ++indegree[w];
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (NodeId w : g.OutNeighbors(v)) {
      if (--indegree[w] == 0) frontier.push_back(w);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source) {
  std::vector<uint32_t> dist(g.NumNodes(), kUnreachable);
  std::vector<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId v = queue[head];
    for (NodeId w : g.OutNeighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

uint32_t Diameter(const Graph& g) {
  uint32_t best = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    // A sink's eccentricity is 0: skipping it avoids the O(|V|) BFS setup,
    // which turns edge-sparse graphs from quadratic into near-linear.
    if (g.OutDegree(v) == 0) continue;
    for (uint32_t d : BfsDistances(g, v)) {
      if (d != kUnreachable) best = std::max(best, d);
    }
  }
  return best;
}

std::vector<uint32_t> TopologicalRanks(const Graph& g) {
  auto order = TopologicalOrder(g);
  DGS_CHECK(order.has_value(), "TopologicalRanks requires an acyclic graph");
  std::vector<uint32_t> rank(g.NumNodes(), 0);
  // Process in reverse topological order so children are ranked first.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    NodeId v = *it;
    uint32_t r = 0;
    for (NodeId w : g.OutNeighbors(v)) r = std::max(r, rank[w] + 1);
    rank[v] = r;
  }
  return rank;
}

bool IsWeaklyConnected(const Graph& g) {
  const size_t n = g.NumNodes();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> queue = {0};
  seen[0] = true;
  size_t visited = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId v = queue[head];
    auto visit = [&](NodeId w) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        queue.push_back(w);
      }
    };
    for (NodeId w : g.OutNeighbors(v)) visit(w);
    for (NodeId w : g.InNeighbors(v)) visit(w);
  }
  return visited == n;
}

bool IsDownwardForest(const Graph& g) {
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (g.InDegree(v) > 1) return false;
  }
  return IsAcyclic(g);
}

}  // namespace dgs
