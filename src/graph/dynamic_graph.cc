#include "graph/dynamic_graph.h"

#include <algorithm>

namespace dgs {

DynamicAdjacency::DynamicAdjacency(const Graph& g)
    : num_edges_(g.NumEdges()), label_bound_(g.LabelAlphabetSize()) {
  const size_t n = g.NumNodes();
  labels_.resize(n);
  out_.resize(n);
  in_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    labels_[v] = g.LabelOf(v);
    auto out = g.OutNeighbors(v);
    out_[v].assign(out.begin(), out.end());
    auto in = g.InNeighbors(v);
    in_[v].assign(in.begin(), in.end());
  }
}

bool DynamicAdjacency::HasEdge(NodeId from, NodeId to) const {
  DGS_CHECK(from < out_.size() && to < out_.size(), "edge endpoint OOB");
  const std::vector<NodeId>& row = out_[from];
  return std::binary_search(row.begin(), row.end(), to);
}

bool DynamicAdjacency::InsertEdge(NodeId from, NodeId to) {
  DGS_CHECK(from < out_.size() && to < out_.size(), "edge endpoint OOB");
  std::vector<NodeId>& row = out_[from];
  auto it = std::lower_bound(row.begin(), row.end(), to);
  if (it != row.end() && *it == to) return false;
  row.insert(it, to);
  std::vector<NodeId>& col = in_[to];
  auto jt = std::lower_bound(col.begin(), col.end(), from);
  col.insert(jt, from);
  ++num_edges_;
  return true;
}

bool DynamicAdjacency::RemoveEdge(NodeId from, NodeId to) {
  DGS_CHECK(from < out_.size() && to < out_.size(), "edge endpoint OOB");
  std::vector<NodeId>& row = out_[from];
  auto it = std::lower_bound(row.begin(), row.end(), to);
  if (it == row.end() || *it != to) return false;
  row.erase(it);
  std::vector<NodeId>& col = in_[to];
  auto jt = std::lower_bound(col.begin(), col.end(), from);
  DGS_CHECK(jt != col.end() && *jt == from, "in-adjacency out of sync");
  col.erase(jt);
  --num_edges_;
  return true;
}

Graph DynamicAdjacency::ToGraph() const {
  GraphBuilder builder;
  for (Label label : labels_) builder.AddNode(label);
  for (NodeId v = 0; v < out_.size(); ++v) {
    for (NodeId w : out_[v]) builder.AddEdge(v, w);
  }
  return std::move(builder).Build(/*dedupe=*/false);
}

}  // namespace dgs
