#include "graph/graph.h"

#include <algorithm>

namespace dgs {

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(NumEdges());
  for (NodeId v = 0; v < NumNodes(); ++v) {
    for (NodeId w : OutNeighbors(v)) out.emplace_back(v, w);
  }
  return out;
}

NodeId GraphBuilder::AddNode(Label label) {
  labels_.push_back(label);
  return static_cast<NodeId>(labels_.size() - 1);
}

void GraphBuilder::SetLabel(NodeId v, Label label) {
  DGS_CHECK(v < labels_.size(), "SetLabel: node id out of range");
  labels_[v] = label;
}

void GraphBuilder::AddEdge(NodeId from, NodeId to) {
  DGS_CHECK(from < labels_.size() && to < labels_.size(),
            "AddEdge: endpoint out of range");
  edges_.emplace_back(from, to);
}

NodeId GraphBuilder::AddLabeledEdge(NodeId from, NodeId to, Label edge_label) {
  NodeId dummy = AddNode(edge_label);
  AddEdge(from, dummy);
  AddEdge(dummy, to);
  return dummy;
}

Graph GraphBuilder::Build(bool dedupe) && {
  Graph g;
  g.labels_ = std::move(labels_);
  const size_t n = g.labels_.size();

  std::sort(edges_.begin(), edges_.end());
  if (dedupe) {
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  }

  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const auto& [from, to] : edges_) {
    ++g.out_offsets_[from + 1];
    ++g.in_offsets_[to + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    g.out_offsets_[i + 1] += g.out_offsets_[i];
    g.in_offsets_[i + 1] += g.in_offsets_[i];
  }

  g.out_targets_.resize(edges_.size());
  g.in_sources_.resize(edges_.size());
  {
    // Edges are sorted by (from, to), so out-CSR fills in order.
    size_t idx = 0;
    for (const auto& [from, to] : edges_) {
      (void)from;
      g.out_targets_[idx++] = to;
    }
  }
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const auto& [from, to] : edges_) {
      g.in_sources_[cursor[to]++] = from;
    }
    // Sort each in-adjacency range for deterministic iteration order.
    for (size_t v = 0; v < n; ++v) {
      std::sort(g.in_sources_.begin() + static_cast<long>(g.in_offsets_[v]),
                g.in_sources_.begin() + static_cast<long>(g.in_offsets_[v + 1]));
    }
  }

  for (Label l : g.labels_) g.label_bound_ = std::max(g.label_bound_, l + 1);
  return g;
}

Graph MakeGraph(const std::vector<Label>& labels,
                const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder b;
  for (Label l : labels) b.AddNode(l);
  for (const auto& [from, to] : edges) b.AddEdge(from, to);
  return std::move(b).Build();
}

}  // namespace dgs
