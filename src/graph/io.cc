#include "graph/io.h"

#include <string>

namespace dgs {

void WriteGraph(const Graph& g, std::ostream& os) {
  os << "dgs-graph v1\n";
  os << "nodes " << g.NumNodes() << "\n";
  os << "labels";
  for (NodeId v = 0; v < g.NumNodes(); ++v) os << " " << g.LabelOf(v);
  os << "\n";
  os << "edges " << g.NumEdges() << "\n";
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) os << v << " " << w << "\n";
  }
}

StatusOr<Graph> ReadGraph(std::istream& is) {
  std::string magic, version, keyword;
  if (!(is >> magic >> version) || magic != "dgs-graph" || version != "v1") {
    return Status::InvalidArgument("bad header: expected 'dgs-graph v1'");
  }
  size_t num_nodes = 0;
  if (!(is >> keyword >> num_nodes) || keyword != "nodes") {
    return Status::InvalidArgument("bad 'nodes' line");
  }
  if (!(is >> keyword) || keyword != "labels") {
    return Status::InvalidArgument("bad 'labels' line");
  }
  GraphBuilder b;
  for (size_t i = 0; i < num_nodes; ++i) {
    Label l;
    if (!(is >> l)) return Status::InvalidArgument("truncated label list");
    b.AddNode(l);
  }
  size_t num_edges = 0;
  if (!(is >> keyword >> num_edges) || keyword != "edges") {
    return Status::InvalidArgument("bad 'edges' line");
  }
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId from, to;
    if (!(is >> from >> to)) {
      return Status::InvalidArgument("truncated edge list");
    }
    if (from >= num_nodes || to >= num_nodes) {
      return Status::OutOfRange("edge endpoint out of range");
    }
    b.AddEdge(from, to);
  }
  return std::move(b).Build(/*dedupe=*/false);
}

}  // namespace dgs
