// Pattern query graph Q = (Vq, Eq, fv) (Section 2.1).
//
// Patterns are small directed node-labeled graphs. Pattern wraps a Graph and
// caches the structural facts the distributed algorithms key off: whether Q
// is a DAG, its diameter d, and the topological ranks r(u) used by dGPMd.

#ifndef DGS_GRAPH_PATTERN_H_
#define DGS_GRAPH_PATTERN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dgs {

// Immutable pattern query. Construct from a Graph (typically via MakeGraph
// or the generators in graph/generators.h).
class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(Graph q);

  size_t NumNodes() const { return graph_.NumNodes(); }
  size_t NumEdges() const { return graph_.NumEdges(); }
  // |Q| = |Vq| + |Eq|.
  size_t Size() const { return graph_.Size(); }

  Label LabelOf(NodeId u) const { return graph_.LabelOf(u); }
  std::span<const NodeId> Children(NodeId u) const {
    return graph_.OutNeighbors(u);
  }
  std::span<const NodeId> Parents(NodeId u) const {
    return graph_.InNeighbors(u);
  }
  bool IsSink(NodeId u) const { return graph_.OutDegree(u) == 0; }

  const Graph& graph() const { return graph_; }

  // True iff Q has no directed cycle.
  bool IsDag() const { return is_dag_; }

  // Diameter d: longest finite shortest path (0 for single-node patterns).
  uint32_t Diameter() const { return diameter_; }

  // r(u) for DAG patterns: 0 for sinks, 1 + max over children otherwise.
  // Aborts if the pattern is cyclic.
  const std::vector<uint32_t>& Ranks() const;

  // max_u r(u); aborts if cyclic.
  uint32_t MaxRank() const;

 private:
  Graph graph_;
  bool is_dag_ = true;
  uint32_t diameter_ = 0;
  std::vector<uint32_t> ranks_;  // empty when cyclic
};

}  // namespace dgs

#endif  // DGS_GRAPH_PATTERN_H_
