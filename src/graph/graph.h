// Node-labeled directed data graph (Section 2.1 of the paper).
//
// A data graph G = (V, E, L) stores a finite set of nodes, directed edges,
// and a label per node drawn from an alphabet of 32-bit label ids. Storage is
// CSR (compressed sparse row) in both directions so that simulation kernels
// can walk successors and predecessors in O(degree).
//
// Edge labels (mentioned in the paper as handled via dummy nodes) are
// supported through GraphBuilder::AddLabeledEdge, which inserts the dummy
// node carrying the edge label, exactly as Section 2.1 prescribes.

#ifndef DGS_GRAPH_GRAPH_H_
#define DGS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace dgs {

using NodeId = uint32_t;
using Label = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

// Immutable CSR graph. Construct through GraphBuilder.
class Graph {
 public:
  Graph() = default;

  size_t NumNodes() const { return labels_.size(); }
  size_t NumEdges() const { return out_targets_.size(); }
  // |G| = |V| + |E| as defined in the paper.
  size_t Size() const { return NumNodes() + NumEdges(); }

  Label LabelOf(NodeId v) const {
    DGS_DCHECK(v < labels_.size(), "node id out of range");
    return labels_[v];
  }

  std::span<const NodeId> OutNeighbors(NodeId v) const {
    DGS_DCHECK(v < labels_.size(), "node id out of range");
    return {out_targets_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  std::span<const NodeId> InNeighbors(NodeId v) const {
    DGS_DCHECK(v < labels_.size(), "node id out of range");
    return {in_sources_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(NodeId v) const { return OutNeighbors(v).size(); }
  size_t InDegree(NodeId v) const { return InNeighbors(v).size(); }

  // True if edge (u, v) exists. O(log out-degree(u)); adjacency is sorted.
  bool HasEdge(NodeId u, NodeId v) const;

  // All edges in (source, target) order, materialized. Intended for tests,
  // IO and fragmentation, not for inner loops.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  // Largest label id + 1 (0 for the empty graph).
  Label LabelAlphabetSize() const { return label_bound_; }

  friend class GraphBuilder;

 private:
  std::vector<Label> labels_;
  std::vector<size_t> out_offsets_;  // size NumNodes()+1
  std::vector<NodeId> out_targets_;  // sorted within each node's range
  std::vector<size_t> in_offsets_;
  std::vector<NodeId> in_sources_;
  Label label_bound_ = 0;
};

// Accumulates nodes and edges, then freezes them into a Graph.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  // Reserves space for a known node count (labels default to 0).
  explicit GraphBuilder(size_t num_nodes) : labels_(num_nodes, 0) {}

  // Adds a node with the given label; returns its id (dense, 0-based).
  NodeId AddNode(Label label);

  // Sets the label of an existing node.
  void SetLabel(NodeId v, Label label);

  // Adds a directed edge. Both endpoints must already exist. Duplicate edges
  // and self-loops are kept unless Build(..., dedupe=true).
  void AddEdge(NodeId from, NodeId to);

  // Adds an edge carrying `edge_label` by inserting a dummy node with that
  // label between `from` and `to` (the paper's reduction for edge labels).
  // Returns the dummy node id.
  NodeId AddLabeledEdge(NodeId from, NodeId to, Label edge_label);

  size_t NumNodes() const { return labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  // Freezes into an immutable Graph. With dedupe=true, parallel edges are
  // collapsed. Sorts adjacency lists.
  Graph Build(bool dedupe = true) &&;

 private:
  std::vector<Label> labels_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

// Convenience constructor used pervasively in tests: builds a graph from a
// label vector and an edge list. Invalid endpoints abort.
Graph MakeGraph(const std::vector<Label>& labels,
                const std::vector<std::pair<NodeId, NodeId>>& edges);

}  // namespace dgs

#endif  // DGS_GRAPH_GRAPH_H_
