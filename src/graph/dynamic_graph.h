// Mutable adjacency view of a data graph (dynamic-graph support).
//
// Graph is an immutable CSR, which is the right shape for the simulation
// kernels but cannot absorb edge mutations. DynamicAdjacency is the mutable
// companion: sorted per-node out/in vectors plus the label array, built once
// from a Graph and then maintained under edge inserts/deletes in
// O(log degree + degree) per mutation. It is the single authoritative
// adjacency that incremental simulation instances *borrow* (see
// simulation/incremental.h), so a server with thousands of standing
// subscriptions keeps one copy of the graph, not one per query.
//
// Parallel edges collapse to one (set semantics), matching
// GraphBuilder::Build(dedupe=true) which every serving path uses.

#ifndef DGS_GRAPH_DYNAMIC_GRAPH_H_
#define DGS_GRAPH_DYNAMIC_GRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace dgs {

class DynamicAdjacency {
 public:
  explicit DynamicAdjacency(const Graph& g);

  size_t NumNodes() const { return labels_.size(); }
  size_t NumEdges() const { return num_edges_; }

  Label LabelOf(NodeId v) const {
    DGS_DCHECK(v < labels_.size(), "node id out of range");
    return labels_[v];
  }
  Label LabelAlphabetSize() const { return label_bound_; }

  const std::vector<NodeId>& Out(NodeId v) const {
    DGS_DCHECK(v < out_.size(), "node id out of range");
    return out_[v];
  }
  const std::vector<NodeId>& In(NodeId v) const {
    DGS_DCHECK(v < in_.size(), "node id out of range");
    return in_[v];
  }

  bool HasEdge(NodeId from, NodeId to) const;

  // Inserts (from, to); returns false (and changes nothing) if the edge is
  // already present. Endpoints must be existing nodes.
  bool InsertEdge(NodeId from, NodeId to);

  // Removes (from, to); returns false if the edge is absent.
  bool RemoveEdge(NodeId from, NodeId to);

  // Freezes the current adjacency into an immutable CSR snapshot (same
  // labels, current edge set). Used to redeploy engines after a committed
  // update batch.
  Graph ToGraph() const;

 private:
  std::vector<Label> labels_;
  std::vector<std::vector<NodeId>> out_;  // sorted
  std::vector<std::vector<NodeId>> in_;   // sorted
  size_t num_edges_ = 0;
  Label label_bound_ = 0;
};

}  // namespace dgs

#endif  // DGS_GRAPH_DYNAMIC_GRAPH_H_
