#include "graph/generators.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "graph/algorithms.h"

namespace dgs {
namespace {

// Assigns uniform labels over [0, alphabet).
std::vector<Label> RandomLabels(size_t n, Label alphabet, Rng& rng) {
  DGS_CHECK(alphabet > 0, "alphabet must be non-empty");
  std::vector<Label> labels(n);
  for (auto& l : labels) l = static_cast<Label>(rng.UniformInt(alphabet));
  return labels;
}

// Computes the max topological rank of the subgraph on `nodes` with `edges`
// (ids are positions into `nodes`), or returns false if cyclic.
bool SubgraphMaxRank(size_t n, const std::vector<std::pair<NodeId, NodeId>>& edges,
                     uint32_t* max_rank) {
  GraphBuilder b(n);
  for (auto [a, c] : edges) b.AddEdge(a, c);
  Graph g = std::move(b).Build();
  if (!IsAcyclic(g)) return false;
  uint32_t best = 0;
  for (uint32_t r : TopologicalRanks(g)) best = std::max(best, r);
  *max_rank = best;
  return true;
}

}  // namespace

Graph RandomGraph(size_t num_nodes, size_t num_edges, Label alphabet,
                  Rng& rng) {
  DGS_CHECK(num_nodes > 0, "graph must have nodes");
  GraphBuilder b;
  for (Label l : RandomLabels(num_nodes, alphabet, rng)) b.AddNode(l);
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(num_nodes));
    NodeId v = static_cast<NodeId>(rng.UniformInt(num_nodes));
    if (u == v) continue;
    b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

Graph WebGraph(size_t num_nodes, size_t num_edges, Label alphabet, Rng& rng) {
  DGS_CHECK(num_nodes > 1, "web graph needs at least two nodes");
  GraphBuilder b;
  for (Label l : RandomLabels(num_nodes, alphabet, rng)) b.AddNode(l);
  // Real web graphs are dominated by intra-host links with per-host hub
  // pages and a thin long-range tail; the id space models host locality
  // (blocks of kBlock pages per host). This mirrors the Yahoo graph's
  // structure and is what lets partitioners reach the paper's 25%-50%
  // boundary ratios at all.
  constexpr size_t kBlock = 512;
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(num_nodes));
    NodeId v;
    double roll = rng.UniformDouble();
    if (roll < 0.65) {
      // Nearby page (skewed short offset, either direction).
      uint64_t offset = 1 + rng.Skewed(64, 0.6);
      v = static_cast<NodeId>(rng.Bernoulli(0.5)
                                  ? (u + offset) % num_nodes
                                  : (u + num_nodes - offset % num_nodes) %
                                        num_nodes);
    } else if (roll < 0.93) {
      // Host hub: skewed pick within u's block (low in-block ids are hubs).
      size_t block_start = (u / kBlock) * kBlock;
      size_t block_len = std::min(kBlock, num_nodes - block_start);
      v = static_cast<NodeId>(block_start + rng.Skewed(block_len, 0.8));
    } else {
      // Long-range link.
      v = static_cast<NodeId>(rng.UniformInt(num_nodes));
    }
    if (u == v) continue;
    b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

Graph ClusteredGraph(size_t num_nodes, size_t num_edges, Label alphabet,
                     Rng& rng, double locality, size_t window) {
  DGS_CHECK(num_nodes > 1, "clustered graph needs at least two nodes");
  DGS_CHECK(window > 0, "window must be positive");
  GraphBuilder b;
  for (Label l : RandomLabels(num_nodes, alphabet, rng)) b.AddNode(l);
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(num_nodes));
    NodeId v;
    if (rng.UniformDouble() < locality) {
      uint64_t offset = 1 + rng.UniformInt(window);
      v = static_cast<NodeId>(rng.Bernoulli(0.5)
                                  ? (u + offset) % num_nodes
                                  : (u + num_nodes - offset % num_nodes) %
                                        num_nodes);
    } else {
      v = static_cast<NodeId>(rng.UniformInt(num_nodes));
    }
    if (u == v) continue;
    b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

Graph CitationDag(size_t num_nodes, size_t num_edges, Label alphabet,
                  Rng& rng) {
  DGS_CHECK(num_nodes > 1, "citation graph needs at least two nodes");
  GraphBuilder b;
  for (Label l : RandomLabels(num_nodes, alphabet, rng)) b.AddNode(l);
  // Paper i cites papers with smaller index (strictly older), so the result
  // is acyclic by construction. Most citations are recent (within a sliding
  // window), with a long-range tail toward old seminal papers — the
  // structure that lets time-ordered range partitions stay low-boundary.
  constexpr uint64_t kRecencyWindow = 2048;
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId u = static_cast<NodeId>(1 + rng.UniformInt(num_nodes - 1));
    uint64_t back;
    if (rng.UniformDouble() < 0.9) {
      back = 1 + rng.Skewed(std::min<uint64_t>(u, kRecencyWindow), 0.8);
    } else {
      back = 1 + rng.Skewed(u, 0.5);  // seminal-paper tail
    }
    NodeId v = static_cast<NodeId>(u - back);
    b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

Graph RandomTree(size_t num_nodes, Label alphabet, Rng& rng,
                 size_t max_fanout) {
  DGS_CHECK(num_nodes > 0, "tree must have nodes");
  GraphBuilder b;
  for (Label l : RandomLabels(num_nodes, alphabet, rng)) b.AddNode(l);
  std::vector<size_t> fanout(num_nodes, 0);
  for (NodeId v = 1; v < num_nodes; ++v) {
    NodeId parent = static_cast<NodeId>(rng.UniformInt(v));
    if (max_fanout > 0) {
      // Walk forward until a node with spare fanout is found (node v-1
      // always has capacity in the worst case because it was just added).
      while (fanout[parent] >= max_fanout) {
        parent = static_cast<NodeId>((parent + 1) % v);
      }
    }
    ++fanout[parent];
    b.AddEdge(parent, v);
  }
  return std::move(b).Build();
}

LocalityGadget MakeLocalityGadget(size_t n, bool broken) {
  DGS_CHECK(n >= 1, "gadget needs n >= 1");
  constexpr Label kA = 0, kB = 1;
  GraphBuilder b;
  // Nodes A1, B1, A2, B2, ..., An, Bn (A_i = 2i, B_i = 2i+1).
  for (size_t i = 0; i < n; ++i) {
    b.AddNode(kA);
    b.AddNode(kB);
  }
  for (size_t i = 0; i < n; ++i) {
    NodeId a = static_cast<NodeId>(2 * i);
    NodeId bb = static_cast<NodeId>(2 * i + 1);
    b.AddEdge(a, bb);
    NodeId next_a = static_cast<NodeId>((2 * i + 2) % (2 * n));
    if (!(broken && i + 1 == n)) b.AddEdge(bb, next_a);
  }
  LocalityGadget out;
  out.g = std::move(b).Build();
  out.q = Pattern(MakeGraph({kA, kB}, {{0, 1}, {1, 0}}));
  out.assignment.resize(2 * n);
  for (size_t i = 0; i < n; ++i) {
    out.assignment[2 * i] = static_cast<uint32_t>(i);
    out.assignment[2 * i + 1] = static_cast<uint32_t>(i);
  }
  return out;
}

SocialExample MakeSocialExample() {
  SocialExample ex;
  const Label YB = SocialExample::kYB, YF = SocialExample::kYF,
              F = SocialExample::kF, SP = SocialExample::kSP;
  // Node ids, grouped by site (Example 4): S1 = {yf1, yb1, sp1, f1},
  // S2 = {f3, yb2, sp2, f2, yf2}, S3 = {f4, sp3, yf3, yb3}.
  ex.node_names = {"yf1", "yb1", "sp1", "f1",         // 0..3   site 0
                   "f3",  "yb2", "sp2", "f2", "yf2",  // 4..8   site 1
                   "f4",  "sp3", "yf3", "yb3"};       // 9..12  site 2
  enum : NodeId {
    yf1 = 0, yb1, sp1, f1, f3, yb2, sp2, f2, yf2, f4, sp3, yf3, yb3
  };
  std::vector<Label> labels = {YF, YB, SP, F, F, YB, SP, F, YF, F, SP, YF, YB};
  // Edges reconstructed from Examples 1, 2, 4, 6 and 7 (see DESIGN.md §7):
  // the 9-edge recommendation cycle plus yb/f attachments. (yb2, sp3) makes
  // sp3 a virtual node of S2, matching the dependency-graph annotation of
  // Example 5; it does not affect any match (YB has no SP child in Q).
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {f3, sp2},  {sp2, yf3}, {yf3, f4},  {f4, sp3},  {sp3, yf1},
      {yf1, f2},  {f2, sp1},  {sp1, yf2}, {yf2, f3},  {sp1, yf1},
      {sp1, f2},  {f1, f4},   {yb2, yf2}, {yb2, f3},  {yb3, yf1},
      {yb3, f4},  {yb1, f1},  {yb2, sp3}};
  ex.g = MakeGraph(labels, edges);
  // Q: YB -> YF, YB -> F, YF -> F, F -> SP, SP -> YF (query node ids match
  // label ids: 0 = YB, 1 = YF, 2 = F, 3 = SP).
  ex.q = Pattern(MakeGraph({YB, YF, F, SP},
                           {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 1}}));
  ex.assignment = {0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2};
  // Example 2: YB -> {yb2, yb3}; YF -> {yf1, yf2, yf3}; F -> {f2, f3, f4};
  // SP -> {sp1, sp2, sp3}.
  ex.expected_matches = {
      {yb2, yb3},
      {yf1, yf2, yf3},
      {f3, f2, f4},
      {sp1, sp2, sp3},
  };
  for (auto& m : ex.expected_matches) std::sort(m.begin(), m.end());
  return ex;
}

DagExample MakeDagExample() {
  DagExample ex;
  constexpr Label YB = 0, YF = 1, F = 2, SP = 3, FB = 4;
  // Q'' (Fig. 5): YB1 -> {YF, F}, YF -> SP, F -> SP, SP -> YB2, YB2 -> FB.
  // Ranks: FB=0, YB2=1, SP=2, YF=F=3, YB1=4. YB1 and YB2 share label YB.
  // Query node ids: 0=YB1, 1=YF, 2=F, 3=SP, 4=YB2, 5=FB.
  ex.q = Pattern(MakeGraph({YB, YF, F, SP, YB, FB},
                           {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}}));
  // G'' (Fig. 5): five fragments; no FB-labeled node exists, so G'' does not
  // match Q''. Node ids grouped by site:
  //   F4 = {yb4}, F5 = {yf4, yf5, f5}, F6 = {f6, yf6, f7},
  //   F7 = {sp4, sp5}, F8 = {sp6, sp7}.
  ex.node_names = {"yb4",                  // 0       site 0 (F4)
                   "yf4", "yf5", "f5",     // 1..3    site 1 (F5)
                   "f6",  "yf6", "f7",     // 4..6    site 2 (F6)
                   "sp4", "sp5",           // 7..8    site 3 (F7)
                   "sp6", "sp7"};          // 9..10   site 4 (F8)
  enum : NodeId { yb4 = 0, yf4, yf5, f5, f6, yf6, f7, sp4, sp5, sp6, sp7 };
  std::vector<Label> labels = {YB, YF, YF, F, F, YF, F, SP, SP, SP, SP};
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {yb4, yf4}, {yb4, yf5}, {yb4, f5}, {yb4, f6}, {yb4, yf6}, {yb4, f7},
      {yf4, sp4}, {yf5, sp5}, {f5, sp4},
      {f6, sp6},  {yf6, sp7}, {f7, sp7},
      {sp4, yb4}, {sp5, yb4}, {sp6, yb4}, {sp7, yb4}};
  ex.g = MakeGraph(labels, edges);
  ex.assignment = {0, 1, 1, 1, 2, 2, 2, 3, 3, 4, 4};
  return ex;
}

namespace {

// Finds a directed cycle of length <= max_len through some node of g,
// returned as a node sequence (without repeating the start at the end).
// Returns an empty vector if none was found after a bounded search.
std::vector<NodeId> FindShortCycle(const Graph& g, size_t max_len, Rng& rng) {
  uint32_t num_comp = 0;
  auto comp = StronglyConnectedComponents(g, &num_comp);
  std::vector<uint32_t> comp_size(num_comp, 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) ++comp_size[comp[v]];
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (comp_size[comp[v]] >= 2 || g.HasEdge(v, v)) candidates.push_back(v);
  }
  if (candidates.empty()) return {};

  for (int attempt = 0; attempt < 32; ++attempt) {
    NodeId s = candidates[rng.UniformInt(candidates.size())];
    if (g.HasEdge(s, s)) return {s};
    // BFS from s inside its SCC; stop when reaching a predecessor of s.
    std::unordered_map<NodeId, NodeId> parent;
    std::vector<NodeId> queue = {s};
    parent[s] = s;
    NodeId found = kInvalidNode;
    for (size_t head = 0; head < queue.size() && found == kInvalidNode;
         ++head) {
      NodeId v = queue[head];
      for (NodeId w : g.OutNeighbors(v)) {
        if (comp[w] != comp[s] || parent.count(w)) continue;
        parent[w] = v;
        if (g.HasEdge(w, s)) {
          found = w;
          break;
        }
        queue.push_back(w);
      }
    }
    if (found == kInvalidNode) continue;
    std::vector<NodeId> cycle;
    for (NodeId v = found; v != s; v = parent[v]) cycle.push_back(v);
    cycle.push_back(s);
    std::reverse(cycle.begin(), cycle.end());
    if (cycle.size() <= max_len) return cycle;
  }
  return {};
}

// Finds a simple directed path with exactly `depth` edges via random walks.
std::vector<NodeId> FindPath(const Graph& g, uint32_t depth, Rng& rng) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    NodeId v = static_cast<NodeId>(rng.UniformInt(g.NumNodes()));
    std::vector<NodeId> path = {v};
    std::unordered_set<NodeId> on_path = {v};
    while (path.size() <= depth) {
      auto nbrs = g.OutNeighbors(path.back());
      if (nbrs.empty()) break;
      NodeId next = nbrs[rng.UniformInt(nbrs.size())];
      if (on_path.count(next)) break;
      path.push_back(next);
      on_path.insert(next);
    }
    if (path.size() == depth + 1u) return path;
  }
  return {};
}

}  // namespace

StatusOr<Pattern> ExtractPattern(const Graph& g, const PatternSpec& spec,
                                 Rng& rng) {
  if (g.NumNodes() == 0) {
    return Status::InvalidArgument("cannot extract a pattern from an empty graph");
  }
  if (spec.num_nodes == 0) {
    return Status::InvalidArgument("pattern must have at least one node");
  }

  // 1. Seed node set with the required shape.
  std::vector<NodeId> sample;                       // data-graph node ids
  std::vector<std::pair<size_t, size_t>> required;  // edges as sample indices
  auto index_of = [&sample](NodeId v) -> size_t {
    for (size_t i = 0; i < sample.size(); ++i) {
      if (sample[i] == v) return i;
    }
    return static_cast<size_t>(-1);
  };

  switch (spec.kind) {
    case PatternKind::kCyclic: {
      auto cycle = FindShortCycle(g, spec.num_nodes, rng);
      if (cycle.empty()) {
        return Status::NotFound(
            "no directed cycle of the requested size in the data graph");
      }
      sample = cycle;
      for (size_t i = 0; i < cycle.size(); ++i) {
        required.emplace_back(i, (i + 1) % cycle.size());
      }
      break;
    }
    case PatternKind::kDag: {
      if (spec.num_nodes < spec.dag_depth + 1u) {
        return Status::InvalidArgument("num_nodes must exceed dag_depth");
      }
      auto path = FindPath(g, spec.dag_depth, rng);
      if (path.empty()) {
        return Status::NotFound("no simple path of the requested depth");
      }
      sample = path;
      for (size_t i = 0; i + 1 < path.size(); ++i) required.emplace_back(i, i + 1);
      break;
    }
    case PatternKind::kAny: {
      sample = {static_cast<NodeId>(rng.UniformInt(g.NumNodes()))};
      break;
    }
  }

  // 2. Grow the sample to num_nodes by attaching well-connected neighbors.
  std::unordered_set<NodeId> in_sample(sample.begin(), sample.end());
  while (sample.size() < spec.num_nodes) {
    // Candidate pool: neighbors (either direction) of sampled nodes.
    std::unordered_map<NodeId, uint32_t> connectivity;
    for (NodeId v : sample) {
      for (NodeId w : g.OutNeighbors(v)) {
        if (!in_sample.count(w)) ++connectivity[w];
      }
      for (NodeId w : g.InNeighbors(v)) {
        if (!in_sample.count(w)) ++connectivity[w];
      }
    }
    if (connectivity.empty()) break;
    // Pick the candidate with maximum connectivity (deterministic tie-break
    // on node id so extraction is reproducible).
    NodeId best = kInvalidNode;
    uint32_t best_score = 0;
    for (const auto& [w, score] : connectivity) {
      if (best == kInvalidNode || score > best_score ||
          (score == best_score && w < best)) {
        best = w;
        best_score = score;
      }
    }
    // Attachment edge: any induced edge incident to `best`; recorded as
    // required so the pattern stays weakly connected.
    size_t new_index = sample.size();
    bool attached = false;
    for (size_t i = 0; i < sample.size() && !attached; ++i) {
      if (g.HasEdge(sample[i], best)) {
        required.emplace_back(i, new_index);
        attached = true;
      } else if (g.HasEdge(best, sample[i])) {
        required.emplace_back(new_index, i);
        attached = true;
      }
    }
    DGS_CHECK(attached, "grown candidate must touch the sample");
    // For DAG patterns the attachment must not raise the max rank; stop
    // growing at the first unusable candidate (the pattern then simply has
    // fewer nodes than requested, which callers report).
    if (spec.kind == PatternKind::kDag) {
      uint32_t rank = 0;
      std::vector<std::pair<NodeId, NodeId>> tentative;
      tentative.reserve(required.size());
      for (auto [a, c] : required) {
        tentative.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(c));
      }
      if (!SubgraphMaxRank(new_index + 1, tentative, &rank) ||
          rank != spec.dag_depth) {
        required.pop_back();
        break;
      }
    }
    sample.push_back(best);
    in_sample.insert(best);
  }

  // 3. Collect induced optional edges and select up to num_edges.
  std::set<std::pair<size_t, size_t>> chosen(required.begin(), required.end());
  std::vector<std::pair<size_t, size_t>> optional;
  for (size_t i = 0; i < sample.size(); ++i) {
    for (NodeId w : g.OutNeighbors(sample[i])) {
      size_t j = in_sample.count(w) ? index_of(w) : static_cast<size_t>(-1);
      if (j == static_cast<size_t>(-1) || i == j) continue;
      if (!chosen.count({i, j})) optional.emplace_back(i, j);
    }
  }
  rng.Shuffle(optional);
  for (const auto& e : optional) {
    if (chosen.size() >= spec.num_edges) break;
    if (spec.kind == PatternKind::kDag) {
      std::vector<std::pair<NodeId, NodeId>> tentative;
      for (auto [a, c] : chosen) {
        tentative.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(c));
      }
      tentative.emplace_back(static_cast<NodeId>(e.first),
                             static_cast<NodeId>(e.second));
      uint32_t rank = 0;
      if (!SubgraphMaxRank(sample.size(), tentative, &rank) ||
          rank != spec.dag_depth) {
        continue;
      }
    }
    chosen.insert(e);
  }

  // 4. Materialize the pattern with labels copied from the data graph. The
  // identity embedding sample[i] witnesses a non-empty simulation match.
  GraphBuilder b;
  for (NodeId v : sample) b.AddNode(g.LabelOf(v));
  for (auto [a, c] : chosen) {
    b.AddEdge(static_cast<NodeId>(a), static_cast<NodeId>(c));
  }
  return Pattern(std::move(b).Build());
}

Pattern SynthesizePattern(const PatternSpec& spec, Label alphabet, Rng& rng) {
  DGS_CHECK(spec.num_nodes > 0, "pattern must have nodes");
  const size_t n = spec.num_nodes;
  std::vector<Label> labels = RandomLabels(n, alphabet, rng);
  std::set<std::pair<NodeId, NodeId>> edges;

  if (spec.kind == PatternKind::kDag) {
    DGS_CHECK(n >= spec.dag_depth + 1u, "num_nodes must exceed dag_depth");
    // Nodes 0..depth form a chain; every node gets a level in [0, depth] and
    // edges only increase the level, so the max rank is exactly dag_depth.
    std::vector<uint32_t> level(n);
    for (uint32_t i = 0; i <= spec.dag_depth; ++i) level[i] = i;
    for (size_t i = spec.dag_depth + 1; i < n; ++i) {
      level[i] = static_cast<uint32_t>(rng.UniformInt(spec.dag_depth + 1));
    }
    for (uint32_t i = 0; i < spec.dag_depth; ++i) {
      edges.insert({i, i + 1});
    }
    // Connect the extra nodes.
    for (size_t i = spec.dag_depth + 1; i < n; ++i) {
      for (int tries = 0; tries < 64; ++tries) {
        NodeId other = static_cast<NodeId>(rng.UniformInt(i));
        if (level[other] < level[i]) {
          edges.insert({other, static_cast<NodeId>(i)});
          break;
        }
        if (level[other] > level[i]) {
          edges.insert({static_cast<NodeId>(i), other});
          break;
        }
      }
    }
    // Extra level-respecting edges.
    for (int tries = 0; tries < 512 && edges.size() < spec.num_edges; ++tries) {
      NodeId a = static_cast<NodeId>(rng.UniformInt(n));
      NodeId b = static_cast<NodeId>(rng.UniformInt(n));
      if (level[a] < level[b]) edges.insert({a, b});
    }
  } else {
    if (spec.kind == PatternKind::kCyclic) {
      size_t cycle_len = std::min<size_t>(n, 2 + rng.UniformInt(2));
      if (n == 1) {
        edges.insert({0, 0});
      } else {
        for (size_t i = 0; i < cycle_len; ++i) {
          edges.insert({static_cast<NodeId>(i),
                        static_cast<NodeId>((i + 1) % cycle_len)});
        }
      }
    }
    // Spanning attachment for connectivity.
    size_t start = (spec.kind == PatternKind::kCyclic) ? 2 : 1;
    for (size_t i = start; i < n; ++i) {
      NodeId other = static_cast<NodeId>(rng.UniformInt(i));
      if (rng.Bernoulli(0.5)) {
        edges.insert({other, static_cast<NodeId>(i)});
      } else {
        edges.insert({static_cast<NodeId>(i), other});
      }
    }
    for (int tries = 0; tries < 512 && edges.size() < spec.num_edges; ++tries) {
      NodeId a = static_cast<NodeId>(rng.UniformInt(n));
      NodeId b = static_cast<NodeId>(rng.UniformInt(n));
      if (a != b) edges.insert({a, b});
    }
  }

  GraphBuilder b;
  for (Label l : labels) b.AddNode(l);
  for (auto [x, y] : edges) b.AddEdge(x, y);
  return Pattern(std::move(b).Build());
}

}  // namespace dgs
