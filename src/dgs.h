// Umbrella header for libdgs: distributed graph simulation, reproducing
// "Distributed Graph Simulation: Impossibility and Possibility"
// (Fan, Wang, Wu, Deng — PVLDB 7(12), 2014).
//
// Include this for the whole public API, or the individual module headers
// for finer-grained dependencies.

#ifndef DGS_DGS_H_
#define DGS_DGS_H_

#include "core/api.h"
#include "core/baselines.h"
#include "core/booleq.h"
#include "core/dgpm.h"
#include "core/dgpm_dag.h"
#include "core/dgpm_tree.h"
#include "core/engine.h"
#include "core/local_engine.h"
#include "core/metrics.h"
#include "core/serving.h"
#include "dyn/subscription.h"
#include "dyn/update.h"
#include "graph/algorithms.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/pattern.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "partition/fragmentation.h"
#include "partition/partitioner.h"
#include "partition/stats.h"
#include "runtime/cluster.h"
#include "runtime/fault.h"
#include "runtime/message.h"
#include "serve/admission.h"
#include "serve/query_cache.h"
#include "serve/server.h"
#include "simulation/incremental.h"
#include "simulation/isomorphism.h"
#include "simulation/oracle.h"
#include "simulation/relax.h"
#include "simulation/simulation.h"
#include "simulation/strong.h"
#include "util/bitset.h"
#include "util/flat_hash.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#endif  // DGS_DGS_H_
