// Centralized graph simulation (Section 2.1, [11, 18]).
//
// Computes the maximum simulation relation Q(G) in
// O((|Vq| + |V|)(|Eq| + |E|)) time using the counting refinement of
// Henzinger, Henzinger & Kopke (FOCS'95). This kernel is used (a) standalone
// as the centralized reference, (b) by the Match and disHHK baselines on
// assembled graphs, and (c) as ground truth in the test suite.

#ifndef DGS_SIMULATION_SIMULATION_H_
#define DGS_SIMULATION_SIMULATION_H_

#include <vector>

#include "graph/graph.h"
#include "graph/pattern.h"
#include "util/bitset.h"

namespace dgs {

class ThreadPool;

// Result of a simulation query. Holds the greatest fixpoint of the
// refinement operator; the relation Q(G) is that fixpoint when every query
// node has at least one match, and empty otherwise (Section 2.1).
class SimulationResult {
 public:
  SimulationResult() = default;
  SimulationResult(std::vector<DynamicBitset> fixpoint, size_t num_data_nodes);

  // True iff G matches Q (every query node has a match) — the answer to a
  // Boolean pattern query.
  bool GraphMatches() const { return graph_matches_; }

  // The greatest-fixpoint set for query node u (regardless of whether the
  // overall graph matches).
  const DynamicBitset& FixpointSet(NodeId u) const { return fixpoint_[u]; }

  // The match set of u in Q(G): the fixpoint set if G matches Q, empty
  // otherwise (a data-selecting query's answer).
  DynamicBitset MatchSet(NodeId u) const;

  // Sorted node ids of MatchSet(u).
  std::vector<NodeId> Matches(NodeId u) const;

  size_t NumQueryNodes() const { return fixpoint_.size(); }
  size_t NumDataNodes() const { return num_data_nodes_; }

  // Total number of (u, v) pairs in Q(G).
  size_t RelationSize() const;

  friend bool operator==(const SimulationResult& a, const SimulationResult& b);

 private:
  std::vector<DynamicBitset> fixpoint_;  // indexed by query node
  size_t num_data_nodes_ = 0;
  bool graph_matches_ = false;
};

// Optional per-phase wall-clock breakdown of one ComputeSimulation call
// (bench_scaling tracks the refinement-drain speedup across PRs).
struct SimulationPhases {
  double build_seconds = 0;  // support-counter construction
  double drain_seconds = 0;  // worklist seeding + refinement drain
};

struct SimulationOptions {
  // Stop as soon as some query node's candidate set becomes empty; the
  // fixpoint sets are then unspecified but GraphMatches() is exact. Used for
  // Boolean pattern queries.
  bool boolean_only = false;
  // Executor width (1 = sequential, 0 = all hardware threads). Covers both
  // the O(|E||Vq|)-dominant support-counter construction and the refinement
  // worklist drain (partitioned chaotic relaxation, see simulation/relax.h).
  // The result is bit-identical for every value.
  uint32_t num_threads = 1;
  // Borrowed executor. When set it is used instead of spawning a pool and
  // its width overrides num_threads — the cluster actors pass
  // SiteContext::pool() here so a coordinator-side solve can reuse the
  // runtime's idle lanes. Must outlive the call; may be null.
  ThreadPool* pool = nullptr;
  // When non-null, filled with the per-phase timing breakdown.
  SimulationPhases* phases = nullptr;
};

// Computes the maximum simulation of `q` in `g`.
SimulationResult ComputeSimulation(const Pattern& q, const Graph& g,
                                   const SimulationOptions& options = {});

}  // namespace dgs

#endif  // DGS_SIMULATION_SIMULATION_H_
