// Naive fixpoint simulation used as a test oracle.
//
// Direct transcription of the Section 2.1 definition: repeatedly delete
// pairs (u, v) that violate the child condition until nothing changes.
// O(|Vq||V| * (|Eq|+|E|)) per pass — only for small test inputs.

#ifndef DGS_SIMULATION_ORACLE_H_
#define DGS_SIMULATION_ORACLE_H_

#include "simulation/simulation.h"

namespace dgs {

// Computes the same result as ComputeSimulation, the slow obvious way.
SimulationResult NaiveSimulation(const Pattern& q, const Graph& g);

}  // namespace dgs

#endif  // DGS_SIMULATION_ORACLE_H_
