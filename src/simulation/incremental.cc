#include "simulation/incremental.h"

#include <algorithm>

#include "simulation/relax.h"

namespace dgs {

IncrementalSimulation::IncrementalSimulation(const Pattern& q, const Graph& g,
                                             uint32_t num_threads)
    : pattern_(&q),
      num_nodes_(g.NumNodes()),
      num_threads_(num_threads == 0 ? ThreadPool::HardwareThreads()
                                    : num_threads) {
  out_.resize(num_nodes_);
  in_.resize(num_nodes_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    auto out = g.OutNeighbors(v);
    out_[v].assign(out.begin(), out.end());
    auto in = g.InNeighbors(v);
    in_[v].assign(in.begin(), in.end());
  }

  const size_t nq = q.NumNodes();
  sim_.assign(nq, DynamicBitset(num_nodes_));
  for (NodeId u = 0; u < nq; ++u) {
    const bool needs_children = !q.IsSink(u);
    for (NodeId v = 0; v < num_nodes_; ++v) {
      if (g.LabelOf(v) != q.LabelOf(u)) continue;
      if (needs_children && out_[v].empty()) continue;
      sim_[u].Set(v);
    }
  }
  count_.assign(nq * num_nodes_, 0);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (NodeId w : out_[v]) {
      for (NodeId u = 0; u < nq; ++u) {
        if (sim_[u].Test(w)) ++count_[u * num_nodes_ + v];
      }
    }
  }
  for (NodeId u = 0; u < nq; ++u) {
    for (NodeId uc : q.Children(u)) {
      const uint32_t* support = count_.data() + uc * num_nodes_;
      std::vector<NodeId> doomed;
      sim_[u].ForEachSet([&](size_t v) {
        if (support[v] == 0) doomed.push_back(static_cast<NodeId>(v));
      });
      for (NodeId v : doomed) Enqueue(u, v);
    }
  }
  (void)Propagate();
}

void IncrementalSimulation::Enqueue(NodeId query_node, NodeId data_node) {
  if (sim_[query_node].Test(data_node)) {
    sim_[query_node].Reset(data_node);
    worklist_.emplace_back(query_node, data_node);
  }
}

size_t IncrementalSimulation::Propagate() {
  // A single DeleteEdge seeds at most a handful of pairs, so the cascade
  // size is unknowable up front. Drain sequentially within a budget; a
  // cascade still growing past it is "large" (the construction fixpoint
  // always is) and the remaining worklist escalates to the partitioned
  // chaotic-relaxation drain — the escalation point depends only on the
  // worklist contents, so the repaired relation, the counters, and the
  // return value stay bit-identical for every thread count.
  const bool may_parallelize =
      num_threads_ > 1 && num_nodes_ >= kParallelRefineMinNodes;
  const size_t budget = 4 * kParallelRefineSeedsPerLane * num_threads_;
  size_t head = 0;
  while (head < worklist_.size()) {
    if (may_parallelize && head >= budget && worklist_.size() > head) {
      if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);
      std::vector<std::pair<NodeId, NodeId>> rest(worklist_.begin() + head,
                                                  worklist_.end());
      const size_t tail = ParallelRefine(
          *pool_, *pattern_, num_nodes_, sim_, count_.data(), std::move(rest),
          [&](NodeId v) -> const std::vector<NodeId>& { return in_[v]; },
          nullptr, &scratch_);
      worklist_.clear();
      return head + tail;
    }
    auto [u, v] = worklist_[head++];
    for (NodeId p : in_[v]) {
      DGS_DCHECK(count_[u * num_nodes_ + p] > 0, "support underflow");
      if (--count_[u * num_nodes_ + p] == 0) {
        for (NodeId up : pattern_->Parents(u)) Enqueue(up, p);
      }
    }
  }
  // Every worklist entry corresponds to exactly one pair flipped false.
  size_t invalidated = worklist_.size();
  worklist_.clear();
  return invalidated;
}

size_t IncrementalSimulation::DeleteEdge(NodeId from, NodeId to) {
  DGS_CHECK(from < num_nodes_ && to < num_nodes_, "edge endpoint OOB");
  auto it = std::lower_bound(out_[from].begin(), out_[from].end(), to);
  if (it == out_[from].end() || *it != to) return 0;
  out_[from].erase(it);
  auto jt = std::lower_bound(in_[to].begin(), in_[to].end(), from);
  DGS_CHECK(jt != in_[to].end() && *jt == from, "in-adjacency out of sync");
  in_[to].erase(jt);

  const size_t nq = pattern_->NumNodes();
  for (NodeId u = 0; u < nq; ++u) {
    // `from` lost one u-supporter if `to` was one.
    if (sim_[u].Test(to)) {
      DGS_DCHECK(count_[u * num_nodes_ + from] > 0,
                 "support underflow on delete");
      if (--count_[u * num_nodes_ + from] == 0) {
        for (NodeId up : pattern_->Parents(u)) Enqueue(up, from);
      }
    }
    // A non-sink candidate with no out-edges at all can no longer match.
    if (!pattern_->IsSink(u) && out_[from].empty()) Enqueue(u, from);
  }
  return Propagate();
}

SimulationResult IncrementalSimulation::Result() const {
  return SimulationResult(sim_, num_nodes_);
}

}  // namespace dgs
