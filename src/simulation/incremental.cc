#include "simulation/incremental.h"

#include <algorithm>
#include <utility>

#include "simulation/relax.h"

namespace dgs {

IncrementalSimulation::IncrementalSimulation(const Pattern& q, const Graph& g,
                                             uint32_t num_threads)
    : pattern_(&q),
      num_nodes_(g.NumNodes()),
      num_threads_(num_threads == 0 ? ThreadPool::HardwareThreads()
                                    : num_threads),
      owned_adj_(std::make_unique<DynamicAdjacency>(g)),
      adj_(owned_adj_.get()) {
  Initialize();
}

IncrementalSimulation::IncrementalSimulation(const Pattern& q,
                                             const DynamicAdjacency* adj,
                                             uint32_t num_threads)
    : pattern_(&q),
      num_nodes_(adj->NumNodes()),
      num_threads_(num_threads == 0 ? ThreadPool::HardwareThreads()
                                    : num_threads),
      adj_(adj) {
  Initialize();
}

void IncrementalSimulation::Initialize() {
  const Pattern& q = *pattern_;
  const size_t nq = q.NumNodes();
  sim_.assign(nq, DynamicBitset(num_nodes_));
  reach_ = DynamicBitset(num_nodes_);
  for (NodeId u = 0; u < nq; ++u) {
    const bool needs_children = !q.IsSink(u);
    for (NodeId v = 0; v < num_nodes_; ++v) {
      if (adj_->LabelOf(v) != q.LabelOf(u)) continue;
      if (needs_children && adj_->Out(v).empty()) continue;
      sim_[u].Set(v);
    }
  }
  for (NodeId u = 0; u < nq; ++u) {
    for (NodeId uc : q.Children(u)) {
      feasible_pairs_.insert((static_cast<uint64_t>(q.LabelOf(u)) << 32) |
                             q.LabelOf(uc));
    }
  }
  count_.assign(nq * num_nodes_, 0);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    for (NodeId w : adj_->Out(v)) {
      for (NodeId u = 0; u < nq; ++u) {
        if (sim_[u].Test(w)) ++count_[u * num_nodes_ + v];
      }
    }
  }
  for (NodeId u = 0; u < nq; ++u) {
    for (NodeId uc : q.Children(u)) {
      const uint32_t* support = count_.data() + uc * num_nodes_;
      std::vector<NodeId> doomed;
      sim_[u].ForEachSet([&](size_t v) {
        if (support[v] == 0) doomed.push_back(static_cast<NodeId>(v));
      });
      for (NodeId v : doomed) Enqueue(u, v);
    }
  }
  (void)Propagate();
}

void IncrementalSimulation::Enqueue(NodeId query_node, NodeId data_node) {
  if (sim_[query_node].Test(data_node)) {
    sim_[query_node].Reset(data_node);
    worklist_.emplace_back(query_node, data_node);
  }
}

size_t IncrementalSimulation::Propagate() {
  // A single mutation seeds at most a handful of pairs, so the cascade
  // size is unknowable up front. Drain sequentially within a budget; a
  // cascade still growing past it is "large" (the construction fixpoint
  // always is) and the remaining worklist escalates to the partitioned
  // chaotic-relaxation drain — the escalation point depends only on the
  // worklist contents, so the repaired relation, the counters, and the
  // return value stay bit-identical for every thread count.
  const bool may_parallelize =
      num_threads_ > 1 && num_nodes_ >= kParallelRefineMinNodes;
  const size_t budget = 4 * kParallelRefineSeedsPerLane * num_threads_;
  size_t head = 0;
  while (head < worklist_.size()) {
    if (may_parallelize && head >= budget && worklist_.size() > head) {
      if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(num_threads_);
      std::vector<std::pair<NodeId, NodeId>> rest(worklist_.begin() + head,
                                                  worklist_.end());
      const size_t tail = ParallelRefine(
          *pool_, *pattern_, num_nodes_, sim_, count_.data(), std::move(rest),
          [&](NodeId v) -> const std::vector<NodeId>& { return adj_->In(v); },
          nullptr, &scratch_);
      worklist_.clear();
      return head + tail;
    }
    auto [u, v] = worklist_[head++];
    for (NodeId p : adj_->In(v)) {
      DGS_DCHECK(count_[u * num_nodes_ + p] > 0, "support underflow");
      if (--count_[u * num_nodes_ + p] == 0) {
        for (NodeId up : pattern_->Parents(u)) Enqueue(up, p);
      }
    }
  }
  // Every worklist entry corresponds to exactly one pair flipped false.
  size_t invalidated = worklist_.size();
  worklist_.clear();
  return invalidated;
}

size_t IncrementalSimulation::DeleteEdge(NodeId from, NodeId to) {
  DGS_CHECK(owned_adj_ != nullptr,
            "DeleteEdge requires the owning constructor; in borrow mode "
            "mutate the shared adjacency and call ApplyEdgeRemoved");
  if (!owned_adj_->RemoveEdge(from, to)) return 0;
  return ApplyEdgeRemoved(from, to);
}

size_t IncrementalSimulation::AddEdge(NodeId from, NodeId to) {
  DGS_CHECK(owned_adj_ != nullptr,
            "AddEdge requires the owning constructor; in borrow mode "
            "mutate the shared adjacency and call ApplyEdgeInserted");
  if (!owned_adj_->InsertEdge(from, to)) return 0;
  return ApplyEdgeInserted(from, to);
}

size_t IncrementalSimulation::ApplyEdgeRemoved(NodeId from, NodeId to) {
  DGS_CHECK(from < num_nodes_ && to < num_nodes_, "edge endpoint OOB");
  const size_t nq = pattern_->NumNodes();
  for (NodeId u = 0; u < nq; ++u) {
    // `from` lost one u-supporter if `to` was one.
    if (sim_[u].Test(to)) {
      DGS_DCHECK(count_[u * num_nodes_ + from] > 0,
                 "support underflow on delete");
      if (--count_[u * num_nodes_ + from] == 0) {
        for (NodeId up : pattern_->Parents(u)) Enqueue(up, from);
      }
    }
    // A non-sink candidate with no out-edges at all can no longer match.
    if (!pattern_->IsSink(u) && adj_->Out(from).empty()) Enqueue(u, from);
  }
  return Propagate();
}

size_t IncrementalSimulation::ApplyEdgeInserted(NodeId from, NodeId to) {
  DGS_CHECK(from < num_nodes_ && to < num_nodes_, "edge endpoint OOB");
  const Pattern& q = *pattern_;
  const size_t nq = q.NumNodes();

  // 1) Patch the support counters for the new edge itself, against the
  //    PRE-insert relation: `from` gained one u-supporter if `to` is one.
  for (NodeId u = 0; u < nq; ++u) {
    if (sim_[u].Test(to)) ++count_[u * num_nodes_ + from];
  }

  // 2) Affected area. A pair that is true after the insert but was false
  //    before must depend — through the child-support condition — on the
  //    inserted edge, so its data node has a forward path to `from`. Each
  //    hop of that dependency chain is a graph edge (p, v) standing in for
  //    some pattern edge (u, uc) with label(p) = label(u) and
  //    label(v) = label(uc), so only edges whose label pair is realized by
  //    a pattern edge can carry it. That prunes the backward closure from
  //    "everything upstream of `from`" to the pattern-feasible subgraph —
  //    and when the inserted edge's OWN label pair is not in the pattern,
  //    no pair can flip at all (the counters above still had to move).
  const auto feasible = [&](NodeId p, NodeId v) {
    return feasible_pairs_.count(
               (static_cast<uint64_t>(adj_->LabelOf(p)) << 32) |
               adj_->LabelOf(v)) != 0;
  };
  if (!feasible(from, to)) return 0;
  reach_.ResetAll();
  std::vector<NodeId> frontier;
  reach_.Set(from);
  frontier.push_back(from);
  while (!frontier.empty()) {
    const NodeId v = frontier.back();
    frontier.pop_back();
    for (NodeId p : adj_->In(v)) {
      if (!reach_.Test(p) && feasible(p, v)) {
        reach_.Set(p);
        frontier.push_back(p);
      }
    }
  }

  // 3) Optimistic re-admission: every label-eligible pair inside the
  //    affected area joins the relation, making it an over-approximation
  //    of the new fixpoint (outside the area the old fixpoint is already
  //    exact, and the old pairs survive unconditionally).
  std::vector<std::pair<NodeId, NodeId>> optimistic;
  reach_.ForEachSet([&](size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    const Label label = adj_->LabelOf(v);
    const bool has_out = !adj_->Out(v).empty();
    for (NodeId u = 0; u < nq; ++u) {
      if (q.LabelOf(u) != label || sim_[u].Test(v)) continue;
      if (!q.IsSink(u) && !has_out) continue;
      sim_[u].Set(v);
      optimistic.emplace_back(u, v);
    }
  });

  // 4) Re-admitted pairs raise the support of their in-neighbors.
  for (const auto& [u, v] : optimistic) {
    for (NodeId p : adj_->In(v)) ++count_[u * num_nodes_ + p];
  }

  // 5) Seed the drain with the re-admitted pairs that violate the child
  //    condition right away; the ordinary deletion cascade removes the
  //    rest of the over-approximation. Pre-insert pairs never flip (their
  //    support only grew), so the drain returns exactly the number of
  //    optimistic pairs that did NOT survive.
  for (const auto& [u, v] : optimistic) {
    bool violated = false;
    for (NodeId uc : q.Children(u)) {
      if (count_[uc * num_nodes_ + v] == 0) {
        violated = true;
        break;
      }
    }
    if (violated) Enqueue(u, v);
  }
  const size_t retracted = Propagate();
  DGS_DCHECK(retracted <= optimistic.size(),
             "insert drain removed a pre-insert pair");
  return optimistic.size() - retracted;
}

SimulationResult IncrementalSimulation::Result() const {
  return SimulationResult(sim_, num_nodes_);
}

}  // namespace dgs
