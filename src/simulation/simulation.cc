#include "simulation/simulation.h"

#include <algorithm>
#include <memory>

#include "graph/algorithms.h"
#include "simulation/relax.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dgs {

SimulationResult::SimulationResult(std::vector<DynamicBitset> fixpoint,
                                   size_t num_data_nodes)
    : fixpoint_(std::move(fixpoint)), num_data_nodes_(num_data_nodes) {
  graph_matches_ = !fixpoint_.empty();
  for (const auto& set : fixpoint_) {
    if (set.None()) {
      graph_matches_ = false;
      break;
    }
  }
}

DynamicBitset SimulationResult::MatchSet(NodeId u) const {
  DGS_CHECK(u < fixpoint_.size(), "query node out of range");
  if (!graph_matches_) return DynamicBitset(num_data_nodes_);
  return fixpoint_[u];
}

std::vector<NodeId> SimulationResult::Matches(NodeId u) const {
  return MatchSet(u).ToVector();
}

size_t SimulationResult::RelationSize() const {
  if (!graph_matches_) return 0;
  size_t total = 0;
  for (const auto& set : fixpoint_) total += set.Count();
  return total;
}

bool operator==(const SimulationResult& a, const SimulationResult& b) {
  if (a.graph_matches_ != b.graph_matches_) return false;
  if (a.num_data_nodes_ != b.num_data_nodes_) return false;
  if (a.fixpoint_.size() != b.fixpoint_.size()) return false;
  if (!a.graph_matches_) return true;  // both empty relations
  return a.fixpoint_ == b.fixpoint_;
}

SimulationResult ComputeSimulation(const Pattern& q, const Graph& g,
                                   const SimulationOptions& options) {
  const size_t nq = q.NumNodes();
  const size_t n = g.NumNodes();
  WallTimer phase_timer;
  auto mark_build = [&] {
    if (options.phases) {
      options.phases->build_seconds = phase_timer.ElapsedSeconds();
      phase_timer.Restart();
    }
  };
  auto mark_drain = [&] {
    if (options.phases) {
      options.phases->drain_seconds = phase_timer.ElapsedSeconds();
    }
  };

  // Label indexes over both node sets: data-node buckets seed the candidate
  // sets in O(|bucket|) instead of O(|V|) per query node, and query-node
  // buckets restrict the per-edge counting loop below to the (few) query
  // nodes whose label matches the edge target.
  LabelIndex data_by_label(n, [&](NodeId v) { return g.LabelOf(v); });
  LabelIndex query_by_label(nq, [&](NodeId u) { return q.LabelOf(u); });

  // sim[u] = current candidate set of u (starts at the label filter and only
  // shrinks — the greatest-fixpoint computation).
  std::vector<DynamicBitset> sim(nq, DynamicBitset(n));
  for (NodeId u = 0; u < nq; ++u) {
    const bool needs_children = !q.IsSink(u);
    for (NodeId v : data_by_label.Of(q.LabelOf(u))) {
      if (needs_children && g.OutDegree(v) == 0) continue;
      sim[u].Set(v);
    }
    if (options.boolean_only && sim[u].None()) {
      return SimulationResult(std::move(sim), n);
    }
  }

  // Per data node, the span of query nodes sharing its label — resolved
  // once here (n hash lookups) so the per-edge counting loop below touches
  // no hash table at all.
  std::vector<std::span<const NodeId>> query_span(n);
  for (NodeId v = 0; v < n; ++v) {
    query_span[v] = query_by_label.Of(g.LabelOf(v));
  }

  // count[u * n + v] = |{w in out(v) : w in sim[u]}| (HHK support counters).
  // Removing the last supporting successor of v for u invalidates v for
  // every parent of u. Rows are independent per data node, so the
  // construction parallelizes over contiguous v-blocks with no sharing;
  // integer counts make the result identical for every thread count.
  std::vector<uint32_t> count(nq * n, 0);
  auto build_counts = [&](size_t begin, size_t end) {
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      for (NodeId w : g.OutNeighbors(v)) {
        for (NodeId u : query_span[w]) {
          if (sim[u].Test(w)) ++count[u * n + v];
        }
      }
    }
  };
  uint32_t threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                              : options.num_threads;
  ThreadPool* pool = options.pool;
  // A borrowed pool that is already mid-round would run every dispatch
  // inline (nested-call rule); the sequential path is strictly better.
  if (pool != nullptr && pool->InJobContext()) {
    pool = nullptr;
    threads = 1;
  }
  if (pool != nullptr) threads = pool->num_threads();
  std::unique_ptr<ThreadPool> owned_pool;
  if (threads > 1 && n >= kParallelRefineMinNodes && pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(threads);
    pool = owned_pool.get();
  }
  const bool parallel = threads > 1 && n >= kParallelRefineMinNodes;
  if (parallel) {
    pool->ParallelForBlocks(n, 4096, build_counts);
  } else {
    build_counts(0, n);
  }
  mark_build();

  // Seed the removal worklist: v in sim[u] requires count[u'][v] > 0 for
  // every child u' of u.
  std::vector<std::pair<NodeId, NodeId>> worklist;  // (u, v) to remove
  for (NodeId u = 0; u < nq; ++u) {
    for (NodeId uc : q.Children(u)) {
      const uint32_t* support = count.data() + static_cast<size_t>(uc) * n;
      std::vector<NodeId> doomed;
      sim[u].ForEachSet([&](size_t v) {
        if (support[v] == 0) doomed.push_back(static_cast<NodeId>(v));
      });
      for (NodeId v : doomed) {
        if (sim[u].Test(v)) {
          sim[u].Reset(v);
          worklist.emplace_back(u, v);
        }
      }
    }
  }

  if (parallel &&
      pool->WorthParallelizing(worklist.size(), kParallelRefineSeedsPerLane)) {
    // Partitioned chaotic relaxation (simulation/relax.h): same fixpoint,
    // same final counters, any shard count. Boolean-only mode may abandon
    // the drain at a round barrier once some candidate set emptied.
    std::function<bool()> stop;
    if (options.boolean_only) {
      stop = [&] {
        for (const auto& set : sim) {
          if (set.None()) return true;
        }
        return false;
      };
    }
    ParallelRefine(
        *pool, q, n, sim, count.data(), std::move(worklist),
        [&](NodeId v) { return g.InNeighbors(v); }, stop);
    mark_drain();
    return SimulationResult(std::move(sim), n);
  }

  // Sequential refinement loop: each removal costs O(in-degree of v) plus
  // the parent fan-out of u, for O((|Vq|+|V|)(|Eq|+|E|)) total.
  size_t head = 0;
  while (head < worklist.size()) {
    auto [u, v] = worklist[head++];
    if (options.boolean_only && sim[u].None()) {
      return SimulationResult(std::move(sim), n);
    }
    // v left sim[u]: predecessors of v lose one unit of support for u.
    uint32_t* support = count.data() + static_cast<size_t>(u) * n;
    for (NodeId p : g.InNeighbors(v)) {
      if (--support[p] == 0) {
        // p no longer has any successor matching u; every parent of u in Q
        // must drop p.
        for (NodeId up : q.Parents(u)) {
          if (sim[up].Test(p)) {
            sim[up].Reset(p);
            worklist.emplace_back(up, p);
          }
        }
      }
    }
  }
  mark_drain();

  return SimulationResult(std::move(sim), n);
}

}  // namespace dgs
