#include "simulation/simulation.h"

#include <algorithm>

namespace dgs {

SimulationResult::SimulationResult(std::vector<DynamicBitset> fixpoint,
                                   size_t num_data_nodes)
    : fixpoint_(std::move(fixpoint)), num_data_nodes_(num_data_nodes) {
  graph_matches_ = !fixpoint_.empty();
  for (const auto& set : fixpoint_) {
    if (set.None()) {
      graph_matches_ = false;
      break;
    }
  }
}

DynamicBitset SimulationResult::MatchSet(NodeId u) const {
  DGS_CHECK(u < fixpoint_.size(), "query node out of range");
  if (!graph_matches_) return DynamicBitset(num_data_nodes_);
  return fixpoint_[u];
}

std::vector<NodeId> SimulationResult::Matches(NodeId u) const {
  return MatchSet(u).ToVector();
}

size_t SimulationResult::RelationSize() const {
  if (!graph_matches_) return 0;
  size_t total = 0;
  for (const auto& set : fixpoint_) total += set.Count();
  return total;
}

bool operator==(const SimulationResult& a, const SimulationResult& b) {
  if (a.graph_matches_ != b.graph_matches_) return false;
  if (a.num_data_nodes_ != b.num_data_nodes_) return false;
  if (a.fixpoint_.size() != b.fixpoint_.size()) return false;
  if (!a.graph_matches_) return true;  // both empty relations
  return a.fixpoint_ == b.fixpoint_;
}

SimulationResult ComputeSimulation(const Pattern& q, const Graph& g,
                                   const SimulationOptions& options) {
  const size_t nq = q.NumNodes();
  const size_t n = g.NumNodes();

  // sim[u] = current candidate set of u (starts at the label filter and only
  // shrinks — the greatest-fixpoint computation).
  std::vector<DynamicBitset> sim(nq, DynamicBitset(n));
  for (NodeId u = 0; u < nq; ++u) {
    const Label lu = q.LabelOf(u);
    const bool needs_children = !q.IsSink(u);
    for (NodeId v = 0; v < n; ++v) {
      if (g.LabelOf(v) != lu) continue;
      if (needs_children && g.OutDegree(v) == 0) continue;
      sim[u].Set(v);
    }
    if (options.boolean_only && sim[u].None()) {
      return SimulationResult(std::move(sim), n);
    }
  }

  // count[u][v] = |{w in out(v) : w in sim[u]}|. Removing the last
  // supporting successor of v for u invalidates v for every parent of u.
  std::vector<std::vector<uint32_t>> count(nq, std::vector<uint32_t>(n, 0));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      for (NodeId u = 0; u < nq; ++u) {
        if (sim[u].Test(w)) ++count[u][v];
      }
    }
  }

  // Seed the removal worklist: v in sim[u] requires count[u'][v] > 0 for
  // every child u' of u.
  std::vector<std::pair<NodeId, NodeId>> worklist;  // (u, v) to remove
  for (NodeId u = 0; u < nq; ++u) {
    for (NodeId uc : q.Children(u)) {
      std::vector<NodeId> doomed;
      sim[u].ForEachSet([&](size_t v) {
        if (count[uc][v] == 0) doomed.push_back(static_cast<NodeId>(v));
      });
      for (NodeId v : doomed) {
        if (sim[u].Test(v)) {
          sim[u].Reset(v);
          worklist.emplace_back(u, v);
        }
      }
    }
  }

  // Refinement loop.
  size_t head = 0;
  while (head < worklist.size()) {
    auto [u, v] = worklist[head++];
    if (options.boolean_only && sim[u].None()) {
      return SimulationResult(std::move(sim), n);
    }
    // v left sim[u]: predecessors of v lose one unit of support for u.
    for (NodeId p : g.InNeighbors(v)) {
      if (--count[u][p] == 0) {
        // p no longer has any successor matching u; every parent of u in Q
        // must drop p.
        for (NodeId up : q.Parents(u)) {
          if (sim[up].Test(p)) {
            sim[up].Reset(p);
            worklist.emplace_back(up, p);
          }
        }
      }
    }
  }

  return SimulationResult(std::move(sim), n);
}

}  // namespace dgs
