// Subgraph isomorphism (Ullmann [33]), the matching semantics the paper
// contrasts with graph simulation in Sections 1 and 2.1.
//
// Unlike simulation (quadratic, no data locality), isomorphic matching is
// NP-complete but local: whether v participates in an embedding of Q is
// decided by the nodes within |Q| hops of v (Example 3). This reference
// implementation is a label-pruned backtracking matcher intended for the
// paper's small patterns; it is exponential in |Vq| by nature.

#ifndef DGS_SIMULATION_ISOMORPHISM_H_
#define DGS_SIMULATION_ISOMORPHISM_H_

#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/pattern.h"

namespace dgs {

// Finds one label-preserving injective embedding m of q into g with
// (u, u') in Eq  =>  (m(u), m(u')) in E. Returns the mapping indexed by
// query node, or nullopt if none exists.
std::optional<std::vector<NodeId>> FindSubgraphIsomorphism(const Pattern& q,
                                                           const Graph& g);

// True iff some embedding maps query node `u` to data node `v` (used for
// the Example 3 locality discussion). Exponential; small inputs only.
bool IsomorphicMatchAt(const Pattern& q, const Graph& g, NodeId u, NodeId v);

}  // namespace dgs

#endif  // DGS_SIMULATION_ISOMORPHISM_H_
