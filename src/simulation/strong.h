// Dual and strong simulation (Ma et al. [24], discussed in Sections 1, 2.1
// and 7 of the paper).
//
// Graph simulation only constrains successors, which is why it has no data
// locality (Example 3). Two stricter notions from the literature:
//
//   - DUAL simulation additionally constrains predecessors: (u, v) requires
//     a match of every query parent among v's parents.
//   - STRONG simulation evaluates dual simulation inside the ball
//     B(w, d_Q) around each candidate center w (d_Q = the pattern's
//     diameter over its undirected skeleton); it has data locality, at the
//     price of missing matches that plain simulation finds — e.g. yb2 in
//     the paper's Fig. 1 example.
//
// These are centralized reference implementations used to reproduce the
// paper's comparisons (locality of strong simulation; simulation finding
// more potential matches) and flagged as future work in Section 7.

#ifndef DGS_SIMULATION_STRONG_H_
#define DGS_SIMULATION_STRONG_H_

#include "simulation/simulation.h"

namespace dgs {

// Maximum dual simulation of q in g: like ComputeSimulation, with the
// symmetric parent condition added. The result relation is a subset of the
// plain simulation relation.
SimulationResult ComputeDualSimulation(const Pattern& q, const Graph& g);

// Strong simulation: the union over all candidate centers w of the maximum
// dual simulation of q inside the ball of undirected radius d_Q around w
// (kept only when w itself appears in the ball's match). Returns the union
// relation in the same SimulationResult shape; a subset of dual simulation.
SimulationResult ComputeStrongSimulation(const Pattern& q, const Graph& g);

// Undirected ball of radius `radius` around `center`: the sorted node set
// within that many hops ignoring edge direction. Exposed for tests and for
// the locality demonstrations.
std::vector<NodeId> UndirectedBall(const Graph& g, NodeId center,
                                   uint32_t radius);

}  // namespace dgs

#endif  // DGS_SIMULATION_STRONG_H_
