// Partitioned chaotic relaxation — the shared engine behind every parallel
// fixpoint-tail drain in the codebase.
//
// The greatest-fixpoint refinements here are monotone worklist drains:
// ComputeSimulation / IncrementalSimulation remove (query node, data node)
// pairs and decrement HHK support counters; EquationSystem flips Boolean
// variables and decrements group support. The fixpoint is unique, so the
// drain order is irrelevant — exactly the property chaotic relaxation
// exploits. The work is partitioned into contiguous shards that each own
// their items' mutable state; each shard drains its worklist on its own
// lane, and cross-shard consequences travel through per-(source, dest)
// inboxes that are swapped at a round barrier. Support counters are the
// only memory shared mid-round; they are decremented through
// std::atomic_ref, whose read-modify-write makes the zero crossing fire
// exactly once — the same exactly-once semantics the sequential drain gets
// from program order. Results are therefore bit-identical to the
// sequential drain for every shard count and every schedule.
//
// ChaoticRelaxRounds is the synchronization skeleton (rounds, double
// buffers, termination scan) shared by both instantiations; ParallelRefine
// is the HHK-counter instantiation used by the simulation kernels, and
// EquationSystem::PropagateParallel (core/booleq.cc) is the Boolean-solver
// one.

#ifndef DGS_SIMULATION_RELAX_H_
#define DGS_SIMULATION_RELAX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "graph/pattern.h"
#include "util/bitset.h"
#include "util/thread_pool.h"

namespace dgs {

// Below this many data nodes the sharded drain's round barriers cost more
// than the drain itself; callers fall back to the sequential loop.
inline constexpr size_t kParallelRefineMinNodes = 4096;
// Seed floor per lane for ThreadPool::WorthParallelizing — a drain seeded
// with fewer pairs per lane rarely cascades enough to amortize a round.
inline constexpr size_t kParallelRefineSeedsPerLane = 8;

// Reusable per-shard buffers of one sharded drain. A caller that drains
// repeatedly over the same state (IncrementalSimulation, one call per
// deletion cascade) keeps one instance alive so steady-state drains
// allocate nothing; one-shot callers let the drain use a throwaway.
template <typename Item>
struct ShardScratch {
  std::vector<std::vector<Item>> worklists;  // per shard
  // Cross-shard consequences, double-buffered per (source, dest) slot:
  // each shard appends only to its own `next` row and reads only its own
  // `cur` column, so no slot is ever touched by two lanes in the same
  // round. The round barrier publishes next -> cur.
  std::vector<std::vector<Item>> cur, next;

  // Sizes for `num_shards`, keeping the capacity of previous drains.
  void Reset(uint32_t num_shards) {
    const size_t slots = static_cast<size_t>(num_shards) * num_shards;
    if (worklists.size() < num_shards) worklists.resize(num_shards);
    if (cur.size() < slots) cur.resize(slots);
    if (next.size() < slots) next.resize(slots);
    for (auto& wl : worklists) wl.clear();
    for (auto& inbox : cur) inbox.clear();
    for (auto& inbox : next) inbox.clear();
  }
};

// Drains the seeded per-shard worklists in `s` to quiescence.
//
//   try_acquire(item)        claims an item for processing: tests the
//                            item's "still live" bit and clears it (the
//                            caller's state, owned by the item's shard).
//                            Exactly the dedup the sequential drain gets
//                            from testing before enqueueing. Seeds must be
//                            pre-claimed (their bit already cleared).
//   relax(shard, item, emit) performs the monotone step, calling
//                            emit(dest_shard, item) for every consequence;
//                            same-shard consequences are acquired and
//                            drained immediately, cross-shard ones ride
//                            the inboxes into the next round.
//   stop()                   optional; checked at each round barrier, a
//                            true return abandons the drain early.
//
// Thread-safety contract: try_acquire/relax run concurrently on distinct
// shards; anything they share across shards must be atomic (the support
// counters) or read-only.
template <typename Item, typename TryAcquireFn, typename RelaxFn>
void ChaoticRelaxRounds(ThreadPool& pool, uint32_t num_shards,
                        ShardScratch<Item>& s,
                        const TryAcquireFn& try_acquire, const RelaxFn& relax,
                        const std::function<bool()>& stop = nullptr) {
  auto drain_shard = [&](size_t sh) {
    auto& worklist = s.worklists[sh];
    auto emit = [&](uint32_t dest, const Item& item) {
      if (dest == sh) {
        if (try_acquire(item)) worklist.push_back(item);
      } else {
        s.next[sh * num_shards + dest].push_back(item);
      }
    };
    for (uint32_t t = 0; t < num_shards; ++t) {
      auto& inbox = s.cur[static_cast<size_t>(t) * num_shards + sh];
      for (const Item& item : inbox) {
        if (try_acquire(item)) worklist.push_back(item);
      }
      inbox.clear();
    }
    while (!worklist.empty()) {
      Item item = worklist.back();
      worklist.pop_back();
      relax(sh, item, emit);
    }
  };

  while (true) {
    pool.ParallelFor(num_shards, drain_shard);
    std::swap(s.cur, s.next);
    bool pending = false;
    for (uint32_t t = 0; t < num_shards && !pending; ++t) {
      for (uint32_t d = 0; d < num_shards && !pending; ++d) {
        pending = !s.cur[static_cast<size_t>(t) * num_shards + d].empty();
      }
    }
    if (!pending) break;
    if (stop && stop()) break;
  }
}

// HHK-counter instantiation: drains `seed` to the greatest fixpoint with
// one data-node-range shard per pool lane.
//
//   sim[u]        candidate bitset of query node u over n data nodes; the
//                 bit of every seed pair must already be cleared (the same
//                 contract the sequential worklists use).
//   count         flat nq x n support counters, count[u * n + v]; mutated
//                 in place, final values identical to a sequential drain.
//   in_neighbors  in_neighbors(v) -> range of NodeId predecessors of v.
//   stop/scratch  see ChaoticRelaxRounds / ShardScratch.
//
// Returns the number of (query node, data node) pairs processed, seeds
// included. Nothing else may touch sim or count while the drain runs.
using RefineScratch = ShardScratch<std::pair<NodeId, NodeId>>;

template <typename InNeighborsFn>
size_t ParallelRefine(ThreadPool& pool, const Pattern& q, size_t n,
                      std::vector<DynamicBitset>& sim, uint32_t* count,
                      std::vector<std::pair<NodeId, NodeId>> seed,
                      const InNeighborsFn& in_neighbors,
                      const std::function<bool()>& stop = nullptr,
                      RefineScratch* scratch = nullptr) {
  // Word-aligned contiguous shards: every 64-bit sim word (and every data
  // node) has exactly one owning shard, so only the owner writes it.
  const size_t lanes = pool.num_threads();
  size_t block = (n + lanes - 1) / lanes;
  block = (block + 63) & ~size_t{63};
  const uint32_t num_shards = static_cast<uint32_t>((n + block - 1) / block);

  RefineScratch own;
  RefineScratch& s = scratch != nullptr ? *scratch : own;
  s.Reset(num_shards);
  for (auto [u, v] : seed) {
    s.worklists[v / block].emplace_back(u, v);
  }

  std::vector<size_t> processed(num_shards, 0);
  auto try_acquire = [&](const std::pair<NodeId, NodeId>& e) {
    // Only the owner lane of e.second reaches here, and a bit flips once.
    if (!sim[e.first].Test(e.second)) return false;
    sim[e.first].Reset(e.second);
    return true;
  };
  auto relax = [&](size_t sh, const std::pair<NodeId, NodeId>& e,
                   const auto& emit) {
    ++processed[sh];
    const auto [u, v] = e;
    for (NodeId p : in_neighbors(v)) {
      std::atomic_ref<uint32_t> support(count[static_cast<size_t>(u) * n + p]);
      if (support.fetch_sub(1, std::memory_order_relaxed) == 1) {
        const uint32_t owner = static_cast<uint32_t>(p / block);
        for (NodeId up : q.Parents(u)) {
          emit(owner, {up, p});
        }
      }
    }
  };
  ChaoticRelaxRounds(pool, num_shards, s, try_acquire, relax, stop);

  size_t total = 0;
  for (size_t c : processed) total += c;
  return total;
}

}  // namespace dgs

#endif  // DGS_SIMULATION_RELAX_H_
