#include "simulation/isomorphism.h"

#include <algorithm>

#include "simulation/simulation.h"
#include "util/bitset.h"

namespace dgs {
namespace {

// Backtracking state shared across the recursion.
struct Search {
  const Pattern* q;
  const Graph* g;
  // Candidate sets pre-pruned by the simulation fixpoint (a sound filter:
  // every embedding is contained in the maximum simulation).
  std::vector<std::vector<NodeId>> candidates;
  std::vector<NodeId> assignment;  // per query node; kInvalidNode = unset
  std::vector<bool> used;          // per data node (injectivity)

  bool Feasible(NodeId u, NodeId v) const {
    if (used[v]) return false;
    // Check edges against already-assigned neighbors, both directions.
    for (NodeId uc : q->Children(u)) {
      if (assignment[uc] != kInvalidNode && !g->HasEdge(v, assignment[uc])) {
        return false;
      }
    }
    for (NodeId up : q->Parents(u)) {
      if (assignment[up] != kInvalidNode && !g->HasEdge(assignment[up], v)) {
        return false;
      }
    }
    return true;
  }

  bool Extend(size_t depth, const std::vector<NodeId>& order) {
    if (depth == order.size()) return true;
    NodeId u = order[depth];
    for (NodeId v : candidates[u]) {
      if (!Feasible(u, v)) continue;
      assignment[u] = v;
      used[v] = true;
      if (Extend(depth + 1, order)) return true;
      used[v] = false;
      assignment[u] = kInvalidNode;
    }
    return false;
  }
};

// Query nodes ordered by ascending candidate count (fail-first).
std::vector<NodeId> SearchOrder(const std::vector<std::vector<NodeId>>& cand) {
  std::vector<NodeId> order(cand.size());
  for (NodeId u = 0; u < cand.size(); ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return cand[a].size() < cand[b].size();
  });
  return order;
}

std::optional<std::vector<NodeId>> Solve(
    const Pattern& q, const Graph& g,
    std::vector<std::vector<NodeId>> candidates) {
  for (const auto& c : candidates) {
    if (c.empty()) return std::nullopt;
  }
  Search search{&q, &g, std::move(candidates),
                std::vector<NodeId>(q.NumNodes(), kInvalidNode),
                std::vector<bool>(g.NumNodes(), false)};
  auto order = SearchOrder(search.candidates);
  if (!search.Extend(0, order)) return std::nullopt;
  return search.assignment;
}

std::vector<std::vector<NodeId>> SimulationCandidates(const Pattern& q,
                                                      const Graph& g) {
  auto sim = ComputeSimulation(q, g);
  std::vector<std::vector<NodeId>> candidates(q.NumNodes());
  if (!sim.GraphMatches()) return candidates;  // all empty -> no embedding
  for (NodeId u = 0; u < q.NumNodes(); ++u) candidates[u] = sim.Matches(u);
  return candidates;
}

}  // namespace

std::optional<std::vector<NodeId>> FindSubgraphIsomorphism(const Pattern& q,
                                                           const Graph& g) {
  return Solve(q, g, SimulationCandidates(q, g));
}

bool IsomorphicMatchAt(const Pattern& q, const Graph& g, NodeId u, NodeId v) {
  auto candidates = SimulationCandidates(q, g);
  if (u >= candidates.size()) return false;
  auto& cu = candidates[u];
  if (std::find(cu.begin(), cu.end(), v) == cu.end()) return false;
  candidates[u] = {v};
  return Solve(q, g, std::move(candidates)).has_value();
}

}  // namespace dgs
