#include "simulation/strong.h"

#include <algorithm>
#include <unordered_map>

#include "graph/algorithms.h"

namespace dgs {
namespace {

// Undirected diameter of the pattern (max finite BFS distance ignoring
// direction) — the ball radius d_Q of strong simulation.
uint32_t UndirectedDiameter(const Pattern& q) {
  const size_t n = q.NumNodes();
  uint32_t best = 0;
  for (NodeId s = 0; s < n; ++s) {
    std::vector<uint32_t> dist(n, kUnreachable);
    std::vector<NodeId> queue = {s};
    dist[s] = 0;
    for (size_t head = 0; head < queue.size(); ++head) {
      NodeId v = queue[head];
      auto visit = [&](NodeId w) {
        if (dist[w] == kUnreachable) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      };
      for (NodeId w : q.Children(v)) visit(w);
      for (NodeId w : q.Parents(v)) visit(w);
    }
    for (uint32_t d : dist) {
      if (d != kUnreachable) best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace

SimulationResult ComputeDualSimulation(const Pattern& q, const Graph& g) {
  const size_t nq = q.NumNodes();
  const size_t n = g.NumNodes();

  std::vector<DynamicBitset> sim(nq, DynamicBitset(n));
  for (NodeId u = 0; u < nq; ++u) {
    const bool needs_children = !q.IsSink(u);
    const bool needs_parents = !q.Parents(u).empty();
    for (NodeId v = 0; v < n; ++v) {
      if (g.LabelOf(v) != q.LabelOf(u)) continue;
      if (needs_children && g.OutDegree(v) == 0) continue;
      if (needs_parents && g.InDegree(v) == 0) continue;
      sim[u].Set(v);
    }
  }

  // Support counters in both directions.
  std::vector<std::vector<uint32_t>> count_out(nq,
                                               std::vector<uint32_t>(n, 0));
  std::vector<std::vector<uint32_t>> count_in(nq, std::vector<uint32_t>(n, 0));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      for (NodeId u = 0; u < nq; ++u) {
        if (sim[u].Test(w)) ++count_out[u][v];
        if (sim[u].Test(v)) ++count_in[u][w];
      }
    }
  }

  std::vector<std::pair<NodeId, NodeId>> worklist;
  auto remove = [&](NodeId u, NodeId v) {
    if (sim[u].Test(v)) {
      sim[u].Reset(v);
      worklist.emplace_back(u, v);
    }
  };
  for (NodeId u = 0; u < nq; ++u) {
    std::vector<NodeId> doomed;
    sim[u].ForEachSet([&](size_t vi) {
      NodeId v = static_cast<NodeId>(vi);
      for (NodeId uc : q.Children(u)) {
        if (count_out[uc][v] == 0) {
          doomed.push_back(v);
          return;
        }
      }
      for (NodeId up : q.Parents(u)) {
        if (count_in[up][v] == 0) {
          doomed.push_back(v);
          return;
        }
      }
    });
    for (NodeId v : doomed) remove(u, v);
  }

  size_t head = 0;
  while (head < worklist.size()) {
    auto [u, v] = worklist[head++];
    // Predecessors of v lose forward support for u.
    for (NodeId p : g.InNeighbors(v)) {
      if (--count_out[u][p] == 0) {
        for (NodeId up : q.Parents(u)) remove(up, p);
      }
    }
    // Successors of v lose backward support for u.
    for (NodeId s : g.OutNeighbors(v)) {
      if (--count_in[u][s] == 0) {
        for (NodeId uc : q.Children(u)) remove(uc, s);
      }
    }
  }

  return SimulationResult(std::move(sim), n);
}

std::vector<NodeId> UndirectedBall(const Graph& g, NodeId center,
                                   uint32_t radius) {
  std::unordered_map<NodeId, uint32_t> dist;
  std::vector<NodeId> queue = {center};
  dist[center] = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId v = queue[head];
    if (dist[v] == radius) continue;
    auto visit = [&](NodeId w) {
      if (!dist.count(w)) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    };
    for (NodeId w : g.OutNeighbors(v)) visit(w);
    for (NodeId w : g.InNeighbors(v)) visit(w);
  }
  std::sort(queue.begin(), queue.end());
  return queue;
}

SimulationResult ComputeStrongSimulation(const Pattern& q, const Graph& g) {
  const size_t nq = q.NumNodes();
  const size_t n = g.NumNodes();
  const uint32_t radius = UndirectedDiameter(q);

  std::vector<DynamicBitset> result(nq, DynamicBitset(n));
  for (NodeId center = 0; center < n; ++center) {
    // Candidate centers must carry a query label.
    bool candidate = false;
    for (NodeId u = 0; u < nq && !candidate; ++u) {
      candidate = q.LabelOf(u) == g.LabelOf(center);
    }
    if (!candidate) continue;

    std::vector<NodeId> ball = UndirectedBall(g, center, radius);
    // Induced subgraph over the ball.
    GraphBuilder builder;
    std::unordered_map<NodeId, NodeId> to_local;
    for (NodeId v : ball) to_local.emplace(v, builder.AddNode(g.LabelOf(v)));
    for (NodeId v : ball) {
      for (NodeId w : g.OutNeighbors(v)) {
        auto it = to_local.find(w);
        if (it != to_local.end()) builder.AddEdge(to_local[v], it->second);
      }
    }
    Graph ball_graph = std::move(builder).Build();

    SimulationResult dual = ComputeDualSimulation(q, ball_graph);
    if (!dual.GraphMatches()) continue;
    // The ball contributes only if its center is matched by some query node.
    NodeId center_local = to_local.at(center);
    bool center_matched = false;
    for (NodeId u = 0; u < nq && !center_matched; ++u) {
      center_matched = dual.FixpointSet(u).Test(center_local);
    }
    if (!center_matched) continue;
    for (NodeId u = 0; u < nq; ++u) {
      dual.FixpointSet(u).ForEachSet(
          [&](size_t lv) { result[u].Set(ball[lv]); });
    }
  }
  return SimulationResult(std::move(result), n);
}

}  // namespace dgs
