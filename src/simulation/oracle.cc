#include "simulation/oracle.h"

namespace dgs {

SimulationResult NaiveSimulation(const Pattern& q, const Graph& g) {
  const size_t nq = q.NumNodes();
  const size_t n = g.NumNodes();
  std::vector<DynamicBitset> sim(nq, DynamicBitset(n));
  for (NodeId u = 0; u < nq; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (q.LabelOf(u) == g.LabelOf(v)) sim[u].Set(v);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < nq; ++u) {
      std::vector<NodeId> doomed;
      sim[u].ForEachSet([&](size_t vi) {
        NodeId v = static_cast<NodeId>(vi);
        for (NodeId uc : q.Children(u)) {
          bool supported = false;
          for (NodeId w : g.OutNeighbors(v)) {
            if (sim[uc].Test(w)) {
              supported = true;
              break;
            }
          }
          if (!supported) {
            doomed.push_back(v);
            return;
          }
        }
      });
      for (NodeId v : doomed) sim[u].Reset(v);
      if (!doomed.empty()) changed = true;
    }
  }
  return SimulationResult(std::move(sim), n);
}

}  // namespace dgs
