// Incremental maintenance of a simulation result under edge mutations.
//
// Section 4.2's incremental lEval follows Fan et al.'s incremental graph
// pattern matching [13]. Build once in O((|Vq|+|V|)(|Eq|+|E|)), then:
//
//   Deletions  — the maximum simulation only shrinks; the affected area AFF
//                is repaired by draining HHK support counters to zero, in
//                O(|AFF|) amortized per deletion.
//   Insertions — the relation only grows; AddEdge runs a bounded optimistic
//                re-run seeded from the affected area: every pair that could
//                have become true lies on a path to the inserted edge, so
//                the candidates are re-admitted optimistically, their
//                support counters patched, and the ordinary deletion drain
//                (including the relax.h sharded parallel drain for large
//                cascades) removes the over-approximation. Pairs that were
//                true before the insert can never flip — counters only grew
//                — so the drain converges to the exact new fixpoint.
//
// Ownership: by default the instance copies the graph's adjacency into a
// private DynamicAdjacency. When many instances watch ONE mutating graph
// (the server's subscription registry), that copy is dead weight — the
// borrow constructor shares a caller-owned DynamicAdjacency instead. In
// borrow mode the caller mutates the shared adjacency exactly once per
// edge and then notifies every instance through ApplyEdgeRemoved /
// ApplyEdgeInserted (the adjacency must already reflect the mutation).

#ifndef DGS_SIMULATION_INCREMENTAL_H_
#define DGS_SIMULATION_INCREMENTAL_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/pattern.h"
#include "simulation/relax.h"
#include "simulation/simulation.h"
#include "util/bitset.h"
#include "util/thread_pool.h"

namespace dgs {

// Maintains Q(G) while edges of G are deleted and inserted.
class IncrementalSimulation {
 public:
  // Copies the graph's adjacency into a private mutable form and computes
  // the initial fixpoint. `num_threads` > 1 drains large cascades with the
  // partitioned chaotic-relaxation pass (simulation/relax.h); the
  // maintained relation, the support counters, and every mutation return
  // value are bit-identical for every width (0 = all hardware threads).
  IncrementalSimulation(const Pattern& q, const Graph& g,
                        uint32_t num_threads = 1);

  // Borrow path: shares `adj` (caller-owned, must outlive this instance)
  // instead of copying the graph. Mutations then happen externally; call
  // ApplyEdgeRemoved/ApplyEdgeInserted after each one.
  IncrementalSimulation(const Pattern& q, const DynamicAdjacency* adj,
                        uint32_t num_threads = 1);

  // Deletes the edge (from, to) and repairs the match relation. Returns the
  // number of (query node, data node) pairs that became false. Deleting an
  // edge that is absent (or already deleted) is a no-op returning 0.
  // Owning mode only.
  size_t DeleteEdge(NodeId from, NodeId to);

  // Inserts the edge (from, to) and repairs the match relation. Returns the
  // number of pairs that became true. Inserting a present edge is a no-op
  // returning 0. Owning mode only.
  size_t AddEdge(NodeId from, NodeId to);

  // Borrow-mode repair hooks: the shared adjacency must ALREADY contain the
  // mutation (edge removed / inserted). Same return values as above.
  size_t ApplyEdgeRemoved(NodeId from, NodeId to);
  size_t ApplyEdgeInserted(NodeId from, NodeId to);

  // Current result; equal to ComputeSimulation(q, g') for the current
  // graph g' (checked exhaustively in tests).
  SimulationResult Result() const;

  // Pairs currently in the fixpoint (candidates).
  bool IsCandidate(NodeId query_node, NodeId data_node) const {
    return sim_[query_node].Test(data_node);
  }

  // The maintained candidate set of one query node — shared with delta
  // consumers (the subscription registry diffs snapshots of these to build
  // per-update result deltas).
  const DynamicBitset& CandidateSet(NodeId query_node) const {
    return sim_[query_node];
  }

  const Pattern& pattern() const { return *pattern_; }

 private:
  void Initialize();
  void Enqueue(NodeId query_node, NodeId data_node);
  // Drains the worklist; returns the number of pairs flipped false.
  size_t Propagate();

  const Pattern* pattern_;
  size_t num_nodes_;
  uint32_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;  // created on the first parallel drain
  RefineScratch scratch_;  // per-shard buffers reused across cascades
  // Mutable adjacency: privately owned (owned_adj_ set) or borrowed from
  // the caller (owned_adj_ null). adj_ always points at the active one.
  std::unique_ptr<DynamicAdjacency> owned_adj_;
  const DynamicAdjacency* adj_;
  // sim_[u] = current candidate set; count_[u * num_nodes_ + v] = surviving
  // successors of v in sim_[u] (the HHK support counters, kept alive
  // between mutations — flat so the parallel drain can share them with
  // ComputeSimulation's relaxation pass).
  std::vector<DynamicBitset> sim_;
  std::vector<uint32_t> count_;
  std::vector<std::pair<NodeId, NodeId>> worklist_;
  // Scratch for AddEdge's backward reachability sweep.
  DynamicBitset reach_;
  // Label pairs realized by some pattern edge, keyed (label(u)<<32)|label(uc).
  // An insertion can only create pairs through support chains whose every
  // graph edge carries one of these label pairs, so the backward sweep (and
  // the whole repair) prunes on them — see ApplyEdgeInserted.
  std::unordered_set<uint64_t> feasible_pairs_;
};

}  // namespace dgs

#endif  // DGS_SIMULATION_INCREMENTAL_H_
