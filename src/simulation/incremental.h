// Incremental maintenance of a simulation result under edge deletions.
//
// Section 4.2's incremental lEval follows Fan et al.'s incremental graph
// pattern matching [13]: when the graph shrinks, the maximum simulation
// only shrinks, and the affected area AFF can be repaired without
// recomputation. This module provides that machinery centrally: build once
// in O((|Vq|+|V|)(|Eq|+|E|)), then maintain the match relation across edge
// deletions in O(|AFF|) amortized per deletion.
//
// Edge insertions can enlarge the relation and are out of scope here (they
// require re-running the optimistic phase, as in the paper's dGPM setup).

#ifndef DGS_SIMULATION_INCREMENTAL_H_
#define DGS_SIMULATION_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/pattern.h"
#include "simulation/relax.h"
#include "simulation/simulation.h"
#include "util/bitset.h"
#include "util/thread_pool.h"

namespace dgs {

// Maintains Q(G) while edges of G are deleted.
class IncrementalSimulation {
 public:
  // Copies the graph's adjacency into a mutable form and computes the
  // initial fixpoint. `num_threads` > 1 drains large removal cascades with
  // the partitioned chaotic-relaxation pass (simulation/relax.h); the
  // maintained relation, the support counters, and every DeleteEdge return
  // value are bit-identical for every width (0 = all hardware threads).
  IncrementalSimulation(const Pattern& q, const Graph& g,
                        uint32_t num_threads = 1);

  // Deletes the edge (from, to) and repairs the match relation. Returns the
  // number of (query node, data node) pairs that became false. Deleting an
  // edge that is absent (or already deleted) is a no-op returning 0.
  size_t DeleteEdge(NodeId from, NodeId to);

  // Current result; equal to ComputeSimulation(q, g') for the current
  // graph g' (checked exhaustively in tests).
  SimulationResult Result() const;

  // Pairs currently in the fixpoint (candidates).
  bool IsCandidate(NodeId query_node, NodeId data_node) const {
    return sim_[query_node].Test(data_node);
  }

 private:
  void Enqueue(NodeId query_node, NodeId data_node);
  // Drains the worklist; returns the number of pairs flipped false.
  size_t Propagate();

  const Pattern* pattern_;
  size_t num_nodes_;
  uint32_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;  // created on the first parallel drain
  RefineScratch scratch_;  // per-shard buffers reused across cascades
  // Mutable adjacency (sorted vectors; deletion via binary search + erase).
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  // sim_[u] = current candidate set; count_[u * num_nodes_ + v] = surviving
  // successors of v in sim_[u] (the HHK support counters, kept alive
  // between deletions — flat so the parallel drain can share them with
  // ComputeSimulation's relaxation pass).
  std::vector<DynamicBitset> sim_;
  std::vector<uint32_t> count_;
  std::vector<std::pair<NodeId, NodeId>> worklist_;
};

}  // namespace dgs

#endif  // DGS_SIMULATION_INCREMENTAL_H_
