#include "runtime/cluster.h"

#include <algorithm>
#include <string>

#include "util/timer.h"

namespace dgs {

uint32_t SiteContext::num_workers() const { return cluster_->NumWorkers(); }
uint32_t SiteContext::coordinator_id() const {
  return cluster_->CoordinatorId();
}
WireFormat SiteContext::wire_format() const {
  return cluster_->options_.wire_format;
}

ThreadPool* SiteContext::pool() const { return cluster_->pool_.get(); }

void SiteContext::Send(uint32_t dst, MessageClass cls, Blob payload) {
  DGS_CHECK(dst <= cluster_->NumWorkers(), "destination site out of range");
  Message m;
  m.src = site_id_;
  m.dst = dst;
  m.cls = cls;
  m.payload = std::move(payload);
  outbox_->push_back(std::move(m));
}

Cluster::Cluster(uint32_t num_workers, ClusterOptions options)
    : num_workers_(num_workers), options_(options) {
  if (options_.num_threads == 0) {
    options_.num_threads = ThreadPool::HardwareThreads();
  }
  // A round never has more callbacks than sites, so wider pools are pure
  // spawn overhead — and this also defuses absurd requests (e.g. a
  // negative knob cast to ~4e9) before ThreadPool tries to honor them.
  options_.num_threads = std::min(options_.num_threads, num_workers_ + 1);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.faults.enabled()) {
    injector_ =
        std::make_unique<FaultInjector>(options_.faults, num_workers_ + 1);
  }
  actors_.resize(num_workers_ + 1, nullptr);
  owned_.resize(num_workers_ + 1);
}

void Cluster::SetWorker(uint32_t i, std::unique_ptr<SiteActor> actor) {
  DGS_CHECK(i < num_workers_, "worker id out of range");
  owned_[i] = std::move(actor);
  actors_[i] = owned_[i].get();
}

void Cluster::SetCoordinator(std::unique_ptr<SiteActor> actor) {
  owned_[num_workers_] = std::move(actor);
  actors_[num_workers_] = owned_[num_workers_].get();
}

void Cluster::BindWorker(uint32_t i, SiteActor* actor) {
  DGS_CHECK(i < num_workers_, "worker id out of range");
  owned_[i].reset();
  actors_[i] = actor;
}

void Cluster::BindCoordinator(SiteActor* actor) {
  owned_[num_workers_].reset();
  actors_[num_workers_] = actor;
}

SiteActor* Cluster::worker(uint32_t i) {
  DGS_CHECK(i < num_workers_, "worker id out of range");
  return actors_[i];
}

SiteActor* Cluster::coordinator() { return actors_[num_workers_]; }

void Cluster::Reset() {
  pending_.clear();
  stats_ = RunStats{};
}

void Cluster::ChargeAndEnqueue(std::vector<Message>& outbox) {
  for (Message& m : outbox) {
    switch (m.cls) {
      case MessageClass::kData:
        stats_.data_bytes += m.WireSize();
        ++stats_.data_messages;
        break;
      case MessageClass::kControl:
        stats_.control_bytes += m.WireSize();
        ++stats_.control_messages;
        break;
      case MessageClass::kResult:
        stats_.result_bytes += m.WireSize();
        ++stats_.result_messages;
        break;
    }
    pending_.push_back(std::move(m));
  }
  outbox.clear();
}

template <typename Fn>
double Cluster::RunRound(const std::vector<uint32_t>& site_ids, Fn&& fn) {
  const size_t n = site_ids.size();
  // Pooled buffers: grown to the high-water mark once, then reused by
  // every round of every run. The outboxes come back empty (cleared by
  // ChargeAndEnqueue) with their capacity intact, so steady-state rounds
  // allocate nothing here.
  if (outbox_pool_.size() < n) outbox_pool_.resize(n);
  if (duration_pool_.size() < n) duration_pool_.resize(n);
  std::vector<std::vector<Message>>& outboxes = outbox_pool_;
  std::vector<double>& durations = duration_pool_;

  auto run_one = [&](size_t i) {
    SiteContext ctx(this, site_ids[i], &outboxes[i]);
    WallTimer timer;
    fn(i, site_ids[i], ctx);
    durations[i] = timer.ElapsedSeconds();
  };

  if (pool_ != nullptr && n > 1) {
    pool_->ParallelFor(n, run_one);
  } else {
    for (size_t i = 0; i < n; ++i) run_one(i);
  }

  // Deterministic merge: site-id order (site_ids is ascending), preserving
  // each site's send order, with stats charged on this (single) thread.
  double round_max = 0;
  for (size_t i = 0; i < n; ++i) {
    stats_.total_compute_seconds += durations[i];
    round_max = std::max(round_max, durations[i]);
    ChargeAndEnqueue(outboxes[i]);
  }
  return round_max;
}

RunStats Cluster::Run(uint32_t max_rounds) {
  for (size_t i = 0; i < actors_.size(); ++i) {
    DGS_CHECK(actors_[i] != nullptr, "all sites must have an actor");
  }
  stats_ = RunStats{};
  fault_stats_ = FaultStats{};
  pending_.clear();
  if (injector_ != nullptr) injector_->BeginRun();

  std::vector<uint32_t> all_sites(actors_.size());
  for (uint32_t i = 0; i < all_sites.size(); ++i) all_sites[i] = i;

  // Round 0: parallel Setup; charged at the slowest site.
  stats_.response_seconds += RunRound(
      all_sites, [&](size_t, uint32_t site, SiteContext& ctx) {
        actors_[site]->Setup(ctx);
      });

  bool quiesce_ran = false;
  while (true) {
    if (pending_.empty()) {
      if (quiesce_ran) break;  // quiescent and OnQuiesce stayed silent
      stats_.response_seconds += RunRound(
          all_sites, [&](size_t, uint32_t site, SiteContext& ctx) {
            actors_[site]->OnQuiesce(ctx);
          });
      quiesce_ran = true;
      continue;
    }
    quiesce_ran = false;

    // Round watchdog: convert a stalled run (chaos plans without recovery
    // can leave actors re-sending forever) into a classified failure. The
    // break is deliberate — continuing to "drain" could regenerate
    // messages indefinitely from actors that are not poison-aware.
    if (options_.watchdog_rounds > 0 &&
        stats_.rounds >= options_.watchdog_rounds) {
      ++fault_stats_.watchdog_trips;
      if (health_ != nullptr) {
        health_->PoisonWith(StatusCode::kDeadlineExceeded,
                            "run exceeded the watchdog bound of " +
                                std::to_string(options_.watchdog_rounds) +
                                " delivery rounds");
      }
      pending_.clear();
      break;
    }

    DGS_CHECK(stats_.rounds < max_rounds, "cluster round budget exhausted");
    ++stats_.rounds;

    // Group this round's messages by destination (deterministic order).
    std::vector<Message> batch = std::move(pending_);
    pending_.clear();
    if (injector_ != nullptr) {
      injector_->DeliverRound(stats_.rounds, batch, health_, &fault_stats_);
    }
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Message& a, const Message& b) {
                       if (a.dst != b.dst) return a.dst < b.dst;
                       return a.src < b.src;
                     });

    // Slice the batch into per-destination inboxes (ascending dst).
    std::vector<uint32_t> active;
    std::vector<std::vector<Message>> inboxes;
    uint64_t max_ingress = 0;
    size_t i = 0;
    while (i < batch.size()) {
      size_t j = i;
      uint64_t ingress = 0;
      while (j < batch.size() && batch[j].dst == batch[i].dst) {
        ingress += batch[j].WireSize();
        ++j;
      }
      max_ingress = std::max(max_ingress, ingress);
      active.push_back(batch[i].dst);
      inboxes.emplace_back(std::make_move_iterator(batch.begin() + i),
                           std::make_move_iterator(batch.begin() + j));
      i = j;
    }

    double round_max = RunRound(
        active, [&](size_t k, uint32_t site, SiteContext& ctx) {
          actors_[site]->OnMessages(ctx, std::move(inboxes[k]));
        });
    stats_.response_seconds += round_max +
                               options_.network.latency_per_round_seconds +
                               options_.network.seconds_per_byte *
                                   static_cast<double>(max_ingress);
  }

  // Simulated retransmission backoff is response time, not compute: the
  // sender sat out the backoff on the critical path.
  stats_.response_seconds += fault_stats_.backoff_seconds;
  return stats_;
}

}  // namespace dgs
