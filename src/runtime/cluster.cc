#include "runtime/cluster.h"

#include <algorithm>

#include "util/timer.h"

namespace dgs {

uint32_t SiteContext::num_workers() const { return cluster_->NumWorkers(); }
uint32_t SiteContext::coordinator_id() const {
  return cluster_->CoordinatorId();
}

void SiteContext::Send(uint32_t dst, MessageClass cls, Blob payload) {
  cluster_->SendFrom(site_id_, dst, cls, std::move(payload));
}

Cluster::Cluster(uint32_t num_workers, NetworkModel model)
    : num_workers_(num_workers), model_(model) {
  actors_.resize(num_workers_ + 1);
}

void Cluster::SetWorker(uint32_t i, std::unique_ptr<SiteActor> actor) {
  DGS_CHECK(i < num_workers_, "worker id out of range");
  actors_[i] = std::move(actor);
}

void Cluster::SetCoordinator(std::unique_ptr<SiteActor> actor) {
  actors_[num_workers_] = std::move(actor);
}

SiteActor* Cluster::worker(uint32_t i) {
  DGS_CHECK(i < num_workers_, "worker id out of range");
  return actors_[i].get();
}

SiteActor* Cluster::coordinator() { return actors_[num_workers_].get(); }

void Cluster::SendFrom(uint32_t src, uint32_t dst, MessageClass cls,
                       Blob payload) {
  DGS_CHECK(dst < actors_.size(), "destination site out of range");
  Message m;
  m.src = src;
  m.dst = dst;
  m.cls = cls;
  m.payload = std::move(payload);
  switch (cls) {
    case MessageClass::kData:
      stats_.data_bytes += m.WireSize();
      ++stats_.data_messages;
      break;
    case MessageClass::kControl:
      stats_.control_bytes += m.WireSize();
      ++stats_.control_messages;
      break;
    case MessageClass::kResult:
      stats_.result_bytes += m.WireSize();
      ++stats_.result_messages;
      break;
  }
  pending_.push_back(std::move(m));
}

RunStats Cluster::Run(uint32_t max_rounds) {
  for (size_t i = 0; i < actors_.size(); ++i) {
    DGS_CHECK(actors_[i] != nullptr, "all sites must have an actor");
  }
  stats_ = RunStats{};

  // Round 0: parallel Setup; charged at the slowest site.
  {
    double round_max = 0;
    for (uint32_t i = 0; i < actors_.size(); ++i) {
      SiteContext ctx(this, i);
      WallTimer timer;
      actors_[i]->Setup(ctx);
      double t = timer.ElapsedSeconds();
      stats_.total_compute_seconds += t;
      round_max = std::max(round_max, t);
    }
    stats_.response_seconds += round_max;
  }

  bool quiesce_ran = false;
  while (true) {
    if (pending_.empty()) {
      if (quiesce_ran) break;  // quiescent and OnQuiesce stayed silent
      double round_max = 0;
      for (uint32_t i = 0; i < actors_.size(); ++i) {
        SiteContext ctx(this, i);
        WallTimer timer;
        actors_[i]->OnQuiesce(ctx);
        double t = timer.ElapsedSeconds();
        stats_.total_compute_seconds += t;
        round_max = std::max(round_max, t);
      }
      stats_.response_seconds += round_max;
      quiesce_ran = true;
      continue;
    }
    quiesce_ran = false;

    DGS_CHECK(stats_.rounds < max_rounds, "cluster round budget exhausted");
    ++stats_.rounds;

    // Group this round's messages by destination (deterministic order).
    std::vector<Message> batch = std::move(pending_);
    pending_.clear();
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Message& a, const Message& b) {
                       if (a.dst != b.dst) return a.dst < b.dst;
                       return a.src < b.src;
                     });

    double round_max = 0;
    uint64_t max_ingress = 0;
    size_t i = 0;
    while (i < batch.size()) {
      size_t j = i;
      uint64_t ingress = 0;
      while (j < batch.size() && batch[j].dst == batch[i].dst) {
        ingress += batch[j].WireSize();
        ++j;
      }
      max_ingress = std::max(max_ingress, ingress);
      uint32_t dst = batch[i].dst;
      std::vector<Message> inbox(std::make_move_iterator(batch.begin() + i),
                                 std::make_move_iterator(batch.begin() + j));
      SiteContext ctx(this, dst);
      WallTimer timer;
      actors_[dst]->OnMessages(ctx, std::move(inbox));
      double t = timer.ElapsedSeconds();
      stats_.total_compute_seconds += t;
      round_max = std::max(round_max, t);
      i = j;
    }
    stats_.response_seconds += round_max +
                               model_.latency_per_round_seconds +
                               model_.seconds_per_byte *
                                   static_cast<double>(max_ingress);
  }

  return stats_;
}

}  // namespace dgs
