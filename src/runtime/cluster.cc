#include "runtime/cluster.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"
#include "util/timer.h"

namespace dgs {

Cluster::Cluster(uint32_t num_workers, ClusterOptions options)
    : num_workers_(num_workers), options_(options) {
  if (options_.num_threads == 0) {
    options_.num_threads = ThreadPool::HardwareThreads();
  }
  // A round never has more callbacks than sites, so wider pools are pure
  // spawn overhead — and this also defuses absurd requests (e.g. a
  // negative knob cast to ~4e9) before ThreadPool tries to honor them.
  options_.num_threads = std::min(options_.num_threads, num_workers_ + 1);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.faults.enabled()) {
    injector_ =
        std::make_unique<FaultInjector>(options_.faults, num_workers_ + 1);
  }
  TransportEnv env;
  env.num_workers = num_workers_;
  env.wire_format = options_.wire_format;
  env.pool = pool_.get();
  env.num_threads = options_.num_threads;
  transport_ = MakeTransport(options_.transport, env);
  actors_.resize(num_workers_ + 1, nullptr);
  owned_.resize(num_workers_ + 1);
}

void Cluster::SetWorker(uint32_t i, std::unique_ptr<SiteActor> actor) {
  DGS_CHECK(i < num_workers_, "worker id out of range");
  owned_[i] = std::move(actor);
  actors_[i] = owned_[i].get();
}

void Cluster::SetCoordinator(std::unique_ptr<SiteActor> actor) {
  owned_[num_workers_] = std::move(actor);
  actors_[num_workers_] = owned_[num_workers_].get();
}

void Cluster::BindWorker(uint32_t i, SiteActor* actor) {
  DGS_CHECK(i < num_workers_, "worker id out of range");
  owned_[i].reset();
  actors_[i] = actor;
}

void Cluster::BindCoordinator(SiteActor* actor) {
  owned_[num_workers_].reset();
  actors_[num_workers_] = actor;
}

SiteActor* Cluster::worker(uint32_t i) {
  DGS_CHECK(i < num_workers_, "worker id out of range");
  return actors_[i];
}

SiteActor* Cluster::coordinator() { return actors_[num_workers_]; }

void Cluster::Reset() {
  pending_.clear();
  stats_ = RunStats{};
}

void Cluster::ChargeAndEnqueue(std::vector<Message>& sends) {
  // Coalesced batch framing: the first message of a (src, dst) flush this
  // round pays the full header, every further one only the per-entry
  // sub-header. Occurrence counting is order-insensitive, so the charge
  // equals what the receive-side contiguous (dst, src) runs would pay —
  // the two views of one batch agree byte-for-byte.
  std::unordered_set<uint64_t> seen;
  const bool coalesce = options_.transport.coalesce;
  for (Message& m : sends) {
    uint64_t wire = m.WireSize();
    if (coalesce) {
      const uint64_t key = (static_cast<uint64_t>(m.src) << 32) | m.dst;
      if (!seen.insert(key).second) {
        wire = m.payload.size() + kCoalescedEntryBytes;
      }
    }
    switch (m.cls) {
      case MessageClass::kData:
        stats_.data_bytes += wire;
        ++stats_.data_messages;
        break;
      case MessageClass::kControl:
        stats_.control_bytes += wire;
        ++stats_.control_messages;
        break;
      case MessageClass::kResult:
        stats_.result_bytes += wire;
        ++stats_.result_messages;
        break;
      case MessageClass::kUpdate:
        stats_.update_bytes += wire;
        ++stats_.update_messages;
        break;
    }
    pending_.push_back(std::move(m));
  }
  sends.clear();
}

double Cluster::ExecRound(RoundKind kind, uint32_t round,
                          const std::vector<uint32_t>& sites,
                          std::vector<std::vector<Message>> inboxes) {
  obs::TraceSpan round_span("cluster", "cluster.round");
  round_span.Arg("round", static_cast<uint64_t>(round));
  round_span.Arg("kind", kind == RoundKind::kSetup     ? "setup"
                         : kind == RoundKind::kQuiesce ? "quiesce"
                                                       : "deliver");
  round_span.Arg("sites", static_cast<uint64_t>(sites.size()));
  merged_.clear();
  const double round_max =
      transport_->ExecuteRound(kind, round, sites, std::move(inboxes),
                               &merged_, &stats_.total_compute_seconds);
  {
    obs::TraceSpan merge_span("cluster", "cluster.merge");
    merge_span.Arg("messages", static_cast<uint64_t>(merged_.size()));
    ChargeAndEnqueue(merged_);
  }
  return round_max;
}

RunStats Cluster::Run(uint32_t max_rounds) {
  for (size_t i = 0; i < actors_.size(); ++i) {
    DGS_CHECK(actors_[i] != nullptr, "all sites must have an actor");
  }
  obs::TraceSpan run_span("cluster", "cluster.run");
  run_span.Arg("sites", static_cast<uint64_t>(actors_.size()));
  stats_ = RunStats{};
  fault_stats_ = FaultStats{};
  pending_.clear();
  if (injector_ != nullptr) injector_->BeginRun();

  RunSession session;
  session.actors = &actors_;
  session.health = health_;
  session.shared = shared_;
  session.binding = binding_;
  session.deploy_version = deploy_version_;
  transport_->BeginRun(session);

  std::vector<uint32_t> all_sites(actors_.size());
  for (uint32_t i = 0; i < all_sites.size(); ++i) all_sites[i] = i;

  // Round 0: parallel Setup; charged at the slowest site.
  stats_.response_seconds += ExecRound(RoundKind::kSetup, 0, all_sites, {});

  bool quiesce_ran = false;
  while (true) {
    if (pending_.empty()) {
      if (quiesce_ran) break;  // quiescent and OnQuiesce stayed silent
      stats_.response_seconds +=
          ExecRound(RoundKind::kQuiesce, 0, all_sites, {});
      quiesce_ran = true;
      continue;
    }
    quiesce_ran = false;

    // Round watchdog: convert a stalled run (chaos plans without recovery
    // can leave actors re-sending forever) into a classified failure. The
    // break is deliberate — continuing to "drain" could regenerate
    // messages indefinitely from actors that are not poison-aware.
    if (options_.watchdog_rounds > 0 &&
        stats_.rounds >= options_.watchdog_rounds) {
      ++fault_stats_.watchdog_trips;
      if (health_ != nullptr) {
        health_->PoisonWith(StatusCode::kDeadlineExceeded,
                            "run exceeded the watchdog bound of " +
                                std::to_string(options_.watchdog_rounds) +
                                " delivery rounds");
      }
      pending_.clear();
      break;
    }

    DGS_CHECK(stats_.rounds < max_rounds, "cluster round budget exhausted");
    ++stats_.rounds;

    // Group this round's messages by destination (deterministic order).
    std::vector<Message> batch = std::move(pending_);
    pending_.clear();
    if (injector_ != nullptr) {
      injector_->DeliverRound(stats_.rounds, batch, health_, &fault_stats_);
    }
    std::stable_sort(batch.begin(), batch.end(),
                     [](const Message& a, const Message& b) {
                       if (a.dst != b.dst) return a.dst < b.dst;
                       return a.src < b.src;
                     });

    // Slice the batch into per-destination inboxes (ascending dst). The
    // ingress charge mirrors ChargeAndEnqueue's framing: per-message
    // headers, or per-(src,dst)-run batch headers when coalescing (the
    // sorted batch makes each (dst, src) flush contiguous here).
    const bool coalesce = options_.transport.coalesce;
    std::vector<uint32_t> active;
    std::vector<std::vector<Message>> inboxes;
    uint64_t max_ingress = 0;
    size_t i = 0;
    while (i < batch.size()) {
      size_t j = i;
      uint64_t ingress = 0;
      while (j < batch.size() && batch[j].dst == batch[i].dst) {
        if (coalesce && j > i && batch[j].src == batch[j - 1].src) {
          ingress += batch[j].payload.size() + kCoalescedEntryBytes;
        } else {
          ingress += batch[j].WireSize();
        }
        ++j;
      }
      max_ingress = std::max(max_ingress, ingress);
      active.push_back(batch[i].dst);
      inboxes.emplace_back(std::make_move_iterator(batch.begin() + i),
                           std::make_move_iterator(batch.begin() + j));
      i = j;
    }

    const double round_max =
        ExecRound(RoundKind::kDeliver, stats_.rounds, active,
                  std::move(inboxes));
    stats_.response_seconds += round_max +
                               options_.network.latency_per_round_seconds +
                               options_.network.seconds_per_byte *
                                   static_cast<double>(max_ingress);
  }

  transport_->EndRun();

  // Simulated retransmission backoff is response time, not compute: the
  // sender sat out the backoff on the critical path.
  stats_.response_seconds += fault_stats_.backoff_seconds;
  return stats_;
}

}  // namespace dgs
