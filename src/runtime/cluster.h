// Deterministic in-process cluster simulator.
//
// The paper deploys one fragment per Amazon EC2 machine; we substitute a
// deterministic message-passing runtime (see DESIGN.md §4). Sites are
// actors driven in synchronized delivery rounds:
//
//   round 0:   Setup() on every actor (in parallel — charged at the max)
//   round k:   every actor with pending inbound messages gets OnMessages()
//   quiesce:   when no messages are in flight, OnQuiesce() runs once on all
//              actors; if it produces messages, rounds resume. The run ends
//              at a quiescent point where OnQuiesce() stays silent.
//
// Response time follows the BSP critical-path model: the wall-clock time of
// each round is the maximum of its callbacks' measured durations (sites
// compute in parallel), plus a configurable network charge. Data shipment
// is the exact serialized byte volume, split by message class.

#ifndef DGS_RUNTIME_CLUSTER_H_
#define DGS_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "runtime/message.h"
#include "util/status.h"

namespace dgs {

class Cluster;

// Per-callback handle through which an actor reads its identity and sends.
class SiteContext {
 public:
  uint32_t site_id() const { return site_id_; }
  // Worker count (the coordinator is an extra site with id NumWorkers()).
  uint32_t num_workers() const;
  uint32_t coordinator_id() const;

  void Send(uint32_t dst, MessageClass cls, Blob payload);

 private:
  friend class Cluster;
  SiteContext(Cluster* cluster, uint32_t site_id)
      : cluster_(cluster), site_id_(site_id) {}

  Cluster* cluster_;
  uint32_t site_id_;
};

// A site's algorithm logic. One actor per worker plus one coordinator.
class SiteActor {
 public:
  virtual ~SiteActor() = default;

  // Called once before any message flows (phase 1 / partial evaluation).
  virtual void Setup(SiteContext& ctx) { (void)ctx; }

  // Called when the site has inbound messages this round.
  virtual void OnMessages(SiteContext& ctx, std::vector<Message> inbox) = 0;

  // Called at every quiescent point. Default: do nothing (stay done).
  virtual void OnQuiesce(SiteContext& ctx) { (void)ctx; }
};

// Aggregate statistics of one Run().
struct RunStats {
  // BSP critical path: sum over rounds of the max callback duration, plus
  // the network model charges.
  double response_seconds = 0;
  // Total compute across all sites (the "work", vs. the critical path).
  double total_compute_seconds = 0;
  uint64_t data_bytes = 0;     // kData payload + headers
  uint64_t control_bytes = 0;  // kControl
  uint64_t result_bytes = 0;   // kResult
  uint64_t data_messages = 0;
  uint64_t control_messages = 0;
  uint64_t result_messages = 0;
  uint32_t rounds = 0;

  uint64_t TotalBytes() const {
    return data_bytes + control_bytes + result_bytes;
  }
};

// Network cost model added to the BSP critical path.
struct NetworkModel {
  // Charged once per delivery round with at least one message.
  double latency_per_round_seconds = 0;
  // Charged per byte of the round's maximum per-site ingress.
  double seconds_per_byte = 0;
};

// Owns the actors and runs the delivery loop.
class Cluster {
 public:
  using NetworkModel = dgs::NetworkModel;

  explicit Cluster(uint32_t num_workers, NetworkModel model = {});

  // Workers have ids [0, num_workers); the coordinator id is num_workers.
  uint32_t NumWorkers() const { return num_workers_; }
  uint32_t CoordinatorId() const { return num_workers_; }

  void SetWorker(uint32_t i, std::unique_ptr<SiteActor> actor);
  void SetCoordinator(std::unique_ptr<SiteActor> actor);

  SiteActor* worker(uint32_t i);
  SiteActor* coordinator();

  // Runs Setup + delivery rounds to completion. Aborts if an actor is
  // missing or if the round count exceeds `max_rounds` (runaway protection).
  RunStats Run(uint32_t max_rounds = 1u << 20);

 private:
  friend class SiteContext;
  void SendFrom(uint32_t src, uint32_t dst, MessageClass cls, Blob payload);

  uint32_t num_workers_;
  NetworkModel model_;
  std::vector<std::unique_ptr<SiteActor>> actors_;  // size num_workers_ + 1
  std::vector<Message> pending_;
  RunStats stats_;
};

}  // namespace dgs

#endif  // DGS_RUNTIME_CLUSTER_H_
