// Deterministic distributed cluster runtime — the delivery loop on top of a
// swappable transport layer.
//
// The paper deploys one fragment per Amazon EC2 machine; this runtime
// reproduces that deployment model with a LAYERED architecture:
//
//   Cluster (this header)       the delivery LOOP. Schedules synchronized
//                               rounds, sorts each round's traffic into
//                               deterministic per-site inboxes, runs the
//                               fault injector and the round watchdog, and
//                               charges ALL RunStats accounting on its
//                               single merge path. Backend-agnostic: it
//                               never executes a callback itself and never
//                               touches a socket.
//   Transport (runtime/         round EXECUTION. Given a round's kind and
//   transport.h)                inboxes, run every active site's callback
//                               somewhere and return the merged sends in
//                               site-id order. Selected per cluster by
//                               ClusterOptions::transport:
//     - LoopbackTransport       in-process pooled fork-join (the default
//                               and the deterministic reference).
//     - SocketTransport         one OS process per site-group over TCP
//                               (runtime/remote.h): real measured bytes
//                               and latency (Cluster::transport_stats())
//                               next to the charged BSP model.
//
// Sites are actors driven in synchronized delivery rounds:
//
//   round 0:   Setup() on every actor (in parallel — charged at the max)
//   round k:   every actor with pending inbound messages gets OnMessages()
//   quiesce:   when no messages are in flight, OnQuiesce() runs once on all
//              actors; if it produces messages, rounds resume. The run ends
//              at a quiescent point where OnQuiesce() stays silent.
//
// Response time follows the BSP critical-path model: the wall-clock time of
// each round is the maximum of its callbacks' measured durations (sites
// compute in parallel), plus a configurable network charge. Data shipment
// is the exact serialized byte volume, split by message class — charged
// per message (kMessageHeaderBytes each), or per (src, dst) batch when
// TransportOptions::coalesce is on (one full header per flush,
// kCoalescedEntryBytes per further message: the batch framing a wire
// backend actually uses).
//
// Determinism guarantees (identical for every ClusterOptions::num_threads
// value AND every transport backend, enforced by the conformance suite):
//   - Inboxes: each round's messages are grouped per destination and
//     ordered by (src, send order at that src). Callback execution order
//     within a round is unspecified — threads on loopback, processes on
//     tcp — but sends are buffered per site and merged in site-id order at
//     the round barrier, so the next round's inboxes are bit-for-bit
//     identical regardless of scheduling.
//   - RunStats: message and byte counters are charged during the ordered
//     merge on this (single) thread, never from worker threads or remote
//     processes, so accounting is exact and reproducible. (Measured
//     durations naturally vary run to run; response_seconds /
//     total_compute_seconds are the only non-deterministic fields.)
//   - Actors: each actor's callbacks only ever run on one thread at a time
//     (one callback per site per round). Actors may therefore keep plain
//     mutable state, but state SHARED between actors (e.g. AlgoCounters)
//     must be thread-safe; SiteContext::Send is always safe. Under the tcp
//     backend worker callbacks run in forked processes: per-query results
//     must travel as messages or through the BindSharedState channel —
//     worker-actor members read from the parent after Run() are stale.
//
// Delivery semantics (ClusterOptions::faults; see runtime/fault.h). By
// default delivery is reliable, in-order, and exactly-once. With a
// FaultPlan enabled, a seeded deterministic FaultInjector perturbs each
// round's in-flight messages on the single-threaded merge path, and the
// tolerant-delivery layer (sequence-numbered frames with checksums)
// recovers what it can. The contract, per fault class:
//
//   drop       bounded retry with simulated exponential backoff (charged
//              to response_seconds); retries exhausted => the frame is
//              lost and the run is poisoned kUnavailable.
//   duplicate  the per-(src,dst) sequence dedup discards the extra copy —
//              delivery is idempotent; no observable effect.
//   reorder    frames shuffled in flight are healed by the (dst, src, seq)
//              sort on receive; no observable effect.
//   corrupt /  detected by the frame checksum; the frame is rejected and
//   truncate   the run poisoned kDataLoss (counted per message class in
//              RunHealth::decode_drops).
//   crash      from round R the site neither sends nor receives; the run
//              is poisoned kUnavailable. With FaultPlan::crash_once (the
//              default) the site is back for the next run.
//   stall      ClusterOptions::watchdog_rounds > 0 converts a run whose
//              round count exceeds the bound into kDeadlineExceeded
//              instead of a hang (or a hard round-budget abort).
//
// The injector models chaos above the transport; the tcp backend
// additionally implements the same seq/checksum/retransmit/dedup contract
// against REAL wire failures (runtime/remote.h): connection loss / short
// read => kUnavailable, checksum retransmits exhausted or protocol desync
// => kDataLoss, a peer stalled past TransportOptions::io_timeout_seconds
// => kDeadlineExceeded. Either way the poisoning goes through the
// RunHealth bound with BindHealth(); a poisoned run drains to quiescence
// (actors check health and go silent) and the caller surfaces the
// classified Status. The enforced invariant: under drop/dup/reorder with
// recovery on, the delivered stream — and therefore results AND RunStats
// accounting — is bit-identical to the fault-free run for every
// num_threads value and every backend. RunStats charge logical sends only;
// retransmits, duplicates, and backoff live in fault_stats() (injected) or
// transport_stats() (measured on the wire). With FaultPlan::recovery off,
// the raw chaos reaches the actors (the fail-soft decode path is their
// problem — and their test surface). Faults default off and cost one
// pointer test per round when disabled.
//
// OBSERVABILITY. With an obs::TraceRecorder installed, a run emits
// cluster.run / cluster.round / cluster.merge spans here, per-site
// site.compute spans from the transport (live on loopback; reconstructed
// post-hoc from round responses on tcp, in per-site lanes), and
// transport.tx/rx/frame/heartbeat/respawn events from the socket layer.
// Disabled tracing costs one atomic load per instrument site — the same
// discipline as ClusterOptions::faults. Span taxonomy and a slow-query
// walkthrough: docs/OBSERVABILITY.md.

#ifndef DGS_RUNTIME_CLUSTER_H_
#define DGS_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "runtime/fault.h"
#include "runtime/message.h"
#include "runtime/transport.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dgs {

// Aggregate statistics of one Run(). Accumulate() folds successive runs
// into cumulative serving metrics (see core/engine.h).
struct RunStats {
  // BSP critical path: sum over rounds of the max callback duration, plus
  // the network model charges.
  double response_seconds = 0;
  // Total compute across all sites (the "work", vs. the critical path).
  double total_compute_seconds = 0;
  uint64_t data_bytes = 0;     // kData payload + headers
  uint64_t control_bytes = 0;  // kControl
  uint64_t result_bytes = 0;   // kResult
  uint64_t update_bytes = 0;   // kUpdate (graph-mutation batches)
  uint64_t data_messages = 0;
  uint64_t control_messages = 0;
  uint64_t result_messages = 0;
  uint64_t update_messages = 0;
  uint32_t rounds = 0;

  uint64_t TotalBytes() const {
    return data_bytes + control_bytes + result_bytes + update_bytes;
  }

  void Accumulate(const RunStats& other) {
    response_seconds += other.response_seconds;
    total_compute_seconds += other.total_compute_seconds;
    data_bytes += other.data_bytes;
    control_bytes += other.control_bytes;
    result_bytes += other.result_bytes;
    update_bytes += other.update_bytes;
    data_messages += other.data_messages;
    control_messages += other.control_messages;
    result_messages += other.result_messages;
    update_messages += other.update_messages;
    rounds += other.rounds;
  }
};

// Network cost model added to the BSP critical path.
struct NetworkModel {
  // Charged once per delivery round with at least one message.
  double latency_per_round_seconds = 0;
  // Charged per byte of the round's maximum per-site ingress.
  double seconds_per_byte = 0;
};

// Runtime configuration. Implicitly constructible from a bare NetworkModel
// so existing call sites that pass only a network model keep working.
struct ClusterOptions {
  ClusterOptions() = default;
  ClusterOptions(const NetworkModel& model)  // NOLINT: implicit on purpose
      : network(model) {}

  NetworkModel network;
  // Executor width for each round's callbacks. 1 (the default) executes
  // sites sequentially in site-id order — the deterministic reference
  // behavior; larger values run them concurrently with identical results
  // and RunStats accounting (see the threading-model comment above).
  // 0 means "use all hardware threads".
  uint32_t num_threads = 1;
  // Serialization format the actors use for the dominant payloads (truth
  // values, match lists). V2 delta encoding ships strictly fewer bytes on
  // sorted inputs and identical simulation results; V1 stays available for
  // benchmarking the formats against each other (see runtime/message.h).
  WireFormat wire_format = WireFormat::kV2Delta;
  // Seeded chaos schedule for the delivery path (default: disabled — no
  // injector is built and delivery is exactly-once). See the delivery-
  // semantics contract in the file comment and runtime/fault.h.
  FaultPlan faults;
  // Round watchdog: a run whose delivery-round count reaches this bound is
  // poisoned kDeadlineExceeded and stopped instead of running to the hard
  // max_rounds abort. 0 (default) = off. Meant for chaos plans without
  // recovery, where lost messages can leave actors re-sending forever.
  uint32_t watchdog_rounds = 0;
  // Round-execution backend and its knobs: loopback (default) or tcp
  // multi-process, plus the coalesced-framing switch. See
  // runtime/transport.h for the contract.
  TransportOptions transport;
};

// Drives the actors through the delivery loop.
//
// Lifecycle. A Cluster is deploy-once / run-many: the thread pool and the
// transport backend are created once and survive across Run() calls, so a
// resident deployment (core/engine.h) pays executor and allocation setup
// only on the first query (the tcp backend forks its worker processes per
// Run — copy-on-write snapshots the deployed state into them). Actors are
// attached either owning (SetWorker/SetCoordinator take unique_ptr — the
// one-shot paths) or non-owning (BindWorker/BindCoordinator take raw
// pointers — a caller that keeps persistent actors alive across queries,
// like dgs::Engine). Reset() discards any in-flight messages and zeroes the
// run statistics; Run() also starts from a clean slate, so Reset() is only
// needed to drop state eagerly between runs.
class Cluster {
 public:
  using NetworkModel = dgs::NetworkModel;

  explicit Cluster(uint32_t num_workers, ClusterOptions options = {});

  // Workers have ids [0, num_workers); the coordinator id is num_workers.
  uint32_t NumWorkers() const { return num_workers_; }
  uint32_t CoordinatorId() const { return num_workers_; }

  // Owning attachment (the actor dies with the cluster or when replaced).
  void SetWorker(uint32_t i, std::unique_ptr<SiteActor> actor);
  void SetCoordinator(std::unique_ptr<SiteActor> actor);
  // Non-owning attachment: `actor` must stay alive until after the next
  // Run() (or the next re-bind). Replaces any owned actor at that site.
  void BindWorker(uint32_t i, SiteActor* actor);
  void BindCoordinator(SiteActor* actor);

  SiteActor* worker(uint32_t i);
  SiteActor* coordinator();

  // Drops in-flight messages and zeroes the statistics of the previous
  // run. Pooled buffers and the thread pool are kept (reuse is the
  // point); actor state is the actors' business (see QuerySiteActor).
  void Reset();

  // Points the transport layer at the run's poison flag so faults —
  // injected chaos or real wire failures — classify the run instead of
  // silently perturbing it. Null (the default) detaches; real transport
  // failures then abort loudly. The health must outlive the next Run();
  // callers re-bind per run.
  void BindHealth(RunHealth* health) { health_ = health; }

  // Points the transport layer at the run's cross-process state channel
  // (counters a remote backend must ship home; see SharedRunState in
  // runtime/transport.h). Null (the default) detaches. Loopback ignores
  // it — the state is already shared in-process.
  void BindSharedState(SharedRunState* shared) { shared_ = shared; }

  // Points the transport layer at the run's query re-ship channel (see
  // RunBinding in runtime/transport.h) and names the deployment it is
  // armed against (deploy_version != 0). With both set, the tcp backend
  // keeps its worker fleet resident across runs under a supervised
  // WorkerPool instead of reforking per Run(). Null / 0 (the default)
  // detaches and the backend reforks per run. The failure/supervision
  // semantics are consolidated in docs/FAILURES.md.
  void BindRunBinding(RunBinding* binding, uint64_t deploy_version) {
    binding_ = binding;
    deploy_version_ = deploy_version;
  }

  // Chaos accounting of the most recent Run() (all zero with faults
  // disabled). RunStats never include any of this.
  const FaultStats& fault_stats() const { return fault_stats_; }

  // Measured wire accounting of the most recent Run() (all zero on the
  // loopback backend — nothing is measured in-process).
  const TransportStats& transport_stats() const {
    return transport_->stats();
  }

  // The active backend (ClusterOptions::transport.kind).
  TransportKind transport_kind() const { return transport_->kind(); }

  // Runs Setup + delivery rounds to completion. Aborts if an actor is
  // missing or if the round count exceeds `max_rounds` (runaway protection).
  // May be called repeatedly; each call is an independent run.
  RunStats Run(uint32_t max_rounds = 1u << 20);

 private:
  // One transport-executed barrier round: hands the inboxes to the backend,
  // then charges and enqueues the merged sends. Returns the round's max
  // callback duration.
  double ExecRound(RoundKind kind, uint32_t round,
                   const std::vector<uint32_t>& sites,
                   std::vector<std::vector<Message>> inboxes);

  void ChargeAndEnqueue(std::vector<Message>& sends);

  uint32_t num_workers_;
  ClusterOptions options_;
  // Built only when options_.faults is enabled; the disabled-path cost is
  // one null test per delivery round.
  std::unique_ptr<FaultInjector> injector_;
  RunHealth* health_ = nullptr;
  SharedRunState* shared_ = nullptr;
  RunBinding* binding_ = nullptr;
  uint64_t deploy_version_ = 0;
  FaultStats fault_stats_;
  // Created eagerly when num_threads > 1 (actors may borrow it through
  // SiteContext::pool() from the very first Setup round); null in the
  // sequential reference mode.
  std::unique_ptr<ThreadPool> pool_;
  // Round-execution backend (never null; LoopbackTransport by default).
  std::unique_ptr<Transport> transport_;
  std::vector<SiteActor*> actors_;    // size num_workers_ + 1 (dispatch)
  std::vector<std::unique_ptr<SiteActor>> owned_;  // owning slots (or null)
  std::vector<Message> merged_;   // scratch: one round's merged sends
  std::vector<Message> pending_;
  RunStats stats_;
};

}  // namespace dgs

#endif  // DGS_RUNTIME_CLUSTER_H_
