// Deterministic in-process cluster simulator.
//
// The paper deploys one fragment per Amazon EC2 machine; we substitute a
// deterministic message-passing runtime (see DESIGN.md §4). Sites are
// actors driven in synchronized delivery rounds:
//
//   round 0:   Setup() on every actor (in parallel — charged at the max)
//   round k:   every actor with pending inbound messages gets OnMessages()
//   quiesce:   when no messages are in flight, OnQuiesce() runs once on all
//              actors; if it produces messages, rounds resume. The run ends
//              at a quiescent point where OnQuiesce() stays silent.
//
// Response time follows the BSP critical-path model: the wall-clock time of
// each round is the maximum of its callbacks' measured durations (sites
// compute in parallel), plus a configurable network charge. Data shipment
// is the exact serialized byte volume, split by message class.
//
// Threading model. With ClusterOptions::num_threads > 1, the callbacks of
// one delivery round execute CONCURRENTLY on a pooled executor — the
// physical realization of the BSP cost model above, where previously the
// sequential loop made wall-clock time ~num_sites x the charged critical
// path. Rounds are still barriers: no callback of round k+1 starts before
// every callback of round k finished.
//
// Determinism guarantees (identical for every num_threads value, including
// the num_threads == 1 sequential reference mode):
//   - Inboxes: each round's messages are grouped per destination and
//     ordered by (src, send order at that src). Callback execution order
//     within a round is unspecified, but sends are buffered in per-site
//     outboxes and merged in site-id order after the round barrier, so the
//     next round's inboxes are bit-for-bit identical regardless of
//     scheduling.
//   - RunStats: message and byte counters are charged during the ordered
//     merge, never from worker threads, so accounting is exact and
//     reproducible. (Measured durations naturally vary run to run; the
//     derived response_seconds/total_compute_seconds are the only
//     non-deterministic fields.)
//   - Actors: each actor's callbacks only ever run on one thread at a time
//     (one callback per site per round). Actors may therefore keep plain
//     mutable state, but state SHARED between actors (e.g. AlgoCounters)
//     must be thread-safe; SiteContext::Send is always safe.
//
// Delivery semantics (ClusterOptions::faults; see runtime/fault.h). By
// default delivery is reliable, in-order, and exactly-once. With a
// FaultPlan enabled, a seeded deterministic FaultInjector perturbs each
// round's in-flight messages on the single-threaded merge path, and the
// tolerant-delivery layer (sequence-numbered frames with checksums)
// recovers what it can. The contract, per fault class:
//
//   drop       bounded retry with simulated exponential backoff (charged
//              to response_seconds); retries exhausted => the frame is
//              lost and the run is poisoned kUnavailable.
//   duplicate  the per-(src,dst) sequence dedup discards the extra copy —
//              delivery is idempotent; no observable effect.
//   reorder    frames shuffled in flight are healed by the (dst, src, seq)
//              sort on receive; no observable effect.
//   corrupt /  detected by the frame checksum; the frame is rejected and
//   truncate   the run poisoned kDataLoss (counted per message class in
//              RunHealth::decode_drops).
//   crash      from round R the site neither sends nor receives; the run
//              is poisoned kUnavailable. With FaultPlan::crash_once (the
//              default) the site is back for the next run.
//   stall      ClusterOptions::watchdog_rounds > 0 converts a run whose
//              round count exceeds the bound into kDeadlineExceeded
//              instead of a hang (or a hard round-budget abort).
//
// Poisoning goes through the RunHealth bound with BindHealth(); a poisoned
// run drains to quiescence (actors check health and go silent) and the
// caller surfaces the classified Status. The enforced invariant: under
// drop/dup/reorder with recovery on, the delivered stream — and therefore
// results AND RunStats accounting — is bit-identical to the fault-free
// run for every num_threads value. RunStats charge logical sends only;
// retransmits, duplicates, and backoff live in fault_stats(). With
// FaultPlan::recovery off, the raw chaos reaches the actors (the
// fail-soft decode path is their problem — and their test surface).
// Faults default off and cost one pointer test per round when disabled.

#ifndef DGS_RUNTIME_CLUSTER_H_
#define DGS_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "runtime/fault.h"
#include "runtime/message.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dgs {

class Cluster;

// Per-callback handle through which an actor reads its identity and sends.
// Sends are buffered in a per-site outbox owned by the runtime and merged
// deterministically at the round barrier; Send never touches shared state.
class SiteContext {
 public:
  uint32_t site_id() const { return site_id_; }
  // Worker count (the coordinator is an extra site with id NumWorkers()).
  uint32_t num_workers() const;
  uint32_t coordinator_id() const;
  // The run's configured wire format (ClusterOptions::wire_format); actors
  // pass it to the core/protocol.h encoders. Decoders dispatch on the
  // self-describing payload tags and never need it.
  WireFormat wire_format() const;

  // The runtime's executor, for intra-callback parallelism (null when the
  // cluster runs sequentially, i.e. num_threads == 1). Actors may hand it
  // to ComputeSimulation/LocalEngine/EquationSystem drains or use it to
  // encode per-destination payloads concurrently. Safe in every round:
  // when the pool is already driving a multi-site round, nested calls run
  // inline on the calling lane (ThreadPool's reentrancy rule); in a
  // single-active-site round — coordinator-side solves, which is where the
  // heavy intra-callback work lives — the idle lanes provide real
  // parallelism. Determinism obligations stay with the actor: anything
  // executed on the pool must produce thread-count-invariant results.
  ThreadPool* pool() const;

  void Send(uint32_t dst, MessageClass cls, Blob payload);

 private:
  friend class Cluster;
  SiteContext(const Cluster* cluster, uint32_t site_id,
              std::vector<Message>* outbox)
      : cluster_(cluster), site_id_(site_id), outbox_(outbox) {}

  const Cluster* cluster_;
  uint32_t site_id_;
  std::vector<Message>* outbox_;
};

// A site's algorithm logic. One actor per worker plus one coordinator.
class SiteActor {
 public:
  virtual ~SiteActor() = default;

  // Called once before any message flows (phase 1 / partial evaluation).
  virtual void Setup(SiteContext& ctx) { (void)ctx; }

  // Called when the site has inbound messages this round.
  virtual void OnMessages(SiteContext& ctx, std::vector<Message> inbox) = 0;

  // Called at every quiescent point. Default: do nothing (stay done).
  virtual void OnQuiesce(SiteContext& ctx) { (void)ctx; }
};

// Aggregate statistics of one Run(). Accumulate() folds successive runs
// into cumulative serving metrics (see core/engine.h).
struct RunStats {
  // BSP critical path: sum over rounds of the max callback duration, plus
  // the network model charges.
  double response_seconds = 0;
  // Total compute across all sites (the "work", vs. the critical path).
  double total_compute_seconds = 0;
  uint64_t data_bytes = 0;     // kData payload + headers
  uint64_t control_bytes = 0;  // kControl
  uint64_t result_bytes = 0;   // kResult
  uint64_t data_messages = 0;
  uint64_t control_messages = 0;
  uint64_t result_messages = 0;
  uint32_t rounds = 0;

  uint64_t TotalBytes() const {
    return data_bytes + control_bytes + result_bytes;
  }

  void Accumulate(const RunStats& other) {
    response_seconds += other.response_seconds;
    total_compute_seconds += other.total_compute_seconds;
    data_bytes += other.data_bytes;
    control_bytes += other.control_bytes;
    result_bytes += other.result_bytes;
    data_messages += other.data_messages;
    control_messages += other.control_messages;
    result_messages += other.result_messages;
    rounds += other.rounds;
  }
};

// Network cost model added to the BSP critical path.
struct NetworkModel {
  // Charged once per delivery round with at least one message.
  double latency_per_round_seconds = 0;
  // Charged per byte of the round's maximum per-site ingress.
  double seconds_per_byte = 0;
};

// Runtime configuration. Implicitly constructible from a bare NetworkModel
// so existing call sites that pass only a network model keep working.
struct ClusterOptions {
  ClusterOptions() = default;
  ClusterOptions(const NetworkModel& model)  // NOLINT: implicit on purpose
      : network(model) {}

  NetworkModel network;
  // Executor width for each round's callbacks. 1 (the default) executes
  // sites sequentially in site-id order — the deterministic reference
  // behavior; larger values run them concurrently with identical results
  // and RunStats accounting (see the threading-model comment above).
  // 0 means "use all hardware threads".
  uint32_t num_threads = 1;
  // Serialization format the actors use for the dominant payloads (truth
  // values, match lists). V2 delta encoding ships strictly fewer bytes on
  // sorted inputs and identical simulation results; V1 stays available for
  // benchmarking the formats against each other (see runtime/message.h).
  WireFormat wire_format = WireFormat::kV2Delta;
  // Seeded chaos schedule for the delivery path (default: disabled — no
  // injector is built and delivery is exactly-once). See the delivery-
  // semantics contract in the file comment and runtime/fault.h.
  FaultPlan faults;
  // Round watchdog: a run whose delivery-round count reaches this bound is
  // poisoned kDeadlineExceeded and stopped instead of running to the hard
  // max_rounds abort. 0 (default) = off. Meant for chaos plans without
  // recovery, where lost messages can leave actors re-sending forever.
  uint32_t watchdog_rounds = 0;
};

// Drives the actors through the delivery loop.
//
// Lifecycle. A Cluster is deploy-once / run-many: the thread pool and the
// pooled per-round outbox buffers are created once and survive across
// Run() calls, so a resident deployment (core/engine.h) pays executor and
// allocation setup only on the first query. Actors are attached either
// owning (SetWorker/SetCoordinator take unique_ptr — the one-shot paths)
// or non-owning (BindWorker/BindCoordinator take raw pointers — a caller
// that keeps persistent actors alive across queries, like dgs::Engine).
// Reset() discards any in-flight messages and zeroes the run statistics;
// Run() also starts from a clean slate, so Reset() is only needed to drop
// state eagerly between runs.
class Cluster {
 public:
  using NetworkModel = dgs::NetworkModel;

  explicit Cluster(uint32_t num_workers, ClusterOptions options = {});

  // Workers have ids [0, num_workers); the coordinator id is num_workers.
  uint32_t NumWorkers() const { return num_workers_; }
  uint32_t CoordinatorId() const { return num_workers_; }

  // Owning attachment (the actor dies with the cluster or when replaced).
  void SetWorker(uint32_t i, std::unique_ptr<SiteActor> actor);
  void SetCoordinator(std::unique_ptr<SiteActor> actor);
  // Non-owning attachment: `actor` must stay alive until after the next
  // Run() (or the next re-bind). Replaces any owned actor at that site.
  void BindWorker(uint32_t i, SiteActor* actor);
  void BindCoordinator(SiteActor* actor);

  SiteActor* worker(uint32_t i);
  SiteActor* coordinator();

  // Drops in-flight messages and zeroes the statistics of the previous
  // run. Pooled outbox buffers and the thread pool are kept (reuse is the
  // point); actor state is the actors' business (see QuerySiteActor).
  void Reset();

  // Points the transport layer at the run's poison flag so injected faults
  // (lost frames, crashes, checksum rejects, watchdog trips) classify the
  // run instead of silently perturbing it. Null (the default) detaches.
  // The health must outlive the next Run(); callers re-bind per run.
  void BindHealth(RunHealth* health) { health_ = health; }

  // Chaos accounting of the most recent Run() (all zero with faults
  // disabled). RunStats never include any of this.
  const FaultStats& fault_stats() const { return fault_stats_; }

  // Runs Setup + delivery rounds to completion. Aborts if an actor is
  // missing or if the round count exceeds `max_rounds` (runaway protection).
  // May be called repeatedly; each call is an independent run.
  RunStats Run(uint32_t max_rounds = 1u << 20);

 private:
  friend class SiteContext;

  // Executes one barrier round: fn(i, site_ids[i], ctx) for every i,
  // possibly concurrently, then merges the per-site outboxes into pending_
  // in site-id order and charges stats. Returns the max callback duration.
  template <typename Fn>
  double RunRound(const std::vector<uint32_t>& site_ids, Fn&& fn);

  void ChargeAndEnqueue(std::vector<Message>& outbox);

  uint32_t num_workers_;
  ClusterOptions options_;
  // Built only when options_.faults is enabled; the disabled-path cost is
  // one null test per delivery round.
  std::unique_ptr<FaultInjector> injector_;
  RunHealth* health_ = nullptr;
  FaultStats fault_stats_;
  // Created eagerly when num_threads > 1 (actors may borrow it through
  // SiteContext::pool() from the very first Setup round); null in the
  // sequential reference mode.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<SiteActor*> actors_;    // size num_workers_ + 1 (dispatch)
  std::vector<std::unique_ptr<SiteActor>> owned_;  // owning slots (or null)
  // Pooled per-round buffers: one outbox + duration slot per active site,
  // grown to the high-water mark once and reused every round of every run
  // (ChargeAndEnqueue clears outboxes but keeps their capacity).
  std::vector<std::vector<Message>> outbox_pool_;
  std::vector<double> duration_pool_;
  std::vector<Message> pending_;
  RunStats stats_;
};

}  // namespace dgs

#endif  // DGS_RUNTIME_CLUSTER_H_
