// Multi-process TCP backend of the transport layer (runtime/transport.h).
//
// Topology. SocketTransport forks one worker process per site-group
// (TransportOptions::num_processes groups; 0 = one per worker site) and
// connects each to the parent over a 127.0.0.1 TCP socket. fork() without
// exec is deliberate: the deployed state — fragment views, label indexes,
// resident actors — is exactly what the children need, and copy-on-write
// ships it for free; re-building it behind an exec would turn every query
// into a deployment. The coordinator site always executes in the parent,
// so result collection (Deployment::Collect) keeps reading live actor
// state. The parent is the hub: one request frame per child per round
// (opcode, kind, round, poison state, the group's active sites and their
// inboxes), one response frame back (per-site durations and sends, a
// SharedRunState counter delta, a RunHealth report). Star routing keeps
// the deterministic merge and every byte of charged accounting on the
// parent's single merge path — worker processes never talk to each other
// directly, they talk to sites, and the parent is the switch.
//
// Fleet lifetime. With TransportOptions::persistent_workers and a
// RunBinding on the session (Engine::Match), the fleet is forked ONCE per
// deployment and supervised across runs by a WorkerPool
// (runtime/supervisor.h): BeginRun ships the run's query as a binding
// blob (kOpBeginRun, acked), rounds flow as kOpRound frames, EndRun
// detaches with kOpEndRun — no fork, no reap, the per-query launch cost
// drops to one acked round trip. Sessions without a binding (raw Cluster
// drivers, the update replication pipeline, one-shot entry points through
// ServeQueryOnce) keep the historical refork-per-Run lifecycle. A worker
// that dies mid-run poisons only that run; the pool respawns it (a fresh
// fork re-ships the parent's current fragment view by copy-on-write)
// before the next run, within TransportOptions::max_worker_respawns.
// docs/FAILURES.md consolidates the failure taxonomy and the supervision
// state machine.
//
// Physical framing (FrameChannel). Every frame is
//
//   u32 magic | u8 kind | u64 seq | u32 len | payload[len] | u32 fnv
//
// with the FNV-1a checksum over (kind, seq, len, payload). Receivers NACK
// a frame that fails its checksum; the sender retains its last data frame
// and retransmits on NACK (TransportOptions::max_frame_retransmits bounds
// the loop, exhaustion => DataLoss). Duplicate sequence numbers are
// discarded (delivery is idempotent), a sequence gap or bad magic is a
// protocol desync (DataLoss), EOF / short reads are Unavailable, and a
// peer silent past TransportOptions::io_timeout_seconds is
// DeadlineExceeded. This is PR 6's tolerant-delivery contract
// (seq/checksum/retransmit/dedup, classified failures) implemented on a
// real wire; the deterministic chaos knobs in TransportOptions
// (chaos_corrupt_every / chaos_duplicate_every / ...) let tests drive the
// recovery machinery on purpose.
//
// Failure surface. All classified failures go through RunHealth (bound in
// the RunSession): a dead or stalled child poisons the run, its sites stop
// producing sends, and the run drains to quiescence in the parent exactly
// like an in-process poisoned run. Without a bound RunHealth a transport
// failure aborts loudly (DGS_CHECK) — raw Cluster users opt into health
// handling explicitly.

#ifndef DGS_RUNTIME_REMOTE_H_
#define DGS_RUNTIME_REMOTE_H_

#include <memory>

#include "runtime/transport.h"
#include "util/status.h"

namespace dgs {

// Physical frame types on a transport socket.
enum class FrameKind : uint8_t {
  kData = 0,      // sequenced, checksummed, retained for retransmit
  kNack = 1,      // "frame `seq` failed its checksum, resend it"
  kShutdown = 2,  // orderly close (worker retirement)
  kHeartbeat = 3, // liveness ping/echo: seq 0, unsequenced, never retained,
                  // never chaos-perturbed; a responder channel echoes it
                  // from inside ReceiveData, everyone else ignores strays
};

// One endpoint of the sequenced/checksummed frame protocol over a socket
// (or any stream fd — the conformance tests run it over a socketpair).
// Symmetric: both the parent hub and the worker children hold one per
// connection. Not thread-safe; each endpoint is driven by one thread.
class FrameChannel {
 public:
  // `stats` may be null (children do not report transport stats; the
  // parent's side of every exchange measures the wire once).
  FrameChannel(int fd, const TransportOptions& options, TransportStats* stats)
      : fd_(fd), options_(options), stats_(stats) {}

  int fd() const { return fd_; }

  // Writes one data frame (seq = frames sent so far, checksummed). Applies
  // the deterministic chaos knobs (corrupt/duplicate every Nth data frame).
  // The frame is retained for NACK-triggered retransmission until the next
  // SendData. Errors are classified (kUnavailable on a broken pipe).
  Status SendData(const Blob& payload);

  // Writes a shutdown frame (never retained, never chaos-perturbed).
  Status SendShutdown();

  // Supervision ping: writes one heartbeat frame and waits up to
  // `timeout_seconds` for the peer's heartbeat echo (servicing NACKs and
  // ignoring any other frame kind meanwhile — between runs heartbeats are
  // the only traffic). kDeadlineExceeded on a silent peer, kUnavailable on
  // EOF. Only the supervisor thread calls this, and only while no run is
  // active on the channel.
  Status Ping(double timeout_seconds);

  // Child-side responder mode: ReceiveData answers each heartbeat frame
  // with an echo and keeps waiting for data. Off (the parent default),
  // ReceiveData silently skips stray heartbeat echoes (e.g. one answered
  // after the supervisor already timed its ping out).
  void set_heartbeat_responder(bool responder) {
    heartbeat_responder_ = responder;
  }

  // Re-points the measured-stats sink (WorkerPool channels alternate
  // between the pool's supervision ledger and the active run's stats).
  void set_stats(TransportStats* stats) { stats_ = stats; }

  // Reads the next in-sequence data frame's payload into *payload,
  // transparently running the recovery protocol: corrupt frames are NACKed
  // (and the peer's retransmission awaited), duplicates discarded, NACKs
  // from the peer serviced by retransmitting our retained frame. Sets
  // *shutdown (and returns Ok with an empty payload) on an orderly
  // shutdown frame. Classified errors: kUnavailable (EOF / short read),
  // kDeadlineExceeded (silent past io_timeout_seconds), kDataLoss (bad
  // magic, sequence gap, or retransmits exhausted).
  Status ReceiveData(Blob* payload, bool* shutdown);

 private:
  Status WriteAll(const uint8_t* data, size_t n);
  Status ReadAll(uint8_t* data, size_t n, double timeout_seconds);
  Status SendRaw(FrameKind kind, uint64_t seq, const Blob& payload,
                 bool allow_chaos);
  // One full frame off the wire (header + payload + checksum verification;
  // a failed checksum reports kDataLoss with *kind still valid so the
  // caller can NACK). `timeout_seconds` bounds the initial poll.
  Status ReadFrame(FrameKind* kind, uint64_t* seq, Blob* payload,
                   bool* checksum_ok, double timeout_seconds);

  int fd_;
  TransportOptions options_;
  TransportStats* stats_;
  bool heartbeat_responder_ = false;
  uint64_t next_send_seq_ = 0;
  uint64_t data_frames_sent_ = 0;  // drives the every-Nth chaos counters
  uint64_t next_recv_seq_ = 0;
  std::vector<uint8_t> retained_;  // last data frame, for retransmission
};

// Builds the TCP multi-process backend (see the file comment). With
// persistent_workers + a session RunBinding the fleet is forked once and
// supervised across runs (runtime/supervisor.h); otherwise worker
// processes are forked per Run() inside BeginRun and reaped in EndRun.
std::unique_ptr<Transport> MakeSocketTransport(const TransportOptions& options,
                                               const TransportEnv& env);

}  // namespace dgs

#endif  // DGS_RUNTIME_REMOTE_H_
