// Multi-process TCP backend of the transport layer (runtime/transport.h).
//
// Topology. SocketTransport::BeginRun forks one worker process per site-
// group (TransportOptions::num_processes groups; 0 = one per worker site)
// and connects each to the parent over a 127.0.0.1 TCP socket. fork()
// without exec is deliberate: the deployed state — fragment views, label
// indexes, resident actors — is exactly what the children need, and
// copy-on-write ships it for free; re-building it behind an exec would turn
// every query into a deployment. The coordinator site always executes in
// the parent, so result collection (Deployment::Collect) keeps reading live
// actor state. The parent is the hub: one request frame per child per round
// (kind, round, poison state, the group's active sites and their inboxes),
// one response frame back (per-site durations and sends, a SharedRunState
// counter delta, a RunHealth report). Star routing keeps the deterministic
// merge and every byte of charged accounting on the parent's single merge
// path — worker processes never talk to each other directly, they talk to
// sites, and the parent is the switch.
//
// Physical framing (FrameChannel). Every frame is
//
//   u32 magic | u8 kind | u64 seq | u32 len | payload[len] | u32 fnv
//
// with the FNV-1a checksum over (kind, seq, len, payload). Receivers NACK
// a frame that fails its checksum; the sender retains its last data frame
// and retransmits on NACK (TransportOptions::max_frame_retransmits bounds
// the loop, exhaustion => DataLoss). Duplicate sequence numbers are
// discarded (delivery is idempotent), a sequence gap or bad magic is a
// protocol desync (DataLoss), EOF / short reads are Unavailable, and a
// peer silent past TransportOptions::io_timeout_seconds is
// DeadlineExceeded. This is PR 6's tolerant-delivery contract
// (seq/checksum/retransmit/dedup, classified failures) implemented on a
// real wire; the deterministic chaos knobs in TransportOptions
// (chaos_corrupt_every / chaos_duplicate_every / ...) let tests drive the
// recovery machinery on purpose.
//
// Failure surface. All classified failures go through RunHealth (bound in
// the RunSession): a dead or stalled child poisons the run, its sites stop
// producing sends, and the run drains to quiescence in the parent exactly
// like an in-process poisoned run. Without a bound RunHealth a transport
// failure aborts loudly (DGS_CHECK) — raw Cluster users opt into health
// handling explicitly.

#ifndef DGS_RUNTIME_REMOTE_H_
#define DGS_RUNTIME_REMOTE_H_

#include <memory>

#include "runtime/transport.h"
#include "util/status.h"

namespace dgs {

// Physical frame types on a transport socket.
enum class FrameKind : uint8_t {
  kData = 0,      // sequenced, checksummed, retained for retransmit
  kNack = 1,      // "frame `seq` failed its checksum, resend it"
  kShutdown = 2,  // orderly close (EndRun)
};

// One endpoint of the sequenced/checksummed frame protocol over a socket
// (or any stream fd — the conformance tests run it over a socketpair).
// Symmetric: both the parent hub and the worker children hold one per
// connection. Not thread-safe; each endpoint is driven by one thread.
class FrameChannel {
 public:
  // `stats` may be null (children do not report transport stats; the
  // parent's side of every exchange measures the wire once).
  FrameChannel(int fd, const TransportOptions& options, TransportStats* stats)
      : fd_(fd), options_(options), stats_(stats) {}

  int fd() const { return fd_; }

  // Writes one data frame (seq = frames sent so far, checksummed). Applies
  // the deterministic chaos knobs (corrupt/duplicate every Nth data frame).
  // The frame is retained for NACK-triggered retransmission until the next
  // SendData. Errors are classified (kUnavailable on a broken pipe).
  Status SendData(const Blob& payload);

  // Writes a shutdown frame (never retained, never chaos-perturbed).
  Status SendShutdown();

  // Reads the next in-sequence data frame's payload into *payload,
  // transparently running the recovery protocol: corrupt frames are NACKed
  // (and the peer's retransmission awaited), duplicates discarded, NACKs
  // from the peer serviced by retransmitting our retained frame. Sets
  // *shutdown (and returns Ok with an empty payload) on an orderly
  // shutdown frame. Classified errors: kUnavailable (EOF / short read),
  // kDeadlineExceeded (silent past io_timeout_seconds), kDataLoss (bad
  // magic, sequence gap, or retransmits exhausted).
  Status ReceiveData(Blob* payload, bool* shutdown);

 private:
  Status WriteAll(const uint8_t* data, size_t n);
  Status ReadAll(uint8_t* data, size_t n);
  Status SendRaw(FrameKind kind, uint64_t seq, const Blob& payload,
                 bool allow_chaos);

  int fd_;
  TransportOptions options_;
  TransportStats* stats_;
  uint64_t next_send_seq_ = 0;
  uint64_t data_frames_sent_ = 0;  // drives the every-Nth chaos counters
  uint64_t next_recv_seq_ = 0;
  std::vector<uint8_t> retained_;  // last data frame, for retransmission
};

// Builds the TCP multi-process backend (see the file comment). Worker
// processes are forked per Run() inside BeginRun and reaped in EndRun.
std::unique_ptr<Transport> MakeSocketTransport(const TransportOptions& options,
                                               const TransportEnv& env);

}  // namespace dgs

#endif  // DGS_RUNTIME_REMOTE_H_
