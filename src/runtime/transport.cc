#include "runtime/transport.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/trace.h"
#include "runtime/remote.h"
#include "util/timer.h"

namespace dgs {

void DispatchCallback(SiteActor* actor, RoundKind kind, SiteContext& ctx,
                      std::vector<Message> inbox) {
  switch (kind) {
    case RoundKind::kSetup:
      actor->Setup(ctx);
      break;
    case RoundKind::kDeliver:
      actor->OnMessages(ctx, std::move(inbox));
      break;
    case RoundKind::kQuiesce:
      actor->OnQuiesce(ctx);
      break;
  }
}

double LoopbackTransport::ExecuteRound(RoundKind kind, uint32_t round,
                                       const std::vector<uint32_t>& sites,
                                       std::vector<std::vector<Message>> inboxes,
                                       std::vector<Message>* sends,
                                       double* total_compute) {
  const size_t n = sites.size();
  if (outbox_pool_.size() < n) outbox_pool_.resize(n);
  if (duration_pool_.size() < n) duration_pool_.resize(n);
  std::vector<std::vector<Message>>& outboxes = outbox_pool_;
  std::vector<double>& durations = duration_pool_;
  const std::vector<SiteActor*>& actors = *session_.actors;

  auto run_one = [&](size_t i) {
    SiteContext ctx(env_.num_workers, env_.wire_format, env_.pool, sites[i],
                    &outboxes[i]);
    obs::TraceSpan compute_span("transport", "site.compute",
                                obs::kSiteLaneBase + sites[i]);
    compute_span.Arg("site", static_cast<uint64_t>(sites[i]));
    compute_span.Arg("round", static_cast<uint64_t>(round));
    WallTimer timer;
    DispatchCallback(actors[sites[i]], kind, ctx,
                     i < inboxes.size() ? std::move(inboxes[i])
                                        : std::vector<Message>{});
    durations[i] = timer.ElapsedSeconds();
  };

  if (env_.pool != nullptr && n > 1) {
    env_.pool->ParallelFor(n, run_one);
  } else {
    for (size_t i = 0; i < n; ++i) run_one(i);
  }

  // Deterministic merge: site-id order (`sites` is ascending), preserving
  // each site's send order. Outboxes come back empty with their capacity
  // intact, so steady-state rounds allocate nothing here.
  double round_max = 0;
  for (size_t i = 0; i < n; ++i) {
    *total_compute += durations[i];
    round_max = std::max(round_max, durations[i]);
    for (Message& m : outboxes[i]) sends->push_back(std::move(m));
    outboxes[i].clear();
  }
  return round_max;
}

StatusOr<TransportOptions> ParseTransportSpec(const std::string& spec) {
  TransportOptions options;
  if (spec.empty() || spec == "loopback") {
    return options;
  }
  if (spec == "tcp") {
    options.kind = TransportKind::kTcp;
    return options;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    // The process count starts right after "tcp:" — position 5, 1-based —
    // so the diagnostic can point at the exact offending characters.
    const std::string arg = spec.substr(4);
    char* end = nullptr;
    const long procs = std::strtol(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0' || procs < 0) {
      return Status(StatusCode::kInvalidArgument,
                    "malformed transport spec '" + spec +
                        "': bad process count '" + arg +
                        "' at position 5 (want an unsigned integer, "
                        "0 = one process per site)");
    }
    options.kind = TransportKind::kTcp;
    options.num_processes = static_cast<uint32_t>(procs);
    return options;
  }
  return Status(StatusCode::kInvalidArgument,
                "malformed transport spec '" + spec +
                    "': unknown backend '" + spec.substr(0, spec.find(':')) +
                    "' at position 1 (want loopback or tcp[:procs])");
}

std::string TransportSpecString(const TransportOptions& options) {
  if (options.kind == TransportKind::kLoopback) return "loopback";
  std::string spec = "tcp";
  if (options.num_processes > 0) {
    spec += ":" + std::to_string(options.num_processes);
  }
  return spec;
}

std::unique_ptr<Transport> MakeTransport(const TransportOptions& options,
                                         const TransportEnv& env) {
  if (options.kind == TransportKind::kTcp) {
    return MakeSocketTransport(options, env);
  }
  return std::make_unique<LoopbackTransport>(env);
}

}  // namespace dgs
