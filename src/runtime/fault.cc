#include "runtime/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dgs {

namespace {

// Mixes a run index into the plan seed (splitmix64 finalizer) so every run
// of one cluster sees a fresh — but reproducible — fault schedule. Without
// this, a retried query would replay the exact faults that killed it.
uint64_t MixSeed(uint64_t seed, uint64_t run_index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (run_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool ParseProb(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0 || v > 1) return false;
  *out = v;
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

// Diagnoses one bad spec entry: the offending token, WHERE it sits in the
// spec (1-based character position, so the message pinpoints the entry in
// a long comma-separated string), and what was expected instead.
Status BadSpec(const std::string& token, size_t offset,
               const std::string& what) {
  return Status::InvalidArgument("malformed fault spec entry '" + token +
                                 "' at position " +
                                 std::to_string(offset + 1) + ": " + what);
}

std::string ProbsToString(const char* prefix, const FaultProbs& p) {
  std::string out;
  auto put = [&](const char* key, double v) {
    if (v <= 0) return;
    if (!out.empty()) out += ',';
    out += prefix;
    out += key;
    out += '=';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    out += buf;
  };
  put("drop", p.drop);
  put("dup", p.duplicate);
  put("reorder", p.reorder);
  put("corrupt", p.corrupt);
  put("truncate", p.truncate);
  return out;
}

}  // namespace

StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const size_t token_pos = pos;  // where this entry starts in the spec
    std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;

    if (token == "norecover") {
      plan.recovery = false;
      continue;
    }

    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return BadSpec(token, token_pos, "expected KEY=VALUE (or 'norecover')");
    }
    std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "seed") {
      if (!ParseU64(value, &plan.seed)) {
        return BadSpec(token, token_pos, "seed wants an unsigned integer");
      }
      continue;
    }
    if (key == "retries") {
      uint64_t n = 0;
      if (!ParseU64(value, &n) || n > 0xffffffffULL) {
        return BadSpec(token, token_pos,
                       "retries wants an unsigned 32-bit integer");
      }
      plan.max_retries = static_cast<uint32_t>(n);
      continue;
    }
    if (key == "backoff") {
      if (!ParseDouble(value, &plan.backoff_seconds)) {
        return BadSpec(token, token_pos,
                       "backoff wants a non-negative number of seconds");
      }
      continue;
    }
    if (key == "maxfaults") {
      if (!ParseU64(value, &plan.max_faults)) {
        return BadSpec(token, token_pos,
                       "maxfaults wants an unsigned integer");
      }
      continue;
    }
    if (key == "recovery") {
      if (value == "0") {
        plan.recovery = false;
      } else if (value == "1") {
        plan.recovery = true;
      } else {
        return BadSpec(token, token_pos, "recovery wants 0 or 1");
      }
      continue;
    }
    if (key == "crash") {
      // SITE or SITE@ROUND.
      const size_t at = value.find('@');
      uint64_t site = 0;
      uint64_t round = 1;
      if (!ParseU64(value.substr(0, at), &site)) {
        return BadSpec(token, token_pos,
                       "crash wants SITE or SITE@ROUND with an unsigned "
                       "site id");
      }
      if (at != std::string::npos &&
          (!ParseU64(value.substr(at + 1), &round) || round == 0 ||
           round > 0xffffffffULL)) {
        return BadSpec(token, token_pos,
                       "crash round wants an unsigned 32-bit integer >= 1");
      }
      plan.crash_site = static_cast<int64_t>(site);
      plan.crash_round = static_cast<uint32_t>(round);
      continue;
    }

    // [class.]prob entries. Without a prefix all classes are set.
    FaultProbs* targets[4] = {&plan.data, &plan.control, &plan.result,
                              &plan.update};
    size_t num_targets = 4;
    const size_t dot = key.find('.');
    if (dot != std::string::npos) {
      const std::string cls = key.substr(0, dot);
      key = key.substr(dot + 1);
      if (cls == "data") {
        targets[0] = &plan.data;
      } else if (cls == "control") {
        targets[0] = &plan.control;
      } else if (cls == "result") {
        targets[0] = &plan.result;
      } else if (cls == "update") {
        targets[0] = &plan.update;
      } else {
        return BadSpec(token, token_pos,
                       "unknown message class '" + cls +
                           "' (want data, control, result, or update)");
      }
      num_targets = 1;
    }
    double p = 0;
    if (!ParseProb(value, &p)) {
      return BadSpec(token, token_pos,
                     "probability wants a number in [0, 1]");
    }
    for (size_t i = 0; i < num_targets; ++i) {
      FaultProbs& probs = *targets[i];
      if (key == "drop") {
        probs.drop = p;
      } else if (key == "dup") {
        probs.duplicate = p;
      } else if (key == "reorder") {
        probs.reorder = p;
      } else if (key == "corrupt") {
        probs.corrupt = p;
      } else if (key == "truncate") {
        probs.truncate = p;
      } else {
        return BadSpec(token, token_pos,
                       "unknown key '" + key +
                           "' (want drop, dup, reorder, corrupt, truncate, "
                           "seed, retries, backoff, maxfaults, recovery, or "
                           "crash)");
      }
    }
  }
  return plan;
}

std::string FaultPlanToString(const FaultPlan& plan) {
  std::string out;
  auto append = [&](const std::string& piece) {
    if (piece.empty()) return;
    if (!out.empty()) out += ',';
    out += piece;
  };
  auto same = [](const FaultProbs& a, const FaultProbs& b) {
    return a.drop == b.drop && a.duplicate == b.duplicate &&
           a.reorder == b.reorder && a.corrupt == b.corrupt &&
           a.truncate == b.truncate;
  };
  const bool uniform = same(plan.data, plan.control) &&
                       same(plan.data, plan.result) &&
                       same(plan.data, plan.update);
  if (uniform) {
    append(ProbsToString("", plan.data));
  } else {
    append(ProbsToString("data.", plan.data));
    append(ProbsToString("control.", plan.control));
    append(ProbsToString("result.", plan.result));
    append(ProbsToString("update.", plan.update));
  }
  char buf[64];
  if (plan.crash_site >= 0) {
    std::snprintf(buf, sizeof(buf), "crash=%lld@%u",
                  static_cast<long long>(plan.crash_site), plan.crash_round);
    append(buf);
  }
  if (!plan.recovery) append("norecover");
  if (plan.max_retries != FaultPlan{}.max_retries) {
    std::snprintf(buf, sizeof(buf), "retries=%u", plan.max_retries);
    append(buf);
  }
  if (plan.backoff_seconds > 0) {
    std::snprintf(buf, sizeof(buf), "backoff=%g", plan.backoff_seconds);
    append(buf);
  }
  if (plan.max_faults != FaultPlan{}.max_faults) {
    std::snprintf(buf, sizeof(buf), "maxfaults=%llu",
                  static_cast<unsigned long long>(plan.max_faults));
    append(buf);
  }
  if (plan.seed != FaultPlan{}.seed) {
    std::snprintf(buf, sizeof(buf), "seed=%llu",
                  static_cast<unsigned long long>(plan.seed));
    append(buf);
  }
  if (out.empty()) out = "off";
  return out;
}

uint32_t FrameChecksum(const Message& m) {
  uint32_t h = 2166136261u;  // FNV-1a offset basis
  auto mix = [&h](uint8_t b) {
    h ^= b;
    h *= 16777619u;  // FNV prime
  };
  for (int shift = 0; shift < 32; shift += 8) {
    mix(static_cast<uint8_t>(m.src >> shift));
  }
  for (int shift = 0; shift < 32; shift += 8) {
    mix(static_cast<uint8_t>(m.dst >> shift));
  }
  mix(static_cast<uint8_t>(m.cls));
  const uint8_t* bytes = m.payload.data();
  for (size_t i = 0; i < m.payload.size(); ++i) mix(bytes[i]);
  return h;
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint32_t num_sites)
    : plan_(plan),
      num_sites_(num_sites),
      rng_(plan.seed),
      next_seq_(static_cast<size_t>(num_sites) * num_sites, 0) {}

void FaultInjector::BeginRun() {
  rng_ = Rng(MixSeed(plan_.seed, run_index_));
  ++run_index_;
  crashed_this_run_ = false;
  std::fill(next_seq_.begin(), next_seq_.end(), 0);
}

bool FaultInjector::RollFault(double p) {
  if (p <= 0) return false;
  if (faults_injected_ >= plan_.max_faults) return false;
  if (!rng_.Bernoulli(p)) return false;
  ++faults_injected_;
  return true;
}

uint64_t& FaultInjector::NextSeq(uint32_t src, uint32_t dst) {
  return next_seq_[static_cast<size_t>(src) * num_sites_ + dst];
}

void FaultInjector::DeliverRound(uint32_t round, std::vector<Message>& batch,
                                 RunHealth* health, FaultStats* stats) {
  // Crash: fires once per plan (crash_once) in the first run whose round
  // counter reaches crash_round; from then until the end of THIS run the
  // site neither sends nor receives.
  if (plan_.crash_site >= 0 && !crashed_this_run_ &&
      !(plan_.crash_once && crash_fired_) && round >= plan_.crash_round &&
      faults_injected_ < plan_.max_faults) {
    crashed_this_run_ = true;
    crash_fired_ = true;
    ++faults_injected_;
    ++stats->crashes;
    if (health != nullptr) {
      health->PoisonWith(StatusCode::kUnavailable,
                         "site " + std::to_string(plan_.crash_site) +
                             " crashed at round " + std::to_string(round));
    }
  }

  std::vector<Frame> delivered;
  delivered.reserve(batch.size());
  for (Message& m : batch) {
    ++stats->frames;
    Frame f;
    f.seq = NextSeq(m.src, m.dst)++;
    f.checksum = FrameChecksum(m);
    f.msg = std::move(m);

    if (crashed_this_run_ &&
        (f.msg.src == static_cast<uint32_t>(plan_.crash_site) ||
         f.msg.dst == static_cast<uint32_t>(plan_.crash_site))) {
      ++stats->crash_drops;
      continue;
    }

    const FaultProbs& p = plan_.ClassProbs(f.msg.cls);

    if (RollFault(p.drop)) {
      ++stats->drops;
      bool recovered = false;
      if (plan_.recovery) {
        double backoff = plan_.backoff_seconds;
        for (uint32_t attempt = 0; attempt < plan_.max_retries; ++attempt) {
          ++stats->retransmits;
          stats->backoff_seconds += backoff;
          backoff *= 2;
          if (!RollFault(p.drop)) {
            recovered = true;
            break;
          }
        }
      }
      if (!recovered) {
        ++stats->lost;
        if (plan_.recovery && health != nullptr) {
          health->PoisonWith(
              StatusCode::kUnavailable,
              "frame " + std::to_string(f.msg.src) + "->" +
                  std::to_string(f.msg.dst) + "#" + std::to_string(f.seq) +
                  " lost after " + std::to_string(plan_.max_retries) +
                  " retransmissions");
        }
        continue;
      }
    }

    bool mutated = false;
    if (f.msg.payload.size() > 0 && RollFault(p.corrupt)) {
      ++stats->corruptions;
      const size_t index = rng_.UniformInt(f.msg.payload.size());
      f.msg.payload.MutableData()[index] ^=
          static_cast<uint8_t>(1 + rng_.UniformInt(255));
      mutated = true;
    }
    if (f.msg.payload.size() > 0 && RollFault(p.truncate)) {
      ++stats->truncations;
      f.msg.payload.Truncate(rng_.UniformInt(f.msg.payload.size()));
      mutated = true;
    }
    if (mutated && plan_.recovery && FrameChecksum(f.msg) != f.checksum) {
      // The receive side of the tolerant transport: a frame whose payload
      // no longer matches its checksum is rejected, never delivered.
      ++stats->checksum_rejects;
      if (health != nullptr) {
        health->PoisonDecode(f.msg.cls,
                             "frame " + std::to_string(f.msg.src) + "->" +
                                 std::to_string(f.msg.dst) + "#" +
                                 std::to_string(f.seq) +
                                 " failed its checksum");
      }
      continue;
    }

    const bool duplicate = RollFault(p.duplicate);
    const bool displace = RollFault(p.reorder);
    if (duplicate) {
      ++stats->duplicates_injected;
      delivered.push_back(f);  // the extra copy
    }
    const size_t index = delivered.size();
    delivered.push_back(std::move(f));
    if (displace && delivered.size() > 1) {
      ++stats->reorders;
      const size_t other = rng_.UniformInt(delivered.size());
      std::swap(delivered[index], delivered[other]);
    }
  }

  batch.clear();
  if (plan_.recovery) {
    // The receive side heals the stream: order by (dst, src, seq) — which
    // restores each (src, dst) stream to send order — and discard
    // duplicate sequence numbers. The caller's stable per-destination sort
    // then sees exactly the fault-free stream.
    std::sort(delivered.begin(), delivered.end(),
              [](const Frame& a, const Frame& b) {
                if (a.msg.dst != b.msg.dst) return a.msg.dst < b.msg.dst;
                if (a.msg.src != b.msg.src) return a.msg.src < b.msg.src;
                return a.seq < b.seq;
              });
    for (size_t i = 0; i < delivered.size(); ++i) {
      if (i > 0 && delivered[i].msg.src == delivered[i - 1].msg.src &&
          delivered[i].msg.dst == delivered[i - 1].msg.dst &&
          delivered[i].seq == delivered[i - 1].seq) {
        ++stats->duplicates_discarded;
        continue;
      }
      batch.push_back(std::move(delivered[i].msg));
    }
  } else {
    for (Frame& f : delivered) batch.push_back(std::move(f.msg));
  }
}

}  // namespace dgs
