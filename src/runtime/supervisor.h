// Supervised persistent worker pool for the TCP transport backend
// (runtime/remote.h). A WorkerPool owns a fleet of forked worker
// processes — one per site-group — and keeps their FrameChannels open
// ACROSS runs, so a steady-state query pays one acked round trip instead
// of a fork + connect + handshake per Run().
//
// Liveness state machine (per worker slot):
//
//   kDown --fork+hello--> kLive --missed ping--> kSuspect
//                           ^        (echo resets to kLive)   |
//   (new deployment resets  |                                 v
//    every slot to kDown)   +--respawn (budget + backoff)-- kDead
//                                (EOF / waitpid / kill escalation)
//
// Between runs a supervisor thread pings every live worker each
// TransportOptions::heartbeat_interval_seconds on the existing frame
// protocol (FrameKind::kHeartbeat) and reaps exits with waitpid(WNOHANG);
// a worker missing max_missed_heartbeats consecutive echoes is killed and
// marked dead. During a run the supervisor stands down completely (the
// run path owns the channels; death is detected by the run's own
// classified I/O errors and reported via MarkDead). A dead worker is
// respawned at the NEXT BeginRunSession — the fresh fork re-ships the
// parent's current fragment view by copy-on-write — within a per-slot
// respawn budget (max_worker_respawns, exponential backoff); a slot over
// budget opens the circuit and BeginRunSession fails ResourceExhausted.
//
// The pool is deployment-scoped: BeginRunSession retires the whole fleet
// and re-forks when the caller's deploy_version changes (a fork-time
// actor snapshot belongs to its deployment). docs/FAILURES.md has the
// full supervision/failover story.

#ifndef DGS_RUNTIME_SUPERVISOR_H_
#define DGS_RUNTIME_SUPERVISOR_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/remote.h"
#include "runtime/transport.h"
#include "util/status.h"

namespace dgs {

// Runs in the forked child and never returns: connect to 127.0.0.1:port,
// send hello{group_index, generation}, serve ops until shutdown. The
// callback is invoked post-fork, so anything it captures is a fork-time
// copy-on-write snapshot of the parent.
using ChildEntry =
    std::function<void(uint32_t group_index, uint64_t generation,
                       uint16_t port)>;

class WorkerPool {
 public:
  // Starts the supervisor thread (if heartbeats are enabled). No workers
  // are forked until the first BeginRunSession.
  WorkerPool(const TransportOptions& options, ChildEntry entry);
  ~WorkerPool();  // graceful Shutdown

  // Brackets one run. BeginRunSession folds the between-runs supervision
  // ledger into *run_stats, pauses heartbeats, reaps silently-exited
  // workers, respawns dead slots (budget + backoff; newly forked workers
  // and their handshakes are charged to *run_stats as processes /
  // launch_seconds / respawns), and points every live channel's stats at
  // *run_stats. Fails kResourceExhausted when a slot is over its respawn
  // budget and kUnavailable when a fork/handshake fails; either way the
  // session is considered begun and EndRunSession must still be called.
  // A deploy_version different from the previous session's retires the
  // whole fleet first (fresh generation-0 fleet, fresh budgets).
  Status BeginRunSession(size_t num_groups, uint64_t deploy_version,
                         TransportStats* run_stats);

  // Ends the run: channels go back to the supervision ledger and the
  // heartbeat thread resumes.
  void EndRunSession();

  // Declares worker `g` dead mid-run (the run path saw a classified I/O
  // failure on its channel): SIGKILL + reap + close. The slot respawns at
  // the next BeginRunSession.
  void MarkDead(size_t g);

  // Run-path accessors (valid between Begin/EndRunSession).
  FrameChannel* channel(size_t g);
  bool alive(size_t g);
  uint64_t generation(size_t g);
  size_t size();

  // Stops the supervisor thread and retires the fleet (graceful = send
  // shutdown frames and give children a moment to exit; otherwise
  // SIGKILL). Idempotent.
  void Shutdown(bool graceful);

 private:
  enum class Liveness : uint8_t { kDown, kLive, kSuspect, kDead };

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::unique_ptr<FrameChannel> channel;
    Liveness state = Liveness::kDown;
    uint64_t generation = 0;      // of the current (or last) spawn
    uint64_t spawns = 0;          // next spawn's generation
    uint32_t respawns_used = 0;   // counted against max_worker_respawns
    uint32_t missed = 0;          // consecutive heartbeat misses
  };

  Status EnsureListenLocked();
  Status SpawnLocked(const std::vector<size_t>& need,
                     TransportStats* run_stats);
  void KillWorkerLocked(Worker& w);      // SIGKILL + blocking reap + close
  void ReapExitedLocked();               // waitpid(WNOHANG) sweep
  void RetireAllLocked(bool graceful);
  void HeartbeatLoop();
  void TickLocked();

  TransportOptions options_;
  ChildEntry entry_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Worker> workers_;
  uint64_t deploy_version_ = 0;
  int listen_fd_ = -1;   // held for the pool's lifetime
  uint16_t port_ = 0;
  bool run_active_ = false;
  bool stopping_ = false;
  // Wire/supervision activity between runs (heartbeat frames and bytes);
  // folded into the next run's stats at BeginRunSession.
  TransportStats supervision_;
  std::thread heartbeat_thread_;
};

}  // namespace dgs

#endif  // DGS_RUNTIME_SUPERVISOR_H_
