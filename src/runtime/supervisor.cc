#include "runtime/supervisor.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "util/timer.h"

namespace dgs {

WorkerPool::WorkerPool(const TransportOptions& options, ChildEntry entry)
    : options_(options), entry_(std::move(entry)) {
  if (options_.heartbeat_interval_seconds > 0) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(true); }

Status WorkerPool::EnsureListenLocked() {
  if (listen_fd_ >= 0) return Status::Ok();
  const int lfd = socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    return Status(StatusCode::kUnavailable,
                  std::string("worker pool listen socket failed: ") +
                      std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral, held for the pool's lifetime
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t addr_len = sizeof(addr);
  if (bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(lfd, 64) != 0 ||
      getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    close(lfd);
    return Status(StatusCode::kUnavailable,
                  std::string("worker pool listen failed: ") +
                      std::strerror(errno));
  }
  listen_fd_ = lfd;
  port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

Status WorkerPool::SpawnLocked(const std::vector<size_t>& need,
                               TransportStats* run_stats) {
  Status s = EnsureListenLocked();
  if (!s.ok()) return s;
  WallTimer launch_timer;

  // Fork every needed child before accepting any connection, so no child
  // inherits a sibling's accepted socket.
  for (size_t g : need) {
    Worker& w = workers_[g];
    const uint64_t gen = w.spawns;
    const pid_t pid = fork();
    if (pid == 0) {
      entry_(static_cast<uint32_t>(g), gen, port_);  // never returns
      _exit(10);
    }
    if (pid < 0) {
      for (size_t k : need) {
        if (workers_[k].channel == nullptr) KillWorkerLocked(workers_[k]);
      }
      return Status(StatusCode::kUnavailable,
                    std::string("worker pool fork failed: ") +
                        std::strerror(errno));
    }
    w.pid = pid;
    w.generation = gen;
    ++w.spawns;
  }

  // Accept and identify each child: hello{group, generation}.
  for (size_t i = 0; i < need.size(); ++i) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const double launch_timeout = std::max(options_.io_timeout_seconds, 10.0);
    const int pr = poll(&pfd, 1, static_cast<int>(launch_timeout * 1000.0));
    int fd = -1;
    if (pr > 0) fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      for (size_t k : need) {
        if (workers_[k].channel == nullptr) KillWorkerLocked(workers_[k]);
      }
      return Status(StatusCode::kUnavailable,
                    "worker pool child failed to connect");
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto channel = std::make_unique<FrameChannel>(fd, options_, run_stats);
    Blob hello;
    bool shutdown = false;
    const Status hs = channel->ReceiveData(&hello, &shutdown);
    Blob::Reader hr(hello);
    const uint64_t g = hr.GetVarint();
    const uint64_t gen = hr.GetVarint();
    const bool valid = hs.ok() && !shutdown && hr.ok() &&
                       g < workers_.size() &&
                       workers_[g].channel == nullptr &&
                       workers_[g].pid > 0 && gen == workers_[g].generation;
    if (!valid) {
      close(fd);
      for (size_t k : need) {
        if (workers_[k].channel == nullptr) KillWorkerLocked(workers_[k]);
      }
      return Status(StatusCode::kUnavailable,
                    "worker pool child handshake failed");
    }
    workers_[g].fd = fd;
    workers_[g].channel = std::move(channel);
    workers_[g].state = Liveness::kLive;
    workers_[g].missed = 0;
  }

  run_stats->processes += need.size();
  run_stats->launch_seconds += launch_timer.ElapsedSeconds();
  return Status::Ok();
}

Status WorkerPool::BeginRunSession(size_t num_groups, uint64_t deploy_version,
                                   TransportStats* run_stats) {
  std::unique_lock<std::mutex> lk(mu_);
  run_active_ = true;  // supervisor stands down until EndRunSession

  // Charge the between-runs supervision activity (heartbeat frames/bytes)
  // to the run that observes it.
  run_stats->Accumulate(supervision_);
  supervision_ = TransportStats{};

  if (deploy_version != deploy_version_ || workers_.size() != num_groups) {
    // New deployment: the fork-time actor snapshot of the old fleet is
    // stale. Retire it and start a fresh generation-0 fleet with a fresh
    // respawn budget.
    RetireAllLocked(true);
    workers_.clear();
    workers_.resize(num_groups);
    deploy_version_ = deploy_version;
  }

  ReapExitedLocked();
  for (Worker& w : workers_) {
    if (w.channel != nullptr) w.channel->set_stats(run_stats);
  }

  std::vector<size_t> need;
  for (size_t g = 0; g < workers_.size(); ++g) {
    if (workers_[g].state == Liveness::kDown ||
        workers_[g].state == Liveness::kDead) {
      need.push_back(g);
    }
  }
  if (need.empty()) return Status::Ok();

  obs::TraceSpan spawn_span("transport", "transport.spawn");
  spawn_span.Arg("groups", static_cast<uint64_t>(need.size()));

  // Respawn budget: the first spawn of a slot is free, each later one
  // counts against max_worker_respawns. Over budget => the circuit opens
  // and the caller sheds the run instead of forking doomed processes.
  double backoff = 0;
  for (size_t g : need) {
    Worker& w = workers_[g];
    if (w.spawns == 0) continue;
    if (w.respawns_used >= options_.max_worker_respawns) {
      return Status(StatusCode::kResourceExhausted,
                    "transport worker group " + std::to_string(g) +
                        " exhausted its respawn budget (" +
                        std::to_string(options_.max_worker_respawns) + ")");
    }
    backoff = std::max(backoff, options_.respawn_backoff_seconds *
                                    static_cast<double>(
                                        1u << std::min(w.respawns_used, 16u)));
    ++w.respawns_used;
    ++run_stats->respawns;
    obs::TraceInstant("transport", "transport.respawn",
                      {{"group", static_cast<uint64_t>(g)},
                       {"attempt", static_cast<uint64_t>(w.respawns_used)}});
  }
  if (backoff > 0) {
    usleep(static_cast<useconds_t>(std::min(backoff, 2.0) * 1e6));
  }
  return SpawnLocked(need, run_stats);
}

void WorkerPool::EndRunSession() {
  std::unique_lock<std::mutex> lk(mu_);
  for (Worker& w : workers_) {
    if (w.channel != nullptr) w.channel->set_stats(&supervision_);
  }
  run_active_ = false;
  lk.unlock();
  cv_.notify_all();
}

void WorkerPool::MarkDead(size_t g) {
  std::unique_lock<std::mutex> lk(mu_);
  if (g < workers_.size()) KillWorkerLocked(workers_[g]);
}

FrameChannel* WorkerPool::channel(size_t g) {
  std::unique_lock<std::mutex> lk(mu_);
  return g < workers_.size() ? workers_[g].channel.get() : nullptr;
}

bool WorkerPool::alive(size_t g) {
  std::unique_lock<std::mutex> lk(mu_);
  return g < workers_.size() && (workers_[g].state == Liveness::kLive ||
                                 workers_[g].state == Liveness::kSuspect);
}

uint64_t WorkerPool::generation(size_t g) {
  std::unique_lock<std::mutex> lk(mu_);
  return g < workers_.size() ? workers_[g].generation : 0;
}

size_t WorkerPool::size() {
  std::unique_lock<std::mutex> lk(mu_);
  return workers_.size();
}

void WorkerPool::KillWorkerLocked(Worker& w) {
  if (w.fd >= 0) close(w.fd);
  w.fd = -1;
  w.channel.reset();
  if (w.pid > 0) {
    kill(w.pid, SIGKILL);
    int status = 0;
    waitpid(w.pid, &status, 0);
    w.pid = -1;
  }
  w.state = Liveness::kDead;
}

void WorkerPool::ReapExitedLocked() {
  for (Worker& w : workers_) {
    if (w.pid <= 0) continue;
    int status = 0;
    if (waitpid(w.pid, &status, WNOHANG) == w.pid) {
      w.pid = -1;
      if (w.fd >= 0) close(w.fd);
      w.fd = -1;
      w.channel.reset();
      w.state = Liveness::kDead;
    }
  }
}

void WorkerPool::RetireAllLocked(bool graceful) {
  for (Worker& w : workers_) {
    const bool live =
        w.state == Liveness::kLive || w.state == Liveness::kSuspect;
    if (w.fd >= 0) {
      if (graceful && live && w.channel != nullptr) w.channel->SendShutdown();
      close(w.fd);
      w.fd = -1;
      w.channel.reset();
    }
    if (w.pid > 0) {
      // A live child exits on the shutdown frame / EOF; give it a moment,
      // then escalate. A dead-marked one is killed outright.
      if (!live || !graceful) kill(w.pid, SIGKILL);
      int status = 0;
      pid_t r = 0;
      for (int spin = 0; spin < 200; ++spin) {  // <= ~2s
        r = waitpid(w.pid, &status, WNOHANG);
        if (r != 0) break;
        usleep(10 * 1000);
      }
      if (r == 0) {
        kill(w.pid, SIGKILL);
        waitpid(w.pid, &status, 0);
      }
      w.pid = -1;
    }
    w.state = Liveness::kDown;
  }
}

void WorkerPool::Shutdown(bool graceful) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  std::unique_lock<std::mutex> lk(mu_);
  RetireAllLocked(graceful);
  workers_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void WorkerPool::HeartbeatLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  const auto interval = std::chrono::duration<double>(
      options_.heartbeat_interval_seconds);
  while (!stopping_) {
    if (cv_.wait_for(lk, interval, [this] { return stopping_; })) break;
    if (run_active_ || workers_.empty()) continue;
    TickLocked();
  }
}

void WorkerPool::TickLocked() {
  for (Worker& w : workers_) {
    if (w.state != Liveness::kLive && w.state != Liveness::kSuspect) continue;
    // Fast death detection: an exited child is dead regardless of what the
    // socket still buffers.
    int status = 0;
    if (w.pid > 0 && waitpid(w.pid, &status, WNOHANG) == w.pid) {
      w.pid = -1;
      if (w.fd >= 0) close(w.fd);
      w.fd = -1;
      w.channel.reset();
      w.state = Liveness::kDead;
      continue;
    }
    if (w.channel == nullptr) continue;
    const Status s = w.channel->Ping(options_.heartbeat_interval_seconds);
    ++supervision_.heartbeats_sent;
    if (s.ok()) {
      obs::TraceInstant("transport", "transport.heartbeat",
                        {{"status", "ok"}});
      w.state = Liveness::kLive;
      w.missed = 0;
      continue;
    }
    ++supervision_.heartbeats_missed;
    ++w.missed;
    obs::TraceInstant("transport", "transport.heartbeat",
                      {{"status", "missed"},
                       {"missed", static_cast<uint64_t>(w.missed)}});
    w.state = Liveness::kSuspect;
    if (s.code() != StatusCode::kDeadlineExceeded ||
        w.missed >= options_.max_missed_heartbeats) {
      // EOF / protocol desync is conclusive; repeated silence as well.
      KillWorkerLocked(w);
    }
  }
}

}  // namespace dgs
