// Transport layer of the cluster runtime: who executes a delivery round's
// site callbacks, and how the resulting messages travel.
//
// The runtime is layered (see runtime/cluster.h for the top of the stack):
//
//   Cluster            owns the delivery LOOP: round scheduling, the
//                      deterministic (dst, src) sort, fault injection,
//                      watchdog, and ALL RunStats accounting. It never
//                      touches a socket.
//   Transport          owns round EXECUTION: given the round kind and the
//                      per-site inboxes, run each active site's callback
//                      somewhere (threads, processes) and hand back the
//                      merged sends in site-id order plus measured
//                      durations. Two backends:
//   LoopbackTransport  in-process pooled fork-join — byte- and
//                      accounting-identical to the pre-transport runtime
//                      (the reference semantics, and the default).
//   SocketTransport    one OS process per site-group over TCP
//                      (runtime/remote.h): the BSP cost model's charged
//                      DS/PT numbers get real, measured socket bytes and
//                      latency next to them (TransportStats).
//
// Transport contract (what a backend must guarantee):
//
//   ORDERING   ExecuteRound receives `sites` ascending with one inbox per
//              site, each inbox already ordered by (src, send order at that
//              src). It must append every site's sends to *sends grouped by
//              site in ascending site-id order, preserving each site's send
//              order. This is the whole determinism story: the Cluster's
//              merge path then charges stats and sorts for the next round
//              exactly as the sequential reference would.
//   FRAMING    On a wire backend, each (src, dst) flush of a round travels
//              as one coalesced batch (one physical frame header per pair,
//              per-entry subheaders inside) — the charged-model analogue is
//              ClusterOptions::transport.coalesce. Physical frames carry a
//              sequence number and an FNV-1a checksum; receivers NACK
//              corrupt frames (bounded retransmit), discard duplicate
//              sequence numbers, and treat a gap as fatal.
//   FAILURES   Backends never abort on transport faults when a RunHealth is
//              bound: connection loss / short read => Unavailable, checksum
//              retransmits exhausted or protocol desync => DataLoss, a peer
//              stalled past TransportOptions::io_timeout_seconds =>
//              DeadlineExceeded. The poisoned run drains to quiescence like
//              every other poisoned run (actors go silent), and dead sites
//              simply stop producing sends.
//   STATE      Worker callbacks may run in another process: anything a
//              query needs back from workers must travel as messages or
//              through the SharedRunState channel below — never by reading
//              worker-actor members after Run() (the parent's copies are
//              stale under SocketTransport).
//
// docs/FAILURES.md consolidates the failure classification above with the
// worker-supervision and server-recovery layers built on top of it.
//
// Determinism across backends: because delivered bytes, delivery order, and
// the charged accounting are all fixed by this contract, a healthy run's
// results and RunStats are bit-identical between loopback and tcp for every
// thread count. The transport conformance suite (tests/transport_test.cc)
// and the DGS_TRANSPORT=tcp CI job enforce exactly that.

#ifndef DGS_RUNTIME_TRANSPORT_H_
#define DGS_RUNTIME_TRANSPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "runtime/fault.h"
#include "runtime/message.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dgs {

enum class TransportKind : uint8_t {
  kLoopback = 0,  // in-process (the deterministic reference backend)
  kTcp = 1,       // one OS process per site-group over 127.0.0.1 TCP
};

inline const char* TransportKindName(TransportKind kind) {
  return kind == TransportKind::kTcp ? "tcp" : "loopback";
}

// Per-(src,dst) coalesced batch framing: messages after the first in a
// round's flush pay this sub-header (class + length) instead of a full
// kMessageHeaderBytes header. The first message of a flush always pays the
// full header, so coalescing never charges more than per-message framing.
inline constexpr uint64_t kCoalescedEntryBytes = 4;

// Transport configuration, fixed per Cluster (ClusterOptions::transport).
struct TransportOptions {
  TransportKind kind = TransportKind::kLoopback;

  // kTcp: worker processes to fork; worker sites are split into that many
  // contiguous groups. 0 (default) = one process per worker site. The
  // coordinator always executes in the parent (result collection reads it).
  uint32_t num_processes = 0;

  // Charge one batch header per (src, dst) flush per round instead of a
  // full header per message (kCoalescedEntryBytes for the rest). Applies
  // to the charged RunStats model on every backend; the socket backend
  // always frames physically this way. Default ON since the full BENCH
  // trajectory was recorded with both framings (bench_wire's coalesce
  // table): the charged model now matches what the wire actually ships.
  // Set false to reproduce the historical per-message accounting.
  bool coalesce = true;

  // kTcp: poll() bound on every socket read. A peer silent for longer is
  // declared stalled and the run poisoned DeadlineExceeded.
  double io_timeout_seconds = 30.0;

  // kTcp: per-frame retransmission budget. A frame still failing its
  // checksum after this many NACK-triggered retransmits poisons DataLoss.
  uint32_t max_frame_retransmits = 4;

  // kTcp: keep the worker fleet resident across runs under a WorkerPool
  // (runtime/supervisor.h) instead of reforking per Run(). Requires a
  // RunBinding on the RunSession (Engine::Match provides one); sessions
  // without a binding — raw Cluster drivers, the update pipeline — fall
  // back to the per-run refork path regardless of this knob.
  bool persistent_workers = true;

  // kTcp + persistent_workers: supervision cadence. While no run is
  // active the pool pings each live worker every interval and waits up to
  // one interval for the echo; a worker missing max_missed_heartbeats
  // consecutive echoes is declared dead and reaped. 0 disables heartbeats
  // (death is then detected only at the next run).
  double heartbeat_interval_seconds = 0.25;
  uint32_t max_missed_heartbeats = 2;

  // kTcp + persistent_workers: per-worker respawn budget. Each respawn of
  // the same worker slot sleeps respawn_backoff_seconds * 2^(n-1) first;
  // a slot over budget opens the circuit — BeginRun poisons the run
  // ResourceExhausted instead of forking doomed processes.
  uint32_t max_worker_respawns = 3;
  double respawn_backoff_seconds = 0.002;

  // Deterministic physical-layer chaos, kTcp only (the conformance tests'
  // handle on the real recovery machinery; all default off):
  uint64_t chaos_corrupt_every = 0;    // corrupt every Nth data frame sent
  uint64_t chaos_duplicate_every = 0;  // send every Nth data frame twice
  uint32_t chaos_stall_at_round = 0;   // child sleeps at delivery round N
  uint32_t chaos_exit_at_round = 0;    // child _exit(1)s at delivery round N

  // Generation gate on chaos_stall_at_round / chaos_exit_at_round: they
  // fire only in workers whose spawn generation is <= this bound. The
  // default 0 means only the initial fleet crashes — a respawned worker
  // (generation 1) runs clean, which is exactly the kill → respawn →
  // re-ship → heal scenario the ChaosSoak suite drives. Refork-per-run
  // fleets are always generation 0, so one-shot outage semantics keep
  // their historical behavior.
  uint64_t chaos_kill_generation = 0;

  bool remote() const { return kind == TransportKind::kTcp; }
};

// Parses a transport spec string: "loopback", "tcp", or "tcp:<procs>"
// (e.g. "tcp:4" = four worker processes). Fails with InvalidArgument on
// anything else. The inverse rendering is TransportSpecString.
StatusOr<TransportOptions> ParseTransportSpec(const std::string& spec);
std::string TransportSpecString(const TransportOptions& options);

// Measured (not charged) transport accounting of one Run(). All zero on
// loopback — there is no wire. On tcp these are real socket numbers:
// `bytes_*` count every physical byte written to / read from the sockets
// (frame headers, retransmits, and duplicates included), which is what
// bench_transport reports next to the charged BSP data shipment.
struct TransportStats {
  uint64_t processes = 0;        // worker processes FORKED during the run
                                 // (0 on a steady-state persistent run)
  uint64_t frames_sent = 0;      // physical frames written (parent side)
  uint64_t frames_received = 0;  // physical frames read (parent side)
  uint64_t bytes_sent = 0;       // socket bytes written, headers included
  uint64_t bytes_received = 0;   // socket bytes read, headers included
  uint64_t retransmits = 0;      // frames re-sent after a NACK
  uint64_t checksum_rejects = 0; // received frames failing their checksum
  uint64_t duplicates_discarded = 0;  // duplicate sequence numbers dropped
  // Supervision ledger (persistent worker pool; all zero when supervision
  // is off or the fleet reforks per run). Supervision activity between two
  // runs is charged to the run that observes it at BeginRun.
  uint64_t respawns = 0;           // dead workers re-forked + re-shipped
  uint64_t heartbeats_sent = 0;    // supervision pings sent between runs
  uint64_t heartbeats_missed = 0;  // pings with no echo (suspect ticks)
  double launch_seconds = 0;     // fork + connect + handshake wall time
  double io_seconds = 0;         // parent wall time blocked on socket I/O

  void Accumulate(const TransportStats& other) {
    processes += other.processes;
    frames_sent += other.frames_sent;
    frames_received += other.frames_received;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    retransmits += other.retransmits;
    checksum_rejects += other.checksum_rejects;
    duplicates_discarded += other.duplicates_discarded;
    respawns += other.respawns;
    heartbeats_sent += other.heartbeats_sent;
    heartbeats_missed += other.heartbeats_missed;
    launch_seconds += other.launch_seconds;
    io_seconds += other.io_seconds;
  }
};

class SiteActor;

// Per-callback handle through which an actor reads its identity and sends.
// Sends are buffered in a per-site outbox owned by the transport and merged
// deterministically at the round barrier; Send never touches shared state.
// Constructed by the transport backend executing the callback — in the
// cluster's process (loopback, and the coordinator under tcp) or in a
// forked worker process (tcp).
class SiteContext {
 public:
  SiteContext(uint32_t num_workers, WireFormat wire_format, ThreadPool* pool,
              uint32_t site_id, std::vector<Message>* outbox)
      : num_workers_(num_workers),
        wire_format_(wire_format),
        pool_(pool),
        site_id_(site_id),
        outbox_(outbox) {}

  uint32_t site_id() const { return site_id_; }
  // Worker count (the coordinator is an extra site with id num_workers()).
  uint32_t num_workers() const { return num_workers_; }
  uint32_t coordinator_id() const { return num_workers_; }
  // The run's configured wire format (ClusterOptions::wire_format); actors
  // pass it to the core/protocol.h encoders. Decoders dispatch on the
  // self-describing payload tags and never need it.
  WireFormat wire_format() const { return wire_format_; }

  // The executing backend's thread pool, for intra-callback parallelism
  // (null when the executing process runs sequentially). Actors may hand it
  // to ComputeSimulation/LocalEngine/EquationSystem drains or use it to
  // encode per-destination payloads concurrently. Safe in every round:
  // when the pool is already driving a multi-site round, nested calls run
  // inline on the calling lane (ThreadPool's reentrancy rule); in a
  // single-active-site round — coordinator-side solves, which is where the
  // heavy intra-callback work lives — the idle lanes provide real
  // parallelism. Determinism obligations stay with the actor: anything
  // executed on the pool must produce thread-count-invariant results.
  ThreadPool* pool() const { return pool_; }

  void Send(uint32_t dst, MessageClass cls, Blob payload) {
    DGS_CHECK(dst <= num_workers_, "destination site out of range");
    Message m;
    m.src = site_id_;
    m.dst = dst;
    m.cls = cls;
    m.payload = std::move(payload);
    outbox_->push_back(std::move(m));
  }

 private:
  uint32_t num_workers_;
  WireFormat wire_format_;
  ThreadPool* pool_;
  uint32_t site_id_;
  std::vector<Message>* outbox_;
};

// A site's algorithm logic. One actor per worker plus one coordinator.
class SiteActor {
 public:
  virtual ~SiteActor() = default;

  // Called once before any message flows (phase 1 / partial evaluation).
  virtual void Setup(SiteContext& ctx) { (void)ctx; }

  // Called when the site has inbound messages this round.
  virtual void OnMessages(SiteContext& ctx, std::vector<Message> inbox) = 0;

  // Called at every quiescent point. Default: do nothing (stay done).
  virtual void OnQuiesce(SiteContext& ctx) { (void)ctx; }
};

// Which callback a round dispatches (see the round model in cluster.h).
enum class RoundKind : uint8_t {
  kSetup = 0,    // Setup() on every site, no inboxes
  kDeliver = 1,  // OnMessages() on the sites with inbound traffic
  kQuiesce = 2,  // OnQuiesce() on every site, no inboxes
};

// Cross-process side channel for run state that is NOT message traffic —
// concretely the AlgoCounters the actors increment during callbacks. The
// runtime cannot name core types (layering: core depends on runtime, never
// the reverse), so it ships the state as opaque snapshot/delta blobs:
//
//   parent, at BeginRun:     Encode(baseline)           -> ships to children
//   child, after each round: EncodeDelta(prev, delta)   -> rides the reply
//   parent, on each reply:   MergeDelta(delta)          -> folds into the
//                            live object (atomic adds, order-insensitive)
//
// Implementations must be delta-exact: applying every child's deltas in any
// order reproduces the single-process totals bit-for-bit (the counters are
// monotonic sums, so unsigned differences compose). core/serving.h's
// AlgoCountersChannel is the one implementation.
class SharedRunState {
 public:
  virtual ~SharedRunState() = default;

  // Serializes the current state into `out` (appends).
  virtual void Encode(Blob* out) const = 0;

  // Serializes (current state - `before`) into `out`, where `before` is a
  // Reader over a previous Encode() image.
  virtual void EncodeDelta(Blob::Reader& before, Blob* out) const = 0;

  // Folds a delta produced by EncodeDelta into the live state.
  virtual void MergeDelta(Blob::Reader& delta) = 0;
};

// Cross-process side channel for PER-RUN query state — what lets a
// persistent worker (forked once, reused across runs) pick up a query it
// was not forked with. Same layering trick as SharedRunState: the runtime
// ships opaque blobs, core/serving.h's QueryBindingChannel implements the
// codec (pattern + query options) against the fork-time deployment.
//
//   parent, at BeginRun:  EncodeBinding(blob)  -> ships to every worker
//   child, on receipt:    BindRemote(reader)   -> rebuilds the query from
//                         the blob against its fork-time deployment and
//                         hands back the child-owned RunHealth +
//                         SharedRunState to use for this run
//   child, at EndRun:     UnbindRemote()       -> drops per-query state
//
// The object bound at BeginRun must live at a stable address captured by
// the fork (an Engine member, not a stack temporary): the child calls the
// virtuals on its copy-on-write copy of that same object.
class RunBinding {
 public:
  virtual ~RunBinding() = default;

  // Parent side: serializes the armed query into `out` (appends).
  virtual void EncodeBinding(Blob* out) const = 0;

  // Child side: decodes a binding blob, rebuilds the query against the
  // fork-time deployment, and returns the per-run health/shared channel
  // (both owned by the binding, valid until UnbindRemote). False on a
  // malformed blob.
  virtual bool BindRemote(Blob::Reader& r, RunHealth** health,
                          SharedRunState** shared) = 0;

  // Child side: tears down the state BindRemote built (idempotent).
  virtual void UnbindRemote() = 0;
};

// Everything a Transport needs to know about one Run(), bound at BeginRun.
// All pointers are owned by the caller and must outlive EndRun().
struct RunSession {
  // Site actors, indexed by site id; size num_workers + 1 (coordinator
  // last). Under tcp the vector is snapshotted into the children by fork.
  const std::vector<SiteActor*>* actors = nullptr;
  // Poison flag of the run (null = unhealthy transports abort loudly).
  RunHealth* health = nullptr;
  // Optional counters side channel (see SharedRunState); may be null.
  SharedRunState* shared = nullptr;
  // Optional per-run query re-ship channel (see RunBinding); null disables
  // persistent workers for this run (the tcp backend reforks per run).
  RunBinding* binding = nullptr;
  // Identifies WHICH deployment the binding is armed against (Engine uses
  // family-slot + 1). A persistent fleet forked under one deploy_version
  // is torn down and re-forked when the version changes — its fork-time
  // actor snapshot belongs to the old deployment. 0 = no binding.
  uint64_t deploy_version = 0;
};

// Fixed per-cluster execution environment handed to MakeTransport.
struct TransportEnv {
  uint32_t num_workers = 0;
  WireFormat wire_format = WireFormat::kV2Delta;
  // The cluster's executor (null when num_threads == 1). Loopback drives
  // rounds on it; tcp uses it for the parent-resident coordinator and
  // re-creates an equivalent pool inside each worker process.
  ThreadPool* pool = nullptr;
  // The configured executor width (children cannot inspect the pool).
  uint32_t num_threads = 1;
};

// Round-execution backend. One per Cluster, same lifetime; BeginRun/EndRun
// bracket every Run() (tcp forks its worker processes in BeginRun and reaps
// them in EndRun; loopback's are no-ops).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;

  virtual void BeginRun(const RunSession& session) = 0;
  virtual void EndRun() = 0;

  // Executes one barrier round: dispatches `kind` on every site in `sites`
  // (ascending), with inboxes[i] as sites[i]'s inbound messages (empty
  // vector for kSetup/kQuiesce). Appends every site's sends to *sends in
  // ascending site-id order (each site's send order preserved — see the
  // ORDERING contract above), adds each callback's measured duration to
  // *total_compute, and returns the maximum callback duration (the BSP
  // critical path of the round). `round` is the 1-based delivery round
  // (0 for kSetup/kQuiesce).
  virtual double ExecuteRound(RoundKind kind, uint32_t round,
                              const std::vector<uint32_t>& sites,
                              std::vector<std::vector<Message>> inboxes,
                              std::vector<Message>* sends,
                              double* total_compute) = 0;

  // Measured transport accounting since BeginRun (see TransportStats).
  virtual const TransportStats& stats() const = 0;
};

// In-process reference backend: pooled fork-join rounds on env.pool,
// bit-identical results and accounting to the pre-transport runtime.
class LoopbackTransport : public Transport {
 public:
  explicit LoopbackTransport(const TransportEnv& env) : env_(env) {}

  TransportKind kind() const override { return TransportKind::kLoopback; }
  void BeginRun(const RunSession& session) override { session_ = session; }
  void EndRun() override {}
  double ExecuteRound(RoundKind kind, uint32_t round,
                      const std::vector<uint32_t>& sites,
                      std::vector<std::vector<Message>> inboxes,
                      std::vector<Message>* sends,
                      double* total_compute) override;
  const TransportStats& stats() const override { return stats_; }

 private:
  TransportEnv env_;
  RunSession session_;
  // Pooled per-round buffers: one outbox + duration slot per active site,
  // grown to the high-water mark once and reused every round of every run
  // (outboxes are drained into *sends but keep their capacity).
  std::vector<std::vector<Message>> outbox_pool_;
  std::vector<double> duration_pool_;
  TransportStats stats_;  // always zero: nothing is measured in-process
};

// Dispatches one site callback with a ready SiteContext. Shared by the
// loopback round loop, the socket parent (coordinator site), and the forked
// worker processes, so every backend executes callbacks identically.
void DispatchCallback(SiteActor* actor, RoundKind kind, SiteContext& ctx,
                      std::vector<Message> inbox);

// Builds the backend selected by `options.kind`. The TCP backend lives in
// runtime/remote.{h,cc}.
std::unique_ptr<Transport> MakeTransport(const TransportOptions& options,
                                         const TransportEnv& env);

}  // namespace dgs

#endif  // DGS_RUNTIME_TRANSPORT_H_
