// Wire format for inter-site messages.
//
// Data shipment is a headline metric of the paper, so every message is
// explicitly serialized into a byte buffer and its exact size is charged to
// the run's data-shipment counter (plus a fixed per-message header,
// kMessageHeaderBytes, covering addressing/framing).

#ifndef DGS_RUNTIME_MESSAGE_H_
#define DGS_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace dgs {

// Fixed per-message framing overhead charged by the cluster (source,
// destination, class, length).
inline constexpr uint64_t kMessageHeaderBytes = 16;

// Message classes, accounted separately (Section 6 reports data shipment of
// query processing; result collection and control flags are tracked but
// reported on their own).
enum class MessageClass : uint8_t {
  kData = 0,     // truth values, equations, shipped subgraphs
  kControl = 1,  // termination flags, superstep votes, subscriptions
  kResult = 2,   // final match collection to the coordinator
};

// Growable little-endian byte buffer with a sequential reader.
class Blob {
 public:
  Blob() = default;

  size_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }

  void PutU8(uint8_t x) { bytes_.push_back(x); }
  void PutU16(uint16_t x) { PutRaw(&x, 2); }
  void PutU32(uint32_t x) { PutRaw(&x, 4); }
  void PutU64(uint64_t x) { PutRaw(&x, 8); }

  // Sequential reader over a Blob. The Blob must outlive the reader.
  class Reader {
   public:
    explicit Reader(const Blob& blob) : blob_(&blob) {}

    bool AtEnd() const { return pos_ == blob_->size(); }
    size_t Remaining() const { return blob_->size() - pos_; }

    uint8_t GetU8() { return GetRaw<uint8_t>(); }
    uint16_t GetU16() { return GetRaw<uint16_t>(); }
    uint32_t GetU32() { return GetRaw<uint32_t>(); }
    uint64_t GetU64() { return GetRaw<uint64_t>(); }

   private:
    template <typename T>
    T GetRaw() {
      DGS_CHECK(pos_ + sizeof(T) <= blob_->size(), "blob underrun");
      T x;
      std::memcpy(&x, blob_->bytes_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
      return x;
    }

    const Blob* blob_;
    size_t pos_ = 0;
  };

 private:
  void PutRaw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<uint8_t> bytes_;
};

// A message in flight.
struct Message {
  uint32_t src = 0;
  uint32_t dst = 0;
  MessageClass cls = MessageClass::kData;
  Blob payload;

  uint64_t WireSize() const { return kMessageHeaderBytes + payload.size(); }
};

}  // namespace dgs

#endif  // DGS_RUNTIME_MESSAGE_H_
