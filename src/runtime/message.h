// Wire format for inter-site messages.
//
// Data shipment is a headline metric of the paper, so every message is
// explicitly serialized into a byte buffer and its exact size is charged to
// the run's data-shipment counter (plus a fixed per-message header,
// kMessageHeaderBytes, covering addressing/framing).
//
// Blob is the codec layer: fixed-width little-endian primitives plus LEB128
// varints (with zig-zag helpers for signed values). The varint codec is
// what the V2 delta wire format in core/protocol.h is built on.
//
// Reading is fail-soft: a Reader that runs past the end of the payload (or
// hits a malformed varint) marks itself failed, returns zeros from then on,
// and never touches memory out of bounds. Decoders check Reader::ok() and
// surface a decode error instead of crashing, so a truncated or corrupt
// payload can always be rejected cleanly.

#ifndef DGS_RUNTIME_MESSAGE_H_
#define DGS_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace dgs {

// Fixed per-message framing overhead charged by the cluster (source,
// destination, class, length).
inline constexpr uint64_t kMessageHeaderBytes = 16;

// Message classes, accounted separately (Section 6 reports data shipment of
// query processing; result collection and control flags are tracked but
// reported on their own).
enum class MessageClass : uint8_t {
  kData = 0,     // truth values, equations, shipped subgraphs
  kControl = 1,  // termination flags, superstep votes, subscriptions
  kResult = 2,   // final match collection to the coordinator
  kUpdate = 3,   // graph-mutation batches shipped to sites (dynamic graphs)
};

// Number of MessageClass values; sizes per-class arrays (drop counters,
// remote drop deltas) that must stay in lockstep with the enum.
inline constexpr size_t kNumMessageClasses = 4;

// Per-run wire format selector (threaded through DistOptions/ClusterOptions
// and read by the actors via SiteContext::wire_format()).
//
//   kV1Fixed  fixed-width records (u32 global node + u16 query node per
//             truth value); the original format, kept runnable for
//             benchmarking.
//   kV2Delta  sorted-gap varint deltas grouped by query node; encoders fall
//             back to the V1 body per message when the delta body would not
//             be smaller, so V2 never ships more bytes than V1.
//
// Payload tags are self-describing (see core/protocol.h), so decoders
// accept either format regardless of the configured knob.
enum class WireFormat : uint8_t {
  kV1Fixed = 1,
  kV2Delta = 2,
};

inline const char* WireFormatName(WireFormat format) {
  return format == WireFormat::kV1Fixed ? "v1" : "v2";
}

// Zig-zag mapping of signed values onto unsigned varints (small magnitudes,
// either sign, encode in few bytes).
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t x) {
  return static_cast<int64_t>(x >> 1) ^ -static_cast<int64_t>(x & 1);
}

// Growable little-endian byte buffer with a sequential reader.
class Blob {
 public:
  Blob() = default;

  size_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }

  void PutU8(uint8_t x) { bytes_.push_back(x); }
  void PutU16(uint16_t x) { PutRaw(&x, 2); }
  void PutU32(uint32_t x) { PutRaw(&x, 4); }
  void PutU64(uint64_t x) { PutRaw(&x, 8); }

  // Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  // Values < 128 take one byte; a full uint64_t takes ten.
  void PutVarint(uint64_t x) {
    while (x >= 0x80) {
      bytes_.push_back(static_cast<uint8_t>(x) | 0x80);
      x >>= 7;
    }
    bytes_.push_back(static_cast<uint8_t>(x));
  }
  void PutVarintSigned(int64_t v) { PutVarint(ZigZagEncode(v)); }

  // Appends another blob's bytes verbatim (used to splice a scratch-encoded
  // body behind a tag once the encoder has decided which format wins).
  void Append(const Blob& other) {
    bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
  }

  // Appends raw bytes verbatim (the transport layer splices message
  // payloads in and out of physical frames with this).
  void PutBytes(const void* p, size_t n) { PutRaw(p, n); }

  // In-place mutation hooks for the fault injector (runtime/fault.h):
  // corrupt-bytes flips bytes through MutableData(), truncate cuts the
  // tail. Encoders never rewrite bytes — only the chaotic transport does.
  uint8_t* MutableData() { return bytes_.data(); }
  void Truncate(size_t new_size) {
    DGS_CHECK(new_size <= bytes_.size(), "Truncate cannot grow a Blob");
    bytes_.resize(new_size);
  }

  // Sequential reader over a Blob. The Blob must outlive the reader.
  //
  // Reads past the end (or malformed varints) set a sticky failure flag and
  // return 0 instead of invoking undefined behavior; check ok() after a
  // decode to distinguish a clean parse from a truncated payload.
  class Reader {
   public:
    explicit Reader(const Blob& blob) : blob_(&blob) {}

    bool ok() const { return !failed_; }
    bool AtEnd() const { return pos_ == blob_->size(); }
    size_t Remaining() const { return blob_->size() - pos_; }

    uint8_t GetU8() { return GetRaw<uint8_t>(); }
    uint16_t GetU16() { return GetRaw<uint16_t>(); }
    uint32_t GetU32() { return GetRaw<uint32_t>(); }
    uint64_t GetU64() { return GetRaw<uint64_t>(); }

    // Unsigned LEB128. Fails on truncation and on encodings that overflow
    // 64 bits (more than ten bytes, or spare bits set in the tenth).
    uint64_t GetVarint() {
      uint64_t x = 0;
      for (uint32_t shift = 0; shift < 64; shift += 7) {
        if (pos_ >= blob_->size()) return Fail();
        const uint8_t b = blob_->bytes_[pos_++];
        if (shift == 63 && (b & 0xfe) != 0) return Fail();  // > 64 bits
        x |= static_cast<uint64_t>(b & 0x7f) << shift;
        if ((b & 0x80) == 0) return failed_ ? 0 : x;
      }
      return Fail();
    }
    int64_t GetVarintSigned() { return ZigZagDecode(GetVarint()); }

    // Copies the next n bytes into *out (appended; *out is otherwise left
    // alone). Fails soft like every other read: returns false — and reads
    // nothing — when fewer than n bytes remain.
    bool GetBytes(size_t n, Blob* out) {
      if (failed_ || blob_->size() - pos_ < n) {
        Fail();
        return false;
      }
      out->PutBytes(blob_->bytes_.data() + pos_, n);
      pos_ += n;
      return true;
    }

   private:
    uint64_t Fail() {
      failed_ = true;
      pos_ = blob_->size();
      return 0;
    }

    template <typename T>
    T GetRaw() {
      if (failed_ || blob_->size() - pos_ < sizeof(T)) {
        Fail();
        return T{};
      }
      T x;
      std::memcpy(&x, blob_->bytes_.data() + pos_, sizeof(T));
      pos_ += sizeof(T);
      return x;
    }

    const Blob* blob_;
    size_t pos_ = 0;
    bool failed_ = false;
  };

 private:
  void PutRaw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<uint8_t> bytes_;
};

// A message in flight.
struct Message {
  uint32_t src = 0;
  uint32_t dst = 0;
  MessageClass cls = MessageClass::kData;
  Blob payload;

  uint64_t WireSize() const { return kMessageHeaderBytes + payload.size(); }
};

}  // namespace dgs

#endif  // DGS_RUNTIME_MESSAGE_H_
