// Fault injection and tolerant delivery for the cluster runtime.
//
// The paper's DS/VN/round bounds assume reliable in-order delivery; a real
// transport gives no such thing. This header is the tolerance layer the
// future socket transport inherits, provable today against the in-process
// runtime because every fault is SEEDED AND DETERMINISTIC:
//
//   FaultPlan      what to break: per-message-class probabilities for
//                  drop / duplicate / reorder / corrupt-bytes / truncate,
//                  plus site-crash-at-round-R, a retry budget, and a total
//                  fault budget (max_faults) for inject-exactly-N tests.
//   FaultInjector  the chaotic transport: applies the plan to each delivery
//                  round's in-flight frames on the (single-threaded) merge
//                  path, so the fault sequence is a pure function of
//                  (plan, seed, run index) — identical for every executor
//                  width.
//   Frame          Message + per-(src,dst) sequence number + checksum: the
//                  framing the tolerant delivery layer wraps around every
//                  message, and what a socket header would carry.
//   RunHealth      the poison flag of one run, now code-carrying: the
//                  first failure wins and classifies the run (DataLoss for
//                  corruption, Unavailable for crash/loss, DeadlineExceeded
//                  for the round watchdog).
//
// Recovery semantics (FaultPlan::recovery, default on):
//   drop      -> bounded retry: each dropped frame is retransmitted up to
//                max_retries times (re-rolled per attempt) with a simulated
//                exponential backoff charged to the run's response time.
//                Retries exhausted => the frame is lost and the run is
//                poisoned Unavailable.
//   duplicate -> the extra copies are delivered and discarded by the
//                per-(src,dst) sequence-number dedup (idempotent delivery).
//   reorder   -> frames are shuffled in flight and healed by sorting on
//                (dst, src, seq) before the inboxes are sliced.
//   corrupt / truncate -> detected by the frame checksum; the payload is
//                unusable, so the run is poisoned DataLoss (counted in the
//                per-class decode-drop counters) and drains.
//   crash     -> from round R every frame from or to the site is dropped
//                and the run is poisoned Unavailable; with crash_once (the
//                default) the site is back for the next run, so a serving
//                retry succeeds.
//
// The recovered stream of a drop/dup/reorder plan is byte-for-byte the
// fault-free stream, and RunStats are charged at logical send time (never
// for retransmits or duplicates — those live in FaultStats), so results
// AND accounting under recovered faults are bit-identical to the fault-free
// run for every thread count. With recovery off, the raw chaos reaches the
// actors: missing/duplicated/shuffled delivery plus the fail-soft decoders'
// poison path — the environment the chaos tests use to prove the stack
// survives an untrusted transport.
//
// docs/FAILURES.md consolidates the status-code taxonomy, the IsRetryable
// table, and how the layers above (transport supervision, Server retries /
// failover / circuit breaker) build on this fault model.

#ifndef DGS_RUNTIME_FAULT_H_
#define DGS_RUNTIME_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/message.h"
#include "util/rng.h"
#include "util/status.h"

namespace dgs {

// Per-message-class fault probabilities, each in [0, 1].
struct FaultProbs {
  double drop = 0;
  double duplicate = 0;
  double reorder = 0;
  double corrupt = 0;
  double truncate = 0;

  bool Any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           truncate > 0;
  }
};

// A deterministic chaos schedule. Default-constructed plans are disabled
// (zero probabilities, no crash): the cluster then builds no injector and
// the delivery path is byte-for-byte the PR-1 fast path.
struct FaultPlan {
  // Per-class probabilities (kData / kControl / kResult / kUpdate).
  FaultProbs data;
  FaultProbs control;
  FaultProbs result;
  FaultProbs update;

  // Seed of the injector's PRNG. Each Run() reseeds with a hash of
  // (seed, run index), so retried queries see fresh — but reproducible —
  // rolls.
  uint64_t seed = 1;

  // Tolerant-delivery machinery on/off (see the file comment). Off = raw
  // chaos reaches the actors.
  bool recovery = true;
  // Retransmission budget per dropped frame; exhausting it loses the frame
  // and poisons the run Unavailable.
  uint32_t max_retries = 8;
  // Simulated backoff charged to response time per retransmission attempt
  // k (k = 1, 2, ...): backoff_seconds * 2^(k-1).
  double backoff_seconds = 0;

  // Site crash: from round `crash_round` of a run, site `crash_site`
  // neither sends nor receives and the run is poisoned Unavailable.
  // -1 = no crash. With crash_once the crash fires in one run only
  // (the site "restarts" afterwards), so a retried query succeeds.
  int64_t crash_site = -1;
  uint32_t crash_round = 1;
  bool crash_once = true;

  // Total injected-fault budget across the injector's lifetime (i.e. the
  // cluster's): once this many faults fired, delivery is clean. Lets tests
  // inject exactly one fault ("first attempt fails, retry succeeds").
  uint64_t max_faults = std::numeric_limits<uint64_t>::max();

  bool enabled() const {
    return data.Any() || control.Any() || result.Any() || update.Any() ||
           crash_site >= 0;
  }

  FaultProbs& ClassProbs(MessageClass cls) {
    switch (cls) {
      case MessageClass::kData:
        return data;
      case MessageClass::kControl:
        return control;
      case MessageClass::kResult:
        return result;
      case MessageClass::kUpdate:
        return update;
    }
    return data;
  }
  const FaultProbs& ClassProbs(MessageClass cls) const {
    return const_cast<FaultPlan*>(this)->ClassProbs(cls);
  }
};

// Parses a fault-plan spec string, e.g.
//   "drop=0.01,dup=0.02,reorder=0.05,corrupt=0.001"
//   "data.drop=0.1,crash=2@5,retries=16,backoff=1e-4,norecover"
// Entries are comma-separated `[class.]key=value` pairs. Keys: drop, dup,
// reorder, corrupt, truncate (probabilities; an optional data./control./
// result./update. prefix restricts the class, otherwise all classes are set),
// retries=N, backoff=SECONDS, maxfaults=N, seed=N, crash=SITE@ROUND,
// recovery=0|1 (norecover = recovery=0). Unknown keys or malformed values
// fail with InvalidArgument.
StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec);

// Human-readable one-line rendering of a plan (CLI/bench reporting).
std::string FaultPlanToString(const FaultPlan& plan);

// Chaos accounting of one Run(). Charged by the injector (and the round
// watchdog) on the single-threaded merge path; RunStats never include any
// of this, which is what keeps the paper's accounting fault-invariant.
struct FaultStats {
  uint64_t frames = 0;            // frames offered to the injector
  uint64_t drops = 0;             // first-transmission drops
  uint64_t retransmits = 0;       // retry attempts after drops
  uint64_t lost = 0;              // frames lost after the retry budget
  uint64_t duplicates_injected = 0;
  uint64_t duplicates_discarded = 0;  // removed by the sequence dedup
  uint64_t reorders = 0;          // frames displaced in delivery order
  uint64_t corruptions = 0;       // payload bytes flipped
  uint64_t truncations = 0;       // payload tails cut
  uint64_t checksum_rejects = 0;  // corrupt/truncated frames detected
  uint64_t crash_drops = 0;       // frames dropped from/to a crashed site
  uint64_t crashes = 0;           // crash events fired
  uint64_t watchdog_trips = 0;    // stalled rounds converted to a deadline
  double backoff_seconds = 0;     // simulated retry backoff charged to PT

  // Fault events the injector fired (what max_faults budgets).
  uint64_t Injected() const {
    return drops + duplicates_injected + reorders + corruptions +
           truncations + crashes;
  }

  void Accumulate(const FaultStats& other) {
    frames += other.frames;
    drops += other.drops;
    retransmits += other.retransmits;
    lost += other.lost;
    duplicates_injected += other.duplicates_injected;
    duplicates_discarded += other.duplicates_discarded;
    reorders += other.reorders;
    corruptions += other.corruptions;
    truncations += other.truncations;
    checksum_rejects += other.checksum_rejects;
    crash_drops += other.crash_drops;
    crashes += other.crashes;
    watchdog_trips += other.watchdog_trips;
    backoff_seconds += other.backoff_seconds;
  }
};

// Poison flag shared by the actors and the transport of one run. The first
// failure wins and records its classification; every subsequent callback
// drains without acting, so a poisoned run still reaches quiescence
// deterministically. Decode failures are additionally counted per message
// class (PoisonDecode), so the caller can tell which traffic class was
// corrupted and how often — the counts ride along in
// DistOutcome::decode_drops.
//
// Classification contract (what ToStatus() returns after poisoning):
//   DataLoss          a payload was corrupt/truncated/undecodable
//                     (Poison / PoisonDecode — actors and checksum layer)
//   Unavailable       a site crashed or a frame exhausted its retries
//   DeadlineExceeded  the round watchdog converted a stall
class RunHealth {
 public:
  RunHealth() = default;
  RunHealth(const RunHealth&) = delete;
  RunHealth& operator=(const RunHealth&) = delete;

  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  // Thread-safe (site callbacks may run concurrently); the first failure
  // wins — its code and reason are what ToStatus() reports forever after.
  void PoisonWith(StatusCode code, std::string reason) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!armed_) {
        armed_ = true;
        code_ = code;
        reason_ = std::move(reason);
      }
    }
    poisoned_.store(true, std::memory_order_release);
  }

  // The actors' decode-failure path: DataLoss.
  void Poison(std::string reason) {
    PoisonWith(StatusCode::kDataLoss, std::move(reason));
  }

  // Records a payload of class `cls` that failed to decode (or failed its
  // frame checksum), then poisons the run with DataLoss. Every
  // corrupt-payload site in the actors and the transport goes through here.
  void PoisonDecode(MessageClass cls, std::string reason) {
    drops_[static_cast<size_t>(cls)].fetch_add(1, std::memory_order_relaxed);
    Poison(std::move(reason));
  }

  // Number of payloads of `cls` dropped by decoders this run.
  uint64_t decode_drops(MessageClass cls) const {
    return drops_[static_cast<size_t>(cls)].load(std::memory_order_relaxed);
  }

  // Folds decode-drop counts reported by a remote worker process into this
  // (parent-side) health. The poison itself travels separately through
  // PoisonWith — the transport replays the remote classification, and the
  // first failure still wins (runtime/remote.h).
  void AccumulateRemoteDrops(MessageClass cls, uint64_t n) {
    drops_[static_cast<size_t>(cls)].fetch_add(n, std::memory_order_relaxed);
  }

  // Ok when the run stayed healthy; the first failure's classified Status
  // after poisoning.
  Status ToStatus() const {
    if (!poisoned()) return Status::Ok();
    std::lock_guard<std::mutex> lock(mu_);
    return Status(code_, reason_);
  }

 private:
  std::atomic<bool> poisoned_{false};
  std::array<std::atomic<uint64_t>, kNumMessageClasses> drops_{};
  mutable std::mutex mu_;
  bool armed_ = false;  // first-failure latch (code_/reason_ are set)
  StatusCode code_ = StatusCode::kDataLoss;
  std::string reason_;
};

// A message wrapped in transport framing: the per-(src,dst) sequence number
// that makes delivery idempotent under duplication and healable under
// reordering, and the payload checksum that classifies corruption. This is
// exactly what a socket transport's frame header would carry.
struct Frame {
  Message msg;
  uint64_t seq = 0;
  uint32_t checksum = 0;
};

// FNV-1a over (src, dst, cls, payload bytes). Cheap, deterministic, and
// sensitive to any single-byte mutation or truncation.
uint32_t FrameChecksum(const Message& m);

// The chaotic transport of one Cluster. All methods run on the cluster's
// merge thread (never concurrently), so the fault sequence is deterministic
// for every executor width. State that persists across runs: the run
// counter (reseeding), the crash-once latch, and the max_faults budget.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint32_t num_sites);

  // Starts a new run: resets per-run sequence/dedup state and reseeds the
  // PRNG from (plan.seed, run index).
  void BeginRun();

  // Applies the plan to one delivery round's in-flight messages (in the
  // deterministic merge order) and replaces `batch` with what the round
  // actually delivers. `round` is the 1-based delivery round. Poisons
  // `health` on unrecoverable faults (loss after retries, crash, detected
  // corruption); charges `stats` (and simulated backoff into
  // stats->backoff_seconds).
  void DeliverRound(uint32_t round, std::vector<Message>& batch,
                    RunHealth* health, FaultStats* stats);

  const FaultPlan& plan() const { return plan_; }

 private:
  bool RollFault(double p);  // Bernoulli(p) gated by the max_faults budget
  uint64_t& NextSeq(uint32_t src, uint32_t dst);

  FaultPlan plan_;
  uint32_t num_sites_;
  Rng rng_;
  uint64_t run_index_ = 0;
  uint64_t faults_injected_ = 0;  // lifetime count, against plan_.max_faults
  bool crash_fired_ = false;      // crash_once latch (across runs)
  bool crashed_this_run_ = false;
  std::vector<uint64_t> next_seq_;  // (num_sites)^2 per-(src,dst) counters
};

}  // namespace dgs

#endif  // DGS_RUNTIME_FAULT_H_
