#include "runtime/remote.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "runtime/supervisor.h"
#include "util/timer.h"

namespace dgs {
namespace {

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kData:
      return "data";
    case FrameKind::kNack:
      return "nack";
    case FrameKind::kShutdown:
      return "shutdown";
    case FrameKind::kHeartbeat:
      return "heartbeat";
  }
  return "unknown";
}

constexpr uint32_t kFrameMagic = 0x44475357u;  // "WSGD" little-endian
constexpr size_t kFrameHeaderBytes = 17;       // magic, kind, seq, len
constexpr size_t kFrameTrailerBytes = 4;       // FNV-1a checksum
constexpr uint32_t kMaxFramePayload = 1u << 30;

uint32_t Fnv1a(const uint8_t* p, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 16777619u;
  }
  return h;
}

void PutLE(std::vector<uint8_t>& buf, size_t off, const void* p, size_t n) {
  std::memcpy(buf.data() + off, p, n);
}

template <typename T>
T GetLE(const uint8_t* p) {
  T x;
  std::memcpy(&x, p, sizeof(T));
  return x;
}

}  // namespace

Status FrameChannel::WriteAll(const uint8_t* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kUnavailable,
                    std::string("transport write failed: ") +
                        std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  if (stats_ != nullptr) stats_->bytes_sent += n;
  return Status::Ok();
}

Status FrameChannel::ReadAll(uint8_t* data, size_t n,
                             double timeout_seconds) {
  size_t off = 0;
  while (off < n) {
    struct pollfd pfd = {fd_, POLLIN, 0};
    const int timeout_ms =
        std::max(1, static_cast<int>(timeout_seconds * 1000.0));
    const int pr = poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kUnavailable,
                    std::string("transport poll failed: ") +
                        std::strerror(errno));
    }
    if (pr == 0) {
      return Status(StatusCode::kDeadlineExceeded,
                    "transport peer silent past the io timeout (" +
                        std::to_string(timeout_seconds) + "s)");
    }
    const ssize_t r = recv(fd_, data + off, n - off, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kUnavailable,
                    std::string("transport read failed: ") +
                        std::strerror(errno));
    }
    if (r == 0) {
      return Status(StatusCode::kUnavailable,
                    "transport connection closed by peer (short read)");
    }
    off += static_cast<size_t>(r);
  }
  if (stats_ != nullptr) stats_->bytes_received += n;
  return Status::Ok();
}

Status FrameChannel::SendRaw(FrameKind kind, uint64_t seq, const Blob& payload,
                             bool allow_chaos) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::vector<uint8_t> buf(kFrameHeaderBytes + len + kFrameTrailerBytes);
  PutLE(buf, 0, &kFrameMagic, 4);
  buf[4] = static_cast<uint8_t>(kind);
  PutLE(buf, 5, &seq, 8);
  PutLE(buf, 13, &len, 4);
  if (len > 0) PutLE(buf, kFrameHeaderBytes, payload.data(), len);
  const uint32_t fnv = Fnv1a(buf.data() + 4, kFrameHeaderBytes - 4 + len);
  PutLE(buf, kFrameHeaderBytes + len, &fnv, 4);

  bool duplicate = false;
  if (kind == FrameKind::kData) {
    // Retain the clean image for NACK-triggered retransmission, then apply
    // the deterministic chaos knobs to the copy that hits the wire.
    retained_ = buf;
    ++data_frames_sent_;
    if (allow_chaos && options_.chaos_corrupt_every > 0 && len > 0 &&
        data_frames_sent_ % options_.chaos_corrupt_every == 0) {
      buf[kFrameHeaderBytes] ^= 0x5a;
    }
    if (allow_chaos && options_.chaos_duplicate_every > 0 &&
        data_frames_sent_ % options_.chaos_duplicate_every == 0) {
      duplicate = true;
    }
  }

  Status s = WriteAll(buf.data(), buf.size());
  if (stats_ != nullptr) ++stats_->frames_sent;
  if (s.ok()) {
    obs::TraceInstant("transport", "transport.frame",
                      {{"dir", "tx"},
                       {"kind", FrameKindName(kind)},
                       {"bytes", static_cast<uint64_t>(buf.size())}});
  }
  if (s.ok() && duplicate) {
    s = WriteAll(buf.data(), buf.size());
    if (stats_ != nullptr) ++stats_->frames_sent;
  }
  return s;
}

Status FrameChannel::SendData(const Blob& payload) {
  return SendRaw(FrameKind::kData, next_send_seq_++, payload, true);
}

Status FrameChannel::SendShutdown() {
  return SendRaw(FrameKind::kShutdown, 0, Blob{}, false);
}

Status FrameChannel::ReadFrame(FrameKind* kind, uint64_t* seq, Blob* payload,
                               bool* checksum_ok, double timeout_seconds) {
  uint8_t header[kFrameHeaderBytes];
  Status s = ReadAll(header, kFrameHeaderBytes, timeout_seconds);
  if (!s.ok()) return s;
  if (GetLE<uint32_t>(header) != kFrameMagic) {
    return Status(StatusCode::kDataLoss,
                  "transport protocol desync: bad frame magic");
  }
  *kind = static_cast<FrameKind>(header[4]);
  *seq = GetLE<uint64_t>(header + 5);
  const uint32_t len = GetLE<uint32_t>(header + 13);
  if (len > kMaxFramePayload) {
    return Status(StatusCode::kDataLoss,
                  "transport protocol desync: oversized frame");
  }
  std::vector<uint8_t> body(len + kFrameTrailerBytes);
  s = ReadAll(body.data(), body.size(), timeout_seconds);
  if (!s.ok()) return s;
  if (stats_ != nullptr) ++stats_->frames_received;
  obs::TraceInstant(
      "transport", "transport.frame",
      {{"dir", "rx"},
       {"kind", FrameKindName(*kind)},
       {"bytes", static_cast<uint64_t>(kFrameHeaderBytes + body.size())}});

  // Checksum covers (kind, seq, len, payload) — any single-byte mutation
  // or truncation of the frame in flight is detected here.
  uint32_t fnv = Fnv1a(header + 4, kFrameHeaderBytes - 4);
  for (uint32_t i = 0; i < len; ++i) {
    fnv ^= body[i];
    fnv *= 16777619u;
  }
  *checksum_ok = fnv == GetLE<uint32_t>(body.data() + len);
  if (!*checksum_ok && stats_ != nullptr) ++stats_->checksum_rejects;
  *payload = Blob{};
  payload->PutBytes(body.data(), len);
  return Status::Ok();
}

Status FrameChannel::ReceiveData(Blob* payload, bool* shutdown) {
  *shutdown = false;
  uint32_t rejects = 0;
  for (;;) {
    FrameKind kind;
    uint64_t seq = 0;
    Blob body;
    bool checksum_ok = false;
    Status s = ReadFrame(&kind, &seq, &body, &checksum_ok,
                         options_.io_timeout_seconds);
    if (!s.ok()) return s;
    if (!checksum_ok) {
      // Heartbeats are never NACKed (the peer retains only data frames);
      // the supervisor's next ping re-verifies liveness anyway.
      if (kind == FrameKind::kHeartbeat) continue;
      if (++rejects > options_.max_frame_retransmits) {
        return Status(StatusCode::kDataLoss,
                      "transport frame failed its checksum after " +
                          std::to_string(rejects - 1) + " retransmits");
      }
      obs::TraceInstant("transport", "transport.nack", {{"seq", seq}});
      Blob nack;  // the NACKed sequence number rides in the header
      s = SendRaw(FrameKind::kNack, seq, nack, false);
      if (!s.ok()) return s;
      continue;
    }

    switch (kind) {
      case FrameKind::kShutdown:
        *shutdown = true;
        return Status::Ok();
      case FrameKind::kHeartbeat:
        // The worker side answers supervision pings from inside its
        // receive loop; everyone else skips the stray echo (e.g. one
        // answered after the supervisor already timed its ping out).
        if (heartbeat_responder_) {
          s = SendRaw(FrameKind::kHeartbeat, 0, Blob{}, false);
          if (!s.ok()) return s;
        }
        continue;
      case FrameKind::kNack: {
        // The peer rejected our retained data frame: resend the clean copy.
        if (retained_.empty()) {
          return Status(StatusCode::kDataLoss,
                        "transport NACK with no frame to retransmit");
        }
        if (stats_ != nullptr) {
          ++stats_->retransmits;
          ++stats_->frames_sent;
        }
        obs::TraceInstant("transport", "transport.retransmit",
                          {{"seq", seq},
                           {"bytes", static_cast<uint64_t>(retained_.size())}});
        s = WriteAll(retained_.data(), retained_.size());
        if (!s.ok()) return s;
        continue;
      }
      case FrameKind::kData:
        break;
    }

    if (seq < next_recv_seq_) {  // duplicate delivery: discard (idempotent)
      if (stats_ != nullptr) ++stats_->duplicates_discarded;
      continue;
    }
    if (seq > next_recv_seq_) {
      return Status(StatusCode::kDataLoss,
                    "transport protocol desync: sequence gap (got " +
                        std::to_string(seq) + ", want " +
                        std::to_string(next_recv_seq_) + ")");
    }
    ++next_recv_seq_;
    *payload = std::move(body);
    return Status::Ok();
  }
}

Status FrameChannel::Ping(double timeout_seconds) {
  Status s = SendRaw(FrameKind::kHeartbeat, 0, Blob{}, false);
  if (!s.ok()) return s;
  WallTimer timer;
  for (;;) {
    const double left = timeout_seconds - timer.ElapsedSeconds();
    if (left <= 0) {
      return Status(StatusCode::kDeadlineExceeded,
                    "heartbeat echo silent past the supervision interval");
    }
    FrameKind kind;
    uint64_t seq = 0;
    Blob body;
    bool checksum_ok = false;
    s = ReadFrame(&kind, &seq, &body, &checksum_ok, left);
    if (!s.ok()) return s;
    if (!checksum_ok) continue;  // the next ping re-verifies liveness
    if (kind == FrameKind::kHeartbeat) return Status::Ok();
    if (kind == FrameKind::kNack) {
      if (retained_.empty()) continue;
      if (stats_ != nullptr) {
        ++stats_->retransmits;
        ++stats_->frames_sent;
      }
      s = WriteAll(retained_.data(), retained_.size());
      if (!s.ok()) return s;
      continue;
    }
    // Data between runs is a protocol desync: the worker owes us nothing.
    return Status(StatusCode::kDataLoss,
                  "transport protocol desync: unexpected frame between runs");
  }
}

namespace {

// Request opcodes: the first payload byte of every parent->worker data
// frame. Responses echo the opcode. kOpRound responses carry the round
// body; control-op acks are `u8 op | u8 ok | [code, len, reason if !ok]`.
// Control ops are acked so the normal NACK/retransmit recovery applies to
// them before any round traffic depends on their effect.
constexpr uint8_t kOpRound = 0;     // execute one delivery round
constexpr uint8_t kOpBeginRun = 1;  // persistent: bind this run's query
constexpr uint8_t kOpEndRun = 2;    // persistent: detach from the run

// Contiguous range of worker sites served by one child process.
struct GroupSpec {
  uint32_t first = 0;
  uint32_t count = 0;
};

double DecodeDuration(uint64_t bits) { return std::bit_cast<double>(bits); }
uint64_t EncodeDuration(double d) { return std::bit_cast<uint64_t>(d); }

// Closes every inherited descriptor except stdio and `keep` — a forked
// child must not pin sibling transports' sockets (or anything else the
// parent had open) until _exit.
void CloseInheritedFds(int keep) {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return;
  const int dir_fd = dirfd(dir);
  std::vector<int> to_close;
  while (struct dirent* e = readdir(dir)) {
    char* end = nullptr;
    const long fd = std::strtol(e->d_name, &end, 10);
    if (end == e->d_name || *end != '\0') continue;
    if (fd <= 2 || fd == dir_fd || fd == keep) continue;
    to_close.push_back(static_cast<int>(fd));
  }
  closedir(dir);
  for (int fd : to_close) close(fd);
}

// ---------------------------------------------------------------------------
// Round request / response payload codec (rides inside data frames).
//
// Request:   u8 op (kOpRound) | u8 round-kind | varint round | u8 poisoned
//            [poisoned: u8 code, varint len, reason bytes]
//            varint n_sites, per site:
//              varint site | varint n_src_runs, per run:
//                varint src | varint n_msgs, per message:
//                  u8 class | varint len | payload bytes
// Response:  u8 op (kOpRound) | varint n_sites, per site (request order):
//              varint site | u64 duration-bits | varint n_sends, per send:
//                varint dst | u8 class | varint len | payload bytes
//            varint shared-delta len | delta bytes
//            u8 poisoned [poisoned: u8 code, varint len, reason bytes]
//            varint decode-drop delta per message class
//
// The per-site inbox is grouped into (src, run) batches — the coalesced
// batch framing of the ISSUE: one sub-header per (src, dst) flush, one
// physical frame per (child, round).
// ---------------------------------------------------------------------------

void EncodePoison(RunHealth* health, Blob* out) {
  const Status s = health != nullptr ? health->ToStatus() : Status::Ok();
  if (s.ok()) {
    out->PutU8(0);
    return;
  }
  out->PutU8(1);
  out->PutU8(static_cast<uint8_t>(s.code()));
  out->PutVarint(s.message().size());
  out->PutBytes(s.message().data(), s.message().size());
}

// Returns false on a malformed section. Applies the poison to `health`
// (first failure wins, so re-reporting is idempotent).
bool DecodePoison(Blob::Reader& r, RunHealth* health) {
  const uint8_t poisoned = r.GetU8();
  if (!r.ok()) return false;
  if (poisoned == 0) return true;
  const StatusCode code = static_cast<StatusCode>(r.GetU8());
  const uint64_t len = r.GetVarint();
  Blob reason_bytes;
  if (!r.GetBytes(len, &reason_bytes)) return false;
  if (health != nullptr) {
    health->PoisonWith(
        code, std::string(reinterpret_cast<const char*>(reason_bytes.data()),
                          reason_bytes.size()));
  }
  return true;
}

void EncodeInbox(const std::vector<Message>& inbox, Blob* out) {
  // Count the contiguous (src) runs — the inbox arrives sorted by
  // (src, send order), so equal sources are adjacent.
  uint64_t runs = 0;
  for (size_t i = 0; i < inbox.size(); ++i) {
    if (i == 0 || inbox[i].src != inbox[i - 1].src) ++runs;
  }
  out->PutVarint(runs);
  size_t i = 0;
  while (i < inbox.size()) {
    size_t j = i;
    while (j < inbox.size() && inbox[j].src == inbox[i].src) ++j;
    out->PutVarint(inbox[i].src);
    out->PutVarint(j - i);
    for (size_t k = i; k < j; ++k) {
      out->PutU8(static_cast<uint8_t>(inbox[k].cls));
      out->PutVarint(inbox[k].payload.size());
      out->PutBytes(inbox[k].payload.data(), inbox[k].payload.size());
    }
    i = j;
  }
}

bool DecodeInbox(Blob::Reader& r, uint32_t dst, std::vector<Message>* inbox) {
  const uint64_t runs = r.GetVarint();
  for (uint64_t g = 0; g < runs && r.ok(); ++g) {
    const uint32_t src = static_cast<uint32_t>(r.GetVarint());
    const uint64_t count = r.GetVarint();
    for (uint64_t k = 0; k < count && r.ok(); ++k) {
      Message m;
      m.src = src;
      m.dst = dst;
      m.cls = static_cast<MessageClass>(r.GetU8());
      const uint64_t len = r.GetVarint();
      if (!r.GetBytes(len, &m.payload)) return false;
      inbox->push_back(std::move(m));
    }
  }
  return r.ok();
}

// ---------------------------------------------------------------------------
// Child process: serve ops for one site-group until shutdown. A refork
// child lives for one run; a pool child persists across runs, picking up
// each run's query via kOpBeginRun (RunBinding) and answering supervision
// heartbeats between runs from inside ReceiveData.
// ---------------------------------------------------------------------------

struct ChildConfig {
  uint32_t group_index = 0;
  uint64_t generation = 0;
  GroupSpec group;
  uint16_t port = 0;
  TransportOptions options;
  TransportEnv env;
  RunSession session;
};

[[noreturn]] void ChildMain(const ChildConfig& cfg) {
  // The parent's executor threads did not survive the fork; drop the
  // inherited pool pointer and build this process's own lanes below.
  // Likewise the inherited trace recorder: its rings live in the parent's
  // heap image, so child-side events would be invisible after flush.
  // Worker compute durations ride home in each round response and are
  // emitted parent-side as post-hoc site.compute spans instead.
  obs::TraceRecorder::Uninstall();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) _exit(10);
  CloseInheritedFds(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    _exit(11);
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  FrameChannel channel(fd, cfg.options, nullptr);
  channel.set_heartbeat_responder(true);
  Blob hello;
  hello.PutVarint(cfg.group_index);
  hello.PutVarint(cfg.generation);
  if (!channel.SendData(hello).ok()) _exit(12);

  std::unique_ptr<ThreadPool> pool;
  if (cfg.env.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(cfg.env.num_threads);
  }

  const std::vector<SiteActor*>& actors = *cfg.session.actors;
  // Fork-time run channels (refork sessions use these for their single
  // run); a persistent run replaces them per kOpBeginRun with the
  // binding's child-owned objects.
  SharedRunState* shared = cfg.session.shared;
  RunHealth* health = cfg.session.health;
  RunBinding* binding = cfg.session.binding;
  bool bound = false;
  Blob shared_before;
  if (shared != nullptr) shared->Encode(&shared_before);
  uint64_t drops_before[kNumMessageClasses] = {};
  // Chaos generation gate: a respawned worker (generation above the bound)
  // runs clean — the kill -> respawn -> re-ship -> heal scenario.
  const bool chaos_armed =
      cfg.generation <= cfg.options.chaos_kill_generation;

  std::vector<Message> outbox;
  for (;;) {
    Blob req;
    bool shutdown = false;
    if (!channel.ReceiveData(&req, &shutdown).ok()) _exit(13);
    if (shutdown) _exit(0);

    Blob::Reader r(req);
    const uint8_t op = r.GetU8();
    if (!r.ok()) _exit(14);

    if (op == kOpBeginRun) {
      r.GetVarint();  // deploy version: informational — the pool already
                      // re-forked the fleet if the deployment changed
      RunHealth* bound_health = nullptr;
      SharedRunState* bound_shared = nullptr;
      const bool ok = binding != nullptr && r.ok() &&
                      binding->BindRemote(r, &bound_health, &bound_shared);
      Blob ack;
      ack.PutU8(kOpBeginRun);
      ack.PutU8(ok ? 1 : 0);
      if (ok) {
        bound = true;
        health = bound_health;
        shared = bound_shared;
        shared_before = Blob{};
        if (shared != nullptr) shared->Encode(&shared_before);
        for (size_t c = 0; c < kNumMessageClasses; ++c) {
          drops_before[c] =
              health != nullptr
                  ? health->decode_drops(static_cast<MessageClass>(c))
                  : 0;
        }
      } else {
        ack.PutU8(static_cast<uint8_t>(StatusCode::kDataLoss));
        const std::string reason = "transport worker failed to bind the run";
        ack.PutVarint(reason.size());
        ack.PutBytes(reason.data(), reason.size());
      }
      if (!channel.SendData(ack).ok()) _exit(18);
      continue;
    }

    if (op == kOpEndRun) {
      if (bound) {
        binding->UnbindRemote();
        bound = false;
        health = cfg.session.health;
        shared = cfg.session.shared;
      }
      Blob ack;
      ack.PutU8(kOpEndRun);
      ack.PutU8(1);
      if (!channel.SendData(ack).ok()) _exit(18);
      continue;
    }

    if (op != kOpRound) _exit(14);
    const RoundKind kind = static_cast<RoundKind>(r.GetU8());
    const uint32_t round = static_cast<uint32_t>(r.GetVarint());
    if (!DecodePoison(r, health)) _exit(14);

    if (kind == RoundKind::kDeliver && chaos_armed) {  // deterministic chaos
      if (cfg.options.chaos_exit_at_round != 0 &&
          round == cfg.options.chaos_exit_at_round) {
        _exit(1);
      }
      if (cfg.options.chaos_stall_at_round != 0 &&
          round == cfg.options.chaos_stall_at_round) {
        for (;;) pause();  // stalled peer: the parent's io timeout fires
      }
    }

    const uint64_t n_sites = r.GetVarint();
    Blob resp;
    resp.PutU8(kOpRound);
    resp.PutVarint(n_sites);
    for (uint64_t i = 0; i < n_sites; ++i) {
      const uint32_t site = static_cast<uint32_t>(r.GetVarint());
      std::vector<Message> inbox;
      if (!DecodeInbox(r, site, &inbox)) _exit(15);
      if (site >= actors.size() || actors[site] == nullptr) _exit(16);
      outbox.clear();
      SiteContext ctx(cfg.env.num_workers, cfg.env.wire_format, pool.get(),
                      site, &outbox);
      WallTimer timer;
      DispatchCallback(actors[site], kind, ctx, std::move(inbox));
      const double duration = timer.ElapsedSeconds();
      resp.PutVarint(site);
      resp.PutU64(EncodeDuration(duration));
      resp.PutVarint(outbox.size());
      for (const Message& m : outbox) {
        resp.PutVarint(m.dst);
        resp.PutU8(static_cast<uint8_t>(m.cls));
        resp.PutVarint(m.payload.size());
        resp.PutBytes(m.payload.data(), m.payload.size());
      }
    }
    if (!r.ok()) _exit(17);

    if (shared != nullptr) {
      Blob now;
      shared->Encode(&now);
      Blob delta;
      Blob::Reader before(shared_before);
      shared->EncodeDelta(before, &delta);
      resp.PutVarint(delta.size());
      resp.Append(delta);
      shared_before = std::move(now);
    } else {
      resp.PutVarint(0);
    }
    EncodePoison(health, &resp);
    for (size_t c = 0; c < kNumMessageClasses; ++c) {
      const uint64_t now =
          health != nullptr
              ? health->decode_drops(static_cast<MessageClass>(c))
              : 0;
      resp.PutVarint(now - drops_before[c]);
      drops_before[c] = now;
    }

    if (!channel.SendData(resp).ok()) _exit(18);
  }
}

// ---------------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------------

struct ChildLink {
  pid_t pid = -1;
  int fd = -1;
  std::unique_ptr<FrameChannel> channel;
  bool alive = false;
};

class SocketTransport : public Transport {
 public:
  SocketTransport(const TransportOptions& options, const TransportEnv& env)
      : options_(options), env_(env) {}

  ~SocketTransport() override {
    TeardownLegacy(false);
    if (pool_ != nullptr) pool_->Shutdown(true);
  }

  TransportKind kind() const override { return TransportKind::kTcp; }

  void BeginRun(const RunSession& session) override;
  void EndRun() override;

  double ExecuteRound(RoundKind kind, uint32_t round,
                      const std::vector<uint32_t>& sites,
                      std::vector<std::vector<Message>> inboxes,
                      std::vector<Message>* sends,
                      double* total_compute) override;

  const TransportStats& stats() const override { return stats_; }

 private:
  // Classifies a transport failure: poisons the bound RunHealth, or aborts
  // loudly when the caller bound none (raw Cluster users opt in).
  void Fail(const Status& status) {
    if (session_.health != nullptr) {
      session_.health->PoisonWith(status.code(), status.message());
      return;
    }
    DGS_CHECK(false, status.message().c_str());
  }

  // Mode-dispatched per-group fleet access: one run executes either on
  // the supervised pool (persistent_run_) or on the refork links.
  bool GroupAlive(size_t g) {
    return persistent_run_ ? pool_->alive(g) : links_[g].alive;
  }
  FrameChannel* GroupChannel(size_t g) {
    return persistent_run_ ? pool_->channel(g) : links_[g].channel.get();
  }
  void KillGroup(size_t g, const Status& status) {
    if (persistent_run_) {
      pool_->MarkDead(g);
    } else {
      if (links_[g].fd >= 0) close(links_[g].fd);
      links_[g].fd = -1;
      links_[g].channel.reset();
      links_[g].alive = false;
    }
    Fail(status);
  }

  void ComputeGroups();
  void BeginRunLegacy();
  void BeginRunPersistent();
  void EndRunPersistent(bool graceful);
  void TeardownLegacy(bool graceful);

  uint32_t GroupOf(uint32_t site) const { return site_group_[site]; }

  TransportOptions options_;
  TransportEnv env_;
  RunSession session_;
  std::vector<GroupSpec> groups_;
  std::vector<uint32_t> site_group_;  // worker site -> group index
  std::vector<ChildLink> links_;      // refork-per-run fleet
  std::unique_ptr<WorkerPool> pool_;  // persistent supervised fleet
  bool persistent_run_ = false;       // this run executes on pool_
  TransportStats stats_;
};

void SocketTransport::ComputeGroups() {
  const uint32_t nw = env_.num_workers;
  uint32_t procs = options_.num_processes == 0 ? nw : options_.num_processes;
  procs = std::min(procs, nw);
  groups_.clear();
  site_group_.assign(nw, 0);
  if (procs == 0) return;
  const uint32_t base = nw / procs;
  const uint32_t rem = nw % procs;
  uint32_t next = 0;
  for (uint32_t g = 0; g < procs; ++g) {
    GroupSpec spec;
    spec.first = next;
    spec.count = base + (g < rem ? 1 : 0);
    next += spec.count;
    for (uint32_t s = spec.first; s < spec.first + spec.count; ++s) {
      site_group_[s] = g;
    }
    groups_.push_back(spec);
  }
}

void SocketTransport::BeginRun(const RunSession& session) {
  TeardownLegacy(false);  // a prior refork run that never reached EndRun
  if (persistent_run_) EndRunPersistent(false);  // abandoned pool session
  session_ = session;
  stats_ = TransportStats{};
  ComputeGroups();
  const bool persistent = options_.persistent_workers &&
                          session_.binding != nullptr &&
                          session_.deploy_version != 0 && !groups_.empty();
  if (persistent) {
    BeginRunPersistent();
  } else {
    BeginRunLegacy();
  }
}

void SocketTransport::EndRun() {
  if (persistent_run_) {
    EndRunPersistent(true);
  } else {
    TeardownLegacy(true);
  }
}

void SocketTransport::BeginRunPersistent() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(
        options_, [this](uint32_t g, uint64_t gen, uint16_t port) {
          // Runs in the forked child: everything read off `this` is the
          // copy-on-write snapshot taken at spawn time — i.e. the current
          // deployment's groups and the current run's session.
          ChildConfig cfg;
          cfg.group_index = g;
          cfg.generation = gen;
          cfg.group = groups_[g];
          cfg.port = port;
          cfg.options = options_;
          cfg.env = env_;
          cfg.session = session_;
          ChildMain(cfg);
        });
  }
  persistent_run_ = true;  // EndRun must close the session either way
  const Status s = pool_->BeginRunSession(groups_.size(),
                                          session_.deploy_version, &stats_);
  if (!s.ok()) {
    Fail(s);
    return;
  }

  // Ship the run's binding to every live worker. Acked: corruption is
  // recovered by the normal NACK/retransmit machinery before any round
  // traffic depends on the bind having happened.
  Blob begin;
  begin.PutU8(kOpBeginRun);
  begin.PutVarint(session_.deploy_version);
  session_.binding->EncodeBinding(&begin);
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (!pool_->alive(g)) continue;
    const Status ss = pool_->channel(g)->SendData(begin);
    if (!ss.ok()) KillGroup(g, ss);
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (!pool_->alive(g)) continue;
    Blob ack;
    bool shutdown = false;
    const Status ss = pool_->channel(g)->ReceiveData(&ack, &shutdown);
    if (!ss.ok() || shutdown) {
      KillGroup(g, ss.ok() ? Status(StatusCode::kUnavailable,
                                    "transport worker closed mid-run")
                           : ss);
      continue;
    }
    Blob::Reader r(ack);
    const uint8_t op = r.GetU8();
    const uint8_t ok = r.GetU8();
    if (!r.ok() || op != kOpBeginRun) {
      KillGroup(g, Status(StatusCode::kDataLoss,
                          "transport worker sent a malformed response"));
      continue;
    }
    if (ok == 0) {
      StatusCode code = StatusCode::kDataLoss;
      std::string reason = "transport worker failed to bind the run";
      const StatusCode c = static_cast<StatusCode>(r.GetU8());
      const uint64_t len = r.GetVarint();
      Blob reason_bytes;
      if (r.ok() && r.GetBytes(len, &reason_bytes)) {
        code = c;
        reason.assign(reinterpret_cast<const char*>(reason_bytes.data()),
                      reason_bytes.size());
      }
      KillGroup(g, Status(code, reason));
    }
  }
}

void SocketTransport::EndRunPersistent(bool graceful) {
  if (graceful) {
    // Detach every live worker from the run (acked). A failure here does
    // NOT poison — the run already completed; the worker is just marked
    // dead and respawned before the next run.
    Blob end;
    end.PutU8(kOpEndRun);
    for (size_t g = 0; g < groups_.size(); ++g) {
      if (!pool_->alive(g)) continue;
      if (!pool_->channel(g)->SendData(end).ok()) {
        pool_->MarkDead(g);
        continue;
      }
      Blob ack;
      bool shutdown = false;
      const Status s = pool_->channel(g)->ReceiveData(&ack, &shutdown);
      Blob::Reader r(ack);
      const bool acked = s.ok() && !shutdown && r.GetU8() == kOpEndRun &&
                         r.GetU8() == 1 && r.ok();
      if (!acked) pool_->MarkDead(g);
    }
  }
  pool_->EndRunSession();
  persistent_run_ = false;
}

void SocketTransport::BeginRunLegacy() {
  links_.clear();
  links_.resize(groups_.size());
  if (groups_.empty()) return;  // coordinator-only cluster: nothing to fork
  WallTimer launch_timer;

  const int lfd = socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    Fail(Status(StatusCode::kUnavailable,
                std::string("transport listen socket failed: ") +
                    std::strerror(errno)));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t addr_len = sizeof(addr);
  if (bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(lfd, static_cast<int>(groups_.size())) != 0 ||
      getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    close(lfd);
    Fail(Status(StatusCode::kUnavailable,
                std::string("transport listen failed: ") +
                    std::strerror(errno)));
    return;
  }
  const uint16_t port = ntohs(addr.sin_port);

  // Fork every child before accepting any connection, so no child inherits
  // a sibling's socket.
  for (size_t g = 0; g < groups_.size(); ++g) {
    const pid_t pid = fork();
    if (pid == 0) {
      ChildConfig cfg;
      cfg.group_index = static_cast<uint32_t>(g);
      cfg.generation = 0;  // refork fleets are always generation 0
      cfg.group = groups_[g];
      cfg.port = port;
      cfg.options = options_;
      cfg.env = env_;
      cfg.session = session_;
      ChildMain(cfg);  // never returns
    }
    if (pid < 0) {
      close(lfd);
      Fail(Status(StatusCode::kUnavailable,
                  std::string("transport fork failed: ") +
                      std::strerror(errno)));
      return;
    }
    links_[g].pid = pid;
  }

  // Accept and identify every child (the first frame is hello{group, gen}).
  for (size_t i = 0; i < groups_.size(); ++i) {
    struct pollfd pfd = {lfd, POLLIN, 0};
    const double launch_timeout =
        std::max(options_.io_timeout_seconds, 10.0);
    const int pr = poll(&pfd, 1, static_cast<int>(launch_timeout * 1000.0));
    if (pr <= 0) {
      close(lfd);
      Fail(Status(StatusCode::kUnavailable,
                  "transport worker process failed to connect"));
      return;
    }
    const int fd = accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      close(lfd);
      Fail(Status(StatusCode::kUnavailable,
                  std::string("transport accept failed: ") +
                      std::strerror(errno)));
      return;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto channel = std::make_unique<FrameChannel>(fd, options_, &stats_);
    Blob hello;
    bool shutdown = false;
    const Status hs = channel->ReceiveData(&hello, &shutdown);
    Blob::Reader hr(hello);
    const uint64_t g = hr.GetVarint();
    hr.GetVarint();  // generation (always 0 on this path)
    if (!hs.ok() || shutdown || !hr.ok() || g >= links_.size() ||
        links_[g].alive) {
      close(fd);
      close(lfd);
      Fail(Status(StatusCode::kUnavailable,
                  "transport worker handshake failed"));
      return;
    }
    links_[g].fd = fd;
    links_[g].channel = std::move(channel);
    links_[g].alive = true;
  }
  close(lfd);
  stats_.processes = groups_.size();
  stats_.launch_seconds = launch_timer.ElapsedSeconds();
}

double SocketTransport::ExecuteRound(RoundKind kind, uint32_t round,
                                     const std::vector<uint32_t>& sites,
                                     std::vector<std::vector<Message>> inboxes,
                                     std::vector<Message>* sends,
                                     double* total_compute) {
  const std::vector<SiteActor*>& actors = *session_.actors;
  const size_t n = sites.size();
  std::vector<std::vector<Message>> results(n);
  std::vector<double> durations(n, 0.0);

  // Remote compute spans are reconstructed post-hoc: the child reports its
  // per-site duration in the round response, and we emit a span starting at
  // the moment this round began shipping, in the site's own lane.
  obs::TraceRecorder* rec = obs::TraceRecorder::Active();
  const uint64_t round_start_ns = rec != nullptr ? obs::MonotonicNanos() : 0;

  // Partition the active sites: coordinator (and any site with no live
  // child — its messages die with it, crash semantics) runs locally.
  std::vector<std::vector<size_t>> members(groups_.size());
  std::vector<size_t> local;
  for (size_t i = 0; i < n; ++i) {
    if (sites[i] >= env_.num_workers) {
      local.push_back(i);
    } else {
      members[GroupOf(sites[i])].push_back(i);
    }
  }

  // 1) Ship every group's request — one coalesced frame per child per
  // round — before reading anything back, so the children compute while
  // the parent runs its local sites.
  WallTimer io_timer;
  {
    obs::TraceSpan tx_span("transport", "transport.tx");
    tx_span.Arg("round", static_cast<uint64_t>(round));
    for (size_t g = 0; g < groups_.size(); ++g) {
      if (members[g].empty() || !GroupAlive(g)) continue;
      Blob req;
      req.PutU8(kOpRound);
      req.PutU8(static_cast<uint8_t>(kind));
      req.PutVarint(round);
      EncodePoison(session_.health, &req);
      req.PutVarint(members[g].size());
      for (size_t i : members[g]) {
        req.PutVarint(sites[i]);
        EncodeInbox(i < inboxes.size() ? inboxes[i] : std::vector<Message>{},
                    &req);
      }
      const Status s = GroupChannel(g)->SendData(req);
      if (!s.ok()) KillGroup(g, s);
    }
  }
  stats_.io_seconds += io_timer.ElapsedSeconds();

  // 2) Local sites (the coordinator) overlap with the children.
  for (size_t i : local) {
    std::vector<Message> outbox;
    SiteContext ctx(env_.num_workers, env_.wire_format, env_.pool, sites[i],
                    &outbox);
    obs::TraceSpan compute_span("transport", "site.compute",
                                obs::kSiteLaneBase + sites[i]);
    compute_span.Arg("site", static_cast<uint64_t>(sites[i]));
    compute_span.Arg("round", static_cast<uint64_t>(round));
    WallTimer timer;
    DispatchCallback(actors[sites[i]], kind, ctx,
                     i < inboxes.size() ? std::move(inboxes[i])
                                        : std::vector<Message>{});
    durations[i] = timer.ElapsedSeconds();
    results[i] = std::move(outbox);
  }

  // 3) Collect responses in group order (deterministic fold order for the
  // health/counter channels; message order is fixed by site id anyway).
  const uint64_t rx_start_ns = rec != nullptr ? obs::MonotonicNanos() : 0;
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (members[g].empty() || !GroupAlive(g)) continue;
    Blob resp;
    bool shutdown = false;
    io_timer.Restart();
    Status s = GroupChannel(g)->ReceiveData(&resp, &shutdown);
    stats_.io_seconds += io_timer.ElapsedSeconds();
    if (!s.ok() || shutdown) {
      KillGroup(g, s.ok() ? Status(StatusCode::kUnavailable,
                                   "transport worker closed mid-run")
                          : s);
      continue;
    }
    Blob::Reader r(resp);
    const uint8_t op = r.GetU8();
    const uint64_t n_sites = r.GetVarint();
    bool well_formed =
        r.ok() && op == kOpRound && n_sites == members[g].size();
    for (uint64_t k = 0; well_formed && k < n_sites; ++k) {
      const size_t i = members[g][k];
      const uint32_t site = static_cast<uint32_t>(r.GetVarint());
      durations[i] = DecodeDuration(r.GetU64());
      if (rec != nullptr && site == sites[i]) {
        // Post-hoc: the child computed [round start, +duration) in its own
        // process; land the span in the site's lane over that window.
        rec->Complete("transport", "site.compute", round_start_ns,
                      static_cast<uint64_t>(durations[i] * 1e9),
                      obs::kSiteLaneBase + site,
                      {{"site", static_cast<uint64_t>(site)},
                       {"round", static_cast<uint64_t>(round)},
                       {"remote", static_cast<uint64_t>(1)}});
      }
      const uint64_t n_sends = r.GetVarint();
      well_formed = r.ok() && site == sites[i];
      for (uint64_t m = 0; well_formed && m < n_sends; ++m) {
        Message msg;
        msg.src = site;
        msg.dst = static_cast<uint32_t>(r.GetVarint());
        msg.cls = static_cast<MessageClass>(r.GetU8());
        const uint64_t len = r.GetVarint();
        well_formed = r.GetBytes(len, &msg.payload) &&
                      msg.dst <= env_.num_workers;
        if (well_formed) results[i].push_back(std::move(msg));
      }
    }
    if (well_formed) {
      const uint64_t delta_len = r.GetVarint();
      if (delta_len > 0) {
        Blob delta;
        well_formed = r.GetBytes(delta_len, &delta);
        if (well_formed && session_.shared != nullptr) {
          Blob::Reader dr(delta);
          session_.shared->MergeDelta(dr);
          well_formed = dr.ok();
        }
      }
    }
    if (well_formed) well_formed = DecodePoison(r, session_.health);
    for (size_t c = 0; well_formed && c < kNumMessageClasses; ++c) {
      const uint64_t drops = r.GetVarint();
      well_formed = r.ok();
      if (well_formed && drops > 0 && session_.health != nullptr) {
        session_.health->AccumulateRemoteDrops(static_cast<MessageClass>(c),
                                               drops);
      }
    }
    if (!well_formed) {
      KillGroup(g, Status(StatusCode::kDataLoss,
                          "transport worker sent a malformed response"));
    }
  }
  if (rec != nullptr) {
    rec->Complete("transport", "transport.rx", rx_start_ns,
                  obs::MonotonicNanos() - rx_start_ns, 0,
                  {{"round", static_cast<uint64_t>(round)}});
  }

  // 4) Deterministic merge: ascending site order, send order preserved.
  double round_max = 0;
  for (size_t i = 0; i < n; ++i) {
    *total_compute += durations[i];
    round_max = std::max(round_max, durations[i]);
    for (Message& m : results[i]) sends->push_back(std::move(m));
  }
  return round_max;
}

void SocketTransport::TeardownLegacy(bool graceful) {
  for (ChildLink& link : links_) {
    if (link.fd >= 0) {
      if (graceful && link.alive) link.channel->SendShutdown();
      close(link.fd);
      link.fd = -1;
      link.channel.reset();
    }
    if (link.pid > 0) {
      // Give a live child a moment to see the shutdown frame / EOF; a
      // stalled or dead-marked one is killed outright.
      if (!link.alive) kill(link.pid, SIGKILL);
      int status = 0;
      pid_t r = 0;
      for (int spin = 0; spin < 200; ++spin) {  // <= ~2s
        r = waitpid(link.pid, &status, WNOHANG);
        if (r != 0) break;
        usleep(10 * 1000);
      }
      if (r == 0) {
        kill(link.pid, SIGKILL);
        waitpid(link.pid, &status, 0);
      }
      link.pid = -1;
    }
    link.alive = false;
  }
  links_.clear();
}

}  // namespace

std::unique_ptr<Transport> MakeSocketTransport(const TransportOptions& options,
                                               const TransportEnv& env) {
  return std::make_unique<SocketTransport>(options, env);
}

}  // namespace dgs
