#include "runtime/message.h"

// Header-only for now; this translation unit pins the vtable-free types and
// keeps the build layout uniform (one .cc per module).
