#include "serve/admission.h"

namespace dgs {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kPriority:
      return "priority";
  }
  return "unknown";
}

}  // namespace dgs
