#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <utility>

#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dgs {

namespace serve_internal {

// Shared completion state of one submitted query (the promise half of a
// ServerTicket). Completed exactly once, by a worker or — for admission
// failures — by Submit itself.
struct ServerJob {
  // Bound at submission; immutable afterwards (cache_key and
  // labels_touched are owned by whichever single thread holds the job).
  Pattern pattern;
  QueryOptions query;
  std::string cache_key;  // set by the worker under CacheMode::kFull
  bool labels_touched = false;  // SJF pricing already touched the cache
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
  // Replica-failover state (see docs/FAILURES.md). The budget is set at
  // submission to num_replicas - 1: a query may visit every replica once
  // before the same-replica retry policy takes over, so a fleet-wide
  // outage still terminates. The admission priority is remembered so a
  // failover re-enqueue keeps the query's place in line.
  uint32_t failovers_left = 0;
  int64_t admit_priority = 0;
  // Probe of an open circuit breaker: admitted while everything else is
  // shed; its completion closes the circuit (success) or re-arms the
  // probe slot (failure).
  bool is_probe = false;
  // Observability (docs/OBSERVABILITY.md): end-to-end latency is measured
  // from here; `took_degraded_path` marks a query that survived at least
  // one retry or failover, feeding the e2e_retried histogram.
  uint64_t submit_ns = 0;  // obs::MonotonicNanos at Submit entry
  bool took_degraded_path = false;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  DistOutcome outcome;  // meaningful iff done && status.ok()

  void Complete(Status s, DistOutcome o) {
    {
      std::lock_guard<std::mutex> lock(mu);
      DGS_CHECK(!done, "ServerJob completed twice");
      status = std::move(s);
      outcome = std::move(o);
      done = true;
    }
    cv.notify_all();
  }
};

}  // namespace serve_internal

using serve_internal::ServerJob;

bool ServerTicket::Ready() const {
  DGS_CHECK(valid(), "Ready() on an invalid ServerTicket");
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->done;
}

StatusOr<DistOutcome> ServerTicket::Wait() {
  DGS_CHECK(valid(), "Wait() on an invalid ServerTicket");
  ServerJob& job = *job_;
  std::unique_lock<std::mutex> lock(job.mu);
  job.cv.wait(lock, [&job] { return job.done; });
  if (!job.status.ok()) return job.status;
  return job.outcome;
}

Server::Server(const Graph* g, std::optional<Fragmentation> owned,
               const Fragmentation* frag, const ServerOptions& options)
    : graph_(g),
      owned_frag_(std::move(owned)),
      frag_(owned_frag_.has_value() ? &*owned_frag_ : frag),
      options_(options),
      cache_(g, options.cache, options.cache_max_result_bytes),
      queue_(options.max_queue, options.policy),
      registry_(*g, options.engine.num_threads) {}

Status Server::SpawnReplicas(const Graph& g) {
  uint32_t replicas = options_.num_replicas;
  if (replicas == 0) replicas = ThreadPool::HardwareThreads();
  // One structure-facts memo for the whole deployment: whichever replica
  // first needs a fact computes it, the rest read it.
  if (options_.engine.structure_facts == nullptr) {
    options_.engine.structure_facts = std::make_shared<SharedStructureFacts>();
  }
  replicas_.reserve(replicas);
  for (uint32_t i = 0; i < replicas; ++i) {
    auto engine = Engine::Create(g, frag_, options_.engine);
    if (!engine.ok()) return engine.status();
    replicas_.push_back(std::move(engine).value());
  }
  replica_versions_.assign(replicas_.size(), nullptr);  // all at version 0
  replica_strikes_.assign(replicas_.size(), 0);
  return Status::Ok();
}

bool Server::CircuitOpenLocked() const {
  if (options_.circuit_breaker_strikes == 0 || replica_strikes_.empty()) {
    return false;
  }
  for (uint32_t strikes : replica_strikes_) {
    if (strikes < options_.circuit_breaker_strikes) return false;
  }
  return true;
}

StatusOr<std::unique_ptr<Server>> Server::Create(
    const Graph& g, const std::vector<uint32_t>& assignment,
    uint32_t num_fragments, const ServerOptions& options) {
  WallTimer timer;
  auto fragmentation = Fragmentation::Create(g, assignment, num_fragments);
  if (!fragmentation.ok()) return fragmentation.status();
  std::unique_ptr<Server> server(
      new Server(&g, std::move(fragmentation).value(), nullptr, options));
  Status spawned = server->SpawnReplicas(g);
  if (!spawned.ok()) return spawned;
  if (!options.defer_workers) server->Start();
  server->stats_.deploy_seconds = timer.ElapsedSeconds();
  server->stats_.replicas = server->num_replicas();
  return server;
}

StatusOr<std::unique_ptr<Server>> Server::Create(
    const Graph& g, const Fragmentation* fragmentation,
    const ServerOptions& options) {
  if (fragmentation == nullptr) {
    return Status::InvalidArgument("fragmentation must not be null");
  }
  WallTimer timer;
  std::unique_ptr<Server> server(
      new Server(&g, std::nullopt, fragmentation, options));
  Status spawned = server->SpawnReplicas(g);
  if (!spawned.ok()) return spawned;
  if (!options.defer_workers) server->Start();
  server->stats_.deploy_seconds = timer.ElapsedSeconds();
  server->stats_.replicas = server->num_replicas();
  return server;
}

Server::~Server() { Shutdown(); }

ServerTicket Server::Submit(const Pattern& q, const QueryOptions& query,
                            const SubmitOptions& submit) {
  auto job = std::make_shared<ServerJob>();
  job->submit_ns = obs::MonotonicNanos();
  job->pattern = q;
  job->query = query;
  const double deadline_seconds = submit.deadline_seconds > 0
                                      ? submit.deadline_seconds
                                      : options_.default_deadline_seconds;
  if (deadline_seconds > 0) {
    job->has_deadline = true;
    job->deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(deadline_seconds));
  }

  // The admission path stays cheap so overload is shed at the door
  // without cache contention: label warming and key canonicalization are
  // the worker's job. The one exception is the priority policy's
  // shortest-job-first default — its price must accompany the Push.
  int64_t priority = submit.priority;
  if (options_.policy == AdmissionPolicy::kPriority && submit.priority == 0) {
    const uint64_t cost = cache_.TouchAndEstimate(q);
    job->labels_touched = true;
    priority = -static_cast<int64_t>(std::min<uint64_t>(
        cost, static_cast<uint64_t>(std::numeric_limits<int64_t>::max())));
  }
  job->admit_priority = priority;
  job->failovers_left =
      replicas_.size() > 1 ? static_cast<uint32_t>(replicas_.size()) - 1 : 0;

  // Graceful degradation (docs/FAILURES.md): when every replica is
  // circuit-broken — ServerOptions::circuit_breaker_strikes consecutive
  // retryable failures each — shed at the door instead of queueing work
  // the fleet keeps failing, except one probe at a time: its success
  // closes the circuit, its failure re-arms the probe slot.
  bool shed = false;
  if (options_.circuit_breaker_strikes > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shut_down_ && CircuitOpenLocked()) {
      if (probe_in_flight_) {
        shed = true;
        ++stats_.submitted;
        ++stats_.rejected_overload;
        ++stats_.degraded_rejections;
      } else {
        probe_in_flight_ = true;
        job->is_probe = true;
      }
    }
  }
  if (shed) {
    latency_.e2e_rejected.Record(obs::MonotonicNanos() - job->submit_ns);
    obs::TraceInstant("serve", "server.reject", {{"reason", "degraded"}});
    job->Complete(
        Status::ResourceExhausted(
            "server is degraded: every replica is circuit-broken after "
            "consecutive retryable failures, and a probe query is already "
            "in flight"),
        DistOutcome{});
    return ServerTicket(std::move(job));
  }

  Status admitted = queue_.Push(job, priority);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (admitted.ok()) {
      ++stats_.admitted;
    } else if (admitted.code() == StatusCode::kResourceExhausted) {
      ++stats_.rejected_overload;
    } else {
      ++stats_.rejected_shutdown;
    }
    // A probe that never reached the queue must not wedge the breaker.
    if (!admitted.ok() && job->is_probe) probe_in_flight_ = false;
  }
  if (!admitted.ok()) {
    latency_.e2e_rejected.Record(obs::MonotonicNanos() - job->submit_ns);
    obs::TraceInstant(
        "serve", "server.reject",
        {{"reason", admitted.code() == StatusCode::kResourceExhausted
                        ? "overload"
                        : "shutdown"}});
    job->Complete(std::move(admitted), DistOutcome{});
  } else {
    obs::TraceInstant("serve", "server.admission",
                      {{"priority", static_cast<double>(priority)},
                       {"probe", static_cast<uint64_t>(job->is_probe)}});
  }
  return ServerTicket(std::move(job));
}

std::vector<ServerTicket> Server::SubmitBatch(std::span<const Pattern> queries,
                                              const QueryOptions& query,
                                              const SubmitOptions& submit) {
  std::vector<ServerTicket> tickets;
  tickets.reserve(queries.size());
  for (const Pattern& q : queries) tickets.push_back(Submit(q, query, submit));
  return tickets;
}

StatusOr<DistOutcome> Server::Match(const Pattern& q, const QueryOptions& query,
                                    const SubmitOptions& submit) {
  return Submit(q, query, submit).Wait();
}

uint64_t Server::EstimateCost(const Pattern& q) {
  return cache_.TouchAndEstimate(q);
}

void Server::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  StartLocked();
}

void Server::StartLocked() {
  if (started_) return;
  started_ = true;
  workers_.reserve(replicas_.size());
  for (uint32_t i = 0; i < replicas_.size(); ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this, i);
  }
}

void Server::Shutdown() {
  // Serialized: a second (or concurrent) Shutdown returns only after the
  // first finished draining.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.Close();
  {
    // Deferred servers may hold a backlog with no workers yet; graceful
    // drain means accepted work still completes, so start them now.
    std::lock_guard<std::mutex> lock(mu_);
    StartLocked();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void Server::WorkerLoop(uint32_t replica) {
  std::shared_ptr<ServerJob> job;
  while (queue_.Pop(&job)) {
    // Pick up the newest committed graph version before dispatching: the
    // replica engine is rebuilt against the published snapshot (lazy, so
    // an idle stream of updates costs nothing until the next query).
    // Queries already in flight on other replicas keep their version —
    // the shared_ptr in replica_versions_ keeps it alive.
    {
      std::shared_ptr<const DeployedVersion> want;
      {
        std::lock_guard<std::mutex> lock(mu_);
        want = current_version_;
      }
      if (want != nullptr && want != replica_versions_[replica]) {
        EngineOptions opts = options_.engine;
        opts.structure_facts = want->facts;
        auto rebuilt = Engine::Create(want->graph, &*want->frag, opts);
        DGS_CHECK(rebuilt.ok(), "replica redeploy after update failed");
        replicas_[replica] = std::move(rebuilt).value();
        replica_versions_[replica] = std::move(want);
      }
    }
    Engine& engine = *replicas_[replica];
    ServerJob& j = *job;

    // Queue wait: admission to this pickup. The histogram record and the
    // trace span share one clock read; the span is emitted with the
    // job's submit time as its start, so Perfetto shows the wait as a bar
    // from Submit to dispatch on this worker's lane.
    const uint64_t pickup_ns = obs::MonotonicNanos();
    latency_.queue_wait.Record(pickup_ns - j.submit_ns);
    if (obs::TraceRecorder* rec = obs::TraceRecorder::Active()) {
      rec->Complete("serve", "server.queue_wait", j.submit_ns,
                    pickup_ns - j.submit_ns, 0,
                    {{"replica", static_cast<uint64_t>(replica)}});
    }
    obs::TraceSpan query_span("serve", "server.query");
    query_span.Arg("replica", static_cast<uint64_t>(replica));

    if (j.has_deadline && std::chrono::steady_clock::now() >= j.deadline) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.expired;
        if (j.is_probe) probe_in_flight_ = false;
      }
      latency_.e2e_rejected.Record(obs::MonotonicNanos() - j.submit_ns);
      query_span.Arg("outcome", "expired");
      j.Complete(
          Status::DeadlineExceeded("query deadline passed while queued"),
          DistOutcome{});
      job.reset();
      continue;
    }

    // Dispatched queries (and only they) touch the inter-query cache:
    // warm/count the per-label candidate sets once per query, then consult
    // the result memo.
    if (!j.labels_touched) cache_.TouchAndEstimate(j.pattern);
    if (cache_.mode() == CacheMode::kFull) {
      j.cache_key = QueryCache::CanonicalKey(j.pattern, j.query);
    }
    if (!j.cache_key.empty()) {
      DistOutcome memo;
      if (cache_.Lookup(j.cache_key, &memo)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.served;
          stats_.cumulative.Accumulate(memo.stats);
          stats_.counters.Accumulate(memo.counters);
          // A memo hit frees the probe slot but proves nothing about the
          // fleet (no cluster run), so the strikes stand.
          if (j.is_probe) probe_in_flight_ = false;
        }
        latency_.e2e_cache_hit.Record(obs::MonotonicNanos() - j.submit_ns);
        obs::TraceInstant("serve", "server.cache_hit");
        query_span.Arg("outcome", "cache_hit");
        j.Complete(Status::Ok(), std::move(memo));
        job.reset();
        continue;
      }
    }

    // Transparent retry (ServerOptions::retry): re-run the query after a
    // retryable failure — a crashed-and-restarted site, a watchdog trip, a
    // transient rejection — with doubling backoff. Each cluster run
    // reseeds its fault schedule, so a retry faces fresh rolls rather than
    // replaying the faults that killed the first attempt. Non-retryable
    // failures (DataLoss, bad arguments) surface immediately.
    const uint32_t max_attempts = std::max(options_.retry.max_attempts, 1u);
    // Memoizing across a concurrent update commit would cache a stale
    // outcome; the epoch read here lets Insert detect that race.
    const uint64_t cache_epoch =
        j.cache_key.empty() ? 0 : cache_.invalidation_epoch();
    WallTimer run_timer;
    auto result = engine.Match(j.pattern, j.query);
    double run_seconds = run_timer.ElapsedSeconds();

    // Replica failover (docs/FAILURES.md): before burning same-replica
    // retries, hand the query back to the admission queue at its original
    // priority so a DIFFERENT replica — whose transport fleet may be
    // healthy — serves it. Invisible to the client: same ticket, one
    // result. The submission-time budget (num_replicas - 1) bounds the
    // re-dispatches so a fleet-wide outage still terminates, landing on
    // the same-replica retry policy below.
    if (!result.ok() && IsRetryable(result.status().code()) &&
        j.failovers_left > 0 &&
        !(j.has_deadline && std::chrono::steady_clock::now() >= j.deadline)) {
      --j.failovers_left;
      j.labels_touched = true;  // already touched on this dispatch
      j.took_degraded_path = true;
      if (queue_.Push(job, j.admit_priority).ok()) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.failovers;
          ++replica_strikes_[replica];
        }
        obs::TraceInstant("serve", "server.failover",
                          {{"from_replica", static_cast<uint64_t>(replica)}});
        query_span.Arg("outcome", "failover");
        job.reset();
        continue;
      }
      // Queue closed or full: fall through to the same-replica policy.
    }
    for (uint32_t attempt = 1;
         attempt < max_attempts && !result.ok() &&
         IsRetryable(result.status().code()) &&
         !(j.has_deadline && std::chrono::steady_clock::now() >= j.deadline);
         ++attempt) {
      if (options_.retry.backoff_seconds > 0) {
        const double sleep_seconds =
            options_.retry.backoff_seconds *
            static_cast<double>(uint64_t{1} << std::min(attempt - 1, 62u));
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_seconds));
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      j.took_degraded_path = true;
      obs::TraceInstant("serve", "server.retry",
                        {{"attempt", static_cast<uint64_t>(attempt)}});
      run_timer.Restart();
      result = engine.Match(j.pattern, j.query);
      run_seconds += run_timer.ElapsedSeconds();
      if (result.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retry_successes;
      }
    }
    if (result.ok()) {
      if (!j.cache_key.empty()) {
        cache_.Insert(j.cache_key, j.pattern, *result, cache_epoch);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.served;
        stats_.cumulative.Accumulate(result->stats);
        stats_.counters.Accumulate(result->counters);
        // A served query heals its replica; a successful probe closes the
        // whole circuit.
        replica_strikes_[replica] = 0;
        if (j.is_probe) {
          probe_in_flight_ = false;
          std::fill(replica_strikes_.begin(), replica_strikes_.end(), 0);
        }
      }
      const uint64_t e2e = obs::MonotonicNanos() - j.submit_ns;
      latency_.e2e_served.Record(e2e);
      if (j.took_degraded_path) latency_.e2e_retried.Record(e2e);
      latency_.run_served.RecordSeconds(run_seconds);
      query_span.Arg("outcome", "served");
      j.Complete(Status::Ok(), std::move(result).value());
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failed;
        // Only retryable failures strike the breaker: DataLoss and
        // argument errors are deterministic reports, not fleet flap.
        if (IsRetryable(result.status().code())) ++replica_strikes_[replica];
        if (j.is_probe) probe_in_flight_ = false;
      }
      latency_.e2e_failed.Record(obs::MonotonicNanos() - j.submit_ns);
      query_span.Arg("outcome", "failed");
      j.Complete(result.status(), DistOutcome{});
    }
    job.reset();
  }
}

void Server::EnsureUpdatePipelineLocked() {
  if (update_cluster_ != nullptr) return;
  const uint32_t sites = frag_->NumFragments();
  update_cluster_ =
      std::make_unique<Cluster>(sites, options_.engine.ToClusterOptions());
  update_sites_.reserve(sites);
  for (uint32_t i = 0; i < sites; ++i) {
    update_sites_.push_back(
        std::make_unique<UpdateSiteActor>(graph_->NumNodes()));
    update_cluster_->BindWorker(i, update_sites_.back().get());
  }
  update_cluster_->BindCoordinator(&update_coordinator_);
}

StatusOr<Server::UpdateOutcome> Server::Update(const UpdateBatch& batch) {
  if (batch.empty()) {
    return Status::InvalidArgument("empty update batch");
  }
  const size_t num_nodes = graph_->NumNodes();
  for (const auto* list : {&batch.deletes, &batch.inserts}) {
    for (const auto& [u, v] : *list) {
      if (u >= num_nodes || v >= num_nodes) {
        return Status::InvalidArgument(
            "update edge endpoint out of range: (" + std::to_string(u) + ", " +
            std::to_string(v) + ")");
      }
    }
  }
  UpdateBatch canonical = batch;
  CanonicalizeBatch(&canonical);

  // One batch at a time, in call order, end to end — replication, commit,
  // subscription repair, and cache dirtying are one atomic step as far as
  // other updates are concerned.
  std::lock_guard<std::mutex> update_lock(update_mu_);
  obs::TraceSpan update_span("dyn", "dyn.update");
  update_span.Arg("deletes", static_cast<uint64_t>(canonical.deletes.size()));
  update_span.Arg("inserts", static_cast<uint64_t>(canonical.inserts.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return Status::Unavailable("server is shut down");
    ++stats_.updates_submitted;
  }
  EnsureUpdatePipelineLocked();

  const uint64_t epoch = version_ + 1;
  const std::vector<UpdateBatch> slices = SliceBatchByOwner(canonical, *frag_);

  // Replicate and validate, under the same RetryOptions the query path
  // honors: a retryable poison (Unavailable / DeadlineExceeded /
  // ResourceExhausted) re-runs the batch from scratch — nothing was
  // applied, commit is idempotent per epoch, and each run reseeds its
  // fault schedule — while DataLoss still fails immediately. Every
  // attempt's accounting lands in update_cumulative; updates_failed
  // counts the batch once, after the attempts are exhausted. The run
  // never mutates resident state; see the commit protocol in dyn/update.h.
  const uint32_t max_attempts = std::max(options_.retry.max_attempts, 1u);
  Status run_status = Status::Ok();
  RunStats run_stats;
  FaultStats faults;
  const uint64_t replicate_start_ns = obs::MonotonicNanos();
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      if (options_.retry.backoff_seconds > 0) {
        const double sleep_seconds =
            options_.retry.backoff_seconds *
            static_cast<double>(uint64_t{1} << std::min(attempt - 1, 62u));
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_seconds));
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.update_retries;
    }
    RunHealth health;
    for (auto& site : update_sites_) site->BindUpdate(epoch, &health);
    update_coordinator_.BindUpdate(&slices, epoch, &health);
    update_cluster_->BindHealth(&health);
    run_stats = update_cluster_->Run();
    update_cluster_->BindHealth(nullptr);  // health dies with this frame
    faults = update_cluster_->fault_stats();
    for (auto& site : update_sites_) site->EndUpdate();
    update_coordinator_.EndUpdate();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.update_cumulative.Accumulate(run_stats);
    }
    if (!health.poisoned()) {
      run_status = Status::Ok();
      if (attempt > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.update_retry_successes;
      }
      break;
    }
    run_status = health.ToStatus();
    if (!IsRetryable(run_status.code())) break;
  }
  if (obs::TraceRecorder* rec = obs::TraceRecorder::Active()) {
    rec->Complete("dyn", "dyn.replicate", replicate_start_ns,
                  obs::MonotonicNanos() - replicate_start_ns, 0,
                  {{"epoch", epoch}, {"ok", uint64_t{run_status.ok()}}});
  }

  if (!run_status.ok()) {
    update_span.Arg("outcome", "failed");
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.updates_failed;
    return run_status;
  }

  // Healthy: commit. Per-site watermarks first (idempotent per epoch),
  // then the authoritative adjacency plus every standing query in one
  // registry step.
  obs::TraceSpan commit_span("dyn", "dyn.commit");
  commit_span.Arg("epoch", epoch);
  for (uint32_t i = 0; i < update_sites_.size(); ++i) {
    update_sites_[i]->CommitEpoch(epoch, slices[i]);
  }
  const SubscriptionRegistry::ApplyOutcome applied =
      registry_.ApplyBatch(canonical, epoch);
  version_ = epoch;

  // Publish the new deployment snapshot for the query replicas. The node
  // assignment is unchanged — only the edge set moved — so refragmenting
  // cannot fail.
  auto next = std::make_shared<DeployedVersion>();
  {
    obs::TraceSpan redeploy_span("dyn", "dyn.redeploy");
    redeploy_span.Arg("epoch", epoch);
    next->version = epoch;
    next->graph = registry_.adjacency().ToGraph();
    auto refrag = Fragmentation::Create(next->graph, frag_->assignment(),
                                        frag_->NumFragments());
    DGS_CHECK(refrag.ok(), "refragmentation after a committed update failed");
    next->frag.emplace(std::move(refrag).value());
    next->facts = std::make_shared<SharedStructureFacts>();
  }

  // Precise result-memo dirtying: only patterns containing one of the
  // batch's edge label pairs can have changed (serve/query_cache.h).
  std::vector<std::pair<Label, Label>> pairs;
  pairs.reserve(canonical.size());
  auto collect = [&](const std::vector<std::pair<NodeId, NodeId>>& edges) {
    for (const auto& [u, v] : edges) {
      pairs.emplace_back(graph_->LabelOf(u), graph_->LabelOf(v));
    }
  };
  collect(canonical.deletes);
  collect(canonical.inserts);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  const size_t invalidated = cache_.InvalidateLabelPairs(pairs);

  UpdateOutcome outcome;
  outcome.version = epoch;
  outcome.edges_deleted = applied.edges_deleted;
  outcome.edges_inserted = applied.edges_inserted;
  outcome.deltas_delivered = applied.deltas_delivered;
  outcome.cache_invalidated = invalidated;
  outcome.stats = run_stats;
  outcome.faults = faults;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_version_ = std::move(next);
    ++stats_.updates_applied;
    stats_.update_edges_deleted += applied.edges_deleted;
    stats_.update_edges_inserted += applied.edges_inserted;
    stats_.graph_version = epoch;
    stats_.sub_deltas_delivered += applied.deltas_delivered;
    stats_.sub_deltas_dropped += applied.deltas_dropped;
    stats_.sub_pairs_added += applied.pairs_added;
    stats_.sub_pairs_removed += applied.pairs_removed;
  }
  return outcome;
}

uint64_t Server::graph_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.graph_version;
}

StatusOr<SubscriptionId> Server::Subscribe(const Pattern& q,
                                           const SubscribeOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return Status::Unavailable("server is shut down");
  }
  // The registry locks itself, so subscribing is atomic with respect to
  // ApplyBatch: a new subscription either sees the pre-batch graph (and
  // then receives the batch's delta) or starts from the post-batch result.
  const SubscriptionId id = registry_.Subscribe(q, options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.subscriptions_created;
  }
  return id;
}

bool Server::Unsubscribe(SubscriptionId id) {
  return registry_.Unsubscribe(id);
}

StatusOr<SimulationResult> Server::SubscriptionSnapshot(
    SubscriptionId id) const {
  return registry_.Snapshot(id);
}

StatusOr<std::vector<SubscriptionDelta>> Server::PollDeltas(SubscriptionId id,
                                                            bool* lagged) {
  return registry_.PollDeltas(id, lagged);
}

size_t Server::NumSubscriptions() const { return registry_.NumSubscriptions(); }

ServerStats Server::StatsSnapshot() const {
  // One hold of mu_ assembles the WHOLE snapshot (see the contract in
  // server.h): the lifecycle counters are copied and the cache counters,
  // subscription gauges, queue depth, and latency histograms are sampled
  // while no worker can slip a counter update in between. The sampled
  // sources lock themselves internally; lock order mu_ -> {cache, registry,
  // queue} is safe because none of them ever calls back into the server.
  // Histogram records land after their counter bump (lock-free, outside
  // mu_), so a snapshot can observe at most FEWER histogram samples than
  // counted queries — never more.
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats snapshot = stats_;
  const QueryCache::Counters cache = cache_.counters();
  snapshot.cache_result_hits = cache.result_hits;
  snapshot.cache_result_misses = cache.result_misses;
  snapshot.cache_result_evictions = cache.result_evictions;
  snapshot.cache_invalidations = cache.result_invalidations;
  snapshot.cache_result_bytes = cache.result_bytes;
  snapshot.cache_label_hits = cache.label_hits;
  snapshot.cache_label_misses = cache.label_misses;
  snapshot.cache_label_bytes = cache.label_bytes;
  snapshot.subscriptions_active = registry_.NumSubscriptions();
  snapshot.peak_queue_depth = queue_.peak_depth();
  snapshot.replicas = num_replicas();
  snapshot.latency.e2e_served = latency_.e2e_served.Snapshot();
  snapshot.latency.e2e_cache_hit = latency_.e2e_cache_hit.Snapshot();
  snapshot.latency.e2e_failed = latency_.e2e_failed.Snapshot();
  snapshot.latency.e2e_rejected = latency_.e2e_rejected.Snapshot();
  snapshot.latency.e2e_retried = latency_.e2e_retried.Snapshot();
  snapshot.latency.queue_wait = latency_.queue_wait.Snapshot();
  snapshot.latency.run_served = latency_.run_served.Snapshot();
  return snapshot;
}

void Server::RegisterMetrics(obs::MetricsRegistry* registry) const {
  // Stable names: docs/OBSERVABILITY.md is the authoritative registry.
  // Every sample takes a fresh StatsSnapshot, so scrapes inherit its
  // consistency contract and counters are monotone by construction.
  auto counter = [&](const char* name, const char* help,
                     uint64_t ServerStats::* field) {
    registry->AddCounter(name, help,
                         [this, field] { return double(StatsSnapshot().*field); });
  };
  auto gauge = [&](const char* name, const char* help, auto sample) {
    registry->AddGauge(name, help, std::move(sample));
  };
  auto latency = [&](const char* name, const char* help,
                     obs::HistogramSnapshot ServerLatency::* field) {
    registry->AddHistogram(name, help, [this, field] {
      return StatsSnapshot().latency.*field;
    });
  };

  counter("dgs_server_submitted_total", "Submit calls, rejections included",
          &ServerStats::submitted);
  counter("dgs_server_admitted_total", "Queries that entered the queue",
          &ServerStats::admitted);
  counter("dgs_server_served_total", "Queries completed ok",
          &ServerStats::served);
  counter("dgs_server_failed_total", "Queries completed with an error",
          &ServerStats::failed);
  counter("dgs_server_expired_total", "Deadline passed while queued",
          &ServerStats::expired);
  counter("dgs_server_rejected_overload_total",
          "ResourceExhausted at admission", &ServerStats::rejected_overload);
  counter("dgs_server_rejected_shutdown_total", "Submitted after Shutdown",
          &ServerStats::rejected_shutdown);
  counter("dgs_server_degraded_rejections_total",
          "Shed while the circuit breaker was open",
          &ServerStats::degraded_rejections);
  counter("dgs_server_retries_total", "Same-replica re-execution attempts",
          &ServerStats::retries);
  counter("dgs_server_retry_successes_total",
          "Queries served after a failed attempt",
          &ServerStats::retry_successes);
  counter("dgs_server_failovers_total", "Replica failover re-dispatches",
          &ServerStats::failovers);
  counter("dgs_server_cache_result_hits_total", "Result memo hits",
          &ServerStats::cache_result_hits);
  counter("dgs_server_cache_result_misses_total", "Result memo misses",
          &ServerStats::cache_result_misses);
  counter("dgs_server_cache_invalidations_total",
          "Memo entries erased by label-pair dirtying",
          &ServerStats::cache_invalidations);
  counter("dgs_server_updates_submitted_total",
          "Update batches that entered the pipeline",
          &ServerStats::updates_submitted);
  counter("dgs_server_updates_applied_total", "Committed update batches",
          &ServerStats::updates_applied);
  counter("dgs_server_updates_failed_total",
          "Update batches whose replication run stayed poisoned",
          &ServerStats::updates_failed);
  counter("dgs_server_sub_deltas_delivered_total",
          "Non-empty subscription deltas queued",
          &ServerStats::sub_deltas_delivered);
  counter("dgs_server_sub_deltas_dropped_total",
          "Subscription deltas lost to overflow",
          &ServerStats::sub_deltas_dropped);

  gauge("dgs_server_replicas", "Resident engine replicas",
        [this] { return double(num_replicas()); });
  gauge("dgs_server_subscriptions_active", "Live standing queries",
        [this] { return double(registry_.NumSubscriptions()); });
  gauge("dgs_server_queue_peak_depth", "High-water admission queue depth",
        [this] { return double(queue_.peak_depth()); });
  gauge("dgs_server_graph_version", "Committed graph version watermark",
        [this] { return double(graph_version()); });
  gauge("dgs_server_cache_result_bytes", "Resident result memo footprint",
        [this] { return double(cache_.counters().result_bytes); });
  gauge("dgs_server_cache_label_bytes",
        "Resident candidate-bitset footprint",
        [this] { return double(cache_.counters().label_bytes); });

  registry->AddCounter("dgs_run_response_seconds_total",
                       "Summed BSP critical path of served queries",
                       [this] {
                         return StatsSnapshot().cumulative.response_seconds;
                       });
  registry->AddCounter("dgs_run_bytes_total",
                       "Bytes shipped by served queries, all classes",
                       [this] {
                         return double(StatsSnapshot().cumulative.TotalBytes());
                       });
  registry->AddCounter(
      "dgs_run_rounds_total", "Delivery rounds of served queries",
      [this] { return double(StatsSnapshot().cumulative.rounds); });

  latency("dgs_server_e2e_served_seconds",
          "End-to-end latency, fresh served queries",
          &ServerLatency::e2e_served);
  latency("dgs_server_e2e_cache_hit_seconds",
          "End-to-end latency, result-memo hits",
          &ServerLatency::e2e_cache_hit);
  latency("dgs_server_e2e_failed_seconds",
          "End-to-end latency, failed queries", &ServerLatency::e2e_failed);
  latency("dgs_server_e2e_rejected_seconds",
          "End-to-end latency, rejected or expired queries",
          &ServerLatency::e2e_rejected);
  latency("dgs_server_e2e_retried_seconds",
          "End-to-end latency, served after retry/failover",
          &ServerLatency::e2e_retried);
  latency("dgs_server_queue_wait_seconds",
          "Admission to worker pickup", &ServerLatency::queue_wait);
  latency("dgs_server_run_seconds",
          "Engine time of fresh served queries, retries included",
          &ServerLatency::run_served);
}

}  // namespace dgs
