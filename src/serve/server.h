// dgs::Server — concurrent query serving over one resident deployment.
//
// The paper fragments G once and then answers a STREAM of pattern queries
// against the resident fragmentation (Section 2.2); dgs::Engine (core/
// engine.h) is that model for one client thread. Server is the front end
// for many: a thread-safe layer that owns one deployment and multiplexes
// any number of client threads onto it.
//
//   clients ──Submit()──▶ AdmissionQueue ──▶ worker per replica ──▶ Engine
//                (bounded,                        │                   │
//                 FIFO/priority,                  ▼                   ▼
//                 deadlines,                 QueryCache        shared const
//                 overload shed)         (labels + results)   Fragmentation
//
// The pieces, and where their contracts live:
//
//   ADMISSION (serve/admission.h). A bounded queue in front of the
//   replicas: full → Submit rejects with ResourceExhausted; shut down →
//   Unavailable; a queued query whose deadline passes completes with
//   DeadlineExceeded without running. Dispatch order is FIFO or priority
//   (ServerOptions::policy).
//
//   EXECUTION. num_replicas resident Engines share one const Fragmentation
//   (zero-copy, via the borrowing Engine::Create overload) and one
//   SharedStructureFacts memo; each replica is driven by one worker thread
//   and keeps the Engine single-thread contract, so N queries run
//   concurrently while each retains its intra-query
//   EngineOptions::num_threads parallelism. Results and accounting are
//   bit-identical to sequential Engine::Match calls — concurrency changes
//   scheduling, never outcomes.
//
//   CACHING (serve/query_cache.h). Per-label candidate bitsets shared
//   across queries + exact-pattern result memoization, behind
//   ServerOptions::cache, with hit/miss/byte counters in ServerStats.
//   Coherence: the candidate layer depends only on node labels (immutable);
//   the result memo is dirtied precisely, by edge label pair, on every
//   committed update (see the invalidation lemma in serve/query_cache.h).
//
//   DYNAMIC UPDATES (dyn/update.h). Update(batch) mutates the deployed
//   edge set — the node set and node labels never change. Delivery
//   semantics, the contract tests and clients rely on:
//
//     * Updates serialize: batches commit one at a time, in call order;
//       the k-th committed batch establishes graph version k.
//     * A batch is REPLICATED AND VALIDATED by a cluster run over the same
//       transport as queries before anything is applied: per-site slices
//       ship as MessageClass::kUpdate (charged in
//       ServerStats::update_cumulative, subject to fault injection, and
//       identical over loopback and tcp), and every site acks what it
//       decoded. Commit happens only after the run proves healthy.
//     * A poisoned run commits NOTHING — no graph change, no subscription
//       delta, no cache invalidation — and returns a classified Status:
//       Unavailable / DeadlineExceeded are transient (resubmit the same
//       batch; commit is idempotent per epoch), DataLoss is not. A failed
//       update is never half-applied.
//     * Within one batch, deletions apply before insertions: the post-batch
//       graph is (G \ deletes) ∪ inserts, independent of intra-batch order.
//       Deleting an absent edge or inserting a present one is a no-op.
//     * Queries dispatched after a commit run against the new version;
//       queries in flight finish against the version they dispatched on
//       (single-version reads — a query never sees a torn graph). Each
//       worker picks up the newest version before its next dispatch.
//
//   SUBSCRIPTIONS (dyn/subscription.h). Subscribe(q) registers a standing
//   query and materializes its full result once; after every committed
//   update each live subscription is repaired incrementally
//   (simulation/incremental.h) and receives EXACTLY ONE delta per batch —
//   the (query node, data node) pairs that entered/left its result,
//   stamped with the commit version. Deltas are deterministic:
//   bit-identical for every executor width and transport backend. Applying
//   a subscription's deltas in order to its last snapshot always
//   reproduces SubscriptionSnapshot(id), which in turn equals a
//   from-scratch Match on the current graph. A subscriber that falls more
//   than SubscribeOptions::max_pending_deltas behind loses oldest deltas,
//   is flagged `lagged` on its next PollDeltas, and should resynchronize
//   from SubscriptionSnapshot.
//
// Lifecycle:
//
//   auto server = dgs::Server::Create(g, assignment, 8, options);
//   dgs::ServerTicket t = (*server)->Submit(q);        // async
//   auto outcome = t.Wait();                           // StatusOr<DistOutcome>
//   auto now = (*server)->Match(q);                    // blocking wrapper
//   auto sub = (*server)->Subscribe(q);                // standing query
//   (*server)->Update({{}, {{1, 2}}});                 // insert edge 1->2
//   auto deltas = (*server)->PollDeltas(*sub);         // what changed
//   (*server)->Shutdown();  // close admission, drain backlog, join workers
//
// Shutdown is graceful: accepted queries complete (drain), later Submits
// reject with Unavailable. The destructor shuts down if the caller did
// not. `g` (and a borrowed Fragmentation) must outlive the server.
//
// RECOVERY (docs/FAILURES.md has the full story). Three escalating
// mechanisms, all keyed on IsRetryable: replica failover (a retryably
// failed query is re-enqueued at its original priority for a different
// replica, budget num_replicas - 1, invisible to the client), the
// same-replica RetryOptions policy (queries and Update replication runs),
// and the circuit breaker (ServerOptions::circuit_breaker_strikes) that
// sheds Submits with ResourceExhausted when every replica keeps failing —
// minus one probe at a time, whose success closes the circuit.
//
// OBSERVABILITY (docs/OBSERVABILITY.md has the metric name registry and
// span taxonomy). StatsSnapshot() adds p50/p95/p99 latency per outcome
// class; RegisterMetrics() exposes everything through a Prometheus/JSON
// obs::MetricsRegistry; and when an obs::TraceRecorder is installed, every
// query leaves admission/queue-wait/dispatch/retry/failover spans.

#ifndef DGS_SERVE_SERVER_H_
#define DGS_SERVE_SERVER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/serving.h"
#include "dyn/subscription.h"
#include "dyn/update.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "partition/fragmentation.h"
#include "serve/admission.h"
#include "serve/query_cache.h"
#include "util/status.h"

namespace dgs {

namespace serve_internal {
struct ServerJob;
}  // namespace serve_internal

// Per-submission knobs (the per-query algorithm knobs stay in QueryOptions).
struct SubmitOptions {
  // Dispatch priority under AdmissionPolicy::kPriority (higher first; kFifo
  // ignores it). Queries left at 0 are ordered shortest-estimated-job-first
  // when the candidate cache is enabled, so cheap queries are not stuck
  // behind expensive ones.
  int32_t priority = 0;
  // Seconds from submission after which the query, if still queued,
  // completes with DeadlineExceeded instead of running. 0 = use
  // ServerOptions::default_deadline_seconds (where 0 again means none).
  double deadline_seconds = 0;
};

// Async handle of one submitted query. Copyable (shared state); Wait() may
// be called from any thread and repeatedly — every call returns the same
// completed Status/outcome.
class ServerTicket {
 public:
  ServerTicket() = default;

  bool valid() const { return job_ != nullptr; }
  // True once the query completed (served, failed, rejected, or expired).
  bool Ready() const;
  // Blocks until completion. ResourceExhausted = rejected at admission,
  // Unavailable = submitted after Shutdown, DeadlineExceeded = expired in
  // the queue; otherwise exactly what Engine::Match returned.
  StatusOr<DistOutcome> Wait();

 private:
  friend class Server;
  explicit ServerTicket(std::shared_ptr<serve_internal::ServerJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<serve_internal::ServerJob> job_;
};

class Server {
 public:
  // Fragments g according to `assignment` and deploys it across
  // ServerOptions::num_replicas resident engines.
  static StatusOr<std::unique_ptr<Server>> Create(
      const Graph& g, const std::vector<uint32_t>& assignment,
      uint32_t num_fragments, const ServerOptions& options = {});

  // Borrows an already-built fragmentation; it must outlive the server.
  static StatusOr<std::unique_ptr<Server>> Create(
      const Graph& g, const Fragmentation* fragmentation,
      const ServerOptions& options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  // Enqueues one query. Never blocks: an admission failure (queue full /
  // shut down) surfaces as a pre-completed ticket, so Submit/Wait see the
  // same Status a blocking Match would return. The pattern is copied into
  // the job — the caller's Pattern may die immediately. The admission
  // path is deliberately cheap (no cache work; rejected queries cost one
  // failed Push) except under the priority policy's shortest-job-first
  // default, whose price must accompany the enqueue.
  ServerTicket Submit(const Pattern& q, const QueryOptions& query = {},
                      const SubmitOptions& submit = {});

  // Enqueues a query stream; tickets in stream order. Admission failures
  // are per-ticket (a full queue rejects the tail, not the whole batch).
  std::vector<ServerTicket> SubmitBatch(std::span<const Pattern> queries,
                                        const QueryOptions& query = {},
                                        const SubmitOptions& submit = {});

  // Blocking wrapper: Submit + Wait.
  StatusOr<DistOutcome> Match(const Pattern& q, const QueryOptions& query = {},
                              const SubmitOptions& submit = {});

  // Starts the worker threads when ServerOptions::defer_workers deferred
  // them; no-op otherwise. Not required before Shutdown (which drains).
  void Start();

  // Graceful shutdown: closes admission (later Submits → Unavailable),
  // drains the accepted backlog, joins the workers. Idempotent, and called
  // by the destructor.
  void Shutdown();

  // Estimated evaluation cost of q on this deployment (the size of the
  // initial simulation relation, from the per-label candidate sets). Warms
  // the candidate cache; 0 when the cache is off.
  uint64_t EstimateCost(const Pattern& q);

  // --- Dynamic updates (see the delivery-semantics contract above) ----

  // What one committed Update reports.
  struct UpdateOutcome {
    uint64_t version = 0;        // graph version the commit established
    size_t edges_deleted = 0;    // mutations that actually changed the graph
    size_t edges_inserted = 0;   // (absent deletes / present inserts: no-ops)
    size_t deltas_delivered = 0;  // non-empty subscription deltas queued
    size_t cache_invalidated = 0;  // result-memo entries erased
    RunStats stats;              // the replication run's accounting
    FaultStats faults;           // chaos accounting of the run
  };

  // Replicates, validates, and (if the run stays healthy) commits one
  // batch of edge mutations. Blocking; batches serialize in call order.
  // InvalidArgument (empty batch, out-of-range endpoint) rejects before
  // the pipeline; a poisoned replication run fails with a classified
  // Status and commits nothing. Safe to call concurrently with queries,
  // subscriptions, and other Updates.
  StatusOr<UpdateOutcome> Update(const UpdateBatch& batch);

  // Committed graph version (0 = the deployed graph, untouched).
  uint64_t graph_version() const;

  // --- Standing queries -----------------------------------------------

  // Registers a standing query against the current graph and materializes
  // its result (read it via SubscriptionSnapshot; the initial result is
  // not queued as a delta).
  StatusOr<SubscriptionId> Subscribe(const Pattern& q,
                                     const SubscribeOptions& options = {});

  // Stops maintaining `id`. False if the id is unknown.
  bool Unsubscribe(SubscriptionId id);

  // The subscription's full current result — bit-identical to a
  // from-scratch Match of its pattern on the current graph.
  StatusOr<SimulationResult> SubscriptionSnapshot(SubscriptionId id) const;

  // Drains the subscription's undelivered deltas, oldest first. `lagged`
  // (when non-null) reports whether deltas were dropped since the last
  // poll; resynchronize from SubscriptionSnapshot when set.
  StatusOr<std::vector<SubscriptionDelta>> PollDeltas(SubscriptionId id,
                                                      bool* lagged = nullptr);

  size_t NumSubscriptions() const;

  // Consistent stats snapshot; safe from any thread. The whole snapshot —
  // lifecycle counters, cache counters, subscription gauges, queue depth,
  // latency histograms — is assembled under ONE hold of the stats lock, so
  // cross-field invariants are never observed torn: `served <= submitted`,
  // `served + failed + expired + rejected_* == completed submissions`,
  // `retry_successes <= retries`, and `latency.<class>.count() <=` the
  // matching counter all hold in every snapshot, even while workers
  // complete queries concurrently. (Cache bytes and subscription gauges
  // are sampled from their own internally-locked owners during the same
  // hold; they are monotone but may lag the counters by in-flight work.)
  ServerStats StatsSnapshot() const;

  // Back-compat alias of StatsSnapshot().
  ServerStats stats() const { return StatsSnapshot(); }

  // Registers this server's counters, gauges, and latency histograms on
  // `registry` under the stable `dgs_server_*` / `dgs_algo_*` names
  // documented in docs/OBSERVABILITY.md. The registry samples lazily via
  // StatsSnapshot(), so the server must outlive it (or the registry must
  // be dropped first). Call once per registry; double registration is
  // caught by MetricsRegistry::Lint.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

  const Fragmentation& fragmentation() const { return *frag_; }
  const ServerOptions& options() const { return options_; }
  uint32_t num_replicas() const {
    return static_cast<uint32_t>(replicas_.size());
  }
  uint32_t NumSites() const { return frag_->NumFragments(); }

 private:
  // One committed deployment snapshot: the post-update graph, its
  // refragmentation (same node assignment — the node set never changes),
  // and a fresh structure-facts memo (acyclicity/forestness may flip under
  // edge updates). Immutable once published; the shared_ptr keeps graph
  // and fragmentation alive for every replica engine built against them.
  struct DeployedVersion {
    uint64_t version = 0;
    Graph graph;
    std::optional<Fragmentation> frag;
    std::shared_ptr<SharedStructureFacts> facts;
  };

  Server(const Graph* g, std::optional<Fragmentation> owned,
         const Fragmentation* frag, const ServerOptions& options);

  Status SpawnReplicas(const Graph& g);
  void StartLocked();  // requires mu_ held
  // True when every replica has accumulated at least
  // ServerOptions::circuit_breaker_strikes consecutive retryable
  // failures (the graceful-degradation shed condition). Requires mu_.
  bool CircuitOpenLocked() const;
  void EnsureUpdatePipelineLocked();  // requires update_mu_ held
  void WorkerLoop(uint32_t replica);

  const Graph* graph_;
  std::optional<Fragmentation> owned_frag_;  // engaged when the server owns
  const Fragmentation* frag_;                // always valid (version 0)
  ServerOptions options_;
  QueryCache cache_;
  AdmissionQueue<std::shared_ptr<serve_internal::ServerJob>> queue_;
  std::vector<std::unique_ptr<Engine>> replicas_;
  // replica_versions_[i]: the snapshot replicas_[i] was built against
  // (null = version 0). Slot i is touched only by worker i after Start,
  // so the redeploy swap needs no lock beyond reading current_version_.
  std::vector<std::shared_ptr<const DeployedVersion>> replica_versions_;
  std::vector<std::thread> workers_;

  // Standing-query registry; owns the authoritative mutable adjacency.
  // Internally locked — safe from any thread.
  SubscriptionRegistry registry_;

  // Update pipeline, built lazily on the first Update. update_mu_
  // serializes the replicate→validate→commit sequence end to end and
  // guards these members plus version_.
  std::mutex update_mu_;
  uint64_t version_ = 0;  // committed epoch watermark
  std::unique_ptr<Cluster> update_cluster_;
  std::vector<std::unique_ptr<UpdateSiteActor>> update_sites_;
  UpdateCoordinatorActor update_coordinator_;

  // Live latency recorders backing ServerStats::latency (lock-free; see
  // ServerLatency in core/serving.h for what each one measures). Records
  // happen after the matching stats_ counter bump so snapshots never see
  // more histogram samples than counted queries.
  struct LatencyRecorders {
    obs::Histogram e2e_served;
    obs::Histogram e2e_cache_hit;
    obs::Histogram e2e_failed;
    obs::Histogram e2e_rejected;
    obs::Histogram e2e_retried;
    obs::Histogram queue_wait;
    obs::Histogram run_served;
  };
  LatencyRecorders latency_;

  mutable std::mutex mu_;  // guards stats_, current_version_, lifecycle flags
  std::mutex shutdown_mu_;  // serializes Shutdown end to end
  std::shared_ptr<const DeployedVersion> current_version_;  // null until
                                                            // first commit
  ServerStats stats_;
  // Circuit-breaker state (guarded by mu_; see docs/FAILURES.md).
  // replica_strikes_[i]: consecutive retryable failures on replica i,
  // healed to 0 by any success there. probe_in_flight_: one query has
  // been admitted through an open circuit to test recovery.
  std::vector<uint32_t> replica_strikes_;
  bool probe_in_flight_ = false;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace dgs

#endif  // DGS_SERVE_SERVER_H_
