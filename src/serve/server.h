// dgs::Server — concurrent query serving over one resident deployment.
//
// The paper fragments G once and then answers a STREAM of pattern queries
// against the resident fragmentation (Section 2.2); dgs::Engine (core/
// engine.h) is that model for one client thread. Server is the front end
// for many: a thread-safe layer that owns one deployment and multiplexes
// any number of client threads onto it.
//
//   clients ──Submit()──▶ AdmissionQueue ──▶ worker per replica ──▶ Engine
//                (bounded,                        │                   │
//                 FIFO/priority,                  ▼                   ▼
//                 deadlines,                 QueryCache        shared const
//                 overload shed)         (labels + results)   Fragmentation
//
// The pieces, and where their contracts live:
//
//   ADMISSION (serve/admission.h). A bounded queue in front of the
//   replicas: full → Submit rejects with ResourceExhausted; shut down →
//   Unavailable; a queued query whose deadline passes completes with
//   DeadlineExceeded without running. Dispatch order is FIFO or priority
//   (ServerOptions::policy).
//
//   EXECUTION. num_replicas resident Engines share one const Fragmentation
//   (zero-copy, via the borrowing Engine::Create overload) and one
//   SharedStructureFacts memo; each replica is driven by one worker thread
//   and keeps the Engine single-thread contract, so N queries run
//   concurrently while each retains its intra-query
//   EngineOptions::num_threads parallelism. Results and accounting are
//   bit-identical to sequential Engine::Match calls — concurrency changes
//   scheduling, never outcomes.
//
//   CACHING (serve/query_cache.h). Per-label candidate bitsets shared
//   across queries + exact-pattern result memoization, behind
//   ServerOptions::cache, with hit/miss/byte counters in ServerStats.
//   Coherence: the cache is per-deployment and the deployment is
//   immutable; the only invalidation is redeploying (a new Server).
//
// Lifecycle:
//
//   auto server = dgs::Server::Create(g, assignment, 8, options);
//   dgs::ServerTicket t = (*server)->Submit(q);        // async
//   auto outcome = t.Wait();                           // StatusOr<DistOutcome>
//   auto now = (*server)->Match(q);                    // blocking wrapper
//   (*server)->Shutdown();  // close admission, drain backlog, join workers
//
// Shutdown is graceful: accepted queries complete (drain), later Submits
// reject with Unavailable. The destructor shuts down if the caller did
// not. `g` (and a borrowed Fragmentation) must outlive the server.

#ifndef DGS_SERVE_SERVER_H_
#define DGS_SERVE_SERVER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/serving.h"
#include "partition/fragmentation.h"
#include "serve/admission.h"
#include "serve/query_cache.h"
#include "util/status.h"

namespace dgs {

namespace serve_internal {
struct ServerJob;
}  // namespace serve_internal

// Per-submission knobs (the per-query algorithm knobs stay in QueryOptions).
struct SubmitOptions {
  // Dispatch priority under AdmissionPolicy::kPriority (higher first; kFifo
  // ignores it). Queries left at 0 are ordered shortest-estimated-job-first
  // when the candidate cache is enabled, so cheap queries are not stuck
  // behind expensive ones.
  int32_t priority = 0;
  // Seconds from submission after which the query, if still queued,
  // completes with DeadlineExceeded instead of running. 0 = use
  // ServerOptions::default_deadline_seconds (where 0 again means none).
  double deadline_seconds = 0;
};

// Async handle of one submitted query. Copyable (shared state); Wait() may
// be called from any thread and repeatedly — every call returns the same
// completed Status/outcome.
class ServerTicket {
 public:
  ServerTicket() = default;

  bool valid() const { return job_ != nullptr; }
  // True once the query completed (served, failed, rejected, or expired).
  bool Ready() const;
  // Blocks until completion. ResourceExhausted = rejected at admission,
  // Unavailable = submitted after Shutdown, DeadlineExceeded = expired in
  // the queue; otherwise exactly what Engine::Match returned.
  StatusOr<DistOutcome> Wait();

 private:
  friend class Server;
  explicit ServerTicket(std::shared_ptr<serve_internal::ServerJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<serve_internal::ServerJob> job_;
};

class Server {
 public:
  // Fragments g according to `assignment` and deploys it across
  // ServerOptions::num_replicas resident engines.
  static StatusOr<std::unique_ptr<Server>> Create(
      const Graph& g, const std::vector<uint32_t>& assignment,
      uint32_t num_fragments, const ServerOptions& options = {});

  // Borrows an already-built fragmentation; it must outlive the server.
  static StatusOr<std::unique_ptr<Server>> Create(
      const Graph& g, const Fragmentation* fragmentation,
      const ServerOptions& options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  // Enqueues one query. Never blocks: an admission failure (queue full /
  // shut down) surfaces as a pre-completed ticket, so Submit/Wait see the
  // same Status a blocking Match would return. The pattern is copied into
  // the job — the caller's Pattern may die immediately. The admission
  // path is deliberately cheap (no cache work; rejected queries cost one
  // failed Push) except under the priority policy's shortest-job-first
  // default, whose price must accompany the enqueue.
  ServerTicket Submit(const Pattern& q, const QueryOptions& query = {},
                      const SubmitOptions& submit = {});

  // Enqueues a query stream; tickets in stream order. Admission failures
  // are per-ticket (a full queue rejects the tail, not the whole batch).
  std::vector<ServerTicket> SubmitBatch(std::span<const Pattern> queries,
                                        const QueryOptions& query = {},
                                        const SubmitOptions& submit = {});

  // Blocking wrapper: Submit + Wait.
  StatusOr<DistOutcome> Match(const Pattern& q, const QueryOptions& query = {},
                              const SubmitOptions& submit = {});

  // Starts the worker threads when ServerOptions::defer_workers deferred
  // them; no-op otherwise. Not required before Shutdown (which drains).
  void Start();

  // Graceful shutdown: closes admission (later Submits → Unavailable),
  // drains the accepted backlog, joins the workers. Idempotent, and called
  // by the destructor.
  void Shutdown();

  // Estimated evaluation cost of q on this deployment (the size of the
  // initial simulation relation, from the per-label candidate sets). Warms
  // the candidate cache; 0 when the cache is off.
  uint64_t EstimateCost(const Pattern& q);

  // Counter snapshot; safe from any thread.
  ServerStats stats() const;

  const Fragmentation& fragmentation() const { return *frag_; }
  const ServerOptions& options() const { return options_; }
  uint32_t num_replicas() const {
    return static_cast<uint32_t>(replicas_.size());
  }
  uint32_t NumSites() const { return frag_->NumFragments(); }

 private:
  Server(const Graph* g, std::optional<Fragmentation> owned,
         const Fragmentation* frag, const ServerOptions& options);

  Status SpawnReplicas(const Graph& g);
  void StartLocked();  // requires mu_ held
  void WorkerLoop(uint32_t replica);

  const Graph* graph_;
  std::optional<Fragmentation> owned_frag_;  // engaged when the server owns
  const Fragmentation* frag_;                // always valid
  ServerOptions options_;
  QueryCache cache_;
  AdmissionQueue<std::shared_ptr<serve_internal::ServerJob>> queue_;
  std::vector<std::unique_ptr<Engine>> replicas_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;  // guards stats_ and the lifecycle flags
  std::mutex shutdown_mu_;  // serializes Shutdown end to end
  ServerStats stats_;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace dgs

#endif  // DGS_SERVE_SERVER_H_
