// Bounded admission queue of the serving front end (dgs::Server).
//
// The ROADMAP's "heavy traffic" north star — and the capacity discipline of
// MPC-style distributed simulation, where per-round machine capacity is a
// first-class constraint — needs admission control in front of the resident
// deployment: a query stream that outruns the replicas must be shed at the
// door, not buffered without bound. AdmissionQueue is that door:
//
//   - BOUNDED: Push on a full queue fails immediately with
//     ResourceExhausted (overload rejection; the caller may retry later).
//     It never blocks the producer.
//   - ORDERED: AdmissionPolicy::kFifo dispatches in arrival order;
//     kPriority dispatches higher priority first, ties in arrival order
//     (a deterministic total order for any fixed arrival sequence).
//   - DRAINING: Close() stops admission (subsequent Push fails with
//     Unavailable) but lets consumers drain the backlog; Pop returns false
//     only when the queue is closed AND empty. This is the graceful-drain
//     half of Server::Shutdown.
//
// Thread safety: all members are safe to call concurrently from any number
// of producers and consumers. Per-query deadlines are the dispatcher's
// business, not the queue's: the Server stamps the deadline on the queued
// job and checks it when the job is popped, so an expired query costs one
// pop, never a scan of the backlog.

#ifndef DGS_SERVE_ADMISSION_H_
#define DGS_SERVE_ADMISSION_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "core/serving.h"
#include "util/status.h"

namespace dgs {

// Bounded MPMC queue with pluggable dispatch order. T must be movable.
template <typename T>
class AdmissionQueue {
 public:
  AdmissionQueue(size_t capacity, AdmissionPolicy policy)
      : capacity_(std::max<size_t>(capacity, 1)), policy_(policy) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // Enqueues `item`, or fails without blocking: ResourceExhausted when the
  // queue is full, Unavailable after Close(). `priority` only matters under
  // AdmissionPolicy::kPriority (higher first).
  Status Push(T item, int64_t priority = 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status::Unavailable("admission queue is closed");
      }
      if (entries_.size() >= capacity_) {
        return Status::ResourceExhausted("admission queue is full");
      }
      entries_.push_back(Entry{std::move(item), priority, next_seq_++});
      std::push_heap(entries_.begin(), entries_.end(), Comparator());
      peak_depth_ = std::max(peak_depth_, entries_.size());
    }
    ready_.notify_one();
    return Status::Ok();
  }

  // Blocks until an item is available (true) or the queue is closed and
  // drained (false). Items surface in dispatch order (see the file comment).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !entries_.empty(); });
    if (entries_.empty()) return false;  // closed and drained
    std::pop_heap(entries_.begin(), entries_.end(), Comparator());
    *out = std::move(entries_.back().item);
    entries_.pop_back();
    return true;
  }

  // Stops admission; consumers drain the backlog (see the file comment).
  // Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  // High-water mark of the backlog since construction.
  size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }
  size_t capacity() const { return capacity_; }
  AdmissionPolicy policy() const { return policy_; }

 private:
  struct Entry {
    T item;
    int64_t priority;
    uint64_t seq;
  };

  // Max-heap comparator: true when `a` dispatches after `b`. kFifo ignores
  // priorities entirely so a producer-supplied priority cannot reorder a
  // FIFO server; ties (and all of kFifo) dispatch in arrival order. The
  // heap root is always the entry that dispatches next, and seq is unique,
  // so dispatch order is deterministic for any fixed arrival sequence
  // regardless of consumer scheduling.
  auto Comparator() const {
    const bool by_priority = policy_ == AdmissionPolicy::kPriority;
    return [by_priority](const Entry& a, const Entry& b) {
      if (by_priority && a.priority != b.priority) {
        return a.priority < b.priority;
      }
      return a.seq > b.seq;
    };
  }

  const size_t capacity_;
  const AdmissionPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::vector<Entry> entries_;  // heap ordered by EntryAfter
  uint64_t next_seq_ = 0;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace dgs

#endif  // DGS_SERVE_ADMISSION_H_
