#include "serve/query_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

namespace dgs {

namespace {

// Resident footprint estimate of one memo entry: the key, the fixpoint
// bitsets (the dominant term on selective patterns), and the fixed struct
// overhead. Exactness is not required — the budget is a budget, not an
// allocator — but the estimate must scale with the entry so eviction keeps
// the cache bounded.
size_t ResultEntryBytes(const std::string& key, const DistOutcome& outcome) {
  const size_t words_per_set = (outcome.result.NumDataNodes() + 63) / 64;
  return key.size() + sizeof(DistOutcome) +
         outcome.result.NumQueryNodes() * words_per_set * sizeof(uint64_t);
}

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

}  // namespace

const char* CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff:
      return "off";
    case CacheMode::kCandidates:
      return "candidates";
    case CacheMode::kFull:
      return "full";
  }
  return "unknown";
}

QueryCache::QueryCache(const Graph* g, CacheMode mode, size_t max_result_bytes)
    : graph_(g), mode_(mode), max_result_bytes_(max_result_bytes) {
  DGS_CHECK(graph_ != nullptr, "QueryCache needs a deployed graph");
}

QueryCache::Counters QueryCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

const QueryCache::LabelEntry& QueryCache::LabelEntryFor(Label label) {
  auto it = labels_.find(label);
  if (it != labels_.end()) {
    ++counters_.label_hits;
    return it->second;
  }
  ++counters_.label_misses;
  LabelEntry entry;
  entry.candidates = DynamicBitset(graph_->NumNodes());
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    if (graph_->LabelOf(v) == label) entry.candidates.Set(v);
  }
  entry.count = entry.candidates.Count();
  counters_.label_bytes += ((graph_->NumNodes() + 63) / 64) * sizeof(uint64_t);
  return labels_.emplace(label, std::move(entry)).first->second;
}

uint64_t QueryCache::TouchAndEstimate(const Pattern& q) {
  if (mode_ == CacheMode::kOff) return 0;
  // Distinct labels of the (small) pattern, then one map touch per label.
  std::vector<Label> labels;
  labels.reserve(q.NumNodes());
  for (NodeId u = 0; u < q.NumNodes(); ++u) labels.push_back(q.LabelOf(u));
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t cost = 0;
  for (Label label : labels) {
    const LabelEntry& entry = LabelEntryFor(label);
    // Every query node with this label starts from the same candidate set.
    uint64_t uses = 0;
    for (NodeId u = 0; u < q.NumNodes(); ++u) {
      if (q.LabelOf(u) == label) ++uses;
    }
    cost += uses * entry.count;
  }
  return cost;
}

const DynamicBitset* QueryCache::Candidates(Label label) {
  if (mode_ == CacheMode::kOff) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  return &LabelEntryFor(label).candidates;
}

std::string QueryCache::CanonicalKey(const Pattern& q,
                                     const QueryOptions& options) {
  std::string key;
  key.reserve(16 + 4 * q.NumNodes() + 8 * q.NumEdges());
  PutU32(key, static_cast<uint32_t>(q.NumNodes()));
  for (NodeId u = 0; u < q.NumNodes(); ++u) PutU32(key, q.LabelOf(u));
  PutU32(key, static_cast<uint32_t>(q.NumEdges()));
  // Edges() walks the CSR in (source, sorted targets) order — the normal
  // form every construction order of the same edge set converges to.
  for (const auto& [src, dst] : q.graph().Edges()) {
    PutU32(key, src);
    PutU32(key, dst);
  }
  // Outcome-relevant options. kAuto resolves as a pure function of the
  // deployment and the pattern, so keying on the requested algorithm is
  // sound; push knobs change dGPM's messages, hence its accounting.
  key.push_back(static_cast<char>(options.algorithm));
  key.push_back(options.boolean_only ? 1 : 0);
  key.push_back(options.enable_push ? 1 : 0);
  char threshold[sizeof(double)];
  std::memcpy(threshold, &options.push_threshold, sizeof(double));
  key.append(threshold, sizeof(double));
  return key;
}

bool QueryCache::Lookup(const std::string& key, DistOutcome* out) {
  if (mode_ != CacheMode::kFull) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(key);
  if (it == results_.end()) {
    ++counters_.result_misses;
    return false;
  }
  ++counters_.result_hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  *out = it->second->outcome;
  return true;
}

std::vector<std::pair<Label, Label>> QueryCache::EdgeLabelPairs(
    const Pattern& q) {
  std::vector<std::pair<Label, Label>> pairs;
  pairs.reserve(q.NumEdges());
  for (const auto& [src, dst] : q.graph().Edges()) {
    pairs.emplace_back(q.LabelOf(src), q.LabelOf(dst));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

uint64_t QueryCache::invalidation_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidation_epoch_;
}

void QueryCache::Insert(const std::string& key, const Pattern& q,
                        const DistOutcome& outcome, uint64_t epoch_seen) {
  if (mode_ != CacheMode::kFull) return;
  // Never memoize a poisoned outcome: its result is a partial drain, not
  // the query's answer, and a memo hit would replay the transient failure
  // at every future submission of the pattern. Only clean outcomes are
  // admissible.
  if (!outcome.health.ok()) return;
  std::vector<std::pair<Label, Label>> pairs = EdgeLabelPairs(q);
  std::lock_guard<std::mutex> lock(mu_);
  // An invalidation landed while the query ran: this outcome may describe
  // the pre-update graph, so it is not admissible (conservative — the
  // update may not have touched this pattern's label pairs, but the memo
  // must never race a commit).
  if (invalidation_epoch_ != epoch_seen) return;
  if (results_.find(key) != results_.end()) return;  // deterministic dup
  const size_t bytes = ResultEntryBytes(key, outcome);
  if (bytes > max_result_bytes_) return;  // would evict the whole cache
  lru_.push_front(ResultEntry{key, outcome, bytes, std::move(pairs)});
  results_.emplace(key, lru_.begin());
  counters_.result_bytes += bytes;
  ++counters_.result_entries;
  EvictOverBudgetLocked();
}

size_t QueryCache::InvalidateLabelPairs(
    const std::vector<std::pair<Label, Label>>& pairs) {
  std::lock_guard<std::mutex> lock(mu_);
  ++invalidation_epoch_;
  size_t erased = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const bool dirty = std::find_first_of(
                           it->label_pairs.begin(), it->label_pairs.end(),
                           pairs.begin(), pairs.end()) != it->label_pairs.end();
    if (!dirty) {
      ++it;
      continue;
    }
    counters_.result_bytes -= it->bytes;
    --counters_.result_entries;
    ++counters_.result_invalidations;
    ++erased;
    results_.erase(it->key);
    it = lru_.erase(it);
  }
  return erased;
}

void QueryCache::EvictOverBudgetLocked() {
  while (counters_.result_bytes > max_result_bytes_ && lru_.size() > 1) {
    const ResultEntry& victim = lru_.back();
    counters_.result_bytes -= victim.bytes;
    --counters_.result_entries;
    ++counters_.result_evictions;
    results_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace dgs
