// Inter-query cache of one resident deployment (dgs::Server).
//
// The deploy-once / query-many model leaves per-query work on the table
// when the queries of a stream resemble each other, which real pattern
// workloads do (the ROADMAP names this: "reuse per-label candidate bitsets
// across patterns sharing labels"). QueryCache keeps two layers, both
// keyed against ONE immutable deployment:
//
//   CANDIDATE LAYER (CacheMode::kCandidates and up). For each label the
//   bitset of data-graph nodes carrying it — the initial candidate set
//   every simulation of a query node with that label starts from. Built
//   lazily, once per label per deployment, and reused by every subsequent
//   query sharing the label (a hit). Its consumers are the SERVING layer,
//   not the simulation kernels: it prices queries for admission
//   (EstimateCost: sum of candidate-set sizes over the query's nodes, the
//   size of the initial simulation relation — the kPriority queue's
//   shortest-job-first default) and exposes per-deployment label
//   statistics (Candidates, ServerStats label hit/miss/byte counters).
//   Query execution itself deliberately does NOT read these bitsets: the
//   distributed actors rebuild their per-fragment candidate state so that
//   results and message/byte accounting stay bit-identical to a plain
//   Engine::Match — feeding a global index into the per-site algorithms
//   would change what ships on the wire. The layer is bounded by the
//   label alphabet and never evicted.
//
//   RESULT LAYER (CacheMode::kFull). Exact-pattern memoization: the full
//   DistOutcome of a served query, keyed by the canonicalized pattern
//   structure plus the outcome-relevant QueryOptions. A hit returns a copy
//   of the memoized outcome — results AND message/byte accounting are
//   bit-identical to re-running the query, because the runtime is
//   deterministic for a fixed (deployment, pattern, options) triple; only
//   the measured wall-clock fields keep the original run's values. LRU
//   eviction under a byte budget.
//
// Canonicalization is representation-normalizing, not isomorphism: two
// Pattern objects with the same node numbering, labels, and edge SET (the
// CSR normal form sorts and the builder dedupes edge lists) produce the
// same key regardless of construction order. Graph-isomorphic patterns
// with different node numberings intentionally do NOT share an entry —
// their runs ship differently-numbered wire payloads, so their accounting
// is not interchangeable.
//
// Coherence under dynamic updates (Server::Update). The node set and the
// node labels of a deployment never change — updates mutate only the edge
// set — which splits the coherence argument by layer:
//
//   CANDIDATE LAYER: a pure function of node labels, hence never stale.
//   Edge updates do not touch it.
//
//   RESULT LAYER: invalidated precisely, by label pair, instead of flushed.
//   The lemma: the simulation fixpoint of a pattern Q restricted to
//   label-respecting candidate sets depends only on (a) node labels and
//   (b) data edges (v, w) whose label pair (label(v), label(w)) appears as
//   the label pair of some pattern edge — every membership test reads
//   out(v) ∩ sim(child), and a data edge whose label pair matches no
//   pattern edge's can never witness such an intersection. So a committed
//   batch dirties exactly the memo entries whose pattern contains an edge
//   with a mutated label pair (InvalidateLabelPairs); every surviving
//   entry's RESULT is provably unchanged on the new graph. A surviving
//   entry's run accounting is the original run's — deterministic for the
//   graph it was computed on. Callers who must not memoize across a
//   concurrent invalidation compare invalidation_epoch() around the run
//   (Insert drops the entry when the epoch moved, a conservative but
//   race-free discipline). Poisoned updates commit nothing and invalidate
//   nothing, so they can never leave stale entries behind.
//
// Thread safety: all members are safe from any thread; returned
// candidate-bitset pointers stay valid and constant for the cache's
// lifetime.

#ifndef DGS_SERVE_QUERY_CACHE_H_
#define DGS_SERVE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/serving.h"
#include "graph/pattern.h"
#include "util/bitset.h"

namespace dgs {

class QueryCache {
 public:
  // `g` is the deployed data graph; it must outlive the cache. A zero
  // `max_result_bytes` disables the result layer even under kFull.
  QueryCache(const Graph* g, CacheMode mode, size_t max_result_bytes);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  CacheMode mode() const { return mode_; }

  // Counter snapshot (coherent: taken under the cache lock).
  struct Counters {
    uint64_t label_hits = 0;
    uint64_t label_misses = 0;
    uint64_t label_bytes = 0;
    uint64_t result_hits = 0;
    uint64_t result_misses = 0;
    uint64_t result_evictions = 0;
    uint64_t result_invalidations = 0;  // entries erased by label dirtying
    uint64_t result_bytes = 0;
    uint64_t result_entries = 0;
  };
  Counters counters() const;

  // --- Candidate layer ------------------------------------------------

  // Touches the candidate set of every distinct label of `q` (building the
  // missing ones) and returns the estimated evaluation cost: the size of
  // the initial simulation relation, sum over query nodes u of
  // |candidates(label(u))|. Charges one label hit or miss per distinct
  // label. Returns 0 immediately under CacheMode::kOff.
  uint64_t TouchAndEstimate(const Pattern& q);

  // The candidate bitset of one label (over global node ids), building it
  // on first use; nullptr under CacheMode::kOff. The pointed-to bitset is
  // immutable and outlives every query of the deployment.
  const DynamicBitset* Candidates(Label label);

  // --- Result layer ---------------------------------------------------

  // Canonical memo key of (pattern, outcome-relevant options); see the
  // file comment for what "canonical" does and does not normalize.
  static std::string CanonicalKey(const Pattern& q,
                                  const QueryOptions& options);

  // Copies the memoized outcome for `key` into *out and refreshes its LRU
  // position. False on miss (also always under modes below kFull).
  // Charges one result hit or miss.
  bool Lookup(const std::string& key, DistOutcome* out);

  // Memoizes a served outcome under `key`, evicting least-recently-used
  // entries over the byte budget. `q` must be the pattern the key was built
  // from; its edge label pairs index the entry for precise invalidation.
  // `epoch_seen` is the invalidation_epoch() the caller read BEFORE running
  // the query: when any invalidation landed in between, the entry is
  // dropped instead of memoized (it may describe the pre-update graph).
  // No-op below kFull, for entries larger than the whole budget, and for
  // keys already present (the runtime is deterministic, so a double insert
  // would store the same outcome).
  void Insert(const std::string& key, const Pattern& q,
              const DistOutcome& outcome, uint64_t epoch_seen);

  // --- Invalidation (dynamic updates) ---------------------------------

  // Monotone counter of InvalidateLabelPairs calls; see Insert.
  uint64_t invalidation_epoch() const;

  // Erases every memo entry whose pattern contains an edge with one of
  // `pairs` as its (source label, target label) pair; `pairs` must be
  // sorted and unique. Returns the number of entries erased. The candidate
  // layer is untouched — node labels are immutable.
  size_t InvalidateLabelPairs(const std::vector<std::pair<Label, Label>>& pairs);

  // The sorted-unique (source label, target label) pairs of a pattern's
  // edges — the invalidation index key.
  static std::vector<std::pair<Label, Label>> EdgeLabelPairs(const Pattern& q);

 private:
  struct LabelEntry {
    DynamicBitset candidates;
    uint64_t count = 0;  // candidates.Count(), precomputed
  };
  struct ResultEntry {
    std::string key;
    DistOutcome outcome;
    size_t bytes = 0;
    // Sorted-unique edge label pairs of the memoized pattern — the entry is
    // erased when an update mutates an edge with one of these pairs.
    std::vector<std::pair<Label, Label>> label_pairs;
  };
  using LruList = std::list<ResultEntry>;

  // Both require mu_ held.
  const LabelEntry& LabelEntryFor(Label label);
  void EvictOverBudgetLocked();

  const Graph* graph_;
  const CacheMode mode_;
  const size_t max_result_bytes_;

  mutable std::mutex mu_;
  // Element references are stable across rehash (node-based map), so
  // Candidates() can hand out pointers that outlive the lock.
  std::unordered_map<Label, LabelEntry> labels_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> results_;
  uint64_t invalidation_epoch_ = 0;
  Counters counters_;
};

}  // namespace dgs

#endif  // DGS_SERVE_QUERY_CACHE_H_
