// Per-run tracing: spans and instants in lock-free thread-local rings,
// merged at flush into Chrome trace-event JSON (Perfetto-loadable).
//
// WHY. The paper's PT/DS methodology measures response time and data
// shipment as totals; the question a total cannot answer is "where did
// *this* query's 40 ms go — queue wait, round barrier, retransmit backoff,
// or cache miss?". One traced `dgsim_cli --trace-out=q.json` run opens in
// Perfetto showing the whole distributed round structure: admission and
// queue wait in the server lanes, bind→run→collect in the engine lane,
// per-round per-site compute spans from the cluster, frame I/O and
// supervision events from the socket transport.
//
// COST DISCIPLINE (the `ClusterOptions::faults` rule). Tracing is off by
// default and *disabled recording is one null check*: every instrument
// site loads the active-recorder pointer and returns before touching
// arguments, timestamps, or memory. No allocation, no branch beyond the
// null test — asserted by a bench gate and a zero-allocation test.
//
// CONCURRENCY. Each recording thread owns a fixed-capacity ring of POD
// events (registered once under a mutex, appended to lock-free). Rings
// overwrite their oldest event when full and count the overwritten. Flush
// merges all rings and sorts by a total order (timestamp, lane, phase,
// name, duration), so the emitted JSON is deterministic given the same
// events regardless of which thread recorded what.
//
// LIFETIME CONTRACT. `Install` publishes a recorder process-wide;
// `Uninstall` stops new events. Instrument sites may hold the pointer
// across a span (ctor to dtor), so the recorder object must outlive any
// span in flight when it was installed — in practice: uninstall whenever
// you like, destroy only after the server/engine has quiesced. Forked
// transport workers inherit the installed pointer; the worker entry point
// uninstalls it so child-side events are never recorded (their compute
// durations come home in the round response and are emitted parent-side).
//
// Span taxonomy and the "debug a slow query" walkthrough:
// docs/OBSERVABILITY.md. Emitted JSON shape: docs/trace.schema.json.

#ifndef DGS_OBS_TRACE_H_
#define DGS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace dgs::obs {

// Monotonic wall clock shared by traces and latency histograms.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One numeric or static-string argument on an event. Keys and string
// values must be string literals (or otherwise outlive the recorder):
// events are POD so the ring never allocates.
struct TraceArg {
  enum class Kind : uint8_t { kNone, kUint, kDouble, kStr };
  const char* key = nullptr;
  Kind kind = Kind::kNone;
  uint64_t u = 0;
  double d = 0;
  const char* s = nullptr;

  TraceArg() = default;
  TraceArg(const char* k, uint64_t v) : key(k), kind(Kind::kUint), u(v) {}
  TraceArg(const char* k, double v) : key(k), kind(Kind::kDouble), d(v) {}
  TraceArg(const char* k, const char* v) : key(k), kind(Kind::kStr), s(v) {}
};

// POD trace event. `ph` follows the Chrome trace-event format: 'X' is a
// complete span (ts + dur), 'i' an instant.
struct TraceEvent {
  static constexpr uint32_t kMaxArgs = 3;
  const char* name = nullptr;  // static string
  const char* cat = nullptr;   // static string
  char ph = 'X';
  uint32_t lane = 0;     // emitted as tid; see lane conventions below
  uint64_t ts_ns = 0;    // absolute MonotonicNanos at event start
  uint64_t dur_ns = 0;   // 'X' only
  uint32_t n_args = 0;
  TraceArg args[kMaxArgs];
};

// Lane conventions (`tid` in the output): 0 means "use the recording
// thread's auto-assigned lane". Explicit lanes let post-hoc events (e.g.
// remote-site compute spans reconstructed from a round response) land in
// their own swimlane instead of overlapping on the parent thread.
constexpr uint32_t kSiteLaneBase = 1000;     // lane = base + site id
constexpr uint32_t kReplicaLaneBase = 500;   // lane = base + replica id

class TraceRecorder {
 public:
  // `ring_capacity` is per recording thread, in events (POD, ~120 B each).
  explicit TraceRecorder(size_t ring_capacity = 1u << 15);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // The process-wide active recorder; null when tracing is off. This load
  // is the entire cost of a disabled instrument site.
  static TraceRecorder* Active() {
    return active_.load(std::memory_order_acquire);
  }
  static void Install(TraceRecorder* r) {
    active_.store(r, std::memory_order_release);
  }
  static void Uninstall() { active_.store(nullptr, std::memory_order_release); }

  // Nanoseconds since recorder construction (trace-relative time).
  uint64_t NowNs() const { return MonotonicNanos() - origin_ns_; }

  // Record a complete span that ran [start_mono_ns, start_mono_ns+dur_ns),
  // timestamps in absolute MonotonicNanos. lane 0 = this thread's lane.
  void Complete(const char* cat, const char* name, uint64_t start_mono_ns,
                uint64_t dur_ns, uint32_t lane = 0,
                std::initializer_list<TraceArg> args = {});

  // Record an instant event at now (or at `mono_ns` if nonzero).
  void Instant(const char* cat, const char* name,
               std::initializer_list<TraceArg> args = {}, uint32_t lane = 0,
               uint64_t mono_ns = 0);

  // Name a lane ("site 3", "replica 0", ...). Rare path; takes the mutex.
  void NameLane(uint32_t lane, const std::string& name);

  // Events dropped (overwritten) across all rings so far.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  // Merge every ring, sort by the total order, emit Chrome trace JSON.
  // Safe to call while instrumented code is quiesced; does not reset.
  std::string ToJson();

  // ToJson + write to `path`. Fails (with the reason) on I/O errors.
  Status WriteJsonFile(const std::string& path);

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // capacity-sized, preallocated
    size_t size = 0;                 // events written while size < capacity
    size_t head = 0;                 // overwrite cursor once full
    uint64_t overwritten = 0;
    uint32_t lane = 0;
  };

  void Append(const TraceEvent& e);
  Ring* ThreadRing();  // registers this thread's ring on first use

  static std::atomic<TraceRecorder*> active_;

  const size_t ring_capacity_;
  const uint64_t origin_ns_;
  const uint64_t id_;  // distinguishes recorders reusing an address

  std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::map<uint32_t, std::string> lane_names_;
  uint32_t next_lane_ = 1;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> recorded_{0};
};

// RAII span: one null check when tracing is off; otherwise records a
// complete event over its lifetime at destruction.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name, uint32_t lane = 0)
      : rec_(TraceRecorder::Active()), cat_(cat), name_(name), lane_(lane) {
    if (rec_ != nullptr) start_ns_ = MonotonicNanos();
  }

  // Attach an argument (no-op when tracing is off).
  void Arg(const char* key, uint64_t v) { Push(TraceArg(key, v)); }
  void Arg(const char* key, double v) { Push(TraceArg(key, v)); }
  void Arg(const char* key, const char* v) { Push(TraceArg(key, v)); }

  bool enabled() const { return rec_ != nullptr; }

  ~TraceSpan() {
    if (rec_ == nullptr) return;
    const uint64_t now = MonotonicNanos();
    rec_->Complete(cat_, name_, start_ns_, now - start_ns_, lane_,
                   {args_[0], args_[1], args_[2]});
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Push(const TraceArg& a) {
    if (rec_ == nullptr || n_args_ >= TraceEvent::kMaxArgs) return;
    args_[n_args_++] = a;
  }

  TraceRecorder* rec_;
  const char* cat_;
  const char* name_;
  uint32_t lane_;
  uint64_t start_ns_ = 0;
  uint32_t n_args_ = 0;
  TraceArg args_[TraceEvent::kMaxArgs];
};

// Instant helper: the null check lives here so call sites stay one line.
inline void TraceInstant(const char* cat, const char* name,
                         std::initializer_list<TraceArg> args = {},
                         uint32_t lane = 0) {
  if (TraceRecorder* r = TraceRecorder::Active()) {
    r->Instant(cat, name, args, lane);
  }
}

// Validate Chrome trace-event JSON emitted by TraceRecorder::ToJson (the
// constraints are the checked-in docs/trace.schema.json): top-level object
// with a `traceEvents` array; every event has a non-empty string `name`, a
// string `cat` (metadata events exempt), `ph` in {X,i,M}, numeric
// `pid`/`tid`/`ts`, and `dur` when ph == X. Every name in
// `required_spans` must appear as an event name. Used by tests, the CLI's
// --trace-out path, and the CI smoke job.
Status ValidateTraceJson(const std::string& json,
                         const std::vector<std::string>& required_spans);

}  // namespace dgs::obs

#endif  // DGS_OBS_TRACE_H_
