#include "obs/metrics_registry.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>

namespace dgs::obs {

namespace {

constexpr double kQuantiles[] = {0.5, 0.95, 0.99};
constexpr const char* kQuantileLabels[] = {"0.5", "0.95", "0.99"};
constexpr const char* kQuantileJsonKeys[] = {"p50", "p95", "p99"};

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!tail(name[i])) return false;
  }
  return true;
}

std::string FormatValue(double v) {
  if (!std::isfinite(v)) return v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
  char buf[48];
  // %.17g round-trips doubles, so a re-parse in CheckMonotonic is exact.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// One parsed sample line: `name value` or `name{labels} value`.
struct Sample {
  std::string name;  // including the {labels} part, so series are distinct
  double value = 0;
};

// Parse the subset of the Prometheus text format PrometheusText emits.
// Returns false (with `error`) on a malformed line. `counters` collects
// the bare metric names declared `# TYPE <name> counter`.
bool ParseScrape(const std::string& text, std::vector<Sample>* samples,
                 std::set<std::string>* counters, std::string* error) {
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hl(line);
      std::string hash, kw, name, kind;
      hl >> hash >> kw >> name >> kind;
      if (kw == "TYPE" && kind == "counter") counters->insert(name);
      continue;
    }
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      *error = "malformed sample on line " + std::to_string(lineno);
      return false;
    }
    Sample s;
    s.name = line.substr(0, space);
    char* end = nullptr;
    const std::string val = line.substr(space + 1);
    s.value = std::strtod(val.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      if (val != "+Inf" && val != "-Inf" && val != "NaN") {
        *error = "malformed value on line " + std::to_string(lineno);
        return false;
      }
      s.value = val == "+Inf"
                    ? std::numeric_limits<double>::infinity()
                    : (val == "-Inf" ? -std::numeric_limits<double>::infinity()
                                     : std::numeric_limits<double>::quiet_NaN());
    }
    samples->push_back(std::move(s));
  }
  return true;
}

// The bare metric name of a sample series ("foo{quantile=..}" -> "foo").
std::string BareName(const std::string& series) {
  const size_t brace = series.find('{');
  return brace == std::string::npos ? series : series.substr(0, brace);
}

}  // namespace

void MetricsRegistry::AddCounter(const std::string& name,
                                 const std::string& help, SampleFn fn) {
  metrics_.push_back(
      {Kind::kCounter, name, help, std::move(fn), nullptr, 1.0});
}

void MetricsRegistry::AddGauge(const std::string& name,
                               const std::string& help, SampleFn fn) {
  metrics_.push_back({Kind::kGauge, name, help, std::move(fn), nullptr, 1.0});
}

void MetricsRegistry::AddHistogram(const std::string& name,
                                   const std::string& help, HistogramFn fn,
                                   double scale) {
  metrics_.push_back(
      {Kind::kHistogram, name, help, nullptr, std::move(fn), scale});
}

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  for (const Metric& m : metrics_) {
    out += "# HELP " + m.name + " " + m.help + "\n";
    switch (m.kind) {
      case Kind::kCounter:
        out += "# TYPE " + m.name + " counter\n";
        out += m.name + " " + FormatValue(m.sample()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + m.name + " gauge\n";
        out += m.name + " " + FormatValue(m.sample()) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = m.histogram();
        out += "# TYPE " + m.name + " summary\n";
        for (size_t q = 0; q < 3; ++q) {
          out += m.name + "{quantile=\"" + kQuantileLabels[q] + "\"} " +
                 FormatValue(static_cast<double>(
                                 snap.ValueAtQuantile(kQuantiles[q])) *
                             m.scale) +
                 "\n";
        }
        out += m.name + "_sum " +
               FormatValue(static_cast<double>(snap.sum()) * m.scale) + "\n";
        out += m.name + "_count " +
               FormatValue(static_cast<double>(snap.count())) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonDump() const {
  std::string out = "{";
  bool first = true;
  auto emit = [&](const std::string& name, const std::string& value) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":" + value;
  };
  for (const Metric& m : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        emit(m.name, FormatValue(m.sample()));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = m.histogram();
        std::string h = "{\"count\":" + FormatValue(double(snap.count())) +
                        ",\"sum\":" +
                        FormatValue(double(snap.sum()) * m.scale);
        for (size_t q = 0; q < 3; ++q) {
          h += ",\"" + std::string(kQuantileJsonKeys[q]) + "\":" +
               FormatValue(double(snap.ValueAtQuantile(kQuantiles[q])) *
                           m.scale);
        }
        h += "}";
        emit(m.name, h);
        break;
      }
    }
  }
  out += "}";
  return out;
}

Status MetricsRegistry::Lint() const {
  std::set<std::string> names;
  for (const Metric& m : metrics_) {
    if (!ValidMetricName(m.name)) {
      return Status(StatusCode::kInvalidArgument,
                    "metric name '" + m.name + "' is malformed");
    }
    // A histogram expands to <name>{quantile}, <name>_sum, <name>_count;
    // reserve all three so scalar registrations cannot collide with them.
    std::vector<std::string> expansions = {m.name};
    if (m.kind == Kind::kHistogram) {
      expansions.push_back(m.name + "_sum");
      expansions.push_back(m.name + "_count");
    }
    for (const std::string& n : expansions) {
      if (!names.insert(n).second) {
        return Status(StatusCode::kInvalidArgument,
                      "duplicate metric name '" + n + "'");
      }
    }
  }
  return Status::Ok();
}

Status MetricsRegistry::CheckMonotonic(const std::string& before,
                                       const std::string& after) {
  std::vector<Sample> a, b;
  std::set<std::string> counters_a, counters_b;
  std::string error;
  if (!ParseScrape(before, &a, &counters_a, &error)) {
    return Status(StatusCode::kDataLoss, "first scrape: " + error);
  }
  if (!ParseScrape(after, &b, &counters_b, &error)) {
    return Status(StatusCode::kDataLoss, "second scrape: " + error);
  }

  for (const auto* scrape : {&a, &b}) {
    std::set<std::string> seen;
    for (const Sample& s : *scrape) {
      if (!seen.insert(s.name).second) {
        return Status(StatusCode::kInvalidArgument,
                      "duplicate sample series '" + s.name + "' in a scrape");
      }
    }
  }

  std::map<std::string, double> after_by_name;
  for (const Sample& s : b) after_by_name[s.name] = s.value;
  for (const Sample& s : a) {
    if (counters_a.find(BareName(s.name)) == counters_a.end()) continue;
    const auto it = after_by_name.find(s.name);
    if (it == after_by_name.end()) {
      return Status(StatusCode::kNotFound,
                    "counter '" + s.name + "' vanished between scrapes");
    }
    if (it->second < s.value) {
      return Status(StatusCode::kFailedPrecondition,
                    "counter '" + s.name + "' moved backwards: " +
                        FormatValue(s.value) + " -> " +
                        FormatValue(it->second));
    }
  }
  return Status::Ok();
}

}  // namespace dgs::obs
