// Log-bucketed (HDR-style) latency histogram with mergeable snapshots.
//
// The serving north-star needs latency *distributions*, not sums: a mean
// hides exactly the tail the admission layer exists to manage. The scheme
// here is the classic HDR layout: values below 2^kPrecisionBits are counted
// exactly, everything above lands in one of 2^kPrecisionBits sub-buckets
// per power of two, so the bucket width is always <= value / 2^kPrecisionBits
// — a fixed ~3% relative error at kPrecisionBits = 5, independent of
// magnitude, over the full uint64 range (no overflow bucket needed; the
// top octave covers up to UINT64_MAX).
//
// Two types share the layout:
//  - `Histogram`: the live recorder. Relaxed atomics per bucket, so worker
//    threads record without a lock and a concurrent `Snapshot()` sees a
//    monotone (possibly slightly stale) view — the same contract as the
//    counter structs it sits beside.
//  - `HistogramSnapshot`: a plain value type. Mergeable (`Merge` is exactly
//    equivalent to having recorded both input streams into one histogram),
//    queryable (`ValueAtQuantile`), and cheap to copy into stats structs
//    and BENCH_*.json files.
//
// Values are dimensionless uint64s; the serving layer records nanoseconds
// and the `*Seconds`/`*Millis` helpers do the unit conversion at the edges.
// Metric names and exposition format: docs/OBSERVABILITY.md.

#ifndef DGS_OBS_HISTOGRAM_H_
#define DGS_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace dgs::obs {

// Shared bucket layout. With kPrecisionBits = 5: indexes [0, 32) count the
// values 0..31 exactly; block b >= 1 covers [2^(b+4), 2^(b+5)) in 32 equal
// sub-buckets; the last block (b = 59) tops out at UINT64_MAX.
struct HistogramLayout {
  static constexpr uint32_t kPrecisionBits = 5;
  static constexpr uint32_t kSubBuckets = 1u << kPrecisionBits;
  static constexpr uint32_t kNumBuckets =
      (64 - kPrecisionBits + 1) * kSubBuckets;  // 60 blocks of 32

  static constexpr uint32_t BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<uint32_t>(v);
    const uint32_t exp = 63u - static_cast<uint32_t>(std::countl_zero(v));
    const uint32_t shift = exp - kPrecisionBits;
    const uint32_t sub =
        static_cast<uint32_t>(v >> shift) - kSubBuckets;  // drops the MSB
    return (exp - kPrecisionBits + 1) * kSubBuckets + sub;
  }

  // Smallest value mapping to `idx`.
  static constexpr uint64_t BucketLowerBound(uint32_t idx) {
    if (idx < kSubBuckets) return idx;
    const uint32_t block = idx >> kPrecisionBits;  // >= 1
    const uint32_t sub = idx & (kSubBuckets - 1);
    return static_cast<uint64_t>(kSubBuckets + sub) << (block - 1);
  }

  // Largest value mapping to `idx` (saturating in the top block).
  static constexpr uint64_t BucketUpperBound(uint32_t idx) {
    if (idx < kSubBuckets) return idx;
    const uint32_t block = idx >> kPrecisionBits;
    const uint64_t width = uint64_t{1} << (block - 1);
    const uint64_t lower = BucketLowerBound(idx);
    return lower > std::numeric_limits<uint64_t>::max() - (width - 1)
               ? std::numeric_limits<uint64_t>::max()
               : lower + width - 1;
  }
};

// Plain-value histogram: direct recording (single-threaded), merging, and
// quantile queries. This is what travels inside ServerStats and bench JSON.
class HistogramSnapshot : public HistogramLayout {
 public:
  void Record(uint64_t v, uint64_t n = 1) {
    if (n == 0) return;
    EnsureBuckets();
    counts_[BucketIndex(v)] += n;
    count_ += n;
    sum_ += v * n;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  // Equivalent to having recorded both streams into one histogram.
  void Merge(const HistogramSnapshot& other) {
    if (other.count_ == 0) return;
    EnsureBuckets();
    for (uint32_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  // Upper bound of the bucket holding the q-quantile rank (q in [0, 1]),
  // clamped to the observed max so p100 is exact. 0 on an empty histogram.
  uint64_t ValueAtQuantile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t rank =
        std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count_)));
    uint64_t seen = 0;
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) return std::min(BucketUpperBound(i), max_);
    }
    return max_;
  }

  // Unit helpers for the common case of nanosecond-valued histograms.
  double QuantileSeconds(double q) const {
    return static_cast<double>(ValueAtQuantile(q)) * 1e-9;
  }
  double QuantileMillis(double q) const {
    return static_cast<double>(ValueAtQuantile(q)) * 1e-6;
  }
  double MeanMillis() const { return mean() * 1e-6; }

  uint64_t BucketCount(uint32_t idx) const {
    return counts_.empty() ? 0 : counts_[idx];
  }

 private:
  friend class Histogram;  // stamps exact sum/min/max into snapshots

  void EnsureBuckets() {
    if (counts_.empty()) counts_.assign(kNumBuckets, 0);
  }

  std::vector<uint64_t> counts_;  // empty until first Record/Merge
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
};

// Thread-safe recorder: relaxed per-bucket atomics, no lock on the record
// path. A concurrent Snapshot() may split a logically-single Record across
// the bucket and the count/sum totals; both views are monotone, and the
// snapshot recomputes count/sum from the buckets so its own cross-field
// invariants (count == sum of buckets) always hold.
class Histogram : public HistogramLayout {
 public:
  Histogram() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    UpdateMin(v);
    UpdateMax(v);
  }

  void RecordSeconds(double seconds) {
    if (seconds < 0 || !std::isfinite(seconds)) seconds = 0;
    Record(static_cast<uint64_t>(seconds * 1e9 + 0.5));
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
      const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c > 0) snap.Record(BucketLowerBound(i), c);
    }
    if (snap.count_ > 0) {
      // Bucket lower bounds approximate the totals; the recorder kept the
      // exact ones — carry those into the snapshot.
      snap.sum_ = sum_.load(std::memory_order_relaxed);
      snap.min_ =
          std::min(snap.min_, min_.load(std::memory_order_relaxed));
      snap.max_ =
          std::max(snap.max_, max_.load(std::memory_order_relaxed));
    }
    return snap;
  }

 private:
  void UpdateMin(uint64_t v) {
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(uint64_t v) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> max_{0};
};

}  // namespace dgs::obs

#endif  // DGS_OBS_HISTOGRAM_H_
