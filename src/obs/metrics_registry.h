// Metric exposition: counters, gauges, and histogram summaries registered
// by the existing stats structs and emitted as Prometheus text format or a
// JSON dump.
//
// The registry does not own any state and never samples eagerly: each
// registration is a name + help string + a sampling callback, so a scrape
// reads whatever the owning struct's snapshot path returns at that moment
// (e.g. `Server::StatsSnapshot()` behind a lambda). Scrapes are therefore
// exactly as consistent as the underlying snapshot — see
// docs/OBSERVABILITY.md for the full metric name registry (stable names,
// types, labels) and the naming rules enforced by `Lint`.
//
// Histograms are exposed as Prometheus *summaries* (quantile series +
// _sum/_count) rather than `le` buckets: the HDR layout has 1920 buckets,
// and the quantiles are what the SLO gates consume.

#ifndef DGS_OBS_METRICS_REGISTRY_H_
#define DGS_OBS_METRICS_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "util/status.h"

namespace dgs::obs {

class MetricsRegistry {
 public:
  using SampleFn = std::function<double()>;
  using HistogramFn = std::function<HistogramSnapshot()>;

  // Counters are cumulative and must be monotone across scrapes (linted by
  // CheckMonotonic); gauges move freely. Names must match
  // [a-zA-Z_:][a-zA-Z0-9_:]* and be unique — violations surface in Lint().
  void AddCounter(const std::string& name, const std::string& help,
                  SampleFn fn);
  void AddGauge(const std::string& name, const std::string& help,
                SampleFn fn);

  // `scale` converts raw histogram values for exposition; the default
  // turns recorded nanoseconds into seconds (Prometheus base unit).
  void AddHistogram(const std::string& name, const std::string& help,
                    HistogramFn fn, double scale = 1e-9);

  // Prometheus text exposition, metrics in registration order (stable
  // output for diffing two scrapes).
  std::string PrometheusText() const;

  // The same samples as a JSON object keyed by metric name.
  std::string JsonDump() const;

  // Registration-time hygiene: duplicate names (including histogram
  // expansions colliding with scalar metrics) and malformed names.
  Status Lint() const;

  // Parse two Prometheus text scrapes (as produced by PrometheusText) and
  // verify every counter sample in `before` is <= its value in `after`
  // and that neither scrape carries duplicate sample names. The CI smoke
  // job runs this across two scrapes of a live server.
  static Status CheckMonotonic(const std::string& before,
                               const std::string& after);

  size_t size() const { return metrics_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::string name;
    std::string help;
    SampleFn sample;
    HistogramFn histogram;
    double scale = 1.0;
  };

  std::vector<Metric> metrics_;
};

}  // namespace dgs::obs

#endif  // DGS_OBS_METRICS_REGISTRY_H_
