#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace dgs::obs {

std::atomic<TraceRecorder*> TraceRecorder::active_{nullptr};

namespace {

// Monotone recorder ids: a thread's cached ring must never be mistaken
// for one belonging to a new recorder that reused the old one's address.
std::atomic<uint64_t> g_next_recorder_id{1};

struct ThreadRingCache {
  uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local ThreadRingCache t_ring_cache;

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendMicros(uint64_t ns, std::string* out) {
  // Microseconds with nanosecond resolution, as Chrome trace `ts` expects.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  *out += buf;
}

void AppendArgs(const TraceEvent& e, std::string* out) {
  if (e.n_args == 0) return;
  *out += ",\"args\":{";
  for (uint32_t i = 0; i < e.n_args; ++i) {
    if (i > 0) *out += ',';
    const TraceArg& a = e.args[i];
    *out += '"';
    AppendJsonEscaped(a.key != nullptr ? a.key : "", out);
    *out += "\":";
    char buf[40];
    switch (a.kind) {
      case TraceArg::Kind::kUint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(a.u));
        *out += buf;
        break;
      case TraceArg::Kind::kDouble:
        std::snprintf(buf, sizeof(buf), "%.6g", a.d);
        *out += buf;
        break;
      case TraceArg::Kind::kStr:
        *out += '"';
        AppendJsonEscaped(a.s != nullptr ? a.s : "", out);
        *out += '"';
        break;
      case TraceArg::Kind::kNone:
        *out += "null";
        break;
    }
  }
  *out += '}';
}

}  // namespace

TraceRecorder::TraceRecorder(size_t ring_capacity)
    : ring_capacity_(std::max<size_t>(ring_capacity, 16)),
      origin_ns_(MonotonicNanos()),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() {
  if (Active() == this) Uninstall();
}

TraceRecorder::Ring* TraceRecorder::ThreadRing() {
  if (t_ring_cache.recorder_id == id_) {
    return static_cast<Ring*>(t_ring_cache.ring);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto ring = std::make_unique<Ring>();
  ring->events.resize(ring_capacity_);
  ring->lane = next_lane_++;
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  t_ring_cache.recorder_id = id_;
  t_ring_cache.ring = raw;
  return raw;
}

void TraceRecorder::Append(const TraceEvent& e) {
  Ring* ring = ThreadRing();
  TraceEvent ev = e;
  if (ev.lane == 0) ev.lane = ring->lane;
  if (ring->size < ring->events.size()) {
    ring->events[ring->size++] = ev;
  } else {
    ring->events[ring->head] = ev;
    ring->head = (ring->head + 1) % ring->events.size();
    ++ring->overwritten;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::Complete(const char* cat, const char* name,
                             uint64_t start_mono_ns, uint64_t dur_ns,
                             uint32_t lane,
                             std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.lane = lane;
  e.ts_ns = start_mono_ns >= origin_ns_ ? start_mono_ns - origin_ns_ : 0;
  e.dur_ns = dur_ns;
  for (const TraceArg& a : args) {
    if (a.kind == TraceArg::Kind::kNone) continue;
    if (e.n_args >= TraceEvent::kMaxArgs) break;
    e.args[e.n_args++] = a;
  }
  Append(e);
}

void TraceRecorder::Instant(const char* cat, const char* name,
                            std::initializer_list<TraceArg> args,
                            uint32_t lane, uint64_t mono_ns) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.lane = lane;
  const uint64_t at = mono_ns != 0 ? mono_ns : MonotonicNanos();
  e.ts_ns = at >= origin_ns_ ? at - origin_ns_ : 0;
  for (const TraceArg& a : args) {
    if (a.kind == TraceArg::Kind::kNone) continue;
    if (e.n_args >= TraceEvent::kMaxArgs) break;
    e.args[e.n_args++] = a;
  }
  Append(e);
}

void TraceRecorder::NameLane(uint32_t lane, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  lane_names_[lane] = name;
}

std::string TraceRecorder::ToJson() {
  std::vector<TraceEvent> merged;
  std::map<uint32_t, std::string> lane_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& r : rings_) total += r->size;
    merged.reserve(total);
    for (const auto& r : rings_) {
      for (size_t i = 0; i < r->size; ++i) merged.push_back(r->events[i]);
    }
    lane_names = lane_names_;
  }

  // Total order => deterministic output for the same logical events, no
  // matter how they were sharded across recording threads.
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.ph != b.ph) return a.ph < b.ph;
              // Longer spans first at equal start: parents enclose children.
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return std::strcmp(a.name != nullptr ? a.name : "",
                                 b.name != nullptr ? b.name : "") < 0;
            });

  std::string out;
  out.reserve(merged.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [lane, name] : lane_names) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(lane);
    out += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(name.c_str(), &out);
    out += "\"}}";
  }
  for (const TraceEvent& e : merged) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(e.name != nullptr ? e.name : "", &out);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(e.cat != nullptr ? e.cat : "", &out);
    out += "\",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.lane);
    out += ",\"ts\":";
    AppendMicros(e.ts_ns, &out);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      AppendMicros(e.dur_ns, &out);
    }
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    AppendArgs(e, &out);
    out += '}';
  }
  out += "]}";
  return out;
}

Status TraceRecorder::WriteJsonFile(const std::string& path) {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(StatusCode::kUnavailable,
                  "cannot open trace output file '" + path + "'");
  }
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fclose(f) == 0;
  if (!ok) {
    return Status(StatusCode::kUnavailable,
                  "short write to trace output file '" + path + "'");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Trace JSON validation: a compact recursive-descent JSON parser plus the
// structural checks from docs/trace.schema.json. Deliberately dependency-
// free — the repo has no JSON library, and the validator doubles as the
// parser for the metrics lint in the CI smoke job.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out, error)) return false;
    SkipWs();
    if (pos_ != s_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(std::string* error, const std::string& what) {
    *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    if (pos_ >= s_.size()) return Fail(error, "unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return ParseObject(out, error);
    if (c == '[') return ParseArray(out, error);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str, error);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out, error);
  }

  bool ParseNumber(JsonValue* out, std::string* error) {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail(error, "expected a JSON value");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    out->num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail(error, "malformed number");
    out->type = JsonValue::Type::kNumber;
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Fail(error, "bad \\u escape");
            // Validation only needs well-formedness, not transcoding.
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
                return Fail(error, "bad \\u escape");
              }
            }
            *out += '?';
            pos_ += 4;
            break;
          }
          default:
            return Fail(error, "bad escape character");
        }
      } else {
        *out += c;
      }
    }
    return Fail(error, "unterminated string");
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue v;
      SkipWs();
      if (!ParseValue(&v, error)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Fail(error, "unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail(error, "expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return Fail(error, "expected object key");
      }
      std::string key;
      if (!ParseString(&key, error)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return Fail(error, "expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v, error)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return Fail(error, "unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail(error, "expected ',' or '}'");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsNumber(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kNumber;
}

bool IsString(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kString;
}

}  // namespace

Status ValidateTraceJson(const std::string& json,
                         const std::vector<std::string>& required_spans) {
  JsonValue root;
  std::string error;
  if (!JsonParser(json).Parse(&root, &error)) {
    return Status(StatusCode::kDataLoss, "trace JSON parse error: " + error);
  }
  if (root.type != JsonValue::Type::kObject) {
    return Status(StatusCode::kDataLoss, "trace root is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Status(StatusCode::kDataLoss,
                  "trace is missing the traceEvents array");
  }

  std::vector<std::string> seen;
  for (size_t i = 0; i < events->arr.size(); ++i) {
    const JsonValue& e = events->arr[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (e.type != JsonValue::Type::kObject) {
      return Status(StatusCode::kDataLoss, at + " is not an object");
    }
    const JsonValue* name = e.Find("name");
    const JsonValue* ph = e.Find("ph");
    if (!IsString(name) || name->str.empty()) {
      return Status(StatusCode::kDataLoss, at + " has no usable name");
    }
    if (!IsString(ph) || ph->str.size() != 1 ||
        (ph->str != "X" && ph->str != "i" && ph->str != "M")) {
      return Status(StatusCode::kDataLoss,
                    at + " has ph outside {X,i,M}");
    }
    if (!IsNumber(e.Find("pid")) || !IsNumber(e.Find("tid"))) {
      return Status(StatusCode::kDataLoss, at + " lacks numeric pid/tid");
    }
    if (ph->str == "M") continue;  // metadata: no ts/cat required
    if (!IsNumber(e.Find("ts"))) {
      return Status(StatusCode::kDataLoss, at + " lacks a numeric ts");
    }
    if (!IsString(e.Find("cat"))) {
      return Status(StatusCode::kDataLoss, at + " lacks a cat string");
    }
    if (ph->str == "X") {
      const JsonValue* dur = e.Find("dur");
      if (!IsNumber(dur) || dur->num < 0) {
        return Status(StatusCode::kDataLoss,
                      at + " is a complete span without a valid dur");
      }
    }
    seen.push_back(name->str);
  }

  for (const std::string& want : required_spans) {
    if (std::find(seen.begin(), seen.end(), want) == seen.end()) {
      return Status(StatusCode::kNotFound,
                    "trace is missing required span '" + want + "'");
    }
  }
  return Status::Ok();
}

}  // namespace dgs::obs
