#include "util/table.h"

#include <cstdint>
#include <cstdio>
#include <iomanip>

#include "util/check.h"

namespace dgs {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DGS_CHECK(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / 1024.0);
  } else if (bytes < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace dgs
