// Dynamic fixed-capacity bitset used for simulation match sets.
//
// std::vector<bool> lacks word-level operations (popcount, bulk and/or) that
// the simulation kernels rely on, hence this small purpose-built container.

#ifndef DGS_UTIL_BITSET_H_
#define DGS_UTIL_BITSET_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dgs {

// A bitset whose size is fixed at construction time.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}
  explicit DynamicBitset(size_t size, bool value = false)
      : size_(size),
        words_((size + 63) / 64, value ? ~uint64_t{0} : uint64_t{0}) {
    ClearPadding();
  }

  size_t size() const { return size_; }

  bool Test(size_t i) const {
    DGS_DCHECK(i < size_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) {
    DGS_DCHECK(i < size_, "bit index out of range");
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Reset(size_t i) {
    DGS_DCHECK(i < size_, "bit index out of range");
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  // Number of set bits.
  size_t Count() const;

  bool Any() const;
  bool None() const { return !Any(); }

  void SetAll();
  void ResetAll();

  // this &= other / this |= other. Sizes must match.
  void AndWith(const DynamicBitset& other);
  void OrWith(const DynamicBitset& other);

  // Returns true if this and other share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  // Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + tz);
        bits &= bits - 1;
      }
    }
  }

  // Calls fn(index, now_set) in ascending index order for every bit that
  // differs between this and other (now_set = the bit's value in *this).
  // Sizes must match. Word-level XOR, so the common all-equal case costs
  // one pass over the words.
  template <typename Fn>
  void ForEachDiff(const DynamicBitset& other, Fn&& fn) const {
    DGS_DCHECK(size_ == other.size_, "bitset size mismatch");
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w] ^ other.words_[w];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + tz, ((words_[w] >> tz) & 1) != 0);
        bits &= bits - 1;
      }
    }
  }

  // Collects the indices of set bits.
  std::vector<uint32_t> ToVector() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  // Bits beyond size_ in the last word must stay zero so Count/Any are exact.
  void ClearPadding();

  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace dgs

#endif  // DGS_UTIL_BITSET_H_
