// Plain-text table rendering for the benchmark harness.
//
// Every experiment binary prints the series of the figure it reproduces as
// an aligned table (one row per x-axis value, one column per algorithm),
// matching the layout described in EXPERIMENTS.md.

#ifndef DGS_UTIL_TABLE_H_
#define DGS_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace dgs {

// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  // Renders the table to `os` with a header rule.
  void Print(std::ostream& os) const;

  // Cell access for alternative renderers (the benchmark harness mirrors
  // every printed table into machine-readable JSON).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (default 3 digits).
std::string FormatDouble(double value, int digits = 3);

// Formats a byte count as a human-friendly string (e.g. "1.25 KB").
std::string FormatBytes(uint64_t bytes);

}  // namespace dgs

#endif  // DGS_UTIL_TABLE_H_
