// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (generators, partitioners) take an
// explicit Rng so that experiments and tests are reproducible bit-for-bit
// from a seed. The engine is xoshiro256**, seeded via splitmix64.

#ifndef DGS_UTIL_RNG_H_
#define DGS_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dgs {

// Small, fast, deterministic PRNG. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t UniformInt(uint64_t bound) {
    DGS_CHECK(bound > 0, "UniformInt bound must be positive");
    // Multiply-shift rejection-free mapping (slight modulo bias is acceptable
    // for workload generation; determinism is what matters here).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t UniformInRange(uint64_t lo, uint64_t hi) {
    DGS_CHECK(lo <= hi, "UniformInRange requires lo <= hi");
    return lo + UniformInt(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Zipf-like skewed integer in [0, bound): P(k) proportional to
  // 1/(k+1)^theta, sampled by inversion over an approximate CDF. Used for
  // web-graph-style degree skew.
  uint64_t Skewed(uint64_t bound, double theta);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

inline uint64_t Rng::Skewed(uint64_t bound, double theta) {
  DGS_CHECK(bound > 0, "Skewed bound must be positive");
  // Inverse-power transform: u^(1/(1-theta)) concentrates mass near zero for
  // theta in (0, 1); clamp theta away from 1 for numerical stability.
  if (theta <= 0.0) return UniformInt(bound);
  if (theta > 0.99) theta = 0.99;
  double u = UniformDouble();
  double scaled = std::pow(u, 1.0 / (1.0 - theta));
  uint64_t k = static_cast<uint64_t>(scaled * static_cast<double>(bound));
  if (k >= bound) k = bound - 1;
  return k;
}

}  // namespace dgs

#endif  // DGS_UTIL_RNG_H_
