// Small open-addressing hash containers for integral keys.
//
// The engine hot paths (LocalEngine wire-key lookups, ReduceToFrontier's
// reachability bookkeeping, Fragment global->local translation) hash dense
// 32/64-bit keys millions of times per run; std::unordered_map's
// node-per-entry layout makes every probe a cache miss. These containers
// store key/value slots inline in one power-of-two array with linear
// probing and a multiplicative (Fibonacci) hash, so the common hit costs
// one cache line.
//
// Deliberately minimal: no erase (the engines only insert and look up),
// keys are integral, values need only be default-constructible and
// movable (rehashing moves them), and one key value is reserved as the
// empty sentinel (defaults to ~0; pass a different sentinel if ~0 is a
// legal key).

#ifndef DGS_UTIL_FLAT_HASH_H_
#define DGS_UTIL_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dgs {

namespace internal {

inline size_t HashInt(uint64_t key) {
  // Fibonacci multiplicative hash with an xor-fold; spreads consecutive
  // keys (dense node ids, packed wire keys) across the table.
  key ^= key >> 33;
  key *= 0x9e3779b97f4a7c15ull;
  key ^= key >> 29;
  return static_cast<size_t>(key);
}

}  // namespace internal

// Open-addressing map from an integral key to a movable value.
template <typename Key, typename Value>
class FlatHashMap {
  static_assert(std::is_integral_v<Key>, "FlatHashMap requires integral keys");

 public:
  explicit FlatHashMap(Key empty_key = static_cast<Key>(-1))
      : empty_key_(empty_key) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  void reserve(size_t n) { Rehash(NormalizeCapacity(n)); }

  // Inserts key -> value if absent; returns the stored value's address
  // (existing value on duplicate insert). Pointers are invalidated by the
  // next insert.
  Value* insert(Key key, Value value) {
    DGS_DCHECK(key != empty_key_, "inserting the empty sentinel key");
    if (NeedsGrow()) Rehash(slots_.empty() ? 16 : slots_.size() * 2);
    size_t i = FindSlot(key);
    if (slots_[i].first == empty_key_) {
      slots_[i] = {key, std::move(value)};
      ++size_;
    }
    return &slots_[i].second;
  }

  // Returns the value's address, or nullptr when absent.
  Value* find(Key key) {
    if (slots_.empty()) return nullptr;
    size_t i = FindSlot(key);
    return slots_[i].first == empty_key_ ? nullptr : &slots_[i].second;
  }
  const Value* find(Key key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  bool contains(Key key) const { return find(key) != nullptr; }

  // Calls fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.first != empty_key_) fn(slot.first, slot.second);
    }
  }

 private:
  static size_t NormalizeCapacity(size_t n) {
    size_t cap = 16;
    while (cap < n * 2) cap *= 2;  // keep load factor under 1/2
    return cap;
  }

  bool NeedsGrow() const {
    return slots_.empty() || (size_ + 1) * 2 > slots_.size();
  }

  size_t FindSlot(Key key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = internal::HashInt(static_cast<uint64_t>(key)) & mask;
    while (slots_[i].first != empty_key_ && slots_[i].first != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Rehash(size_t new_capacity) {
    if (new_capacity <= slots_.size()) return;
    std::vector<std::pair<Key, Value>> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_capacity);
    for (auto& slot : slots_) slot.first = empty_key_;
    for (auto& slot : old) {
      if (slot.first != empty_key_) {
        slots_[FindSlot(slot.first)] = std::move(slot);
      }
    }
  }

  Key empty_key_;
  std::vector<std::pair<Key, Value>> slots_;
  size_t size_ = 0;
};

// Open-addressing set of integral keys.
template <typename Key>
class FlatHashSet {
  static_assert(std::is_integral_v<Key>, "FlatHashSet requires integral keys");

 public:
  explicit FlatHashSet(Key empty_key = static_cast<Key>(-1))
      : empty_key_(empty_key) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  void reserve(size_t n) { Rehash(NormalizeCapacity(n)); }

  // Returns true if the key was newly inserted.
  bool insert(Key key) {
    DGS_DCHECK(key != empty_key_, "inserting the empty sentinel key");
    if (NeedsGrow()) Rehash(slots_.empty() ? 16 : slots_.size() * 2);
    size_t i = FindSlot(key);
    if (slots_[i] != empty_key_) return false;
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool contains(Key key) const {
    if (slots_.empty()) return false;
    return slots_[FindSlot(key)] != empty_key_;
  }

 private:
  static size_t NormalizeCapacity(size_t n) {
    size_t cap = 16;
    while (cap < n * 2) cap *= 2;
    return cap;
  }

  bool NeedsGrow() const {
    return slots_.empty() || (size_ + 1) * 2 > slots_.size();
  }

  size_t FindSlot(Key key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = internal::HashInt(static_cast<uint64_t>(key)) & mask;
    while (slots_[i] != empty_key_ && slots_[i] != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Rehash(size_t new_capacity) {
    if (new_capacity <= slots_.size()) return;
    std::vector<Key> old = std::move(slots_);
    slots_.assign(new_capacity, empty_key_);
    for (Key key : old) {
      if (key != empty_key_) slots_[FindSlot(key)] = key;
    }
  }

  Key empty_key_;
  std::vector<Key> slots_;
  size_t size_ = 0;
};

}  // namespace dgs

#endif  // DGS_UTIL_FLAT_HASH_H_
