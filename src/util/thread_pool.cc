#include "util/thread_pool.h"

#include <algorithm>

namespace dgs {

namespace {
// Pool whose job the current thread is executing (nullptr outside job
// context). A nested ParallelFor on the same pool must run inline: the
// outer job_/total_/next_ are live, and overwriting them corrupts or
// deadlocks the in-flight loop.
thread_local const ThreadPool* tls_running_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  // Backstop against nonsense widths (e.g. a negative knob cast to ~4e9):
  // modest oversubscription is legitimate, thousands of threads never are.
  num_threads = std::min(num_threads, std::max(64u, 8 * HardwareThreads()));
  workers_.reserve(num_threads - 1);
  for (uint32_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InJobContext() const { return tls_running_pool == this; }

uint32_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<uint32_t>(n);
}

void ThreadPool::RunIndices() {
  const ThreadPool* prev = tls_running_pool;
  tls_running_pool = this;
  while (true) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total_) break;
    (*job_)(i);
  }
  tls_running_pool = prev;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    RunIndices();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_workers_ == 0) work_done_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // The reentrant case (fn of an in-flight ParallelFor calling back into
  // the same pool) must not touch job_/total_/next_: execute inline on the
  // calling lane instead. Other lanes keep draining the outer job.
  if (workers_.empty() || n == 1 || tls_running_pool == this) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    total_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_workers_ = static_cast<uint32_t>(workers_.size());
    ++generation_;
  }
  work_ready_.notify_all();
  RunIndices();  // the caller's lane
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] { return active_workers_ == 0; });
    job_ = nullptr;
  }
}

void ThreadPool::ParallelForBlocks(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain < 1) grain = 1;
  const size_t num_blocks = (n + grain - 1) / grain;
  if (workers_.empty() || num_blocks == 1) {
    fn(0, n);
    return;
  }
  ParallelFor(num_blocks, [&](size_t b) {
    const size_t begin = b * grain;
    fn(begin, std::min(n, begin + grain));
  });
}

}  // namespace dgs
