// Error propagation without exceptions: Status and StatusOr<T>.
//
// Fallible public APIs (parsing, validated construction) return Status or
// StatusOr<T>. Infallible internal invariants use DGS_CHECK instead.

#ifndef DGS_UTIL_STATUS_H_
#define DGS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace dgs {

// Error categories. Kept small on purpose; the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  // Payload lost or unusable in transit (e.g. a corrupt wire message
  // poisoned a distributed run; see RunHealth in runtime/fault.h).
  kDataLoss,
  // A bounded resource is exhausted (e.g. a full admission queue rejected
  // the query; see serve/admission.h). Retrying later may succeed.
  kResourceExhausted,
  // The caller's deadline passed before the work ran (serve/server.h).
  kDeadlineExceeded,
  // The service is not accepting work (e.g. a dgs::Server after Shutdown).
  kUnavailable,
};

// Whether a failure with this code is transient — retrying the same
// operation unchanged may succeed. Drives dgs::Server's RetryOptions
// policy. Unavailable (a crashed site restarts, a shed queue drains),
// DeadlineExceeded (a watchdog-tripped run reseeds its fault schedule),
// and ResourceExhausted (capacity frees up) are retryable. DataLoss is
// deliberately NOT: a corrupt payload is a deterministic report about the
// data path, and the argument/precondition/internal families describe the
// request itself, which a retry would not change.
inline bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return false;
  }
  return false;
}

// Value-semantic error carrier. An OK status has an empty message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable one-line rendering, e.g. "InvalidArgument: bad node id".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value of T or an error Status. Access to value() requires ok().
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return Status::...` or `return
  // value;` directly, mirroring absl::StatusOr ergonomics.
  StatusOr(Status status) : status_(std::move(status)) {
    DGS_CHECK(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DGS_CHECK(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    DGS_CHECK(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    DGS_CHECK(ok(), status_.message().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dgs

#endif  // DGS_UTIL_STATUS_H_
