#include "util/bitset.h"

namespace dgs {

size_t DynamicBitset::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
  return total;
}

bool DynamicBitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void DynamicBitset::SetAll() {
  for (uint64_t& w : words_) w = ~uint64_t{0};
  ClearPadding();
}

void DynamicBitset::ResetAll() {
  for (uint64_t& w : words_) w = 0;
}

void DynamicBitset::AndWith(const DynamicBitset& other) {
  DGS_CHECK(size_ == other.size_, "bitset size mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void DynamicBitset::OrWith(const DynamicBitset& other) {
  DGS_CHECK(size_ == other.size_, "bitset size mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  DGS_CHECK(size_ == other.size_, "bitset size mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::vector<uint32_t> DynamicBitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEachSet([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

void DynamicBitset::ClearPadding() {
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
  }
}

}  // namespace dgs
