// Monotonic wall-clock timer for response-time accounting.

#ifndef DGS_UTIL_TIMER_H_
#define DGS_UTIL_TIMER_H_

#include <chrono>

namespace dgs {

// Measures elapsed wall time from construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed seconds since start.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dgs

#endif  // DGS_UTIL_TIMER_H_
