// Pooled fork-join executor for the cluster runtime and simulation kernels.
//
// A ThreadPool owns `num_threads - 1` persistent worker threads; the caller
// of ParallelFor participates as the remaining lane, so a pool with
// num_threads == 1 spawns nothing and degenerates to a plain loop. Work is
// distributed by an atomic index counter, which self-balances like work
// stealing: a lane that finishes a cheap item immediately claims the next
// one, so skewed per-item costs (one hot site per cluster round is common)
// never idle the other lanes.
//
// ParallelFor is a barrier: it returns only after fn ran for every index.
// fn must be safe to run concurrently for distinct indices; the pool makes
// no ordering guarantee between them. Callers that need deterministic
// output (the cluster runtime does) must make fn write to per-index slots
// and merge in index order after the barrier.

#ifndef DGS_UTIL_THREAD_POOL_H_
#define DGS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dgs {

class ThreadPool {
 public:
  // Clamps to at least 1 and at most max(64, 8 x hardware threads).
  // `num_threads` counts the caller's lane.
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size()) + 1;
  }

  // Runs fn(i) for every i in [0, n), distributing indices over all lanes.
  // Blocks until every call returned. Reentrant calls (fn itself calling
  // ParallelFor/ParallelForBlocks on the same pool) are detected and
  // executed inline on the calling lane, so nesting is safe — the nested
  // loop simply gets no extra parallelism. Calls from a different pool's
  // job dispatch normally.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Splits [0, n) into contiguous blocks of roughly `grain` indices and
  // runs fn(begin, end) per block. Use for fine-grained loops where a
  // per-index dispatch through std::function would dominate.
  void ParallelForBlocks(size_t n, size_t grain,
                         const std::function<void(size_t, size_t)>& fn);

  // Cheap work-count heuristic for callers choosing between their serial
  // and parallel paths: true when `items` roughly-uniform work items give
  // every lane at least `min_items_per_lane` of them — below that the
  // wake/barrier cost of a dispatch outweighs the work. Single-lane pools
  // never parallelize. The caller remains responsible for thread-count
  // invariance of the results, so gating on the (width-dependent) answer
  // is safe.
  bool WorthParallelizing(size_t items, size_t min_items_per_lane) const {
    return !workers_.empty() &&
           items >= min_items_per_lane * (workers_.size() + 1);
  }

  // True when the calling thread is already executing one of this pool's
  // jobs. A nested ParallelFor would run inline (see above), so sharded
  // algorithms that only pay off with real lanes (simulation/relax.h,
  // EquationSystem::PropagateParallel) use this to take their plain
  // sequential path instead of the sharded one.
  bool InJobContext() const;

  // Hardware threads available to this process (>= 1).
  static uint32_t HardwareThreads();

 private:
  void WorkerLoop();
  void RunIndices();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  uint64_t generation_ = 0;  // bumped per ParallelFor to wake workers
  uint32_t active_workers_ = 0;
  bool stop_ = false;

  // Current job; valid while a generation is in flight.
  const std::function<void(size_t)>* job_ = nullptr;
  std::atomic<size_t> next_{0};
  size_t total_ = 0;
};

}  // namespace dgs

#endif  // DGS_UTIL_THREAD_POOL_H_
