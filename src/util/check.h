// Lightweight assertion macros.
//
// The library does not use exceptions (see DESIGN.md); programming errors
// abort with a diagnostic, while recoverable errors are reported through
// util::Status.

#ifndef DGS_UTIL_CHECK_H_
#define DGS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a source location and message when `cond` is false.
// Use for invariants that indicate a bug in the caller or in the library, not
// for data-dependent failures.
#define DGS_CHECK(cond, msg)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DGS_CHECK failed at %s:%d: %s\n  %s\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

// Debug-only variant; compiled out in release builds.
#ifdef NDEBUG
#define DGS_DCHECK(cond, msg) \
  do {                        \
  } while (0)
#else
#define DGS_DCHECK(cond, msg) DGS_CHECK(cond, msg)
#endif

#endif  // DGS_UTIL_CHECK_H_
