#include "partition/fragmentation.h"

#include <algorithm>
#include <tuple>

namespace dgs {

NodeId Fragment::ToLocal(NodeId global_id) const {
  const NodeId* local = global_to_local.find(global_id);
  return local == nullptr ? kInvalidNode : *local;
}

StatusOr<Fragmentation> Fragmentation::Create(
    const Graph& g, const std::vector<uint32_t>& assignment,
    uint32_t num_fragments) {
  if (assignment.size() != g.NumNodes()) {
    return Status::InvalidArgument("assignment size != number of nodes");
  }
  if (num_fragments == 0) {
    return Status::InvalidArgument("need at least one fragment");
  }
  for (uint32_t a : assignment) {
    if (a >= num_fragments) {
      return Status::OutOfRange("fragment id in assignment out of range");
    }
  }

  Fragmentation f;
  f.assignment_ = assignment;
  f.fragments_.resize(num_fragments);

  // Pass 1: local node ids in global order.
  std::vector<GraphBuilder> builders(num_fragments);
  for (uint32_t i = 0; i < num_fragments; ++i) f.fragments_[i].id = i;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    Fragment& frag = f.fragments_[assignment[v]];
    NodeId local = builders[assignment[v]].AddNode(g.LabelOf(v));
    frag.local_to_global.push_back(v);
    frag.global_to_local.insert(v, local);
  }
  for (uint32_t i = 0; i < num_fragments; ++i) {
    f.fragments_[i].num_local =
        static_cast<uint32_t>(f.fragments_[i].local_to_global.size());
  }

  // Pass 2: edges; crossing edges materialize virtual nodes and consumer
  // annotations. Boundary nodes and (in-node, consumer site, source label)
  // triples are gathered flat and sorted once afterwards — the former
  // std::set / std::map-of-sets bookkeeping allocated a red-black node per
  // crossing edge and dominated Create() on partition-heavy runs.
  std::vector<NodeId> boundary;  // global ids appearing as virtual nodes
  std::vector<std::tuple<NodeId, uint32_t, Label>> consumer_triples;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const uint32_t i = assignment[v];
    Fragment& frag = f.fragments_[i];
    const NodeId vl = *frag.global_to_local.find(v);
    for (NodeId w : g.OutNeighbors(v)) {
      const uint32_t j = assignment[w];
      if (i == j) {
        builders[i].AddEdge(vl, *frag.global_to_local.find(w));
        continue;
      }
      ++f.num_crossing_edges_;
      boundary.push_back(w);
      NodeId wl = frag.ToLocal(w);
      if (wl == kInvalidNode) {
        wl = builders[i].AddNode(g.LabelOf(w));
        frag.local_to_global.push_back(w);
        frag.global_to_local.insert(w, wl);
      }
      builders[i].AddEdge(vl, wl);
      consumer_triples.emplace_back(w, i, g.LabelOf(v));
    }
  }
  std::sort(boundary.begin(), boundary.end());
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());
  f.num_boundary_nodes_ = boundary.size();

  for (uint32_t i = 0; i < num_fragments; ++i) {
    f.fragments_[i].graph = std::move(builders[i]).Build();
  }

  // Pass 3: in-node lists with consumers, grouped per home fragment.
  // Sorting by (global id, site, label) reproduces the former ordered-map
  // iteration exactly: in-node local ids ascend per fragment and each
  // consumer's source labels come out sorted and deduplicated.
  std::sort(consumer_triples.begin(), consumer_triples.end());
  consumer_triples.erase(
      std::unique(consumer_triples.begin(), consumer_triples.end()),
      consumer_triples.end());
  for (size_t k = 0; k < consumer_triples.size();) {
    const auto [global_id, consumer_site, first_label] = consumer_triples[k];
    Fragment& home = f.fragments_[assignment[global_id]];
    NodeId local = *home.global_to_local.find(global_id);
    if (home.in_nodes.empty() || home.in_nodes.back() != local) {
      DGS_CHECK(home.in_nodes.empty() || home.in_nodes.back() < local,
                "in-node ordering invariant violated");
      home.in_nodes.push_back(local);
      home.consumers.emplace_back();
    }
    std::vector<Label> labels;
    while (k < consumer_triples.size() &&
           std::get<0>(consumer_triples[k]) == global_id &&
           std::get<1>(consumer_triples[k]) == consumer_site) {
      labels.push_back(std::get<2>(consumer_triples[k]));
      ++k;
    }
    home.consumers.back().push_back({consumer_site, std::move(labels)});
  }

  return f;
}

size_t Fragmentation::MaxFragmentSize() const {
  size_t best = 0;
  for (const auto& frag : fragments_) best = std::max(best, frag.Size());
  return best;
}

}  // namespace dgs
