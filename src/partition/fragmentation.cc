#include "partition/fragmentation.h"

#include <algorithm>
#include <map>
#include <set>

namespace dgs {

NodeId Fragment::ToLocal(NodeId global_id) const {
  auto it = global_to_local.find(global_id);
  return it == global_to_local.end() ? kInvalidNode : it->second;
}

StatusOr<Fragmentation> Fragmentation::Create(
    const Graph& g, const std::vector<uint32_t>& assignment,
    uint32_t num_fragments) {
  if (assignment.size() != g.NumNodes()) {
    return Status::InvalidArgument("assignment size != number of nodes");
  }
  if (num_fragments == 0) {
    return Status::InvalidArgument("need at least one fragment");
  }
  for (uint32_t a : assignment) {
    if (a >= num_fragments) {
      return Status::OutOfRange("fragment id in assignment out of range");
    }
  }

  Fragmentation f;
  f.assignment_ = assignment;
  f.fragments_.resize(num_fragments);

  // Pass 1: local node ids in global order.
  std::vector<GraphBuilder> builders(num_fragments);
  for (uint32_t i = 0; i < num_fragments; ++i) f.fragments_[i].id = i;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    Fragment& frag = f.fragments_[assignment[v]];
    NodeId local = builders[assignment[v]].AddNode(g.LabelOf(v));
    frag.local_to_global.push_back(v);
    frag.global_to_local.emplace(v, local);
  }
  for (uint32_t i = 0; i < num_fragments; ++i) {
    f.fragments_[i].num_local =
        static_cast<uint32_t>(f.fragments_[i].local_to_global.size());
  }

  // Pass 2: edges; crossing edges materialize virtual nodes and consumer
  // annotations.
  std::set<NodeId> boundary;  // global ids appearing as virtual nodes
  // (in-node global id, consumer site) -> crossing source labels
  std::map<std::pair<NodeId, uint32_t>, std::set<Label>> consumer_labels;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const uint32_t i = assignment[v];
    Fragment& frag = f.fragments_[i];
    for (NodeId w : g.OutNeighbors(v)) {
      const uint32_t j = assignment[w];
      if (i == j) {
        builders[i].AddEdge(frag.global_to_local[v], frag.global_to_local[w]);
        continue;
      }
      ++f.num_crossing_edges_;
      boundary.insert(w);
      NodeId wl = frag.ToLocal(w);
      if (wl == kInvalidNode) {
        wl = builders[i].AddNode(g.LabelOf(w));
        frag.local_to_global.push_back(w);
        frag.global_to_local.emplace(w, wl);
      }
      builders[i].AddEdge(frag.global_to_local[v], wl);
      consumer_labels[{w, i}].insert(g.LabelOf(v));
    }
  }
  f.num_boundary_nodes_ = boundary.size();

  for (uint32_t i = 0; i < num_fragments; ++i) {
    f.fragments_[i].graph = std::move(builders[i]).Build();
  }

  // Pass 3: in-node lists with consumers, grouped per home fragment.
  for (auto& [key, labels] : consumer_labels) {
    const auto [global_id, consumer_site] = key;
    Fragment& home = f.fragments_[assignment[global_id]];
    NodeId local = home.global_to_local.at(global_id);
    if (home.in_nodes.empty() || home.in_nodes.back() != local) {
      // consumer_labels is ordered by (global id, site); local ids are
      // assigned in global order within a fragment, so in-node local ids
      // arrive in ascending order per fragment.
      DGS_CHECK(home.in_nodes.empty() || home.in_nodes.back() < local,
                "in-node ordering invariant violated");
      home.in_nodes.push_back(local);
      home.consumers.emplace_back();
    }
    home.consumers.back().push_back(
        {consumer_site, std::vector<Label>(labels.begin(), labels.end())});
  }

  return f;
}

size_t Fragmentation::MaxFragmentSize() const {
  size_t best = 0;
  for (const auto& frag : fragments_) best = std::max(best, frag.Size());
  return best;
}

}  // namespace dgs
