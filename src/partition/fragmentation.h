// Distributed data graphs: fragmentation F = (F1, ..., Fn) (Section 2.2).
//
// A fragmentation partitions the nodes of G over n sites. Fragment Fi holds
//   - its local nodes Vi (the partition class),
//   - virtual nodes Fi.O: targets of crossing edges leaving Fi, and
//   - edges Ei: edges between local nodes plus crossing edges from local
//     nodes to virtual nodes (the subgraph induced by Vi ∪ Fi.O restricted
//     to edges whose source is local).
// Fi.I is the set of in-nodes: local nodes with an incoming crossing edge.
// Vf = ∪ Fi.O is the boundary node set and Ef the crossing edge set; the
// paper's partition-bounded guarantees are stated in |Vf| and |Ef|.
//
// Fragmentation also precomputes the local dependency information of
// Section 4.1: for each in-node, the consumer sites that hold it as a
// virtual node (annotated with the labels of the crossing-edge sources, used
// to suppress useless truth-value shipments).
//
// Sharing contract. A Fragmentation is immutable after Create: every
// accessor is const and there is no lazy or cached state behind them, so a
// single instance may be read concurrently without synchronization. This is
// what lets one deployment back many readers at once — dgs::Engine borrows
// it const (the Engine::Create overload taking const Fragmentation*), and
// dgs::Server points N Engine replicas at one instance so concurrent
// queries share the resident fragments zero-copy.

#ifndef DGS_PARTITION_FRAGMENTATION_H_
#define DGS_PARTITION_FRAGMENTATION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/flat_hash.h"
#include "util/status.h"

namespace dgs {

// A site that references one of our in-nodes as a virtual node.
struct InNodeConsumer {
  uint32_t site = 0;
  // Labels of the nodes at `site` that have a crossing edge into the
  // in-node. A truth value X(u, v) is useful to `site` only if some parent
  // u' of u carries one of these labels.
  std::vector<Label> source_labels;
};

// One fragment. Local node ids are dense: [0, num_local) are local nodes in
// global-id order, [num_local, graph.NumNodes()) are virtual nodes.
struct Fragment {
  uint32_t id = 0;
  uint32_t num_local = 0;
  // Local subgraph over local + virtual nodes; virtual nodes have no
  // out-edges here (their adjacency lives at their home site).
  Graph graph;
  std::vector<NodeId> local_to_global;
  // Open-addressing map (kInvalidNode sentinel): ToLocal is on the engine
  // hot path — every remote truth value resolves through it.
  FlatHashMap<NodeId, NodeId> global_to_local;

  // In-nodes Fi.I as local ids (sorted ascending).
  std::vector<NodeId> in_nodes;
  // consumers[k] lists the consumer sites of in_nodes[k].
  std::vector<std::vector<InNodeConsumer>> consumers;

  size_t NumVirtual() const { return graph.NumNodes() - num_local; }
  bool IsVirtual(NodeId local_id) const { return local_id >= num_local; }
  // |Fi| = nodes + edges of the fragment subgraph.
  size_t Size() const { return graph.Size(); }

  NodeId ToGlobal(NodeId local_id) const { return local_to_global[local_id]; }
  // kInvalidNode if the global node has no copy in this fragment.
  NodeId ToLocal(NodeId global_id) const;
};

// Immutable fragmentation of a graph. Does not own the data graph.
// Const access (all of it) is thread-safe; see the sharing contract above.
class Fragmentation {
 public:
  // Validates `assignment` (one entry per node of g, values < num_fragments)
  // and builds all fragments. Every fragment id in [0, num_fragments) is a
  // site, even if its node set is empty.
  static StatusOr<Fragmentation> Create(const Graph& g,
                                        const std::vector<uint32_t>& assignment,
                                        uint32_t num_fragments);

  uint32_t NumFragments() const {
    return static_cast<uint32_t>(fragments_.size());
  }
  const Fragment& fragment(uint32_t i) const {
    DGS_CHECK(i < fragments_.size(), "fragment id out of range");
    return fragments_[i];
  }
  uint32_t OwnerOf(NodeId global_id) const {
    DGS_CHECK(global_id < assignment_.size(), "node id out of range");
    return assignment_[global_id];
  }
  const std::vector<uint32_t>& assignment() const { return assignment_; }

  // |Vf|: number of distinct nodes that appear as a virtual node somewhere.
  size_t NumBoundaryNodes() const { return num_boundary_nodes_; }
  // |Ef|: number of crossing edges.
  size_t NumCrossingEdges() const { return num_crossing_edges_; }
  // |Fm|: size (nodes + edges) of the largest fragment.
  size_t MaxFragmentSize() const;

 private:
  std::vector<Fragment> fragments_;
  std::vector<uint32_t> assignment_;
  size_t num_boundary_nodes_ = 0;
  size_t num_crossing_edges_ = 0;
};

}  // namespace dgs

#endif  // DGS_PARTITION_FRAGMENTATION_H_
