// Graph partitioning strategies (Section 6 "Graph fragmentation").
//
// The paper partitions G randomly into |F| fragments of average size
// |G|/|F| and then adjusts the boundary-node ratio |Vf|/|V| to a target by
// iterative node swaps (following Ja-be-Ja [27]). This module provides:
//   - RandomPartition / HashPartition: uniform assignment,
//   - ContiguousPartition: balanced BFS regions (low |Vf| starting point),
//   - PartitionWithBoundaryRatio: contiguous start, then raises or lowers
//     |Vf|/|V| by swaps/moves toward the target ratio,
//   - TreePartition: connected subtrees (precondition of dGPMt / Cor. 4).
//
// All partitioners return one fragment id per node.

#ifndef DGS_PARTITION_PARTITIONER_H_
#define DGS_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace dgs {

// Uniform random assignment.
std::vector<uint32_t> RandomPartition(const Graph& g, uint32_t num_fragments,
                                      Rng& rng);

// Deterministic id-hash assignment (no Rng; stable across runs).
std::vector<uint32_t> HashPartition(const Graph& g, uint32_t num_fragments);

// Balanced multi-source BFS regions: grows num_fragments regions from random
// seeds in round-robin, assigning stragglers to the smallest region. Yields
// a comparatively small boundary set on graphs with locality.
std::vector<uint32_t> ContiguousPartition(const Graph& g,
                                          uint32_t num_fragments, Rng& rng);

// Contiguous id-range blocks of equal size. The cheapest low-boundary
// partition for graphs whose edge locality lives in the id space (web
// crawls, citation graphs ordered by time).
std::vector<uint32_t> RangePartition(const Graph& g, uint32_t num_fragments);

// Fraction of nodes that are boundary nodes: |Vf| / |V|.
double BoundaryNodeRatio(const Graph& g, const std::vector<uint32_t>& assignment);

// Fraction of edges that are crossing edges: |Ef| / |E|.
double CrossingEdgeRatio(const Graph& g, const std::vector<uint32_t>& assignment);

// Starts from ContiguousPartition and nudges |Vf|/|V| toward target_ratio:
// random cross-fragment swaps raise it; greedy majority-neighbor moves lower
// it (size-balance cap 1.25x). Best effort: stops when within `tolerance`
// or when progress stalls; callers should report the achieved ratio.
std::vector<uint32_t> PartitionWithBoundaryRatio(const Graph& g,
                                                 uint32_t num_fragments,
                                                 double target_ratio, Rng& rng,
                                                 double tolerance = 0.02);

// Partitions a downward forest (edges parent->child, in-degree <= 1) into
// num_fragments connected subtrees of roughly equal size by carving heavy
// subtrees post-order. Fails if g is not a downward forest.
StatusOr<std::vector<uint32_t>> TreePartition(const Graph& g,
                                              uint32_t num_fragments);

}  // namespace dgs

#endif  // DGS_PARTITION_PARTITIONER_H_
