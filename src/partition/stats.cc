#include "partition/stats.h"

#include <algorithm>
#include <cstdio>

namespace dgs {

PartitionStats ComputePartitionStats(const Fragmentation& fragmentation) {
  PartitionStats stats;
  stats.num_fragments = fragmentation.NumFragments();
  stats.num_nodes = fragmentation.assignment().size();
  stats.boundary_nodes = fragmentation.NumBoundaryNodes();
  stats.crossing_edges = fragmentation.NumCrossingEdges();
  stats.max_fragment_size = fragmentation.MaxFragmentSize();

  stats.min_local_nodes = stats.num_nodes;
  for (uint32_t i = 0; i < fragmentation.NumFragments(); ++i) {
    const Fragment& frag = fragmentation.fragment(i);
    // Count only edges owned here (sourced at local nodes); crossing edges
    // are included exactly once, at their source fragment.
    size_t local_edges = 0;
    for (NodeId v = 0; v < frag.num_local; ++v) {
      local_edges += frag.graph.OutDegree(v);
    }
    stats.num_edges += local_edges;
    stats.min_local_nodes =
        std::min<size_t>(stats.min_local_nodes, frag.num_local);
    stats.max_local_nodes =
        std::max<size_t>(stats.max_local_nodes, frag.num_local);
    for (const auto& consumers : frag.consumers) {
      stats.consumer_links += consumers.size();
    }
  }
  if (stats.num_fragments > 0) {
    stats.mean_local_nodes = static_cast<double>(stats.num_nodes) /
                             static_cast<double>(stats.num_fragments);
  }
  if (stats.mean_local_nodes > 0) {
    stats.balance_factor =
        static_cast<double>(stats.max_local_nodes) / stats.mean_local_nodes;
  }
  if (stats.num_nodes > 0) {
    stats.boundary_node_ratio = static_cast<double>(stats.boundary_nodes) /
                                static_cast<double>(stats.num_nodes);
  }
  if (stats.num_edges > 0) {
    stats.crossing_edge_ratio = static_cast<double>(stats.crossing_edges) /
                                static_cast<double>(stats.num_edges);
  }
  return stats;
}

std::string PartitionStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "fragments=%zu nodes=%zu edges=%zu |Fm|=%zu\n"
                "|Vf|=%zu (%.1f%%) |Ef|=%zu (%.1f%%)\n"
                "local nodes min/mean/max = %zu / %.1f / %zu "
                "(balance %.2fx), consumer links=%zu",
                num_fragments, num_nodes, num_edges, max_fragment_size,
                boundary_nodes, 100.0 * boundary_node_ratio, crossing_edges,
                100.0 * crossing_edge_ratio, min_local_nodes,
                mean_local_nodes, max_local_nodes, balance_factor,
                consumer_links);
  return buf;
}

}  // namespace dgs
