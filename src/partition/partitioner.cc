#include "partition/partitioner.h"

#include <algorithm>
#include <set>

#include "graph/algorithms.h"

namespace dgs {
namespace {

// Marks the boundary nodes (targets of crossing edges) of `assignment`.
std::vector<bool> BoundaryNodes(const Graph& g,
                                const std::vector<uint32_t>& assignment) {
  std::vector<bool> boundary(g.NumNodes(), false);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      if (assignment[v] != assignment[w]) boundary[w] = true;
    }
  }
  return boundary;
}

// Exact change in |Vf| if node `p` moves to fragment `to`: only p itself and
// p's out-targets can change boundary status.
int DeltaBoundaryOnMove(const Graph& g, const std::vector<uint32_t>& a,
                        NodeId p, uint32_t to) {
  const uint32_t from = a[p];
  auto boundary_with_p_in = [&](NodeId w, uint32_t p_frag) {
    const uint32_t wf = (w == p) ? p_frag : a[w];
    for (NodeId src : g.InNeighbors(w)) {
      const uint32_t sf = (src == p) ? p_frag : a[src];
      if (sf != wf) return true;
    }
    return false;
  };
  int delta = static_cast<int>(boundary_with_p_in(p, to)) -
              static_cast<int>(boundary_with_p_in(p, from));
  for (NodeId w : g.OutNeighbors(p)) {
    if (w == p) continue;
    delta += static_cast<int>(boundary_with_p_in(w, to)) -
             static_cast<int>(boundary_with_p_in(w, from));
  }
  return delta;
}

}  // namespace

std::vector<uint32_t> RandomPartition(const Graph& g, uint32_t num_fragments,
                                      Rng& rng) {
  DGS_CHECK(num_fragments > 0, "need at least one fragment");
  std::vector<uint32_t> assignment(g.NumNodes());
  for (auto& a : assignment) {
    a = static_cast<uint32_t>(rng.UniformInt(num_fragments));
  }
  return assignment;
}

std::vector<uint32_t> HashPartition(const Graph& g, uint32_t num_fragments) {
  DGS_CHECK(num_fragments > 0, "need at least one fragment");
  std::vector<uint32_t> assignment(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    uint64_t h = v;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    assignment[v] = static_cast<uint32_t>((h ^ (h >> 31)) % num_fragments);
  }
  return assignment;
}

std::vector<uint32_t> ContiguousPartition(const Graph& g,
                                          uint32_t num_fragments, Rng& rng) {
  DGS_CHECK(num_fragments > 0, "need at least one fragment");
  const size_t n = g.NumNodes();
  constexpr uint32_t kUnassigned = static_cast<uint32_t>(-1);
  std::vector<uint32_t> assignment(n, kUnassigned);
  const size_t capacity = (n + num_fragments - 1) / num_fragments;

  // Per-fragment BFS frontier and size.
  std::vector<std::vector<NodeId>> frontier(num_fragments);
  std::vector<size_t> size(num_fragments, 0);
  // With more fragments than nodes only the first n get a seed (the rest
  // stay empty — Fragmentation supports empty sites); probing past that
  // point would spin forever on a fully-assigned graph.
  for (uint32_t i = 0; i < num_fragments && static_cast<size_t>(i) < n; ++i) {
    // Random unassigned seed (linear probe from a random start).
    NodeId seed = static_cast<NodeId>(rng.UniformInt(n));
    while (assignment[seed] != kUnassigned) seed = (seed + 1) % n;
    assignment[seed] = i;
    ++size[i];
    frontier[i].push_back(seed);
  }

  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t i = 0; i < num_fragments; ++i) {
      if (size[i] >= capacity) continue;
      // Grow region i by one node if possible.
      while (!frontier[i].empty() && size[i] < capacity) {
        NodeId v = frontier[i].back();
        NodeId grabbed = kInvalidNode;
        for (NodeId w : g.OutNeighbors(v)) {
          if (assignment[w] == kUnassigned) {
            grabbed = w;
            break;
          }
        }
        if (grabbed == kInvalidNode) {
          for (NodeId w : g.InNeighbors(v)) {
            if (assignment[w] == kUnassigned) {
              grabbed = w;
              break;
            }
          }
        }
        if (grabbed == kInvalidNode) {
          frontier[i].pop_back();
          continue;
        }
        assignment[grabbed] = i;
        ++size[i];
        frontier[i].push_back(grabbed);
        progress = true;
        break;
      }
    }
  }
  // Stragglers (unreached components): round-robin to the smallest regions.
  for (NodeId v = 0; v < n; ++v) {
    if (assignment[v] == kUnassigned) {
      uint32_t smallest = 0;
      for (uint32_t i = 1; i < num_fragments; ++i) {
        if (size[i] < size[smallest]) smallest = i;
      }
      assignment[v] = smallest;
      ++size[smallest];
    }
  }
  return assignment;
}

double BoundaryNodeRatio(const Graph& g,
                         const std::vector<uint32_t>& assignment) {
  if (g.NumNodes() == 0) return 0.0;
  auto boundary = BoundaryNodes(g, assignment);
  size_t count = static_cast<size_t>(
      std::count(boundary.begin(), boundary.end(), true));
  return static_cast<double>(count) / static_cast<double>(g.NumNodes());
}

double CrossingEdgeRatio(const Graph& g,
                         const std::vector<uint32_t>& assignment) {
  if (g.NumEdges() == 0) return 0.0;
  size_t crossing = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      if (assignment[v] != assignment[w]) ++crossing;
    }
  }
  return static_cast<double>(crossing) / static_cast<double>(g.NumEdges());
}

std::vector<uint32_t> RangePartition(const Graph& g, uint32_t num_fragments) {
  DGS_CHECK(num_fragments > 0, "need at least one fragment");
  const size_t n = g.NumNodes();
  std::vector<uint32_t> assignment(n);
  const size_t block = (n + num_fragments - 1) / num_fragments;
  for (NodeId v = 0; v < n; ++v) {
    assignment[v] = static_cast<uint32_t>(v / std::max<size_t>(block, 1));
  }
  return assignment;
}

std::vector<uint32_t> PartitionWithBoundaryRatio(const Graph& g,
                                                 uint32_t num_fragments,
                                                 double target_ratio, Rng& rng,
                                                 double tolerance) {
  const size_t n = g.NumNodes();
  // Seed with whichever cheap partition has the smaller boundary: BFS
  // regions (good for structural locality) or id ranges (good for id-space
  // locality). Refinement then walks the ratio toward the target.
  std::vector<uint32_t> assignment = ContiguousPartition(g, num_fragments, rng);
  {
    std::vector<uint32_t> ranges = RangePartition(g, num_fragments);
    if (BoundaryNodeRatio(g, ranges) < BoundaryNodeRatio(g, assignment)) {
      assignment = std::move(ranges);
    }
  }
  if (n == 0 || num_fragments < 2) return assignment;

  const size_t cap =
      static_cast<size_t>(1.25 * static_cast<double>(n) / num_fragments) + 1;
  std::vector<size_t> size(num_fragments, 0);
  for (uint32_t a : assignment) ++size[a];

  double ratio = BoundaryNodeRatio(g, assignment);
  const size_t batch = std::max<size_t>(1, n / 100);
  for (int iter = 0; iter < 400; ++iter) {
    if (std::abs(ratio - target_ratio) <= tolerance) break;
    if (ratio < target_ratio) {
      // Raise the boundary: swap random node pairs across fragments.
      for (size_t s = 0; s < batch; ++s) {
        NodeId a = static_cast<NodeId>(rng.UniformInt(n));
        NodeId b = static_cast<NodeId>(rng.UniformInt(n));
        if (assignment[a] == assignment[b]) continue;
        std::swap(assignment[a], assignment[b]);
      }
    } else {
      // Lower the boundary with exact-delta hill climbing: a sampled node
      // moves to a neighbor-suggested fragment only if that strictly
      // reduces |Vf| (balance-capped). Monotone, so refinement can never
      // overshoot upward.
      auto boundary = BoundaryNodes(g, assignment);
      size_t moved = 0;
      for (size_t s = 0; s < 8 * batch; ++s) {
        NodeId v = static_cast<NodeId>(rng.UniformInt(n));
        // Prefer sources feeding boundary nodes; fall back to v itself.
        NodeId p = v;
        if (boundary[v] && g.InDegree(v) > 0) {
          auto preds = g.InNeighbors(v);
          NodeId cand = preds[rng.UniformInt(preds.size())];
          if (assignment[cand] != assignment[v]) p = cand;
        }
        // Candidate target: majority fragment of p's in+out neighborhood.
        std::vector<uint32_t> votes(num_fragments, 0);
        for (NodeId w : g.OutNeighbors(p)) ++votes[assignment[w]];
        for (NodeId w : g.InNeighbors(p)) ++votes[assignment[w]];
        if (p != v) votes[assignment[v]] += 2;  // pull toward the consumer
        uint32_t best = assignment[p];
        for (uint32_t i = 0; i < num_fragments; ++i) {
          if (votes[i] > votes[best]) best = i;
        }
        if (best == assignment[p] || size[best] >= cap) continue;
        if (DeltaBoundaryOnMove(g, assignment, p, best) >= 0) continue;
        --size[assignment[p]];
        ++size[best];
        assignment[p] = best;
        ++moved;
      }
      if (moved == 0) break;  // stalled
    }
    ratio = BoundaryNodeRatio(g, assignment);
  }
  return assignment;
}

StatusOr<std::vector<uint32_t>> TreePartition(const Graph& g,
                                              uint32_t num_fragments) {
  if (num_fragments == 0) {
    return Status::InvalidArgument("need at least one fragment");
  }
  if (!IsDownwardForest(g)) {
    return Status::FailedPrecondition("graph is not a downward forest");
  }
  const size_t n = g.NumNodes();
  std::vector<uint32_t> assignment(n, 0);
  if (num_fragments == 1 || n == 0) return assignment;

  // Subtree sizes via reverse topological (children-first) order.
  auto order = TopologicalOrder(g);
  DGS_CHECK(order.has_value(), "forest must be acyclic");
  std::vector<size_t> subtree(n, 1);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    for (NodeId w : g.OutNeighbors(*it)) subtree[*it] += subtree[w];
  }

  // Carve connected subtrees children-first. The budget adapts to what is
  // left so late carves stay balanced, and a reserve guard keeps at least
  // one node available for every still-empty fragment (including the
  // remainder fragment 0, which keeps each component's root path and is
  // therefore connected per tree component).
  constexpr uint32_t kUncarved = 0;
  uint32_t next_fragment = 1;
  size_t remaining = n;  // uncarved nodes
  std::vector<size_t> effective(n, 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    NodeId v = *it;
    if (next_fragment >= num_fragments) break;
    // Effective size = 1 + effective sizes of uncarved children (children
    // precede parents in this iteration order).
    size_t eff = 1;
    for (NodeId w : g.OutNeighbors(v)) {
      if (assignment[w] == kUncarved) eff += effective[w];
    }
    effective[v] = eff;
    const uint32_t fragments_left = num_fragments - next_fragment + 1;
    const size_t budget = std::max<size_t>(1, remaining / fragments_left);
    const size_t reserve = num_fragments - next_fragment;  // 1 node each
    if (eff >= budget && remaining - eff >= reserve) {
      // Carve the uncarved part of v's subtree as a new fragment.
      uint32_t id = next_fragment++;
      std::vector<NodeId> stack = {v};
      while (!stack.empty()) {
        NodeId x = stack.back();
        stack.pop_back();
        if (assignment[x] != kUncarved) continue;
        assignment[x] = id;
        for (NodeId w : g.OutNeighbors(x)) stack.push_back(w);
      }
      remaining -= eff;
      effective[v] = 0;
    }
  }
  return assignment;
}

}  // namespace dgs
