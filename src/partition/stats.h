// Partition quality statistics: the quantities the paper's bounds are
// stated in (|Fm|, |Vf|, |Ef|) plus balance diagnostics, computed from a
// Fragmentation in one pass. Used by the partition_explorer example, the
// benchmark harness and tests.

#ifndef DGS_PARTITION_STATS_H_
#define DGS_PARTITION_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "partition/fragmentation.h"

namespace dgs {

struct PartitionStats {
  size_t num_fragments = 0;
  size_t num_nodes = 0;
  size_t num_edges = 0;

  // Table 2 quantities.
  size_t boundary_nodes = 0;   // |Vf|
  size_t crossing_edges = 0;   // |Ef|
  size_t max_fragment_size = 0;  // |Fm| = nodes + edges of largest fragment

  // Balance: local node counts per fragment.
  size_t min_local_nodes = 0;
  size_t max_local_nodes = 0;
  double mean_local_nodes = 0;
  // max / mean (1.0 = perfectly balanced).
  double balance_factor = 0;

  // Ratios the experiments sweep.
  double boundary_node_ratio = 0;  // |Vf| / |V|
  double crossing_edge_ratio = 0;  // |Ef| / |E|

  // Total in-node -> consumer-site subscriptions (an upper bound on the
  // distinct destinations of dGPM truth values).
  size_t consumer_links = 0;

  // Human-readable multi-line rendering.
  std::string ToString() const;
};

// Computes all statistics from an existing fragmentation.
PartitionStats ComputePartitionStats(const Fragmentation& fragmentation);

}  // namespace dgs

#endif  // DGS_PARTITION_STATS_H_
