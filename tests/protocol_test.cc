// Wire-format round trips (V1 fixed and V2 delta), decoder hardening
// against truncated/oversized payloads, robustness of the runtime
// primitives, and the usefulness filter of Section 4.1.

#include "core/protocol.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/booleq.h"
#include "runtime/cluster.h"
#include "util/rng.h"

namespace dgs {
namespace {

TEST(BlobTest, PrimitivesRoundTrip) {
  Blob blob;
  blob.PutU8(0xab);
  blob.PutU16(0xcdef);
  blob.PutU32(0x12345678);
  blob.PutU64(0x1122334455667788ull);
  EXPECT_EQ(blob.size(), 1u + 2 + 4 + 8);
  Blob::Reader reader(blob);
  EXPECT_EQ(reader.GetU8(), 0xab);
  EXPECT_EQ(reader.GetU16(), 0xcdef);
  EXPECT_EQ(reader.GetU32(), 0x12345678u);
  EXPECT_EQ(reader.GetU64(), 0x1122334455667788ull);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(reader.ok());
}

TEST(BlobTest, RemainingTracksPosition) {
  Blob blob;
  blob.PutU32(1);
  blob.PutU32(2);
  Blob::Reader reader(blob);
  EXPECT_EQ(reader.Remaining(), 8u);
  reader.GetU32();
  EXPECT_EQ(reader.Remaining(), 4u);
}

TEST(BlobTest, UnderrunFailsReaderInsteadOfCrashing) {
  Blob blob;
  blob.PutU8(1);
  Blob::Reader reader(blob);
  reader.GetU8();
  EXPECT_TRUE(reader.ok());
  // Past the end: sticky failure, zeros forever, no UB.
  EXPECT_EQ(reader.GetU32(), 0u);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.GetU64(), 0u);
  EXPECT_EQ(reader.GetVarint(), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(BlobTest, VarintRoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             0xffffffffull,
                             0x100000000ull,
                             0xffffffffffffffffull};
  Blob blob;
  for (uint64_t v : values) blob.PutVarint(v);
  Blob::Reader reader(blob);
  for (uint64_t v : values) EXPECT_EQ(reader.GetVarint(), v);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(reader.ok());
  // Size sanity: one byte below 128, ten bytes for the full 64-bit value.
  Blob small, big;
  small.PutVarint(127);
  big.PutVarint(0xffffffffffffffffull);
  EXPECT_EQ(small.size(), 1u);
  EXPECT_EQ(big.size(), 10u);
}

TEST(BlobTest, VarintSignedZigZagRoundTrip) {
  const int64_t values[] = {0, -1, 1, -2, 2, -64, 63, -65536, 65536,
                            INT64_MIN, INT64_MAX};
  Blob blob;
  for (int64_t v : values) blob.PutVarintSigned(v);
  Blob::Reader reader(blob);
  for (int64_t v : values) EXPECT_EQ(reader.GetVarintSigned(), v);
  EXPECT_TRUE(reader.ok());
  // Small magnitudes of either sign stay one byte.
  Blob one;
  one.PutVarintSigned(-3);
  EXPECT_EQ(one.size(), 1u);
}

TEST(BlobTest, TruncatedVarintFailsReader) {
  Blob blob;
  blob.PutU8(0x80);  // continuation bit set, then nothing
  Blob::Reader reader(blob);
  EXPECT_EQ(reader.GetVarint(), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(BlobTest, OverlongVarintFailsReader) {
  // Eleven continuation bytes can never encode a uint64_t.
  Blob blob;
  for (int i = 0; i < 11; ++i) blob.PutU8(0xff);
  Blob::Reader reader(blob);
  EXPECT_EQ(reader.GetVarint(), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(MessageTest, WireSizeIncludesHeader) {
  Message m;
  m.payload.PutU32(7);
  EXPECT_EQ(m.WireSize(), 4 + kMessageHeaderBytes);
}

// --- Key-list round trips --------------------------------------------------

std::vector<uint64_t> DecodeFalseVarList(const Blob& blob, bool* ok) {
  Blob::Reader reader(blob);
  WireTag tag = GetTag(reader);
  std::vector<uint64_t> keys;
  *ok = ReadFalseVarList(reader, tag, &keys) && reader.AtEnd();
  return keys;
}

TEST(ProtocolTest, FalseVarListRoundTripV1) {
  std::vector<uint64_t> keys = {MakeVarKey(0, 0), MakeVarKey(3, 123456),
                                MakeVarKey(65535, 0xffffffu)};
  Blob blob;
  EXPECT_EQ(AppendFalseVarList(blob, keys, WireFormat::kV1Fixed), 0u);
  Blob::Reader reader(blob);
  EXPECT_EQ(GetTag(reader), WireTag::kFalseVars);
  std::vector<uint64_t> back;
  ASSERT_TRUE(ReadFalseVarList(reader, WireTag::kFalseVars, &back));
  EXPECT_EQ(back, keys);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ProtocolTest, FalseVarListRoundTripV2) {
  // A clustered, sorted key list (the common shape: consecutive in-node
  // ids of one fragment).
  std::vector<uint64_t> keys;
  for (NodeId gv = 1000; gv < 1032; ++gv) {
    keys.push_back(MakeVarKey(2, gv));
    keys.push_back(MakeVarKey(4, gv));
  }
  std::sort(keys.begin(), keys.end());
  Blob v1, v2;
  AppendFalseVarList(v1, keys, WireFormat::kV1Fixed);
  uint64_t saved = AppendFalseVarList(v2, keys, WireFormat::kV2Delta);
  EXPECT_LT(v2.size(), v1.size());
  EXPECT_EQ(saved, v1.size() - v2.size());
  bool ok = false;
  EXPECT_EQ(DecodeFalseVarList(v2, &ok), keys);
  EXPECT_TRUE(ok);
  // Dense gaps: well under 3 bytes per key vs 6 fixed.
  EXPECT_LT(v2.size(), keys.size() * 3);
}

TEST(ProtocolTest, EmptyKeyListBothFormats) {
  for (WireFormat fmt : {WireFormat::kV1Fixed, WireFormat::kV2Delta}) {
    Blob blob;
    AppendFalseVarList(blob, {}, fmt);
    bool ok = false;
    EXPECT_TRUE(DecodeFalseVarList(blob, &ok).empty());
    EXPECT_TRUE(ok);
  }
}

// Property-style sweep: random sorted key lists round-trip identically in
// both formats, and the V2 encoding never ships more bytes than V1.
TEST(ProtocolTest, KeyListPropertyRoundTrip) {
  Rng rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint64_t> keys;
    const size_t n = rng.UniformInt(80);
    // Mix clustered and scattered ids over a few query nodes.
    const NodeId base = static_cast<NodeId>(rng.UniformInt(1u << 20));
    for (size_t i = 0; i < n; ++i) {
      const NodeId u = static_cast<NodeId>(rng.UniformInt(6));
      const NodeId gv = rng.UniformInt(2) == 0
                            ? base + static_cast<NodeId>(rng.UniformInt(64))
                            : static_cast<NodeId>(rng.UniformInt(0xffffffffull));
      keys.push_back(MakeVarKey(u, gv));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    Blob v1, v2;
    uint64_t saved1 = AppendFalseVarList(v1, keys, WireFormat::kV1Fixed);
    uint64_t saved2 = AppendFalseVarList(v2, keys, WireFormat::kV2Delta);
    EXPECT_EQ(saved1, 0u);
    bool ok1 = false, ok2 = false;
    EXPECT_EQ(DecodeFalseVarList(v1, &ok1), keys) << "trial " << trial;
    EXPECT_EQ(DecodeFalseVarList(v2, &ok2), keys) << "trial " << trial;
    EXPECT_TRUE(ok1);
    EXPECT_TRUE(ok2);
    // The V2 encoder falls back to the V1 body when deltas would lose, so
    // it can never ship more.
    EXPECT_LE(v2.size(), v1.size()) << "trial " << trial;
    EXPECT_EQ(saved2, v1.size() - v2.size()) << "trial " << trial;
  }
}

// --- Truth request / reply -------------------------------------------------

TEST(ProtocolTest, TruthRequestRoundTripBothFormats) {
  // Unsorted input (dMes requests come in frontier-creation order): V1
  // preserves order, V2 returns the keys sorted.
  std::vector<uint64_t> keys = {MakeVarKey(1, 900), MakeVarKey(0, 17),
                                MakeVarKey(1, 890), MakeVarKey(3, 4)};
  Blob v1;
  AppendTruthRequest(v1, keys, WireFormat::kV1Fixed);
  Blob::Reader r1(v1);
  WireTag t1 = GetTag(r1);
  EXPECT_EQ(t1, WireTag::kRequest);
  std::vector<uint64_t> back1;
  ASSERT_TRUE(ReadTruthRequest(r1, t1, &back1));
  EXPECT_EQ(back1, keys);

  Blob v2;
  AppendTruthRequest(v2, keys, WireFormat::kV2Delta);
  Blob::Reader r2(v2);
  WireTag t2 = GetTag(r2);
  std::vector<uint64_t> back2;
  ASSERT_TRUE(ReadTruthRequest(r2, t2, &back2));
  std::vector<uint64_t> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(back2, sorted);
  EXPECT_LE(v2.size(), v1.size());
}

TEST(ProtocolTest, TruthReplyShipsOnlyFalsesUnderV2) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint64_t> keys;
    const size_t n = 1 + rng.UniformInt(60);
    for (size_t i = 0; i < n; ++i) {
      keys.push_back(MakeVarKey(static_cast<NodeId>(rng.UniformInt(4)),
                                static_cast<NodeId>(rng.UniformInt(5000))));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    auto is_false = [](uint64_t key) { return key % 3 == 0; };
    std::vector<uint64_t> expected;
    for (uint64_t key : keys) {
      if (is_false(key)) expected.push_back(key);
    }

    Blob v1, v2;
    AppendTruthReply(v1, keys, is_false, WireFormat::kV1Fixed);
    uint64_t saved = AppendTruthReply(v2, keys, is_false, WireFormat::kV2Delta);
    EXPECT_LE(v2.size(), v1.size());
    EXPECT_EQ(saved, v1.size() - v2.size());
    for (const Blob* blob : {&v1, &v2}) {
      Blob::Reader reader(*blob);
      WireTag tag = GetTag(reader);
      std::vector<uint64_t> falses;
      ASSERT_TRUE(ReadTruthReplyFalses(reader, tag, &falses));
      EXPECT_EQ(falses, expected) << "trial " << trial;
    }
  }
}

// --- Match lists -----------------------------------------------------------

std::vector<std::vector<NodeId>> DecodeMatchList(const Blob& blob, bool* ok) {
  Blob::Reader reader(blob);
  WireTag tag = GetTag(reader);
  std::vector<std::vector<NodeId>> lists;
  *ok = ReadMatchList(reader, tag, &lists) && reader.AtEnd();
  return lists;
}

TEST(ProtocolTest, MatchListRoundTripSelecting) {
  std::vector<std::vector<NodeId>> matches = {{1, 2, 3}, {}, {42}};
  for (WireFormat fmt : {WireFormat::kV1Fixed, WireFormat::kV2Delta}) {
    Blob blob;
    AppendMatchList(blob, matches, /*boolean_only=*/false, fmt);
    bool ok = false;
    EXPECT_EQ(DecodeMatchList(blob, &ok), matches);
    EXPECT_TRUE(ok);
  }
}

TEST(ProtocolTest, MatchListPropertyRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::vector<NodeId>> matches(1 + rng.UniformInt(6));
    for (auto& list : matches) {
      const size_t n = rng.UniformInt(50);
      NodeId id = static_cast<NodeId>(rng.UniformInt(1u << 16));
      for (size_t i = 0; i < n; ++i) {
        id += 1 + static_cast<NodeId>(rng.UniformInt(100));
        list.push_back(id);  // sorted ascending by construction
      }
    }
    Blob v1, v2;
    AppendMatchList(v1, matches, false, WireFormat::kV1Fixed);
    uint64_t saved = AppendMatchList(v2, matches, false, WireFormat::kV2Delta);
    bool ok1 = false, ok2 = false;
    EXPECT_EQ(DecodeMatchList(v1, &ok1), matches) << "trial " << trial;
    EXPECT_EQ(DecodeMatchList(v2, &ok2), matches) << "trial " << trial;
    EXPECT_TRUE(ok1);
    EXPECT_TRUE(ok2);
    EXPECT_LE(v2.size(), v1.size()) << "trial " << trial;
    EXPECT_EQ(saved, v1.size() - v2.size()) << "trial " << trial;
  }
}

TEST(ProtocolTest, MatchListBooleanModeShipsBitsOnly) {
  std::vector<std::vector<NodeId>> matches = {{1, 2, 3}, {}, {42}};
  Blob selecting, boolean;
  AppendMatchList(selecting, matches, false, WireFormat::kV2Delta);
  AppendMatchList(boolean, matches, true, WireFormat::kV2Delta);
  EXPECT_LT(boolean.size(), selecting.size());
  Blob::Reader reader(boolean);
  WireTag tag = GetTag(reader);
  EXPECT_EQ(tag, WireTag::kMatches);  // Boolean mode always uses V1 bits
  std::vector<std::vector<NodeId>> back;
  ASSERT_TRUE(ReadMatchList(reader, tag, &back));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], (std::vector<NodeId>{kInvalidNode}));  // hit marker
  EXPECT_TRUE(back[1].empty());
  EXPECT_EQ(back[2], (std::vector<NodeId>{kInvalidNode}));
}

// --- Decoder hardening -----------------------------------------------------

TEST(ProtocolHardeningTest, OversizedFalseVarCountRejected) {
  // Declared count vastly exceeds the bytes present: the decoder must
  // reject before reserving anything.
  Blob blob;
  blob.PutU32(0xffffffffu);
  blob.PutU32(1);  // a few stray bytes
  Blob::Reader reader(blob);
  std::vector<uint64_t> keys;
  EXPECT_FALSE(ReadFalseVarList(reader, WireTag::kFalseVars, &keys));
}

TEST(ProtocolHardeningTest, TruncatedFalseVarListRejected) {
  Blob blob;
  blob.PutU32(2);  // declares two records, carries one
  blob.PutU32(77);
  blob.PutU16(3);
  Blob::Reader reader(blob);
  std::vector<uint64_t> keys;
  EXPECT_FALSE(ReadFalseVarList(reader, WireTag::kFalseVars, &keys));
}

TEST(ProtocolHardeningTest, TruncatedDeltaListRejected) {
  // One group claiming three ids but carrying only the first.
  Blob blob;
  blob.PutVarint(1);   // one group
  blob.PutU16(2);      // query node
  blob.PutVarint(3);   // count
  blob.PutVarint(10);  // first id; both gaps missing
  Blob::Reader reader(blob);
  std::vector<uint64_t> keys;
  EXPECT_FALSE(ReadFalseVarList(reader, WireTag::kFalseVars2, &keys));
}

TEST(ProtocolHardeningTest, DeltaGidOverflowRejected) {
  // Gap pushes the accumulated global id past 32 bits.
  Blob blob;
  blob.PutVarint(1);
  blob.PutU16(0);
  blob.PutVarint(2);
  blob.PutVarint(0xffffffffull);
  blob.PutVarint(1);
  Blob::Reader reader(blob);
  std::vector<uint64_t> keys;
  EXPECT_FALSE(ReadFalseVarList(reader, WireTag::kFalseVars2, &keys));
}

TEST(ProtocolHardeningTest, DeltaGapWraparoundRejected) {
  // A gap large enough to wrap the 64-bit accumulator back under the
  // 32-bit bound must still be rejected.
  Blob blob;
  blob.PutVarint(1);
  blob.PutU16(0);
  blob.PutVarint(2);
  blob.PutVarint(10);                         // first id
  blob.PutVarint(0xffffffffffffffffull - 4);  // 10 + gap wraps to 5
  Blob::Reader reader(blob);
  std::vector<uint64_t> keys;
  EXPECT_FALSE(ReadFalseVarList(reader, WireTag::kFalseVars2, &keys));
}

TEST(ProtocolHardeningTest, OversizedDeltaGroupCountRejected) {
  Blob blob;
  blob.PutVarint(1u << 30);  // groups that could never fit
  blob.PutU16(0);
  Blob::Reader reader(blob);
  std::vector<uint64_t> keys;
  EXPECT_FALSE(ReadFalseVarList(reader, WireTag::kFalseVars2, &keys));
}

TEST(ProtocolHardeningTest, OversizedMatchCountRejected) {
  Blob blob;
  blob.PutU16(1);
  blob.PutU8(0);           // selecting mode
  blob.PutU32(0x7fffffff);  // per-node count with no ids behind it
  Blob::Reader reader(blob);
  std::vector<std::vector<NodeId>> lists;
  EXPECT_FALSE(ReadMatchList(reader, WireTag::kMatches, &lists));
}

TEST(ProtocolHardeningTest, TruncatedTruthReplyRejected) {
  Blob blob;
  blob.PutU32(2);
  blob.PutU32(5);
  blob.PutU16(1);
  blob.PutU8(1);  // second record missing
  Blob::Reader reader(blob);
  std::vector<uint64_t> falses;
  EXPECT_FALSE(ReadTruthReplyFalses(reader, WireTag::kReply, &falses));
}

TEST(ProtocolHardeningTest, OversizedReducedSystemRejected) {
  Blob blob;
  blob.PutU8(1);             // serialization version 1 (fixed records)
  blob.PutU32(0x10000000u);  // entries that cannot fit the payload
  blob.PutU64(1);
  Blob::Reader reader(blob);
  ReducedSystem out;
  EXPECT_FALSE(ReducedSystem::Deserialize(reader, &out));
}

TEST(ProtocolHardeningTest, BadReducedSystemVersionRejected) {
  Blob blob;
  blob.PutU8(7);  // no such serialization version
  blob.PutU32(0);
  Blob::Reader reader(blob);
  ReducedSystem out;
  EXPECT_FALSE(ReducedSystem::Deserialize(reader, &out));
}

TEST(ProtocolHardeningTest, OversizedReducedSystemV2Rejected) {
  Blob blob;
  blob.PutU8(2);              // delta version
  blob.PutVarint(1u << 29);   // entries that cannot fit
  blob.PutVarint(3);
  Blob::Reader reader(blob);
  ReducedSystem out;
  EXPECT_FALSE(ReducedSystem::Deserialize(reader, &out));
}

TEST(ProtocolTest, ReducedSystemRoundTripBothVersions) {
  ReducedSystem r;
  ReducedEntry eq;
  eq.key = MakeVarKey(3, 1000);
  eq.kind = ReducedEntry::kEquation;
  eq.groups = {{MakeVarKey(1, 1001), MakeVarKey(1, 1002), MakeVarKey(2, 1003)},
               {MakeVarKey(4, 7)}};
  r.entries.push_back(eq);
  ReducedEntry scalar;
  scalar.key = MakeVarKey(0, 42);
  scalar.kind = ReducedEntry::kFalse;
  r.entries.push_back(scalar);

  Blob v1, v2;
  EXPECT_EQ(r.Serialize(v1, WireFormat::kV1Fixed), 0u);
  uint64_t saved = r.Serialize(v2, WireFormat::kV2Delta);
  EXPECT_LE(v2.size(), v1.size());
  EXPECT_EQ(saved, v1.size() - v2.size());
  for (const Blob* blob : {&v1, &v2}) {
    Blob::Reader reader(*blob);
    ReducedSystem back;
    ASSERT_TRUE(ReducedSystem::Deserialize(reader, &back));
    EXPECT_TRUE(reader.AtEnd());
    ASSERT_EQ(back.entries.size(), 2u);
    EXPECT_EQ(back.entries[0].key, eq.key);
    EXPECT_EQ(back.entries[0].groups, eq.groups);  // groups arrive sorted
    EXPECT_EQ(back.entries[1].key, scalar.key);
    EXPECT_EQ(back.entries[1].kind, ReducedEntry::kFalse);
  }
}

TEST(ProtocolHardeningTest, TruncatedReducedSystemRejected) {
  // A valid system cut short mid-entry.
  ReducedSystem r;
  ReducedEntry eq;
  eq.key = 7;
  eq.kind = ReducedEntry::kEquation;
  eq.groups = {{1, 2}, {3}};
  r.entries.push_back(eq);
  Blob full;
  r.Serialize(full, WireFormat::kV1Fixed);
  Blob truncated;
  Blob::Reader copier(full);
  for (size_t i = 0; i + 4 < full.size(); ++i) truncated.PutU8(copier.GetU8());
  Blob::Reader reader(truncated);
  ReducedSystem out;
  EXPECT_FALSE(ReducedSystem::Deserialize(reader, &out));
}

TEST(ProtocolHardeningTest, BadReducedEntryKindRejected) {
  Blob blob;
  blob.PutU8(1);  // serialization version 1
  blob.PutU32(1);
  blob.PutU64(42);
  blob.PutU8(9);  // no such kind
  Blob::Reader reader(blob);
  ReducedSystem out;
  EXPECT_FALSE(ReducedSystem::Deserialize(reader, &out));
}

// --- Usefulness filter and runtime primitives ------------------------------

TEST(ProtocolTest, SubscribeListRoundTripBothFormats) {
  const std::vector<NodeId> nodes = {3, 4, 5, 900, 901, 40000};
  for (WireFormat format : {WireFormat::kV1Fixed, WireFormat::kV2Delta}) {
    Blob blob;
    const uint64_t saved = AppendSubscribeList(blob, nodes, format);
    Blob::Reader reader(blob);
    const WireTag tag = GetTag(reader);
    if (format == WireFormat::kV1Fixed) {
      EXPECT_EQ(tag, WireTag::kSubscribe);
      EXPECT_EQ(saved, 0u);
    } else {
      EXPECT_EQ(tag, WireTag::kSubscribe2);
      EXPECT_GT(saved, 0u);  // dense sorted ids collapse to 1-byte gaps
    }
    std::vector<NodeId> decoded;
    ASSERT_TRUE(ReadSubscribeList(reader, tag, &decoded));
    EXPECT_EQ(decoded, nodes);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(ProtocolTest, SubscribeListPropertyRoundTrip) {
  Rng rng(321);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<NodeId> nodes;
    const size_t n = rng.UniformInt(200);
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(static_cast<NodeId>(rng.UniformInt(1u << 20)));
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    for (WireFormat format : {WireFormat::kV1Fixed, WireFormat::kV2Delta}) {
      Blob blob;
      AppendSubscribeList(blob, nodes, format);
      Blob::Reader reader(blob);
      const WireTag tag = GetTag(reader);
      std::vector<NodeId> decoded;
      ASSERT_TRUE(ReadSubscribeList(reader, tag, &decoded));
      EXPECT_EQ(decoded, nodes);
    }
  }
}

TEST(ProtocolHardeningTest, TruncatedSubscribeListRejected) {
  Blob blob;
  AppendSubscribeList(blob, {1, 2, 3, 1000}, WireFormat::kV1Fixed);
  Blob truncated;
  truncated.PutU8(static_cast<uint8_t>(WireTag::kSubscribe));
  truncated.PutU32(4);
  truncated.PutU32(1);  // 3 records missing
  Blob::Reader reader(truncated);
  std::vector<NodeId> decoded;
  EXPECT_FALSE(ReadSubscribeList(reader, GetTag(reader), &decoded));
}

TEST(ProtocolHardeningTest, OversizedSubscribeDeltaCountRejected) {
  Blob blob;
  blob.PutU8(static_cast<uint8_t>(WireTag::kSubscribe2));
  blob.PutVarint(1u << 30);  // declares a billion ids, ships one byte
  blob.PutVarint(1);
  Blob::Reader reader(blob);
  std::vector<NodeId> decoded;
  EXPECT_FALSE(ReadSubscribeList(reader, GetTag(reader), &decoded));
}

TEST(ProtocolTest, SubgraphRoundTripBothFormats) {
  const std::vector<std::pair<NodeId, Label>> nodes = {
      {7, 2}, {8, 3}, {9, 2}, {1000, 5}};
  const std::vector<std::pair<NodeId, NodeId>> edges = {
      {7, 8}, {7, 9}, {8, 1000}, {9, 7}};
  for (WireFormat format : {WireFormat::kV1Fixed, WireFormat::kV2Delta}) {
    Blob blob;
    const uint64_t saved = AppendSubgraph(blob, nodes, edges, format);
    Blob::Reader reader(blob);
    const WireTag tag = GetTag(reader);
    std::vector<std::pair<NodeId, Label>> dn;
    std::vector<std::pair<NodeId, NodeId>> de;
    ASSERT_TRUE(ReadSubgraph(reader, tag, &dn, &de));
    EXPECT_TRUE(reader.AtEnd());
    // V2 re-sorts; compare as sets.
    auto sn = nodes;
    auto se = edges;
    std::sort(sn.begin(), sn.end());
    std::sort(se.begin(), se.end());
    std::sort(dn.begin(), dn.end());
    std::sort(de.begin(), de.end());
    EXPECT_EQ(dn, sn);
    EXPECT_EQ(de, se);
    if (format == WireFormat::kV2Delta) {
      EXPECT_EQ(tag, WireTag::kSubgraph2);
      EXPECT_GT(saved, 0u);
    } else {
      EXPECT_EQ(tag, WireTag::kSubgraph);
      EXPECT_EQ(saved, 0u);
    }
  }
}

TEST(ProtocolTest, SubgraphPropertyRoundTrip) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::pair<NodeId, Label>> nodes;
    const size_t n = 1 + rng.UniformInt(100);
    for (size_t i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<NodeId>(rng.UniformInt(1u << 16)),
                         static_cast<Label>(rng.UniformInt(16)));
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end(),
                            [](auto a, auto b) { return a.first == b.first; }),
                nodes.end());
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      if (rng.UniformInt(2) == 0) {
        edges.emplace_back(nodes[i].first, nodes[i + 1].first);
      }
    }
    for (WireFormat format : {WireFormat::kV1Fixed, WireFormat::kV2Delta}) {
      Blob blob;
      AppendSubgraph(blob, nodes, edges, format);
      Blob::Reader reader(blob);
      std::vector<std::pair<NodeId, Label>> dn;
      std::vector<std::pair<NodeId, NodeId>> de;
      ASSERT_TRUE(ReadSubgraph(reader, GetTag(reader), &dn, &de));
      std::sort(dn.begin(), dn.end());
      std::sort(de.begin(), de.end());
      EXPECT_EQ(dn, nodes) << "format=" << WireFormatName(format);
      EXPECT_EQ(de, edges) << "format=" << WireFormatName(format);
    }
  }
}

TEST(ProtocolHardeningTest, TruncatedSubgraphRejected) {
  Blob blob;
  blob.PutU8(static_cast<uint8_t>(WireTag::kSubgraph));
  blob.PutU32(100);  // declares 100 nodes, ships none
  Blob::Reader reader(blob);
  std::vector<std::pair<NodeId, Label>> nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;
  EXPECT_FALSE(ReadSubgraph(reader, GetTag(reader), &nodes, &edges));
}

TEST(ProtocolHardeningTest, SubgraphDeltaOverflowRejected) {
  // A second id gap pushing the accumulated node id past 32 bits.
  Blob blob;
  blob.PutU8(static_cast<uint8_t>(WireTag::kSubgraph2));
  blob.PutVarint(2);            // two nodes
  blob.PutVarint(0xfffffff0u);  // first id near the top
  blob.PutVarint(1);            // label
  blob.PutVarint(0x20);         // gap wraps past 2^32
  blob.PutVarint(1);            // label
  blob.PutVarint(0);            // no edge groups
  Blob::Reader reader(blob);
  std::vector<std::pair<NodeId, Label>> nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;
  EXPECT_FALSE(ReadSubgraph(reader, GetTag(reader), &nodes, &edges));
}

TEST(ProtocolHardeningTest, SubgraphEmptyEdgeGroupRejected) {
  Blob blob;
  blob.PutU8(static_cast<uint8_t>(WireTag::kSubgraph2));
  blob.PutVarint(0);  // no nodes
  blob.PutVarint(1);  // one edge group...
  blob.PutVarint(0);  // source gap
  blob.PutVarint(0);  // ...with zero edges: never emitted, so corrupt
  blob.PutVarint(0);
  Blob::Reader reader(blob);
  std::vector<std::pair<NodeId, Label>> nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;
  EXPECT_FALSE(ReadSubgraph(reader, GetTag(reader), &nodes, &edges));
}

TEST(ProtocolTest, ConsumerNeedsVarFilter) {
  // Q: 0 -> 1 -> 2 with labels 10, 11, 12.
  Pattern q(MakeGraph({10, 11, 12}, {{0, 1}, {1, 2}}));
  // X(1, v) is useful to a consumer whose crossing sources carry label 10
  // (the label of query node 0, the only parent of 1).
  EXPECT_TRUE(ConsumerNeedsVar(q, 1, {10}));
  EXPECT_TRUE(ConsumerNeedsVar(q, 1, {9, 10, 11}));
  EXPECT_FALSE(ConsumerNeedsVar(q, 1, {11, 12}));
  // Query node 0 has no parents: its truth values help nobody.
  EXPECT_FALSE(ConsumerNeedsVar(q, 0, {10, 11, 12}));
  // Empty source labels never need anything.
  EXPECT_FALSE(ConsumerNeedsVar(q, 2, {}));
}

TEST(ClusterTest, RunawayRoundsAbortGuard) {
  // Two actors ping-ponging forever must hit the max_rounds guard rather
  // than hanging (failure-injection for protocol bugs).
  class PingPong : public SiteActor {
   public:
    void Setup(SiteContext& ctx) override {
      if (ctx.site_id() == 0) Bounce(ctx);
    }
    void OnMessages(SiteContext& ctx, std::vector<Message>) override {
      Bounce(ctx);
    }

   private:
    void Bounce(SiteContext& ctx) {
      Blob b;
      b.PutU8(1);
      ctx.Send(1 - ctx.site_id(), MessageClass::kData, std::move(b));
    }
  };
  class Idle : public SiteActor {
   public:
    void OnMessages(SiteContext&, std::vector<Message>) override {}
  };
  Cluster cluster(2);
  cluster.SetWorker(0, std::make_unique<PingPong>());
  cluster.SetWorker(1, std::make_unique<PingPong>());
  cluster.SetCoordinator(std::make_unique<Idle>());
  EXPECT_DEATH(cluster.Run(/*max_rounds=*/64), "round budget");
}

TEST(VarKeyTest, Boundaries) {
  uint64_t key = MakeVarKey(0xffff, 0xffffffffu);
  EXPECT_EQ(VarKeyQueryNode(key), 0xffffu);
  EXPECT_EQ(VarKeyGlobalNode(key), 0xffffffffu);
  EXPECT_EQ(VarKeyQueryNode(MakeVarKey(0, 0)), 0u);
  EXPECT_EQ(VarKeyGlobalNode(MakeVarKey(0, 0)), 0u);
}

}  // namespace
}  // namespace dgs
