// Wire-format round trips, robustness of the runtime primitives, and the
// usefulness filter of Section 4.1.

#include "core/protocol.h"

#include <gtest/gtest.h>

#include "runtime/cluster.h"

namespace dgs {
namespace {

TEST(BlobTest, PrimitivesRoundTrip) {
  Blob blob;
  blob.PutU8(0xab);
  blob.PutU16(0xcdef);
  blob.PutU32(0x12345678);
  blob.PutU64(0x1122334455667788ull);
  EXPECT_EQ(blob.size(), 1u + 2 + 4 + 8);
  Blob::Reader reader(blob);
  EXPECT_EQ(reader.GetU8(), 0xab);
  EXPECT_EQ(reader.GetU16(), 0xcdef);
  EXPECT_EQ(reader.GetU32(), 0x12345678u);
  EXPECT_EQ(reader.GetU64(), 0x1122334455667788ull);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BlobTest, RemainingTracksPosition) {
  Blob blob;
  blob.PutU32(1);
  blob.PutU32(2);
  Blob::Reader reader(blob);
  EXPECT_EQ(reader.Remaining(), 8u);
  reader.GetU32();
  EXPECT_EQ(reader.Remaining(), 4u);
}

TEST(BlobDeathTest, UnderrunAborts) {
  Blob blob;
  blob.PutU8(1);
  Blob::Reader reader(blob);
  reader.GetU8();
  EXPECT_DEATH(reader.GetU32(), "underrun");
}

TEST(MessageTest, WireSizeIncludesHeader) {
  Message m;
  m.payload.PutU32(7);
  EXPECT_EQ(m.WireSize(), 4 + kMessageHeaderBytes);
}

TEST(ProtocolTest, FalseVarListRoundTrip) {
  std::vector<uint64_t> keys = {MakeVarKey(0, 0), MakeVarKey(3, 123456),
                                MakeVarKey(65535, 0xffffffu)};
  Blob blob;
  AppendFalseVarList(blob, keys);
  Blob::Reader reader(blob);
  EXPECT_EQ(GetTag(reader), WireTag::kFalseVars);
  EXPECT_EQ(ReadFalseVarList(reader), keys);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ProtocolTest, MatchListRoundTripSelecting) {
  std::vector<std::vector<NodeId>> matches = {{1, 2, 3}, {}, {42}};
  Blob blob;
  AppendMatchList(blob, matches, /*boolean_only=*/false);
  Blob::Reader reader(blob);
  EXPECT_EQ(GetTag(reader), WireTag::kMatches);
  EXPECT_EQ(ReadMatchList(reader), matches);
}

TEST(ProtocolTest, MatchListBooleanModeShipsBitsOnly) {
  std::vector<std::vector<NodeId>> matches = {{1, 2, 3}, {}, {42}};
  Blob selecting, boolean;
  AppendMatchList(selecting, matches, false);
  AppendMatchList(boolean, matches, true);
  EXPECT_LT(boolean.size(), selecting.size());
  Blob::Reader reader(boolean);
  GetTag(reader);
  auto back = ReadMatchList(reader);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], (std::vector<NodeId>{kInvalidNode}));  // hit marker
  EXPECT_TRUE(back[1].empty());
  EXPECT_EQ(back[2], (std::vector<NodeId>{kInvalidNode}));
}

TEST(ProtocolTest, ConsumerNeedsVarFilter) {
  // Q: 0 -> 1 -> 2 with labels 10, 11, 12.
  Pattern q(MakeGraph({10, 11, 12}, {{0, 1}, {1, 2}}));
  // X(1, v) is useful to a consumer whose crossing sources carry label 10
  // (the label of query node 0, the only parent of 1).
  EXPECT_TRUE(ConsumerNeedsVar(q, 1, {10}));
  EXPECT_TRUE(ConsumerNeedsVar(q, 1, {9, 10, 11}));
  EXPECT_FALSE(ConsumerNeedsVar(q, 1, {11, 12}));
  // Query node 0 has no parents: its truth values help nobody.
  EXPECT_FALSE(ConsumerNeedsVar(q, 0, {10, 11, 12}));
  // Empty source labels never need anything.
  EXPECT_FALSE(ConsumerNeedsVar(q, 2, {}));
}

TEST(ClusterTest, RunawayRoundsAbortGuard) {
  // Two actors ping-ponging forever must hit the max_rounds guard rather
  // than hanging (failure-injection for protocol bugs).
  class PingPong : public SiteActor {
   public:
    void Setup(SiteContext& ctx) override {
      if (ctx.site_id() == 0) Bounce(ctx);
    }
    void OnMessages(SiteContext& ctx, std::vector<Message>) override {
      Bounce(ctx);
    }

   private:
    void Bounce(SiteContext& ctx) {
      Blob b;
      b.PutU8(1);
      ctx.Send(1 - ctx.site_id(), MessageClass::kData, std::move(b));
    }
  };
  class Idle : public SiteActor {
   public:
    void OnMessages(SiteContext&, std::vector<Message>) override {}
  };
  Cluster cluster(2);
  cluster.SetWorker(0, std::make_unique<PingPong>());
  cluster.SetWorker(1, std::make_unique<PingPong>());
  cluster.SetCoordinator(std::make_unique<Idle>());
  EXPECT_DEATH(cluster.Run(/*max_rounds=*/64), "round budget");
}

TEST(VarKeyTest, Boundaries) {
  uint64_t key = MakeVarKey(0xffff, 0xffffffffu);
  EXPECT_EQ(VarKeyQueryNode(key), 0xffffu);
  EXPECT_EQ(VarKeyGlobalNode(key), 0xffffffffu);
  EXPECT_EQ(VarKeyQueryNode(MakeVarKey(0, 0)), 0u);
  EXPECT_EQ(VarKeyGlobalNode(MakeVarKey(0, 0)), 0u);
}

}  // namespace
}  // namespace dgs
