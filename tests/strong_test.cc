#include "simulation/strong.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "simulation/oracle.h"

namespace dgs {
namespace {

// Checks R1 subset-of R2 pairwise over fixpoint sets.
bool SubsetOf(const SimulationResult& r1, const SimulationResult& r2,
              size_t nq) {
  for (NodeId u = 0; u < nq; ++u) {
    bool ok = true;
    r1.FixpointSet(u).ForEachSet([&](size_t v) {
      if (!r2.FixpointSet(u).Test(v)) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

TEST(DualSimulationTest, AddsParentCondition) {
  // Q: a -> b. Data: a1 -> b1, and an orphan b2 with no a-parent.
  Pattern q(MakeGraph({0, 1}, {{0, 1}}));
  Graph g = MakeGraph({0, 1, 1}, {{0, 1}});
  auto plain = ComputeSimulation(q, g);
  auto dual = ComputeDualSimulation(q, g);
  // Plain simulation keeps b2 (only successors matter); dual drops it.
  EXPECT_EQ(plain.Matches(1), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(dual.Matches(1), (std::vector<NodeId>{1}));
  EXPECT_TRUE(SubsetOf(dual, plain, 2));
}

TEST(DualSimulationTest, AgreesWithPlainWhenPatternHasNoSharedParents) {
  // On the intact locality gadget every node has matching parents and
  // children, so dual == plain.
  auto gadget = MakeLocalityGadget(6);
  auto plain = ComputeSimulation(gadget.q, gadget.g);
  auto dual = ComputeDualSimulation(gadget.q, gadget.g);
  EXPECT_TRUE(plain == dual);
}

TEST(DualSimulationTest, SubsetOfPlainOnRandomInputs) {
  Rng rng(601);
  for (int trial = 0; trial < 12; ++trial) {
    Graph g = RandomGraph(120, 480, 3, rng);
    PatternSpec spec;
    spec.num_nodes = 4;
    spec.num_edges = 6;
    spec.kind = PatternKind::kAny;
    Pattern q = SynthesizePattern(spec, 3, rng);
    auto plain = ComputeSimulation(q, g);
    auto dual = ComputeDualSimulation(q, g);
    EXPECT_TRUE(SubsetOf(dual, plain, q.NumNodes())) << trial;
  }
}

TEST(UndirectedBallTest, RadiusSemantics) {
  // Path 0 -> 1 -> 2 -> 3.
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(UndirectedBall(g, 1, 0), (std::vector<NodeId>{1}));
  EXPECT_EQ(UndirectedBall(g, 1, 1), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(UndirectedBall(g, 1, 2), (std::vector<NodeId>{0, 1, 2, 3}));
  // Direction is ignored: node 3 reaches node 0 through reversed edges.
  EXPECT_EQ(UndirectedBall(g, 3, 3), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(StrongSimulationTest, MissesYb2OnTheSocialExample) {
  // Section 2.1: "[strong simulation] may miss potential matches, e.g., the
  // node yb2 for YB in Fig. 1", which plain simulation finds.
  auto ex = MakeSocialExample();
  auto plain = ComputeSimulation(ex.q, ex.g);
  auto strong = ComputeStrongSimulation(ex.q, ex.g);
  NodeId yb2 = 5;
  ASSERT_EQ(ex.node_names[yb2], "yb2");
  EXPECT_TRUE(plain.FixpointSet(SocialExample::kYB).Test(yb2));
  EXPECT_FALSE(strong.FixpointSet(SocialExample::kYB).Test(yb2));
  EXPECT_TRUE(SubsetOf(strong, plain, 4));
}

TEST(StrongSimulationTest, ContainmentChainOnRandomInputs) {
  // strong subset-of dual subset-of plain (the [24] hierarchy).
  Rng rng(607);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGraph(60, 240, 3, rng);
    PatternSpec spec;
    spec.num_nodes = 3;
    spec.num_edges = 4;
    spec.kind = PatternKind::kAny;
    Pattern q = SynthesizePattern(spec, 3, rng);
    auto plain = ComputeSimulation(q, g);
    auto dual = ComputeDualSimulation(q, g);
    auto strong = ComputeStrongSimulation(q, g);
    EXPECT_TRUE(SubsetOf(dual, plain, q.NumNodes())) << trial;
    EXPECT_TRUE(SubsetOf(strong, dual, q.NumNodes())) << trial;
  }
}

TEST(StrongSimulationTest, DataLocalityOnTheGadget) {
  // Example 3's point, constructively: plain simulation on the intact
  // 2n-cycle matches everything and needs whole-cycle information, while
  // strong simulation decides every ball (radius d_Q = 1) locally — and
  // pays for that locality by rejecting the stretched cycle entirely (the
  // ball around any node is a 3-node path, where the A <-> B cycle has no
  // dual match).
  auto gadget = MakeLocalityGadget(8);
  auto plain = ComputeSimulation(gadget.q, gadget.g);
  EXPECT_TRUE(plain.GraphMatches());
  EXPECT_EQ(plain.RelationSize(), 16u);
  auto strong = ComputeStrongSimulation(gadget.q, gadget.g);
  EXPECT_FALSE(strong.GraphMatches());
}

TEST(StrongSimulationTest, FindsTightCommunities) {
  // A genuine 2-cycle is found by strong simulation (the ball contains the
  // whole match).
  Graph g = MakeGraph({0, 1, 0}, {{0, 1}, {1, 0}, {2, 1}});
  Pattern q(MakeGraph({0, 1}, {{0, 1}, {1, 0}}));
  auto strong = ComputeStrongSimulation(q, g);
  ASSERT_TRUE(strong.GraphMatches());
  EXPECT_EQ(strong.Matches(0), (std::vector<NodeId>{0}));
  EXPECT_EQ(strong.Matches(1), (std::vector<NodeId>{1}));
}

TEST(StrongSimulationTest, SingleNodePattern) {
  Pattern q(MakeGraph({3}, {}));
  Graph g = MakeGraph({3, 4}, {{0, 1}});
  auto strong = ComputeStrongSimulation(q, g);
  ASSERT_TRUE(strong.GraphMatches());
  EXPECT_EQ(strong.Matches(0), (std::vector<NodeId>{0}));
}

}  // namespace
}  // namespace dgs
